/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the hsbp library: generate a graph
/// with planted communities, run all three SBP variants, compare
/// quality and MCMC-phase runtime.
///
/// Usage: quickstart [--vertices N] [--communities C] [--edges E]
///                   [--ratio R] [--seed S] [--runs K]
#include <cstdio>

#include "eval/experiment.hpp"
#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sbp/sbp.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const hsbp::util::Args args(argc, argv);

  hsbp::generator::DcsbmParams params;
  params.num_vertices =
      static_cast<hsbp::graph::Vertex>(args.get_int("vertices", 600));
  params.num_communities =
      static_cast<std::int32_t>(args.get_int("communities", 8));
  params.num_edges = args.get_int("edges", 6000);
  params.ratio_within_between = args.get_double("ratio", 4.0);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::printf("Generating DCSBM graph: V=%d C=%d E=%lld r=%.1f\n",
              params.num_vertices, params.num_communities,
              static_cast<long long>(params.num_edges),
              params.ratio_within_between);
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "quickstart";

  hsbp::sbp::SbpConfig config;
  config.seed = params.seed;
  const int runs = static_cast<int>(args.get_int("runs", 1));

  hsbp::util::Table table(
      {"algorithm", "blocks", "NMI", "MDL_norm", "modularity", "mcmc_s"});
  for (const auto variant :
       {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid,
        hsbp::sbp::Variant::AsyncGibbs}) {
    const auto row =
        hsbp::eval::run_experiment(generated, variant, config, runs);
    table.row()
        .cell(row.algorithm)
        .cell(static_cast<std::int64_t>(row.num_blocks))
        .cell(row.nmi, 3)
        .cell(row.mdl_norm, 3)
        .cell(row.modularity, 3)
        .cell(row.mcmc_seconds, 3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(planted communities: %d)\n", params.num_communities);
  return 0;
}
