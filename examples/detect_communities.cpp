/// \file detect_communities.cpp
/// \brief The production workflow: load a graph file (Matrix Market or
/// edge list), run a chosen SBP variant, report quality metrics, and
/// optionally write the community assignment to a TSV file.
///
/// This is the path users with the paper's original SuiteSparse
/// datasets take: download e.g. web-BerkStan.mtx and run
///
///   detect_communities web-BerkStan.mtx --algorithm hsbp --runs 5 \
///       --out communities.tsv
///
/// Usage:
///   detect_communities <graph-file> [--algorithm sbp|asbp|hsbp|bsbp]
///       [--runs K] [--seed S] [--threads T] [--fraction F]
///       [--batches K] [--weighted] [--format auto|mtx|edgelist]
///       [--out FILE]
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "eval/partition_io.hpp"
#include "eval/runner.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "metrics/metrics.hpp"
#include "sbp/sbp.hpp"
#include "util/args.hpp"
#include "util/logger.hpp"

namespace {

hsbp::sbp::Variant parse_variant(const std::string& name) {
  if (name == "sbp") return hsbp::sbp::Variant::Metropolis;
  if (name == "asbp") return hsbp::sbp::Variant::AsyncGibbs;
  if (name == "hsbp") return hsbp::sbp::Variant::Hybrid;
  if (name == "bsbp") return hsbp::sbp::Variant::BatchedGibbs;
  throw std::invalid_argument("unknown --algorithm '" + name +
                              "' (expected sbp|asbp|hsbp|bsbp)");
}

hsbp::graph::Graph load(const std::string& path, const std::string& format,
                        hsbp::graph::WeightHandling weights) {
  if (format == "mtx") {
    return hsbp::graph::read_matrix_market_file(path, weights);
  }
  if (format == "edgelist") {
    return hsbp::graph::read_edge_list_file(path, weights);
  }
  if (format == "auto") {
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".mtx") {
      return hsbp::graph::read_matrix_market_file(path, weights);
    }
    return hsbp::graph::read_edge_list_file(path, weights);
  }
  throw std::invalid_argument("unknown --format '" + format + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const hsbp::util::Args args(argc, argv);
    if (args.positionals().empty()) {
      std::fprintf(stderr,
                   "usage: %s <graph-file> [--algorithm sbp|asbp|hsbp] "
                   "[--runs K] [--seed S] [--threads T] [--fraction F] "
                   "[--format auto|mtx|edgelist] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
    hsbp::util::set_log_level(hsbp::util::LogLevel::Info);

    const std::string path = args.positionals().front();
    const auto weights = args.get_bool("weighted", false)
                             ? hsbp::graph::WeightHandling::Multiplicity
                             : hsbp::graph::WeightHandling::Ignore;
    const auto graph = load(path, args.get_string("format", "auto"), weights);
    std::printf("loaded %s: V=%d E=%lld self-loops=%lld\n", path.c_str(),
                graph.num_vertices(),
                static_cast<long long>(graph.num_edges()),
                static_cast<long long>(graph.num_self_loops()));

    const auto components = hsbp::graph::weakly_connected_components(graph);
    std::printf("weakly-connected components: %d (largest: %d vertices)\n",
                components.count,
                components.count > 0
                    ? components.sizes[static_cast<std::size_t>(
                          components.largest)]
                    : 0);
    if (components.count > 1) {
      std::printf(
          "note: disconnected input — SBP fits all components jointly; "
          "consider extracting the largest component first.\n");
    }

    hsbp::sbp::SbpConfig config;
    config.variant = parse_variant(args.get_string("algorithm", "hsbp"));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
    config.num_threads = static_cast<int>(args.get_int("threads", 0));
    config.hybrid_fraction = args.get_double("fraction", 0.15);
    config.batch_count = static_cast<int>(args.get_int("batches", 4));
    const int runs = static_cast<int>(args.get_int("runs", 5));

    const auto outcome = hsbp::eval::best_of(graph, config, runs);
    const auto& best = outcome.best;

    std::printf("algorithm:       %s (best of %d runs)\n",
                hsbp::sbp::variant_name(config.variant), runs);
    std::printf("communities:     %d\n", best.num_blocks);
    std::printf("MDL:             %.2f\n", best.mdl);
    std::printf("normalized MDL:  %.4f\n",
                hsbp::metrics::normalized_mdl(best.mdl, graph.num_vertices(),
                                              graph.num_edges()));
    std::printf("modularity:      %.4f\n",
                hsbp::metrics::modularity(graph, best.assignment));
    std::printf("MCMC time (all runs): %.3f s over %lld iterations\n",
                outcome.total_mcmc_seconds,
                static_cast<long long>(outcome.total_mcmc_iterations));

    if (args.has("out")) {
      const std::string out_path = args.get_string("out", "");
      hsbp::eval::save_assignment_file(best.assignment, out_path);
      std::printf("assignment written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
