/// \file generate_graphs.cpp
/// \brief Reproduces the paper's data-generation step (§4.1): emits the
/// Table-1 synthetic suite and/or the Table-2 real-world surrogates as
/// Matrix Market files plus ground-truth TSVs, at a chosen scale.
///
/// Usage:
///   generate_graphs [--suite synthetic|realworld|both] [--scale F]
///       [--seed S] [--outdir DIR] [--only S7]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "generator/suites.hpp"
#include "graph/io.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

void emit(const hsbp::generator::SuiteEntry& entry,
          const std::filesystem::path& outdir, hsbp::util::Table& table) {
  const auto generated = hsbp::generator::generate(entry);
  const auto graph_path = outdir / (entry.id + ".mtx");
  hsbp::graph::write_matrix_market_file(generated.graph, graph_path.string());

  if (!generated.ground_truth.empty()) {
    std::ofstream truth(outdir / (entry.id + ".truth.tsv"));
    truth << "# vertex\tcommunity\n";
    for (std::size_t v = 0; v < generated.ground_truth.size(); ++v) {
      truth << v << '\t' << generated.ground_truth[v] << '\n';
    }
  }

  table.row()
      .cell(entry.id)
      .cell(static_cast<std::int64_t>(generated.graph.num_vertices()))
      .cell(generated.graph.num_edges())
      .cell(static_cast<std::int64_t>(entry.params.num_communities))
      .cell(entry.params.ratio_within_between, 2)
      .cell(hsbp::generator::realized_within_ratio(generated.graph,
                                                   generated.ground_truth),
            2)
      .cell(graph_path.string());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const hsbp::util::Args args(argc, argv);
    const std::string suite_name = args.get_string("suite", "synthetic");
    const double scale = args.get_double("scale", 0.01);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const std::filesystem::path outdir =
        args.get_string("outdir", "generated_graphs");
    const std::string only = args.get_string("only", "");

    std::filesystem::create_directories(outdir);

    std::vector<hsbp::generator::SuiteEntry> entries;
    if (suite_name == "synthetic" || suite_name == "both") {
      const auto s = hsbp::generator::synthetic_suite(scale, seed);
      entries.insert(entries.end(), s.begin(), s.end());
    }
    if (suite_name == "realworld" || suite_name == "both") {
      const auto s = hsbp::generator::realworld_surrogate_suite(scale, seed);
      entries.insert(entries.end(), s.begin(), s.end());
    }
    if (entries.empty()) {
      throw std::invalid_argument("--suite must be synthetic|realworld|both");
    }

    hsbp::util::Table table({"id", "V", "E", "C", "requested_r",
                             "realized_r", "file"});
    for (const auto& entry : entries) {
      if (!only.empty() && entry.id != only) continue;
      emit(entry, outdir, table);
    }
    if (table.rows() == 0) {
      throw std::invalid_argument("--only '" + only + "' matched nothing");
    }
    std::printf("%s", table.to_string().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
