/// \file compare_algorithms.cpp
/// \brief Side-by-side comparison of SBP / A-SBP / H-SBP on one graph —
/// the paper's core experiment on a workload of your choice. Includes
/// the influence (α) diagnostic on small graphs, connecting the result
/// back to the theory the hybrid heuristic rests on (§2.3/§3.2).
///
/// Usage:
///   compare_algorithms [<graph-file>] [--vertices N] [--communities C]
///       [--edges E] [--ratio R] [--runs K] [--seed S]
///       [--fraction F] [--influence]
///
/// With a file argument the comparison runs on that graph (no NMI);
/// otherwise a DCSBM graph is generated with planted ground truth.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "generator/dcsbm.hpp"
#include "graph/io.hpp"
#include "sbp/influence.hpp"
#include "sbp/sbp.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  try {
    const hsbp::util::Args args(argc, argv);

    hsbp::generator::GeneratedGraph workload;
    if (!args.positionals().empty()) {
      const std::string path = args.positionals().front();
      workload.graph = path.size() >= 4 &&
                               path.substr(path.size() - 4) == ".mtx"
                           ? hsbp::graph::read_matrix_market_file(path)
                           : hsbp::graph::read_edge_list_file(path);
      workload.name = path;
    } else {
      hsbp::generator::DcsbmParams params;
      params.num_vertices =
          static_cast<hsbp::graph::Vertex>(args.get_int("vertices", 800));
      params.num_communities =
          static_cast<std::int32_t>(args.get_int("communities", 8));
      params.num_edges = args.get_int("edges", 8000);
      params.ratio_within_between = args.get_double("ratio", 4.0);
      params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      workload = hsbp::generator::generate_dcsbm(params);
      workload.name = "dcsbm";
      std::printf("generated DCSBM: V=%d C=%d E=%lld r=%.1f\n",
                  params.num_vertices, params.num_communities,
                  static_cast<long long>(params.num_edges),
                  params.ratio_within_between);
    }

    hsbp::sbp::SbpConfig config;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    config.hybrid_fraction = args.get_double("fraction", 0.15);
    const int runs = static_cast<int>(args.get_int("runs", 3));

    std::vector<hsbp::eval::ExperimentRow> rows;
    for (const auto variant :
         {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid,
          hsbp::sbp::Variant::AsyncGibbs,
          hsbp::sbp::Variant::BatchedGibbs}) {
      rows.push_back(
          hsbp::eval::run_experiment(workload, variant, config, runs));
      std::printf("%s done (%.2fs total)\n", rows.back().algorithm.c_str(),
                  rows.back().total_seconds);
    }

    std::printf("\n-- quality --\n");
    hsbp::eval::print_quality_table(rows, std::cout);
    std::printf("\n-- runtime (totals over %d runs; speedups vs SBP) --\n",
                runs);
    hsbp::eval::print_speedup_table(rows, std::cout);
    std::printf("\n-- MCMC iterations --\n");
    hsbp::eval::print_iteration_table(rows, std::cout);

    if (args.get_bool("influence", false)) {
      if (workload.graph.num_vertices() <= 512) {
        const std::int32_t blocks =
            workload.ground_truth.empty()
                ? 1
                : 1 + *std::max_element(workload.ground_truth.begin(),
                                        workload.ground_truth.end());
        if (blocks > 1) {
          const auto influence = hsbp::sbp::total_influence(
              workload.graph, workload.ground_truth, blocks, config.beta);
          std::printf(
              "\ntotal influence alpha = %.3f "
              "(async Gibbs mixes rapidly when alpha < 1)\n",
              influence.alpha);
        }
      } else {
        std::printf(
            "\n(influence skipped: O(V^2 C^3) is intractable at V=%d — "
            "the very point of the paper's degree heuristic)\n",
            workload.graph.num_vertices());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
