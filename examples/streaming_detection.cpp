/// \file streaming_detection.cpp
/// \brief The Streaming Graph Challenge workload SBP was designed for
/// (Kao et al. 2017): the graph arrives in parts and the partition is
/// maintained incrementally, warm-starting each snapshot from the
/// previous answer. Compares the streamed result against fitting each
/// snapshot from scratch.
///
/// Usage:
///   streaming_detection [--vertices N] [--communities C] [--edges E]
///       [--ratio R] [--parts K] [--order edge|snowball]
///       [--algorithm sbp|asbp|hsbp|bsbp] [--seed S]
#include <cstdio>
#include <stdexcept>
#include <string>

#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sbp/streaming.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  try {
    const hsbp::util::Args args(argc, argv);

    hsbp::generator::DcsbmParams params;
    params.num_vertices =
        static_cast<hsbp::graph::Vertex>(args.get_int("vertices", 800));
    params.num_communities =
        static_cast<std::int32_t>(args.get_int("communities", 8));
    params.num_edges = args.get_int("edges", 8000);
    params.ratio_within_between = args.get_double("ratio", 4.0);
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    const int parts = static_cast<int>(args.get_int("parts", 4));
    const std::string order_name = args.get_string("order", "edge");
    const auto order = order_name == "edge"
                           ? hsbp::generator::StreamingOrder::EdgeSampling
                       : order_name == "snowball"
                           ? hsbp::generator::StreamingOrder::Snowball
                           : throw std::invalid_argument(
                                 "--order must be edge|snowball");

    hsbp::sbp::SbpConfig config;
    config.seed = params.seed;
    const std::string algo = args.get_string("algorithm", "hsbp");
    if (algo == "sbp") config.variant = hsbp::sbp::Variant::Metropolis;
    else if (algo == "asbp") config.variant = hsbp::sbp::Variant::AsyncGibbs;
    else if (algo == "hsbp") config.variant = hsbp::sbp::Variant::Hybrid;
    else if (algo == "bsbp") config.variant = hsbp::sbp::Variant::BatchedGibbs;
    else throw std::invalid_argument("unknown --algorithm " + algo);

    std::printf("generating DCSBM (V=%d C=%d E=%lld r=%.1f), %d %s parts\n",
                params.num_vertices, params.num_communities,
                static_cast<long long>(params.num_edges),
                params.ratio_within_between, parts, order_name.c_str());
    const auto generated = hsbp::generator::generate_dcsbm(params);
    const auto stream = hsbp::generator::streaming_snapshots(
        generated, parts, order, params.seed + 1);

    // Streamed: warm-start each part from the previous partition.
    hsbp::util::Timer streamed_timer;
    const auto streamed =
        hsbp::sbp::run_streaming(stream.snapshots, config);
    const double streamed_seconds = streamed_timer.elapsed();

    // Cold: fit every snapshot from scratch (what streaming avoids).
    hsbp::util::Timer cold_timer;
    std::vector<hsbp::sbp::SbpResult> cold;
    for (const auto& snapshot : stream.snapshots) {
      cold.push_back(hsbp::sbp::run(snapshot, config));
    }
    const double cold_seconds = cold_timer.elapsed();

    hsbp::util::Table table({"part", "V", "E", "warm_blocks", "warm_NMI",
                             "cold_blocks", "cold_NMI"});
    for (std::size_t i = 0; i < stream.snapshots.size(); ++i) {
      // Score against the ground truth restricted to arrived vertices.
      const auto arrived = static_cast<std::size_t>(
          stream.snapshots[i].num_vertices());
      const std::vector<std::int32_t> truth(
          stream.ground_truth.begin(),
          stream.ground_truth.begin() + static_cast<std::ptrdiff_t>(arrived));
      table.row()
          .cell(static_cast<std::int64_t>(i + 1))
          .cell(static_cast<std::int64_t>(stream.snapshots[i].num_vertices()))
          .cell(stream.snapshots[i].num_edges())
          .cell(static_cast<std::int64_t>(streamed.snapshots[i].num_blocks))
          .cell(hsbp::metrics::nmi(truth, streamed.snapshots[i].assignment),
                3)
          .cell(static_cast<std::int64_t>(cold[i].num_blocks))
          .cell(hsbp::metrics::nmi(truth, cold[i].assignment), 3);
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "streamed (warm-start) total: %.2fs | from-scratch total: %.2fs\n",
        streamed_seconds, cold_seconds);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
