#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace hsbp::graph {
namespace {

std::vector<Vertex> sorted(std::span<const Vertex> values) {
  std::vector<Vertex> out(values.begin(), values.end());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.num_self_loops(), 0);
  EXPECT_TRUE(g.edges().empty());
}

TEST(Graph, VerticesWithoutEdges) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.out_neighbors(v).empty());
    EXPECT_TRUE(g.in_neighbors(v).empty());
    EXPECT_EQ(g.degree(v), 0);
  }
}

TEST(Graph, SmallDirectedGraph) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(sorted(g.out_neighbors(0)), (std::vector<Vertex>{1, 2}));
  EXPECT_EQ(sorted(g.in_neighbors(0)), (std::vector<Vertex>{2}));
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 1);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.out_degree(2), 1);
  EXPECT_EQ(g.in_degree(2), 2);
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_self_loops(), 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 1);
  EXPECT_EQ(g.degree(0), 3);  // self-loop contributes out + in
}

TEST(Graph, ParallelEdgesKeepMultiplicity) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.in_degree(1), 3);
  EXPECT_EQ(g.out_neighbors(0).size(), 3u);
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> edges = {{2, 0}, {0, 1}, {1, 1}, {0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  auto out = g.edges();
  auto expected = edges;
  std::sort(out.begin(), out.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST(Graph, RejectsOutOfRangeEdges) {
  const std::vector<Edge> bad1 = {{0, 3}};
  EXPECT_THROW(Graph::from_edges(3, bad1), std::invalid_argument);
  const std::vector<Edge> bad2 = {{-1, 0}};
  EXPECT_THROW(Graph::from_edges(3, bad2), std::invalid_argument);
}

TEST(Graph, RejectsNegativeVertexCount) {
  EXPECT_THROW(Graph::from_edges(-1, {}), std::invalid_argument);
}

TEST(GraphBuilder, GrowsVertexCount) {
  GraphBuilder builder;
  builder.add_edge(0, 5).add_edge(3, 1);
  EXPECT_EQ(builder.num_vertices(), 6);
  EXPECT_EQ(builder.num_edges(), 2u);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphBuilder, ReserveKeepsIsolatedVertices) {
  GraphBuilder builder;
  builder.add_edge(0, 1).reserve_vertices(10);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.degree(9), 0);
}

TEST(GraphBuilder, ReserveNeverShrinks) {
  GraphBuilder builder(8);
  builder.reserve_vertices(3);
  EXPECT_EQ(builder.num_vertices(), 8);
}

TEST(GraphBuilder, RejectsNegativeEndpoints) {
  GraphBuilder builder;
  EXPECT_THROW(builder.add_edge(-1, 0), std::invalid_argument);
  EXPECT_THROW(builder.add_edge(0, -2), std::invalid_argument);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder builder;
  builder.add_edge(0, 1);
  const Graph first = builder.build();
  builder.add_edge(1, 2);
  const Graph second = builder.build();
  EXPECT_EQ(first.num_edges(), 1);
  EXPECT_EQ(second.num_edges(), 2);
}

TEST(Graph, DegreeSumEqualsTwiceEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 2}, {3, 0}, {1, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EdgeCount total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

}  // namespace
}  // namespace hsbp::graph
