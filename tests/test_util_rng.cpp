#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace hsbp::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(5);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(5);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, ZeroSeedProducesNonZeroOutput) {
  Rng rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= (rng.next_u64() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_int(bound), bound);
    }
  }
}

TEST(Rng, UniformIntBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(31);
  constexpr std::uint64_t buckets = 10;
  constexpr int n = 100000;
  std::array<int, buckets> counts{};
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(buckets)];
  // Chi-square with 9 dof: 99.9th percentile ≈ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / buckets;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, UniformBetweenInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteZeroWeightNeverDrawn) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.discrete(weights), 1u);
}

TEST(Rng, DiscreteSingleElement) {
  Rng rng(29);
  const std::vector<double> weights = {2.5};
  EXPECT_EQ(rng.discrete(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<std::int32_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng rng(41);
  std::vector<std::int32_t> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::int32_t> one = {7};
  rng.shuffle(one);
  EXPECT_EQ(one, (std::vector<std::int32_t>{7}));
}

TEST(RngPool, StreamsAreIndependentAndDeterministic) {
  RngPool a(5, 4);
  RngPool b(5, 4);
  EXPECT_EQ(a.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.stream(s).next_u64(), b.stream(s).next_u64());
  }
  RngPool c(5, 4);
  EXPECT_NE(c.stream(0).next_u64(), c.stream(1).next_u64());
}

TEST(RngPool, StreamsIndependentOfPoolSize) {
  RngPool small(5, 2);
  RngPool large(5, 8);
  EXPECT_EQ(small.stream(0).next_u64(), large.stream(0).next_u64());
  EXPECT_EQ(small.stream(1).next_u64(), large.stream(1).next_u64());
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, LemireIsUnbiasedEnough) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 2654435761ULL + 1);
  std::vector<int> counts(bound, 0);
  const int n = static_cast<int>(bound) * 2000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(bound)];
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 99.9th percentile of chi-square(k-1) is below k + 4*sqrt(2k) + 10
  // for these sizes; loose but catches gross bias.
  const double dof = static_cast<double>(bound - 1);
  EXPECT_LT(chi2, dof + 4.0 * std::sqrt(2.0 * dof) + 12.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 7, 16, 33, 100));

}  // namespace
}  // namespace hsbp::util
