#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>

#include "dist/comm.hpp"
#include "dist/dist_sbp.hpp"
#include "dist/partition.hpp"
#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"

namespace hsbp::dist {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 6;
  p.num_edges = 3000;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

// ---------------------------------------------------------------- comm

TEST(CommLedger, AccumulatesBytesByKind) {
  CommLedger ledger;
  EXPECT_EQ(ledger.total_bytes(), 0);
  ledger.record(CollectiveKind::AllGatherUpdates, 100, 4);
  ledger.record(CollectiveKind::AllGatherUpdates, 50, 4);
  ledger.record(CollectiveKind::RebuildAllReduce, 200, 4);
  EXPECT_EQ(ledger.total_bytes(), 350);
  EXPECT_EQ(ledger.bytes_of(CollectiveKind::AllGatherUpdates), 150);
  EXPECT_EQ(ledger.bytes_of(CollectiveKind::RebuildAllReduce), 200);
  EXPECT_EQ(ledger.bytes_of(CollectiveKind::AssignmentBcast), 0);
  EXPECT_EQ(ledger.collective_count(), 3u);
}

TEST(CommLedger, CollectiveNames) {
  EXPECT_STREQ(collective_name(CollectiveKind::AllGatherUpdates),
               "allgather-updates");
  EXPECT_STREQ(collective_name(CollectiveKind::RebuildAllReduce),
               "rebuild-allreduce");
  EXPECT_STREQ(collective_name(CollectiveKind::AssignmentBcast),
               "assignment-bcast");
}

// ----------------------------------------------------------- partition

class StrategySweep : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(StrategySweep, EveryVertexAssignedToExactlyOneRank) {
  const auto g = planted(1);
  const auto partition = partition_vertices(g.graph, 4, GetParam());
  EXPECT_EQ(partition.ranks, 4);
  std::size_t members_total = 0;
  for (int rank = 0; rank < 4; ++rank) {
    for (const Vertex v : partition.members[static_cast<std::size_t>(rank)]) {
      EXPECT_EQ(partition.rank_of[static_cast<std::size_t>(v)], rank);
    }
    members_total += partition.members[static_cast<std::size_t>(rank)].size();
  }
  EXPECT_EQ(members_total, static_cast<std::size_t>(g.graph.num_vertices()));
}

TEST_P(StrategySweep, DegreeLoadsSumToTotalDegree) {
  const auto g = planted(2);
  const auto partition = partition_vertices(g.graph, 3, GetParam());
  graph::EdgeCount total = 0;
  for (const auto load : partition.degree_load) total += load;
  EXPECT_EQ(total, 2 * g.graph.num_edges());
}

TEST_P(StrategySweep, SingleRankTakesEverything) {
  const auto g = planted(3);
  const auto partition = partition_vertices(g.graph, 1, GetParam());
  EXPECT_EQ(partition.members[0].size(),
            static_cast<std::size_t>(g.graph.num_vertices()));
  EXPECT_DOUBLE_EQ(partition.imbalance(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values(PartitionStrategy::Range,
                                           PartitionStrategy::RoundRobin,
                                           PartitionStrategy::DegreeBalanced));

TEST(Partition, DegreeBalancedBeatsRangeOnSkewedGraph) {
  // A hub-heavy graph sorted by id: range partitioning piles the load
  // onto rank 0; LPT spreads it.
  std::vector<Edge> edges;
  for (Vertex hub = 0; hub < 4; ++hub) {
    for (Vertex leaf = 4; leaf < 64; ++leaf) {
      edges.emplace_back(hub, leaf);
    }
  }
  const Graph g = Graph::from_edges(64, edges);
  const auto range = partition_vertices(g, 4, PartitionStrategy::Range);
  const auto balanced =
      partition_vertices(g, 4, PartitionStrategy::DegreeBalanced);
  EXPECT_LT(balanced.imbalance(), range.imbalance());
  EXPECT_NEAR(balanced.imbalance(), 1.0, 0.1);
}

TEST(Partition, RejectsZeroRanks) {
  const auto g = planted(4);
  EXPECT_THROW(partition_vertices(g.graph, 0, PartitionStrategy::Range),
               std::invalid_argument);
}

TEST(Partition, StrategyNames) {
  EXPECT_STREQ(strategy_name(PartitionStrategy::Range), "range");
  EXPECT_STREQ(strategy_name(PartitionStrategy::RoundRobin), "round-robin");
  EXPECT_STREQ(strategy_name(PartitionStrategy::DegreeBalanced),
               "degree-balanced");
}

// --------------------------------------------------------------- D-SBP

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, RecoversPlantedPartition) {
  const auto g = planted(5);
  DistributedConfig config;
  config.ranks = GetParam();
  config.base.seed = 3;
  const auto out = run_distributed(g.graph, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, out.result.assignment), 0.8)
      << "ranks=" << GetParam();
  // Every rank did some work (degree-balanced partition).
  std::int64_t total_accepted = 0;
  for (const auto a : out.rank_accepted) total_accepted += a;
  EXPECT_EQ(total_accepted, out.result.stats.accepted_moves);
  EXPECT_GT(out.comm.total_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 4, 8));

TEST(Distributed, CommunicationLedgerIsPlausible) {
  const auto g = planted(6);
  DistributedConfig config;
  config.ranks = 4;
  config.base.seed = 4;
  const auto out = run_distributed(g.graph, config);
  // Every pass logs one allgather + one rebuild; every outer iteration
  // one broadcast.
  const auto& stats = out.result.stats;
  std::int64_t allgathers = 0, rebuilds = 0, bcasts = 0;
  for (const auto& record : out.comm.records()) {
    switch (record.kind) {
      case CollectiveKind::AllGatherUpdates: ++allgathers; break;
      case CollectiveKind::RebuildAllReduce: ++rebuilds; break;
      case CollectiveKind::AssignmentBcast: ++bcasts; break;
    }
  }
  EXPECT_EQ(allgathers, stats.mcmc_iterations);
  EXPECT_EQ(rebuilds, stats.mcmc_iterations);
  EXPECT_EQ(bcasts, stats.outer_iterations);
  // Update volume = accepted moves × 8 bytes.
  EXPECT_EQ(out.comm.bytes_of(CollectiveKind::AllGatherUpdates),
            stats.accepted_moves * kUpdateBytes);
}

TEST(Distributed, SingleRankMatchesQualityOfAsbp) {
  const auto g = planted(7);
  DistributedConfig config;
  config.ranks = 1;
  config.base.seed = 5;
  const auto dist_out = run_distributed(g.graph, config);

  sbp::SbpConfig async_config;
  async_config.variant = sbp::Variant::AsyncGibbs;
  async_config.seed = 5;
  const auto async_out = sbp::run(g.graph, async_config);

  const double dist_nmi =
      metrics::nmi(g.ground_truth, dist_out.result.assignment);
  const double async_nmi =
      metrics::nmi(g.ground_truth, async_out.assignment);
  EXPECT_NEAR(dist_nmi, async_nmi, 0.15);
}

TEST(Distributed, Validation) {
  const auto g = planted(8);
  DistributedConfig config;
  config.ranks = 0;
  EXPECT_THROW(run_distributed(g.graph, config), std::invalid_argument);
  const Graph empty;
  config.ranks = 2;
  EXPECT_THROW(run_distributed(empty, config), std::invalid_argument);
}

TEST(Distributed, ResultIsADensePartition) {
  const auto g = planted(9);
  DistributedConfig config;
  config.ranks = 4;
  config.base.seed = 6;
  const auto out = run_distributed(g.graph, config);
  std::set<std::int32_t> labels(out.result.assignment.begin(),
                                out.result.assignment.end());
  EXPECT_EQ(static_cast<blockmodel::BlockId>(labels.size()),
            out.result.num_blocks);
  EXPECT_EQ(*labels.begin(), 0);
}

}  // namespace
}  // namespace hsbp::dist
