#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hsbp::util {
namespace {

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v = {4.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample variance (n-1): sum of squares = 32, / 7.
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_{1/2}(a, a) = 1/2 for any a.
  for (const double a : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(regularized_incomplete_beta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, KnownValue) {
  // I_x(2, 2) = x^2 (3 - 2x).
  for (const double x : {0.2, 0.4, 0.6, 0.8}) {
    EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, x),
                x * x * (3.0 - 2.0 * x), 1e-10);
  }
}

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const Correlation c = pearson(x, y);
  EXPECT_NEAR(c.r, 1.0, 1e-12);
  EXPECT_NEAR(c.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(c.slope, 2.0, 1e-12);
  EXPECT_NEAR(c.intercept, 0.0, 1e-12);
  EXPECT_NEAR(c.p_value, 0.0, 1e-9);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  const Correlation c = pearson(x, y);
  EXPECT_NEAR(c.r, -1.0, 1e-12);
  EXPECT_NEAR(c.slope, -2.0, 1e-12);
}

TEST(Pearson, ConstantInputIsDegenerate) {
  const std::vector<double> x = {3, 3, 3, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  const Correlation c = pearson(x, y);
  EXPECT_EQ(c.r, 0.0);
  EXPECT_EQ(c.p_value, 1.0);
}

TEST(Pearson, UncorrelatedNoiseHasHighPValue) {
  Rng rng(101);
  std::vector<double> x(50), y(50);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const Correlation c = pearson(x, y);
  EXPECT_LT(c.r_squared, 0.2);
  EXPECT_GT(c.p_value, 0.001);
}

TEST(Pearson, NoisyLinearRelationshipDetected) {
  Rng rng(202);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = 3.0 * x[i] + 0.1 * (rng.uniform() - 0.5);
  }
  const Correlation c = pearson(x, y);
  EXPECT_GT(c.r_squared, 0.95);
  EXPECT_LT(c.p_value, 1e-10);
  EXPECT_NEAR(c.slope, 3.0, 0.2);
}

TEST(Pearson, TooFewPointsReturnsDefault) {
  const std::vector<double> one = {1.0};
  const Correlation c = pearson(one, one);
  EXPECT_EQ(c.r, 0.0);
  EXPECT_EQ(c.p_value, 1.0);
}

TEST(Pearson, PValueMatchesKnownTable) {
  // n=5, r=0.9 → t = 0.9·sqrt(3/0.19) ≈ 3.576, two-sided p ≈ 0.0374.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1.0, 2.5, 2.0, 4.5, 4.0};
  const Correlation c = pearson(x, y);
  // Recompute expected p from this sample's own r.
  const double t = c.r * std::sqrt(3.0 / (1.0 - c.r_squared));
  const double p =
      regularized_incomplete_beta(1.5, 0.5, 3.0 / (3.0 + t * t));
  EXPECT_NEAR(c.p_value, p, 1e-12);
  EXPECT_GT(c.p_value, 0.0);
  EXPECT_LT(c.p_value, 1.0);
}

}  // namespace
}  // namespace hsbp::util
