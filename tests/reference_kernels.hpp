/// \file reference_kernels.hpp
/// \brief Pre-optimization transcriptions of the MCMC hot-path kernels,
/// used only by the equivalence tests.
///
/// Each function here is the implementation that shipped before the
/// allocation-free rewrite (scratch arenas, epoch-stamped dedup, xlogx
/// table): allocate-per-call gather with O(k²) linear-scan accumulation,
/// vertex_move_delta with linear-scan cell dedup and live std::log,
/// MoveDelta::new_value via a cell-list scan, the Hastings correction on
/// top of it, and merge_delta_mdl with live std::log. The optimized
/// kernels must be *bit-identical* to these — that is the contract that
/// makes the rewrite a pure performance change — so the tests compare
/// results with ==, not EXPECT_NEAR.
///
/// One deliberate departure from the pre-rewrite code: floating-point
/// term sums use the canonical strided-4 accumulation order of
/// util/simd.hpp (lane[i mod 4] += term[i]; (l0+l1)+(l2+l3)) instead of
/// a single serial chain. The canonical order is part of the kernel
/// contract since the SIMD layer (DESIGN §13): it is the unique order
/// that a 4-lane vector accumulator, two 2-lane accumulators, and four
/// scalar registers all reproduce exactly, so scalar/SSE2/AVX2 dispatch
/// levels and these references agree bit-for-bit. Per-term arithmetic
/// is unchanged.
///
/// Deliberately header-only: the reference code must not be linked into
/// the library, only into test binaries.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "graph/graph.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

namespace hsbp::reference {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::CellDelta;
using blockmodel::Count;
using blockmodel::MoveDelta;
using blockmodel::NeighborBlockCounts;

/// Pre-table xlogx: live std::log on every call.
inline double xlogx(double x) noexcept {
  assert(x >= 0.0);
  return x > 0.0 ? x * std::log(x) : 0.0;
}

/// Pre-arena gather: fresh vectors per call, O(k) linear scan per
/// neighbor to find its block's slot (O(k²) worst case per vertex).
template <typename View>
NeighborBlockCounts gather_neighbor_blocks_view(const graph::Graph& graph,
                                                const View& view,
                                                graph::Vertex v) {
  const auto accumulate = [](std::vector<std::pair<BlockId, Count>>& counts,
                             BlockId block) {
    for (auto& [b, c] : counts) {
      if (b == block) {
        ++c;
        return;
      }
    }
    counts.emplace_back(block, 1);
  };

  NeighborBlockCounts nb;
  nb.degree_out = graph.out_degree(v);
  nb.degree_in = graph.in_degree(v);
  nb.out.reserve(8);
  nb.in.reserve(8);
  for (const graph::Vertex u : graph.out_neighbors(v)) {
    if (u == v) {
      ++nb.self_loops;
      continue;
    }
    accumulate(nb.out, view(u));
  }
  for (const graph::Vertex u : graph.in_neighbors(v)) {
    if (u == v) continue;  // counted once via the out pass
    accumulate(nb.in, view(u));
  }
  return nb;
}

/// Pre-index post-move cell value: rescans the whole cell-delta list.
inline Count new_value(const Blockmodel& b, const MoveDelta& delta,
                       BlockId row, BlockId col) {
  Count value = b.matrix().get(row, col);
  for (const CellDelta& cd : delta.cell_deltas) {
    if (cd.row == row && cd.col == col) value += cd.delta;
  }
  return value;
}

/// Pre-arena ΔMDL: fresh cell vector, linear-scan dedup, live logs.
inline MoveDelta vertex_move_delta(const Blockmodel& b, BlockId from,
                                   BlockId to,
                                   const NeighborBlockCounts& nb) {
  assert(from != to);
  MoveDelta result;
  auto& cells = result.cell_deltas;
  cells.reserve(2 * (nb.out.size() + nb.in.size()) + 4);

  // Canonical cell order (see the file docblock): non-corner out pairs,
  // non-corner in pairs, then the nonzero corner cells. Out-edges touch
  // only rows from/to and in-edges only columns from/to, so the four
  // corners {from,to}×{from,to} are the only cells where contributions
  // overlap; they are collected in scalar accumulators.
  Count ko_f = 0, ko_t = 0, ki_f = 0, ki_t = 0;
  // Out-edges v→u (u keeps its block t): (from,t) loses, (to,t) gains.
  for (const auto& [t, k] : nb.out) {
    if (t == from) {
      ko_f = k;
    } else if (t == to) {
      ko_t = k;
    } else {
      cells.push_back({from, t, -k});
      cells.push_back({to, t, +k});
    }
  }
  // In-edges u→v: (t,from) loses, (t,to) gains.
  for (const auto& [t, k] : nb.in) {
    if (t == from) {
      ki_f = k;
    } else if (t == to) {
      ki_t = k;
    } else {
      cells.push_back({t, from, -k});
      cells.push_back({t, to, +k});
    }
  }
  // Self-loops move diagonally.
  const Count self = nb.self_loops;
  const Count d_ff = -(ko_f + ki_f + self);
  const Count d_tf = ko_f - ki_t;
  const Count d_ft = ki_f - ko_t;
  const Count d_tt = ko_t + ki_t + self;
  if (d_ff != 0) cells.push_back({from, from, d_ff});
  if (d_tf != 0) cells.push_back({to, from, d_tf});
  if (d_ft != 0) cells.push_back({from, to, d_ft});
  if (d_tt != 0) cells.push_back({to, to, d_tt});

  // Canonical strided-4 sum over the cells, in cell order (see the
  // file docblock). Every listed cell has a nonzero delta.
  double cell_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t cell_idx = 0;
  for (const CellDelta& cd : cells) {
    const Count old_value = b.matrix().get(cd.row, cd.col);
    const Count new_cell = old_value + cd.delta;
    assert(new_cell >= 0);
    cell_lanes[cell_idx & 3] += xlogx(static_cast<double>(new_cell)) -
                                xlogx(static_cast<double>(old_value));
    ++cell_idx;
  }
  const double delta_cells =
      (cell_lanes[0] + cell_lanes[1]) + (cell_lanes[2] + cell_lanes[3]);

  const auto degree_delta = [](Count before_from, Count before_to, Count k) {
    return xlogx(static_cast<double>(before_from - k)) -
           xlogx(static_cast<double>(before_from)) +
           xlogx(static_cast<double>(before_to + k)) -
           xlogx(static_cast<double>(before_to));
  };
  const double delta_degrees =
      degree_delta(b.degree_out(from), b.degree_out(to), nb.degree_out) +
      degree_delta(b.degree_in(from), b.degree_in(to), nb.degree_in);

  // ΔL = Δcells − Δdegrees; ΔMDL = −ΔL (model term unchanged).
  result.delta_mdl = -(delta_cells - delta_degrees);
  return result;
}

/// Pre-arena Hastings correction: per-cell lookups through the
/// scanning new_value above.
inline double hastings_correction(const Blockmodel& b,
                                  const NeighborBlockCounts& nb, BlockId from,
                                  BlockId to, const MoveDelta& delta) {
  assert(from != to);
  const double c = static_cast<double>(b.num_blocks());
  const Count mover_degree = nb.degree_total();

  // Canonical strided-4 sums over the out-then-in neighbor terms (see
  // the file docblock).
  double fwd_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  double bwd_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t idx = 0;

  const auto accumulate = [&](BlockId t, Count k) {
    const double kd = static_cast<double>(k);

    // Forward: pre-move matrix and degrees.
    const double fwd_num = static_cast<double>(b.matrix().get(t, to) +
                                               b.matrix().get(to, t)) +
                           1.0;
    const double fwd_den = static_cast<double>(b.degree_total(t)) + c;
    fwd_lanes[idx & 3] += kd * fwd_num / fwd_den;

    // Backward: post-move matrix and degrees (only from/to degrees move).
    const double bwd_num = static_cast<double>(new_value(b, delta, t, from) +
                                               new_value(b, delta, from, t)) +
                           1.0;
    Count d_t = b.degree_total(t);
    if (t == from) d_t -= mover_degree;
    if (t == to) d_t += mover_degree;
    const double bwd_den = static_cast<double>(d_t) + c;
    bwd_lanes[idx & 3] += kd * bwd_num / bwd_den;
    ++idx;
  };

  for (const auto& [t, k] : nb.out) accumulate(t, k);
  for (const auto& [t, k] : nb.in) accumulate(t, k);

  const double forward =
      (fwd_lanes[0] + fwd_lanes[1]) + (fwd_lanes[2] + fwd_lanes[3]);
  const double backward =
      (bwd_lanes[0] + bwd_lanes[1]) + (bwd_lanes[2] + bwd_lanes[3]);
  if (forward <= 0.0) return 1.0;  // isolated vertex: symmetric proposal
  return backward / forward;
}

/// Pre-table merge ΔMDL: live std::log on every term.
inline double merge_delta_mdl(const Blockmodel& b, BlockId from, BlockId to,
                              graph::Vertex num_vertices,
                              graph::EdgeCount num_edges) {
  assert(from != to);
  const blockmodel::DictTransposeMatrix& m = b.matrix();

  // Canonical strided-4 sum over the row-then-column fold terms; the
  // corner term is one scalar expression added after the lane combine
  // (see the file docblock).
  double fold_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t fold_idx = 0;

  // Off-corner cells of row `from` fold into row `to`.
  for (const auto& [t, value] : m.row(from)) {
    if (t == from || t == to) continue;
    const Count existing = m.get(to, t);
    fold_lanes[fold_idx & 3] += xlogx(static_cast<double>(existing + value)) -
                                xlogx(static_cast<double>(existing)) -
                                xlogx(static_cast<double>(value));
    ++fold_idx;
  }
  // Off-corner cells of column `from` fold into column `to`.
  for (const auto& [t, value] : m.col(from)) {
    if (t == from || t == to) continue;
    const Count existing = m.get(t, to);
    fold_lanes[fold_idx & 3] += xlogx(static_cast<double>(existing + value)) -
                                xlogx(static_cast<double>(existing)) -
                                xlogx(static_cast<double>(value));
    ++fold_idx;
  }
  const double folded =
      (fold_lanes[0] + fold_lanes[1]) + (fold_lanes[2] + fold_lanes[3]);
  // The four corner cells collapse into (to, to).
  const Count ff = m.get(from, from);
  const Count ft = m.get(from, to);
  const Count tf = m.get(to, from);
  const Count tt = m.get(to, to);
  const double corner = xlogx(static_cast<double>(tt + ff + ft + tf)) -
                        xlogx(static_cast<double>(tt)) -
                        xlogx(static_cast<double>(ff)) -
                        xlogx(static_cast<double>(ft)) -
                        xlogx(static_cast<double>(tf));
  const double delta_cells = folded + corner;

  // Degree terms: d(to) absorbs d(from).
  const auto merge_degrees = [](Count a, Count into) {
    return xlogx(static_cast<double>(into + a)) -
           xlogx(static_cast<double>(into)) - xlogx(static_cast<double>(a));
  };
  const double delta_degrees =
      merge_degrees(b.degree_out(from), b.degree_out(to)) +
      merge_degrees(b.degree_in(from), b.degree_in(to));

  const double delta_likelihood = delta_cells - delta_degrees;

  const double delta_model =
      blockmodel::model_description_length(num_vertices, num_edges,
                                           b.num_blocks() - 1) -
      blockmodel::model_description_length(num_vertices, num_edges,
                                           b.num_blocks());

  return delta_model - delta_likelihood;
}

/// Pre-arena evaluate_vertex, for whole-chain equivalence: the proposal
/// step is the shared production code (it draws from the RNG), so RNG
/// consumption matches the optimized path exactly as long as ΔMDL and
/// the correction are bit-identical.
template <typename View>
sbp::VertexOutcome evaluate_vertex(const graph::Graph& graph,
                                   const Blockmodel& b, const View& view,
                                   graph::Vertex v,
                                   std::int32_t source_block_size, double beta,
                                   util::Rng& rng) {
  sbp::VertexOutcome outcome;
  const BlockId from = view(v);
  if (source_block_size <= 1) return outcome;  // would empty the block

  const NeighborBlockCounts nb =
      reference::gather_neighbor_blocks_view(graph, view, v);
  const BlockId to = sbp::propose_block(b, nb, from, false, rng);
  if (to == from) return outcome;

  const MoveDelta delta = reference::vertex_move_delta(b, from, to, nb);
  const double correction =
      reference::hastings_correction(b, nb, from, to, delta);
  const double acceptance = std::exp(-beta * delta.delta_mdl) * correction;
  if (acceptance >= 1.0 || rng.uniform() < acceptance) {
    outcome.moved = true;
    outcome.to = to;
    outcome.delta_mdl = delta.delta_mdl;
  }
  return outcome;
}

}  // namespace hsbp::reference
