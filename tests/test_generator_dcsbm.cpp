#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "generator/dcsbm.hpp"
#include "generator/power_law.hpp"
#include "graph/degree.hpp"
#include "util/rng.hpp"

namespace hsbp::generator {
namespace {

DcsbmParams base_params() {
  DcsbmParams p;
  p.num_vertices = 500;
  p.num_communities = 5;
  p.num_edges = 4000;
  p.ratio_within_between = 3.0;
  p.degree_exponent = 2.5;
  p.min_degree = 1;
  p.max_degree = 60;
  p.seed = 11;
  return p;
}

TEST(PowerLawSampler, SamplesStayInRange) {
  util::Rng rng(3);
  PowerLawSampler sampler(2, 50, 2.5);
  for (int i = 0; i < 10000; ++i) {
    const auto d = sampler.sample(rng);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 50);
  }
}

TEST(PowerLawSampler, EmpiricalMeanMatchesAnalytic) {
  util::Rng rng(5);
  PowerLawSampler sampler(1, 100, 2.2);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(sampler.sample(rng));
  EXPECT_NEAR(sum / n, sampler.mean(), 0.05 * sampler.mean());
}

TEST(PowerLawSampler, ExponentZeroIsUniform) {
  util::Rng rng(7);
  PowerLawSampler sampler(1, 4, 0.0);
  std::array<int, 5> counts{};
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(sampler.sample(rng))];
  for (int v = 1; v <= 4; ++v) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(v)] / static_cast<double>(n),
                0.25, 0.02);
  }
}

TEST(PowerLawSampler, SingletonSupport) {
  util::Rng rng(9);
  PowerLawSampler sampler(7, 7, 3.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 7);
  EXPECT_DOUBLE_EQ(sampler.mean(), 7.0);
}

TEST(PowerLawSampler, RejectsBadRange) {
  EXPECT_THROW(PowerLawSampler(0, 10, 2.0), std::invalid_argument);
  EXPECT_THROW(PowerLawSampler(5, 4, 2.0), std::invalid_argument);
}

TEST(Dcsbm, ProducesRequestedCounts) {
  const auto g = generate_dcsbm(base_params());
  EXPECT_EQ(g.graph.num_vertices(), 500);
  EXPECT_EQ(g.graph.num_edges(), 4000);
  EXPECT_EQ(g.ground_truth.size(), 500u);
}

TEST(Dcsbm, GroundTruthLabelsValidAndAllUsed) {
  const auto g = generate_dcsbm(base_params());
  std::set<std::int32_t> used;
  for (const auto label : g.ground_truth) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
    used.insert(label);
  }
  EXPECT_EQ(used.size(), 5u);  // every community non-empty
}

TEST(Dcsbm, DeterministicForFixedSeed) {
  const auto a = generate_dcsbm(base_params());
  const auto b = generate_dcsbm(base_params());
  EXPECT_EQ(a.ground_truth, b.ground_truth);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

TEST(Dcsbm, DifferentSeedsDiffer) {
  auto p = base_params();
  const auto a = generate_dcsbm(p);
  p.seed = 12;
  const auto b = generate_dcsbm(p);
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(Dcsbm, ValidationErrors) {
  auto p = base_params();
  p.num_vertices = 0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.num_communities = 0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.num_communities = p.num_vertices + 1;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.num_edges = 0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.ratio_within_between = 0.0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.min_degree = 0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.max_degree = 0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
  p = base_params();
  p.community_size_exponent = -1.0;
  EXPECT_THROW(generate_dcsbm(p), std::invalid_argument);
}

TEST(Dcsbm, SingleCommunityWorks) {
  auto p = base_params();
  p.num_communities = 1;
  const auto g = generate_dcsbm(p);
  EXPECT_EQ(g.graph.num_edges(), p.num_edges);
  for (const auto label : g.ground_truth) EXPECT_EQ(label, 0);
}

TEST(Dcsbm, HeterogeneousSizesSkewCommunitySizes) {
  auto p = base_params();
  p.num_vertices = 2000;
  p.community_size_exponent = 1.2;
  const auto g = generate_dcsbm(p);
  std::vector<int> sizes(5, 0);
  for (const auto label : g.ground_truth) ++sizes[static_cast<std::size_t>(label)];
  // Community 0 should be clearly larger than community 4.
  EXPECT_GT(sizes[0], 2 * sizes[4]);
}

TEST(Dcsbm, DegreeDistributionIsHeavyTailed) {
  auto p = base_params();
  p.num_vertices = 3000;
  p.num_edges = 30000;
  p.max_degree = 300;
  p.degree_exponent = 2.2;
  const auto g = generate_dcsbm(p);
  const auto degrees = graph::degree_sequence(g.graph);
  const auto max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  const double mean_degree =
      2.0 * static_cast<double>(g.graph.num_edges()) /
      static_cast<double>(g.graph.num_vertices());
  // Heavy tail: the max is far above the mean.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean_degree);
}

TEST(RealizedWithinRatio, PerfectlyAssortativeGraphIsInfinite) {
  const std::vector<graph::Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  const auto g = graph::Graph::from_edges(4, edges);
  const std::vector<std::int32_t> membership = {0, 0, 1, 1};
  EXPECT_TRUE(std::isinf(realized_within_ratio(g, membership)));
}

TEST(RealizedWithinRatio, HandComputedMix) {
  // 3 within, 1 between.
  const std::vector<graph::Edge> edges = {{0, 1}, {1, 0}, {0, 0}, {0, 2}};
  const auto g = graph::Graph::from_edges(3, edges);
  const std::vector<std::int32_t> membership = {0, 0, 1};
  EXPECT_DOUBLE_EQ(realized_within_ratio(g, membership), 3.0);
}

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, RealizedRatioTracksRequested) {
  auto p = base_params();
  p.num_vertices = 2000;
  p.num_edges = 20000;
  p.ratio_within_between = GetParam();
  const auto g = generate_dcsbm(p);
  const double realized = realized_within_ratio(g.graph, g.ground_truth);
  EXPECT_NEAR(realized, GetParam(), 0.25 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 3.0, 5.0, 10.0));

}  // namespace
}  // namespace hsbp::generator
