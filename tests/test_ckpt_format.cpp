// Checkpoint envelope format: round-trips, and rejection (with a clear
// diagnostic, never a crash) of corrupt, truncated, version-mismatched,
// wrong-kind, and wrong-graph files.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/atomic_file.hpp"
#include "ckpt/checkpoint.hpp"
#include "graph/graph.hpp"
#include "util/errors.hpp"

namespace hsbp::ckpt {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

void rewrite(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Asserts that `load` throws util::DataError whose message contains
/// `needle` — the "clear diagnostic" half of the rejection contract.
template <typename Fn>
void expect_rejected(Fn load, const std::string& needle) {
  try {
    load();
    FAIL() << "expected util::DataError containing '" << needle << "'";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

graph::Graph triangle_graph() {
  return graph::Graph::from_edges(4, {{{0, 1}, {1, 2}, {2, 0}, {3, 0}}});
}

SbpCheckpoint make_sbp_checkpoint(const graph::Graph& g) {
  SbpCheckpoint ckpt;
  ckpt.graph = fingerprint(g);
  ckpt.variant = 2;
  ckpt.seed = 42;
  ckpt.stats.outer_iterations = 7;
  ckpt.stats.mcmc_iterations = 31;
  ckpt.stats.proposals = 100;
  ckpt.stats.accepted_moves = 40;
  ckpt.stats.mcmc_seconds = 1.5;
  ckpt.stats.block_merge_seconds = 0.25;
  ckpt.stats.total_seconds = 2.0;
  ckpt.rng_streams = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  ckpt.search.upper = {{0, 1, 2, 3}, 4, 150.0};
  ckpt.search.mid = {{0, 1, 1, 0}, 2, 120.5};
  ckpt.search.have_mid = true;
  return ckpt;
}

TEST(Crc32, MatchesKnownVectors) {
  EXPECT_EQ(crc32(""), 0u);
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(CheckpointFormat, SbpRoundTrip) {
  const auto g = triangle_graph();
  const std::string path = temp_path("sbp_roundtrip.ckpt");
  const auto saved = make_sbp_checkpoint(g);
  save_sbp_checkpoint(path, saved);

  const auto loaded = load_sbp_checkpoint(path);
  EXPECT_EQ(loaded.graph, saved.graph);
  EXPECT_EQ(loaded.variant, saved.variant);
  EXPECT_EQ(loaded.seed, saved.seed);
  EXPECT_EQ(loaded.stats.outer_iterations, saved.stats.outer_iterations);
  EXPECT_EQ(loaded.stats.mcmc_iterations, saved.stats.mcmc_iterations);
  EXPECT_DOUBLE_EQ(loaded.stats.mcmc_seconds, saved.stats.mcmc_seconds);
  EXPECT_EQ(loaded.rng_streams, saved.rng_streams);
  EXPECT_EQ(loaded.search.upper.assignment, saved.search.upper.assignment);
  EXPECT_EQ(loaded.search.mid.assignment, saved.search.mid.assignment);
  EXPECT_DOUBLE_EQ(loaded.search.mid.mdl, saved.search.mid.mdl);
  EXPECT_TRUE(loaded.search.have_mid);
  EXPECT_FALSE(loaded.search.have_lower);
  EXPECT_FALSE(loaded.search.done);
  fs::remove(path);
}

TEST(CheckpointFormat, SampleRoundTrip) {
  const auto g = triangle_graph();
  const std::string path = temp_path("sample_roundtrip.ckpt");
  SampleCheckpoint saved;
  saved.graph = fingerprint(g);
  saved.variant = 1;
  saved.seed = 7;
  saved.sampler = 3;
  saved.fraction = 0.4;
  saved.stage = SampleStage::ExtrapolateDone;
  saved.sample_assignment = {0, 1};
  saved.sample_num_blocks = 2;
  saved.sample_mdl = 10.0;
  saved.full_assignment = {0, 1, 1, 0};
  saved.full_num_blocks = 2;
  saved.full_mdl = 25.5;
  saved.frontier_assigned = 1;
  saved.isolated_assigned = 1;
  save_sample_checkpoint(path, saved);

  const auto loaded = load_sample_checkpoint(path);
  EXPECT_EQ(loaded.graph, saved.graph);
  EXPECT_EQ(loaded.sampler, saved.sampler);
  EXPECT_DOUBLE_EQ(loaded.fraction, saved.fraction);
  EXPECT_EQ(loaded.stage, SampleStage::ExtrapolateDone);
  EXPECT_EQ(loaded.sample_assignment, saved.sample_assignment);
  EXPECT_EQ(loaded.full_assignment, saved.full_assignment);
  EXPECT_EQ(loaded.frontier_assigned, saved.frontier_assigned);
  EXPECT_EQ(loaded.isolated_assigned, saved.isolated_assigned);
  fs::remove(path);
}

TEST(CheckpointFormat, CorruptPayloadFailsCrc) {
  const auto g = triangle_graph();
  const std::string path = temp_path("corrupt.ckpt");
  save_sbp_checkpoint(path, make_sbp_checkpoint(g));

  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x5A;  // flip bits mid-payload
  rewrite(path, bytes);

  expect_rejected([&] { load_sbp_checkpoint(path); }, "CRC-32");
}

TEST(CheckpointFormat, TruncatedFileRejected) {
  const auto g = triangle_graph();
  const std::string path = temp_path("truncated.ckpt");
  save_sbp_checkpoint(path, make_sbp_checkpoint(g));

  std::string bytes = read_file(path);
  bytes.resize(bytes.size() - 7);
  rewrite(path, bytes);

  expect_rejected([&] { load_sbp_checkpoint(path); }, "truncated");
}

TEST(CheckpointFormat, SeverelyTruncatedFileRejected) {
  const std::string path = temp_path("stub.ckpt");
  rewrite(path, "HSBPCKPT");  // magic only, nothing after
  expect_rejected([&] { load_sbp_checkpoint(path); }, "truncated");
}

TEST(CheckpointFormat, BadMagicRejected) {
  const std::string path = temp_path("not_a.ckpt");
  rewrite(path, "definitely not a checkpoint file at all");
  expect_rejected([&] { load_sbp_checkpoint(path); }, "bad magic");
}

TEST(CheckpointFormat, VersionMismatchRejected) {
  const auto g = triangle_graph();
  const std::string path = temp_path("version.ckpt");
  save_sbp_checkpoint(path, make_sbp_checkpoint(g));

  // The u32 version sits immediately after the 8-byte magic
  // (little-endian); bump it to a future version.
  std::string bytes = read_file(path);
  bytes[8] = 99;
  rewrite(path, bytes);

  expect_rejected([&] { load_sbp_checkpoint(path); }, "format version 99");
}

TEST(CheckpointFormat, WrongKindRejected) {
  const auto g = triangle_graph();
  const std::string path = temp_path("kind.ckpt");
  save_sbp_checkpoint(path, make_sbp_checkpoint(g));
  // A sample-pipeline loader must refuse an sbp-run snapshot.
  expect_rejected([&] { load_sample_checkpoint(path); }, "expected");
}

TEST(CheckpointFormat, TrailingGarbageRejected) {
  const auto g = triangle_graph();
  const std::string path = temp_path("trailing.ckpt");
  save_sbp_checkpoint(path, make_sbp_checkpoint(g));

  std::string bytes = read_file(path);
  bytes += "extra";
  rewrite(path, bytes);

  expect_rejected([&] { load_sbp_checkpoint(path); }, "trailing garbage");
}

TEST(CheckpointFormat, MissingFileThrowsIoError) {
  EXPECT_THROW(load_sbp_checkpoint(temp_path("absent.ckpt")),
               util::IoError);
}

TEST(Fingerprint, DistinguishesStructureNotJustSize) {
  // Same V and E, different degree sequence → different fingerprint.
  const auto a = graph::Graph::from_edges(4, {{{0, 1}, {0, 2}, {0, 3}}});
  const auto b = graph::Graph::from_edges(4, {{{0, 1}, {1, 2}, {2, 3}}});
  const auto fa = fingerprint(a);
  const auto fb = fingerprint(b);
  EXPECT_EQ(fa.num_vertices, fb.num_vertices);
  EXPECT_EQ(fa.num_edges, fb.num_edges);
  EXPECT_NE(fa.degree_hash, fb.degree_hash);
  EXPECT_FALSE(fa == fb);
}

TEST(Fingerprint, WrongGraphValidationThrowsWithBothFingerprints) {
  const auto g = triangle_graph();
  const auto other = graph::Graph::from_edges(5, {{{0, 1}, {2, 3}, {3, 4}}});
  try {
    validate_fingerprint(fingerprint(g), other, "some.ckpt");
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("different graph"), std::string::npos) << what;
    EXPECT_NE(what.find("saved V=4"), std::string::npos) << what;
    EXPECT_NE(what.find("live V=5"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace hsbp::ckpt
