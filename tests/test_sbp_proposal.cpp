#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/hastings.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Edge;
using graph::Graph;

Graph two_communities() {
  // Blocks {0,1,2} densely bidirected; {3,4,5} densely bidirected; one
  // bridge 2↔3.
  std::vector<Edge> edges;
  const auto add_bi = [&edges](graph::Vertex a, graph::Vertex b) {
    edges.emplace_back(a, b);
    edges.emplace_back(b, a);
  };
  add_bi(0, 1);
  add_bi(1, 2);
  add_bi(0, 2);
  add_bi(3, 4);
  add_bi(4, 5);
  add_bi(3, 5);
  add_bi(2, 3);
  return Graph::from_edges(6, edges);
}

const std::vector<std::int32_t> kTwoBlocks = {0, 0, 0, 1, 1, 1};

TEST(ProposeBlock, StaysInRange) {
  const Graph g = two_communities();
  const auto b = Blockmodel::from_assignment(g, kTwoBlocks, 2);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto nb = blockmodel::gather_neighbor_blocks(g, kTwoBlocks, 0);
    const BlockId p = propose_block(b, nb, 0, false, rng);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
}

TEST(ProposeBlock, MergeNeverProposesSelf) {
  const Graph g = two_communities();
  const auto b = Blockmodel::from_assignment(g, kTwoBlocks, 2);
  util::Rng rng(2);
  for (BlockId c = 0; c < 2; ++c) {
    const auto nb = block_neighbor_counts(b, c);
    for (int i = 0; i < 500; ++i) {
      EXPECT_NE(propose_block(b, nb, c, true, rng), c);
    }
  }
}

TEST(ProposeBlock, IsolatedVertexGetsUniformProposals) {
  // Vertex 6 isolated; proposals must still be valid blocks, roughly
  // uniformly distributed.
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {5, 4}};
  const Graph g = Graph::from_edges(7, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1, 2, 2, 0};
  const auto b = Blockmodel::from_assignment(g, assignment, 3);
  util::Rng rng(3);
  const auto nb = blockmodel::gather_neighbor_blocks(g, assignment, 6);
  EXPECT_EQ(nb.degree_total(), 0);
  std::map<BlockId, int> counts;
  for (int i = 0; i < 3000; ++i) {
    ++counts[propose_block(b, nb, 0, false, rng)];
  }
  for (BlockId c = 0; c < 3; ++c) {
    EXPECT_NEAR(counts[c] / 3000.0, 1.0 / 3.0, 0.05);
  }
}

TEST(ProposeBlock, FavorsStronglyConnectedBlock) {
  // Vertex 0 sits in a dense community; the majority of proposals should
  // land on its own block (neighbor-guided step dominates).
  const Graph g = two_communities();
  const auto b = Blockmodel::from_assignment(g, kTwoBlocks, 2);
  util::Rng rng(4);
  const auto nb = blockmodel::gather_neighbor_blocks(g, kTwoBlocks, 0);
  int own = 0;
  constexpr int n = 5000;
  for (int i = 0; i < n; ++i) {
    own += (propose_block(b, nb, 0, false, rng) == 0);
  }
  EXPECT_GT(own, n / 2);
}

TEST(BlockNeighborCounts, MatchesMatrixSlices) {
  const Graph g = two_communities();
  const auto b = Blockmodel::from_assignment(g, kTwoBlocks, 2);
  const auto nb = block_neighbor_counts(b, 0);
  // Block 0: 6 within edges (self-loops of the super-vertex) + 1 out to
  // block 1 + 1 in from block 1.
  EXPECT_EQ(nb.self_loops, 6);
  ASSERT_EQ(nb.out.size(), 1u);
  EXPECT_EQ(nb.out[0].first, 1);
  EXPECT_EQ(nb.out[0].second, 1);
  ASSERT_EQ(nb.in.size(), 1u);
  EXPECT_EQ(nb.in[0].second, 1);
  EXPECT_EQ(nb.degree_out, b.degree_out(0));
  EXPECT_EQ(nb.degree_in, b.degree_in(0));
}

TEST(HastingsCorrection, ForwardTimesReverseIsOne) {
  // Detailed-balance identity: the correction of a move times the
  // correction of its reverse (evaluated after applying the move) is 1.
  generator::DcsbmParams params;
  params.num_vertices = 60;
  params.num_communities = 4;
  params.num_edges = 480;
  params.seed = 5;
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;
  auto b = Blockmodel::from_assignment(g, generated.ground_truth, 4);

  util::Rng rng(6);
  int tested = 0;
  for (int trial = 0; trial < 200 && tested < 50; ++trial) {
    const auto v = static_cast<graph::Vertex>(rng.uniform_int(60));
    const BlockId from = b.block_of(v);
    const auto to = static_cast<BlockId>(rng.uniform_int(4));
    if (to == from || b.block_size(from) <= 1) continue;

    const auto nb_fwd = blockmodel::gather_neighbor_blocks(g, b.assignment(), v);
    const auto delta_fwd = blockmodel::vertex_move_delta(b, from, to, nb_fwd);
    const double h_fwd = hastings_correction(b, nb_fwd, from, to, delta_fwd);

    auto moved = b;
    moved.move_vertex(g, v, to);
    const auto nb_bwd =
        blockmodel::gather_neighbor_blocks(g, moved.assignment(), v);
    const auto delta_bwd =
        blockmodel::vertex_move_delta(moved, to, from, nb_bwd);
    const double h_bwd =
        hastings_correction(moved, nb_bwd, to, from, delta_bwd);

    ASSERT_GT(h_fwd, 0.0);
    EXPECT_NEAR(h_fwd * h_bwd, 1.0, 1e-9);
    ++tested;
  }
  EXPECT_GE(tested, 20);
}

TEST(HastingsCorrection, IsolatedVertexIsNeutral) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1, 0};
  const auto b = Blockmodel::from_assignment(g, assignment, 2);
  const auto nb = blockmodel::gather_neighbor_blocks(g, assignment, 4);
  const auto delta = blockmodel::vertex_move_delta(b, 0, 1, nb);
  EXPECT_DOUBLE_EQ(hastings_correction(b, nb, 0, 1, delta), 1.0);
}

}  // namespace
}  // namespace hsbp::sbp
