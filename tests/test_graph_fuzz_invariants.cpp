#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hsbp::graph {
namespace {

Graph random_graph(util::Rng& rng, Vertex max_vertices,
                   EdgeCount max_edges) {
  const auto v = static_cast<Vertex>(
      1 + rng.uniform_int(static_cast<std::uint64_t>(max_vertices)));
  const auto e = static_cast<EdgeCount>(
      rng.uniform_int(static_cast<std::uint64_t>(max_edges) + 1));
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(e));
  for (EdgeCount i = 0; i < e; ++i) {
    edges.emplace_back(
        static_cast<Vertex>(rng.uniform_int(static_cast<std::uint64_t>(v))),
        static_cast<Vertex>(rng.uniform_int(static_cast<std::uint64_t>(v))));
  }
  return Graph::from_edges(v, edges);
}

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, CsrInvariantsHoldOnRandomGraphs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = random_graph(rng, 200, 2000);

    // Degree sums equal edge counts in both directions.
    EdgeCount out_total = 0, in_total = 0, self = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      out_total += g.out_degree(v);
      in_total += g.in_degree(v);
      EXPECT_EQ(g.out_degree(v),
                static_cast<EdgeCount>(g.out_neighbors(v).size()));
      EXPECT_EQ(g.in_degree(v),
                static_cast<EdgeCount>(g.in_neighbors(v).size()));
      for (const Vertex u : g.out_neighbors(v)) {
        EXPECT_GE(u, 0);
        EXPECT_LT(u, g.num_vertices());
        if (u == v) ++self;
      }
    }
    EXPECT_EQ(out_total, g.num_edges());
    EXPECT_EQ(in_total, g.num_edges());
    EXPECT_EQ(self, g.num_self_loops());
  }
}

TEST_P(GraphFuzz, OutAndInAdjacencyAreMirrors) {
  util::Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_graph(rng, 120, 1200);
    // Multiset of (src, dst) from out-adjacency equals the one from
    // in-adjacency.
    std::map<Edge, int> from_out, from_in;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      for (const Vertex u : g.out_neighbors(v)) ++from_out[{v, u}];
      for (const Vertex u : g.in_neighbors(v)) ++from_in[{u, v}];
    }
    EXPECT_EQ(from_out, from_in);
  }
}

TEST_P(GraphFuzz, EdgesRoundTripThroughFromEdges) {
  util::Rng rng(GetParam() + 900);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_graph(rng, 100, 800);
    auto edges = g.edges();
    const Graph rebuilt = Graph::from_edges(g.num_vertices(), edges);
    auto original = g.edges();
    auto round_tripped = rebuilt.edges();
    std::sort(original.begin(), original.end());
    std::sort(round_tripped.begin(), round_tripped.end());
    EXPECT_EQ(original, round_tripped);
  }
}

TEST_P(GraphFuzz, ComponentLabelsAreConsistentWithEdges) {
  util::Rng rng(GetParam() + 1300);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_graph(rng, 150, 300);  // sparse: many components
    const auto info = weakly_connected_components(g);
    // Every edge joins vertices of the same component.
    for (const auto& [src, dst] : g.edges()) {
      EXPECT_EQ(info.component_of[static_cast<std::size_t>(src)],
                info.component_of[static_cast<std::size_t>(dst)]);
    }
    // Component ids are dense [0, count).
    for (const auto id : info.component_of) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, info.count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Values(7, 17, 27, 37, 47));

}  // namespace
}  // namespace hsbp::graph
