#include <gtest/gtest.h>

#include "blockmodel/dict_transpose_matrix.hpp"

namespace hsbp::blockmodel {
namespace {

TEST(DictTransposeMatrix, StartsEmpty) {
  const DictTransposeMatrix m(4);
  EXPECT_EQ(m.size(), 4);
  EXPECT_EQ(m.total(), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_EQ(m.get(0, 0), 0);
  EXPECT_TRUE(m.check_consistency());
}

TEST(DictTransposeMatrix, AddAndGet) {
  DictTransposeMatrix m(3);
  m.add(0, 1, 5);
  m.add(1, 2, 2);
  EXPECT_EQ(m.get(0, 1), 5);
  EXPECT_EQ(m.get(1, 0), 0);
  EXPECT_EQ(m.get(1, 2), 2);
  EXPECT_EQ(m.total(), 7);
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_TRUE(m.check_consistency());
}

TEST(DictTransposeMatrix, RowAndColumnMirror) {
  DictTransposeMatrix m(3);
  m.add(0, 1, 3);
  m.add(2, 1, 4);
  const auto& col = m.col(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.at(0), 3);
  EXPECT_EQ(col.at(2), 4);
  const auto& row = m.row(0);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row.at(1), 3);
}

TEST(DictTransposeMatrix, ZeroCellsAreErased) {
  DictTransposeMatrix m(2);
  m.add(0, 1, 3);
  m.add(0, 1, -3);
  EXPECT_EQ(m.get(0, 1), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_TRUE(m.row(0).empty());
  EXPECT_TRUE(m.col(1).empty());
  EXPECT_EQ(m.total(), 0);
  EXPECT_TRUE(m.check_consistency());
}

TEST(DictTransposeMatrix, AddZeroIsNoop) {
  DictTransposeMatrix m(2);
  m.add(0, 0, 0);
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(DictTransposeMatrix, DiagonalCellAppearsOnceInRowAndCol) {
  DictTransposeMatrix m(2);
  m.add(1, 1, 6);
  EXPECT_EQ(m.get(1, 1), 6);
  EXPECT_EQ(m.row(1).size(), 1u);
  EXPECT_EQ(m.col(1).size(), 1u);
  EXPECT_TRUE(m.check_consistency());
}

TEST(DictTransposeMatrix, IncrementalUpdatesAccumulate) {
  DictTransposeMatrix m(4);
  for (int i = 0; i < 10; ++i) m.add(2, 3, 1);
  m.add(2, 3, -4);
  EXPECT_EQ(m.get(2, 3), 6);
  EXPECT_EQ(m.total(), 6);
  EXPECT_TRUE(m.check_consistency());
}

}  // namespace
}  // namespace hsbp::blockmodel
