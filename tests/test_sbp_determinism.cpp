/// Seed determinism and whole-chain equivalence.
///
/// Two guarantees pin down the allocation-free rewrite:
///   1. A full sbp::run is a pure function of (graph, config) for every
///      variant — running it twice yields identical partitions, MDLs,
///      and proposal/acceptance counters.
///   2. A serial Metropolis-Hastings chain driven by the optimized
///      scratch-arena kernels accepts the exact same move sequence as
///      one driven by the pre-PR reference kernels, from the same seed.
///      Since acceptance thresholds are compared against the same RNG
///      draws, this holds only if ΔMDL and the Hastings correction are
///      bit-identical — making it an end-to-end equivalence check, not
///      a statistical one.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "generator/dcsbm.hpp"
#include "reference_kernels.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/sbp.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {
namespace {

using graph::Graph;
using graph::Vertex;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 2400;
  p.ratio_within_between = 4.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

class SeedDeterminism : public ::testing::TestWithParam<Variant> {};

TEST_P(SeedDeterminism, SameSeedSameResult) {
  const auto g = planted(23);
  SbpConfig config;
  config.variant = GetParam();
  config.seed = 77;
  config.num_threads = 1;  // fixed thread count: the determinism contract

  const auto first = run(g.graph, config);
  const auto second = run(g.graph, config);

  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_EQ(first.num_blocks, second.num_blocks);
  EXPECT_EQ(first.mdl, second.mdl);
  EXPECT_EQ(first.stats.proposals, second.stats.proposals);
  EXPECT_EQ(first.stats.accepted_moves, second.stats.accepted_moves);
  EXPECT_EQ(first.stats.outer_iterations, second.stats.outer_iterations);
}

INSTANTIATE_TEST_SUITE_P(Variants, SeedDeterminism,
                         ::testing::Values(Variant::Metropolis,
                                           Variant::AsyncGibbs,
                                           Variant::Hybrid,
                                           Variant::BatchedGibbs));

class ChainEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainEquivalence, OptimizedChainMatchesReferenceChain) {
  const auto g = planted(GetParam());
  const std::int32_t num_blocks = 12;

  // Random over-clustered start so both chains do real merging work.
  util::Rng init_rng(GetParam() + 5);
  std::vector<std::int32_t> start(
      static_cast<std::size_t>(g.graph.num_vertices()));
  for (auto& label : start) {
    label = static_cast<std::int32_t>(
        init_rng.uniform_int(static_cast<std::uint64_t>(num_blocks)));
  }

  auto b_opt =
      blockmodel::Blockmodel::from_assignment(g.graph, start, num_blocks);
  auto b_ref =
      blockmodel::Blockmodel::from_assignment(g.graph, start, num_blocks);

  util::Rng rng_opt(99);
  util::Rng rng_ref(99);
  const double beta = 3.0;
  blockmodel::MoveScratch& scratch = blockmodel::thread_move_scratch();

  std::int64_t moves = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (Vertex v = 0; v < g.graph.num_vertices(); ++v) {
      const auto view_opt = [&b_opt](Vertex u) { return b_opt.block_of(u); };
      const auto view_ref = [&b_ref](Vertex u) { return b_ref.block_of(u); };

      const auto opt =
          evaluate_vertex(g.graph, b_opt, view_opt, v,
                          b_opt.block_size(b_opt.block_of(v)), beta, rng_opt,
                          scratch);
      const auto ref = reference::evaluate_vertex(
          g.graph, b_ref, view_ref, v, b_ref.block_size(b_ref.block_of(v)),
          beta, rng_ref);

      ASSERT_EQ(opt.moved, ref.moved) << "pass=" << pass << " v=" << v;
      if (opt.moved) {
        ASSERT_EQ(opt.to, ref.to) << "pass=" << pass << " v=" << v;
        ASSERT_EQ(opt.delta_mdl, ref.delta_mdl) << "pass=" << pass
                                                << " v=" << v;
        b_opt.move_vertex(g.graph, v, opt.to);
        b_ref.move_vertex(g.graph, v, ref.to);
        ++moves;
      }
    }
  }

  EXPECT_GT(moves, 0);  // the chains actually did something
  EXPECT_EQ(b_opt.assignment(), b_ref.assignment());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainEquivalence,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace hsbp::sbp
