#include <gtest/gtest.h>

#include <stdexcept>

#include "generator/dcsbm.hpp"
#include "graph/degree.hpp"
#include "metrics/metrics.hpp"
#include "sbp/influence.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::sbp {
namespace {

using graph::Edge;
using graph::Graph;

generator::GeneratedGraph strong_planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 400;
  p.num_communities = 6;
  p.num_edges = 4000;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

TEST(VariantName, MatchesPaper) {
  EXPECT_STREQ(variant_name(Variant::Metropolis), "SBP");
  EXPECT_STREQ(variant_name(Variant::AsyncGibbs), "A-SBP");
  EXPECT_STREQ(variant_name(Variant::Hybrid), "H-SBP");
}

TEST(SbpRun, RejectsEmptyGraph) {
  const Graph empty;
  EXPECT_THROW(run(empty, SbpConfig{}), std::invalid_argument);
  const Graph no_edges = Graph::from_edges(5, {});
  EXPECT_THROW(run(no_edges, SbpConfig{}), std::invalid_argument);
}

TEST(SbpRun, RejectsBadConfig) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(2, edges);
  SbpConfig config;
  config.block_reduction_rate = 0.0;
  EXPECT_THROW(run(g, config), std::invalid_argument);
  config = SbpConfig{};
  config.block_reduction_rate = 1.0;
  EXPECT_THROW(run(g, config), std::invalid_argument);
  config = SbpConfig{};
  config.merge_proposals_per_block = 0;
  EXPECT_THROW(run(g, config), std::invalid_argument);
  config = SbpConfig{};
  config.max_mcmc_iterations = 0;
  EXPECT_THROW(run(g, config), std::invalid_argument);
  config = SbpConfig{};
  config.hybrid_fraction = 1.5;
  EXPECT_THROW(run(g, config), std::invalid_argument);
  config = SbpConfig{};
  config.beta = 0.0;
  EXPECT_THROW(run(g, config), std::invalid_argument);
}

TEST(SbpRun, TinyGraphRuns) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  const Graph g = Graph::from_edges(3, edges);
  SbpConfig config;
  config.seed = 1;
  const auto result = run(g, config);
  EXPECT_GE(result.num_blocks, 1);
  EXPECT_LE(result.num_blocks, 3);
  EXPECT_EQ(result.assignment.size(), 3u);
}

class VariantRecovery : public ::testing::TestWithParam<Variant> {};

TEST_P(VariantRecovery, RecoversStrongPlantedPartition) {
  const auto g = strong_planted(51);
  SbpConfig config;
  config.variant = GetParam();
  config.seed = 3;
  const auto result = run(g.graph, config);
  const double score = metrics::nmi(g.ground_truth, result.assignment);
  EXPECT_GT(score, 0.85) << variant_name(GetParam());
  // MDL must beat the structure-less null model.
  EXPECT_LT(metrics::normalized_mdl(result.mdl, g.graph.num_vertices(),
                                    g.graph.num_edges()),
            1.0);
}

TEST_P(VariantRecovery, StatsAreCoherent) {
  const auto g = strong_planted(52);
  SbpConfig config;
  config.variant = GetParam();
  config.seed = 4;
  const auto result = run(g.graph, config);
  const auto& stats = result.stats;
  EXPECT_GT(stats.outer_iterations, 0);
  EXPECT_GT(stats.mcmc_iterations, 0);
  EXPECT_GT(stats.proposals, 0);
  EXPECT_GE(stats.proposals, stats.accepted_moves);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.total_seconds,
            stats.mcmc_seconds);  // phases are subsets of the run
  if (GetParam() == Variant::Metropolis) {
    EXPECT_EQ(stats.parallel_updates, 0);
  } else {
    EXPECT_GT(stats.parallel_updates, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantRecovery,
                         ::testing::Values(Variant::Metropolis,
                                           Variant::AsyncGibbs,
                                           Variant::Hybrid),
                         [](const auto& info) {
                           return std::string(variant_name(info.param)) ==
                                          "A-SBP"
                                      ? "ASBP"
                                  : variant_name(info.param) ==
                                          std::string("H-SBP")
                                      ? "HSBP"
                                      : "SBP";
                         });

TEST(SbpRun, DeterministicSingleThreaded) {
  const auto g = strong_planted(53);
  SbpConfig config;
  config.seed = 9;
  config.num_threads = 1;
  const auto a = run(g.graph, config);
  const auto b = run(g.graph, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_DOUBLE_EQ(a.mdl, b.mdl);
}

TEST(SbpRun, HybridFractionZeroBehavesLikeAsync) {
  // f=0 ⇒ no serial pass: every update is parallel.
  const auto g = strong_planted(54);
  SbpConfig config;
  config.variant = Variant::Hybrid;
  config.hybrid_fraction = 0.0;
  config.seed = 2;
  const auto result = run(g.graph, config);
  EXPECT_EQ(result.stats.serial_updates, 0);
}

TEST(SbpRun, HybridFractionOneBehavesLikeSerial) {
  const auto g = strong_planted(55);
  SbpConfig config;
  config.variant = Variant::Hybrid;
  config.hybrid_fraction = 1.0;
  config.seed = 2;
  const auto result = run(g.graph, config);
  EXPECT_EQ(result.stats.parallel_updates, 0);
  EXPECT_GT(result.stats.serial_updates, 0);
}

// ------------------------------------------------------------- influence

TEST(Influence, EdgelessVerticesExertNoInfluence) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(4, edges);  // vertices 2,3 isolated
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1};
  const auto result = total_influence(g, assignment, 2, 3.0);
  EXPECT_NEAR(result.influence_of[2], 0.0, 1e-9);
  EXPECT_NEAR(result.influence_of[3], 0.0, 1e-9);
  EXPECT_GE(result.alpha, 0.0);
}

TEST(Influence, HighDegreeVerticesExertMoreInfluence) {
  // The paper's H-SBP heuristic (§3.2): high-degree vertices are the
  // most influential. Verified on a DCSBM graph by comparing the
  // top-degree quartile's average influence with the bottom quartile's.
  generator::DcsbmParams p;
  p.num_vertices = 60;
  p.num_communities = 3;
  p.num_edges = 500;
  p.ratio_within_between = 4.0;
  p.seed = 9;
  const auto g = generator::generate_dcsbm(p);
  const auto result = total_influence(g.graph, g.ground_truth, 3, 3.0);

  const auto order = graph::vertices_by_degree_desc(g.graph);
  double top = 0.0;
  double bottom = 0.0;
  for (int i = 0; i < 15; ++i) {
    top += result.influence_of[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    bottom += result.influence_of[static_cast<std::size_t>(
        order[static_cast<std::size_t>(45 + i)])];
  }
  EXPECT_GT(top, 1.5 * bottom);
  EXPECT_GT(result.alpha, 0.0);
}

TEST(Influence, GuardsAgainstLargeGraphs) {
  const auto g = strong_planted(56);
  EXPECT_THROW(
      total_influence(g.graph, g.ground_truth, 6, 3.0, /*max_vertices=*/100),
      std::invalid_argument);
}

}  // namespace
}  // namespace hsbp::sbp
