// End-to-end daemon tests over a real Unix socket: queries against the
// served snapshot, the malformed-request contract (ERR reply on a live
// session — never a dropped connection or a daemon exit), ingest-driven
// refits observable through EPOCH, concurrent clients during a refit
// storm, the SHUTDOWN drain, and BindError on an untakeable address.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "generator/dcsbm.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace hsbp::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

graph::Graph tiny_graph(std::uint64_t seed = 11) {
  generator::DcsbmParams params;
  params.num_vertices = 60;
  params.num_communities = 4;
  params.num_edges = 420;
  params.ratio_within_between = 5.0;
  params.seed = seed;
  return generator::generate_dcsbm(params).graph;
}

std::string unique_socket_path(const char* tag) {
  // Keep it short: sun_path is ~108 bytes and TempDir may be deep.
  return "/tmp/hsbp_t_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

sbp::SbpConfig fast_config() {
  sbp::SbpConfig config;
  config.seed = 5;
  config.num_threads = 2;
  return config;
}

/// Polls EPOCH until the daemon reports at least `target`.
bool await_epoch(Client& client, const std::string& graph,
                 std::uint64_t target, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto reply = client.request("EPOCH " + graph);
    if (!reply.has_value()) return false;
    if (is_ok(*reply) &&
        std::stoull(reply->substr(3)) >= target) {
      return true;
    }
    std::this_thread::sleep_for(10ms);
  }
  return false;
}

TEST(ServeServer, AnswersTheQueryVocabularyOverAUnixSocket) {
  const std::string socket = unique_socket_path("vocab");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_unix(socket);
  EXPECT_EQ(client.request("PING"), "OK pong");
  EXPECT_EQ(client.request("LIST"), "OK 1 g");

  const auto info = client.request("INFO g");
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(is_ok(*info));
  EXPECT_NE(info->find("vertices=60"), std::string::npos);
  EXPECT_NE(info->find("epoch=1"), std::string::npos);

  const auto member = client.request("MEMBER g 0");
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(is_ok(*member));
  const int block = std::stoi(member->substr(3));
  EXPECT_GE(block, 0);

  const auto community =
      client.request("COMMUNITY g " + std::to_string(block));
  ASSERT_TRUE(community.has_value());
  EXPECT_TRUE(is_ok(*community));
  // The member we just looked up must appear in its own community.
  EXPECT_NE((" " + community->substr(3) + " ").find(" 0 "),
            std::string::npos);

  for (const char* verb : {"MODULARITY g", "MDL g", "EPOCH g", "STATS"}) {
    const auto reply = client.request(verb);
    ASSERT_TRUE(reply.has_value()) << verb;
    EXPECT_TRUE(is_ok(*reply)) << verb << " -> " << *reply;
  }
  server.stop();
  EXPECT_FALSE(fs::exists(socket));  // drained daemon unlinks its socket
}

TEST(ServeServer, MalformedRequestsGetErrRepliesOnALiveSession) {
  const std::string socket = unique_socket_path("err");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_unix(socket);
  // Each malformed request is an ERR reply — and the SAME connection
  // keeps answering afterwards, proving nothing died server-side.
  for (const char* bad :
       {"FROBNICATE", "MEMBER g notanumber", "MEMBER g", "INGEST g 2 0 1",
        "MEMBER g 99999", "COMMUNITY g 99999", "INFO nosuchgraph", ""}) {
    const auto reply = client.request(bad);
    ASSERT_TRUE(reply.has_value()) << "connection died on: " << bad;
    EXPECT_FALSE(is_ok(*reply)) << bad << " -> " << *reply;
    EXPECT_EQ(reply->substr(0, 3), "ERR") << bad;
  }
  EXPECT_EQ(client.request("PING"), "OK pong");

  const auto stats = server.stats();
  EXPECT_GE(stats.errors, 8u);
  server.stop();
}

TEST(ServeServer, IngestAdvancesTheEpochAndGrowsTheGraph) {
  const std::string socket = unique_socket_path("ingest");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_unix(socket);
  // Vertex 60 is new: the refit must grow the vertex set and label it.
  const auto ack = client.request("INGEST g 3 0 60 60 1 2 3");
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(is_ok(*ack)) << *ack;
  EXPECT_NE(ack->find("queued=3"), std::string::npos);

  ASSERT_TRUE(await_epoch(client, "g", 2, 60s));
  const auto info = client.request("INFO g");
  ASSERT_TRUE(info.has_value());
  EXPECT_NE(info->find("vertices=61"), std::string::npos) << *info;

  const auto member = client.request("MEMBER g 60");
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(is_ok(*member)) << *member;
  server.stop();
  EXPECT_GE(server.stats().refits, 1u);
}

// The acceptance scenario: concurrent clients keep querying WHILE a
// refit runs; every reply is a valid OK and no snapshot is torn. This
// is the test the TSan stage leans on.
TEST(ServeServer, ConcurrentClientsDuringARefitStorm) {
  const std::string socket = unique_socket_path("storm");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client = Client::connect_unix(socket);
      std::uint64_t i = 0;
      while (running.load(std::memory_order_relaxed)) {
        const char* verbs[3] = {"MEMBER g ", "MODULARITY g", "EPOCH g"};
        std::string payload = verbs[i % 3];
        if (i % 3 == 0) payload += std::to_string((i + static_cast<std::uint64_t>(c)) % 60);
        const auto reply = client.request(payload);
        if (!reply.has_value() || !is_ok(*reply)) {
          failures.fetch_add(1);
          break;
        }
        replies.fetch_add(1);
        ++i;
      }
    });
  }

  Client control = Client::connect_unix(socket);
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    for (std::int32_t e = 0; e < 10; ++e) {
      edges.emplace_back((batch * 7 + e) % 60, (batch * 11 + 3 * e) % 60);
    }
    const auto ack = control.request(format_ingest("g", edges));
    ASSERT_TRUE(ack.has_value());
    ASSERT_TRUE(is_ok(*ack)) << *ack;
  }
  EXPECT_TRUE(await_epoch(control, "g", 2, 60s));

  running.store(false);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(replies.load(), 0u);
  server.stop();
}

TEST(ServeServer, ShutdownVerbAcknowledgesThenDrains) {
  const std::string socket = unique_socket_path("bye");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  auto server = std::make_unique<Server>(options);
  server->add_graph("g", tiny_graph());
  server->start();

  std::thread waiter([&] { server->run(); });
  Client client = Client::connect_unix(socket);
  EXPECT_EQ(client.request("SHUTDOWN"), "OK draining");
  waiter.join();  // run() returns only after the drain completed
  EXPECT_FALSE(fs::exists(socket));
  // The drained daemon is gone: a new request cannot be served.
  EXPECT_FALSE(client.request("PING").has_value());
  server.reset();
}

TEST(ServeServer, BindFailureThrowsBindError) {
  ServeOptions options;
  options.socket_path = "/nonexistent-hsbp-dir/daemon.sock";
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  EXPECT_THROW(server.start(), BindError);
}

TEST(ServeServer, OccupiedSocketPathThrowsBindError) {
  const std::string socket = unique_socket_path("dup");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  Server first(options);
  first.add_graph("g", tiny_graph());
  first.start();

  Server second(options);
  second.add_graph("g", tiny_graph());
  EXPECT_THROW(second.start(), BindError);
  // The loser must not have unlinked the winner's socket.
  Client client = Client::connect_unix(socket);
  EXPECT_EQ(client.request("PING"), "OK pong");
  first.stop();
}

TEST(ServeServer, EphemeralTcpPortIsReportedAndServes) {
  ServeOptions options;
  options.tcp_port = 0;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client = Client::connect_tcp(server.port());
  EXPECT_EQ(client.request("PING"), "OK pong");
  const auto member = client.request("MEMBER g 5");
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(is_ok(*member));
  server.stop();
}

TEST(ServeServer, RejectsEmptyGraphsAndLateRegistration) {
  ServeOptions options;
  options.tcp_port = 0;
  options.refit.base = fast_config();
  Server server(options);
  EXPECT_THROW(server.add_graph("empty", graph::Graph()),
               std::invalid_argument);
  server.add_graph("g", tiny_graph());
  server.start();
  EXPECT_THROW(server.add_graph("late", tiny_graph()),
               std::invalid_argument);
  server.stop();
}

}  // namespace
}  // namespace hsbp::serve
