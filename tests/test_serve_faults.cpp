// Injected-fault torture of the serving daemon: hostile peers (silent,
// mid-frame stalls, torn frames, oversized prefixes, instant hangups),
// overload (connection cap, bounded ingest queue), and client-side
// resilience through injected disconnects. Every suite here is named
// ServeFault* so parallel_labels.cmake stamps LABELS "serve;fault" —
// these run again under ASan (`-L fault`) and TSan (`-L serve`).
//
// The contract under torture: the daemon sheds with `ERR busy
// retry-after <ms>`, reaps every faulted session (active_sessions
// returns to zero with NO new connections arriving), keeps healthy
// clients answering with correct snapshots, and drains cleanly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/fault_injector.hpp"
#include "generator/dcsbm.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace hsbp::serve {
namespace {

using namespace std::chrono_literals;

graph::Graph tiny_graph(std::uint64_t seed = 11) {
  generator::DcsbmParams params;
  params.num_vertices = 60;
  params.num_communities = 4;
  params.num_edges = 420;
  params.ratio_within_between = 5.0;
  params.seed = seed;
  return generator::generate_dcsbm(params).graph;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/hsbp_f_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

sbp::SbpConfig fast_config() {
  sbp::SbpConfig config;
  config.seed = 5;
  config.num_threads = 2;
  return config;
}

/// A raw (non-Client) connection for speaking garbage at the daemon.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Polls `condition` until it holds or `timeout` elapses.
bool await(const std::function<bool()>& condition,
           std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return condition();
}

// ------------------------------------------------------------- reaping

// The thread-leak fix this PR exists for: sessions cut by the idle
// deadline must be reaped by the accept loop's timer tick alone — no
// new connection ever arrives to trigger collection.
TEST(ServeFaultReap, IdleSessionsAreReapedWithoutNewConnections) {
  const std::string socket = unique_socket_path("idle");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.idle_timeout_ms = 100;
  options.frame_timeout_ms = 2000;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  std::vector<int> fds;
  for (int i = 0; i < 3; ++i) {
    const int fd = raw_connect(socket);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  // Every connection was accepted (monotonic counter — the sessions
  // themselves may already be timing out under a loaded sanitizer).
  ASSERT_TRUE(await([&] { return server.stats().sessions >= 3; },
                    std::chrono::seconds(30)));

  ASSERT_TRUE(await(
      [&] {
        const ServerStats s = server.stats();
        return s.timeouts >= 3 && s.active_sessions == 0;
      },
      std::chrono::seconds(30)));

  // The courtesy goodbye: a cut session gets one `ERR timeout` frame
  // before the close (best-effort, but deterministic on loopback).
  std::string reply;
  EXPECT_TRUE(read_frame(fds[0], reply));
  EXPECT_EQ(reply, "ERR timeout");
  for (const int fd : fds) ::close(fd);
  server.stop();
}

// Half a length prefix then silence: the (tight) frame deadline cuts
// the stall even though the idle deadline is a minute out.
TEST(ServeFaultReap, MidFrameStallIsCutByTheFrameDeadline) {
  const std::string socket = unique_socket_path("stall");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.idle_timeout_ms = 60000;
  options.frame_timeout_ms = 100;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  const int fd = raw_connect(socket);
  ASSERT_GE(fd, 0);
  const char partial[2] = {16, 0};
  ASSERT_EQ(::write(fd, partial, 2), 2);

  EXPECT_TRUE(await(
      [&] {
        const ServerStats s = server.stats();
        return s.timeouts >= 1 && s.active_sessions == 0;
      },
      std::chrono::seconds(30)));
  ::close(fd);
  server.stop();
}

// stop() must not depend on peers behaving: sessions parked on silent
// or half-written frames (with effectively infinite deadlines) are
// woken by the cancel flag and joined.
TEST(ServeFaultReap, StopJoinsSessionsParkedOnHostilePeers) {
  const std::string socket = unique_socket_path("drain");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.idle_timeout_ms = 600000;
  options.frame_timeout_ms = 600000;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  const int silent = raw_connect(socket);
  const int stalled = raw_connect(socket);
  ASSERT_GE(silent, 0);
  ASSERT_GE(stalled, 0);
  const char partial[3] = {9, 0, 0};
  ASSERT_EQ(::write(stalled, partial, 3), 3);
  ASSERT_TRUE(await([&] { return server.stats().active_sessions == 2; },
                    std::chrono::seconds(30)));

  const auto start = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
  EXPECT_EQ(server.stats().active_sessions, 0u);
  ::close(silent);
  ::close(stalled);
}

// ------------------------------------------------------------ shedding

TEST(ServeFaultShed, ConnectionCapShedsWithRetryAfterHint) {
  const std::string socket = unique_socket_path("cap");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.max_sessions = 1;
  options.retry_after_ms = 7;  // distinctive: proves the hint plumbing
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client first = Client::connect_unix(socket);
  EXPECT_EQ(first.request("PING"), "OK pong");

  // The connection over the cap is accepted just long enough to be
  // told to go away — one busy frame carrying the retry-after hint.
  Client second = Client::connect_unix(socket);
  const auto shed = second.request("PING", /*timeout_ms=*/5000);
  ASSERT_TRUE(shed.has_value());
  int retry_after = -1;
  EXPECT_TRUE(is_busy(*shed, &retry_after)) << *shed;
  EXPECT_EQ(retry_after, 7);
  EXPECT_GE(server.stats().shed, 1u);

  // Once the occupant leaves, a retrying client gets in: the busy
  // reply is backpressure, not a ban. While still shed, each retry
  // sleeps only the 7 ms hint, so a generous attempt count is what
  // buys wall-clock patience — under sanitizer load the freed slot
  // can take seconds to be reaped into availability.
  first.close();
  RetryPolicy policy;
  policy.attempts = 600;
  policy.timeout_ms = 5000;
  policy.backoff_ms = 25;
  int attempts_used = 0;
  Client third = Client::connect_unix(socket);
  const auto reply = third.request_retry("PING", policy, &attempts_used);
  EXPECT_EQ(reply, "OK pong");
  EXPECT_GE(attempts_used, 1);
  server.stop();
}

// max_pending_batches=0 is read-only mode: every INGEST is refused
// with a busy reply while queries keep answering on the same session.
TEST(ServeFaultShed, ZeroIngestBoundRefusesWritesButServesReads) {
  ServeOptions options;
  options.tcp_port = 0;
  options.refit.base = fast_config();
  options.max_pending_batches = 0;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_tcp(server.port());
  const auto refused = client.request("INGEST g 1 0 1");
  ASSERT_TRUE(refused.has_value());
  int retry_after = -1;
  EXPECT_TRUE(is_busy(*refused, &retry_after)) << *refused;
  EXPECT_GE(retry_after, 0);
  EXPECT_NE(refused->find("ingest queue full"), std::string::npos);

  EXPECT_EQ(client.request("PING"), "OK pong");
  const auto member = client.request("MEMBER g 0");
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(is_ok(*member));

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.shed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.ingests, 0u);
  server.stop();
}

// An ingest flood against a small bound: every reply is either an OK
// whose reported backlog respects the bound or a busy refusal — the
// queue provably never grows past max_pending_batches.
TEST(ServeFaultShed, IngestFloodStaysWithinTheQueueBound) {
  ServeOptions options;
  options.tcp_port = 0;
  options.refit.base = fast_config();
  options.max_pending_batches = 2;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_tcp(server.port());
  std::uint64_t accepted = 0;
  std::uint64_t refused = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string payload =
        "INGEST g 1 " + std::to_string(i % 60) + " " +
        std::to_string((i * 7 + 1) % 60);
    const auto reply = client.request(payload);
    ASSERT_TRUE(reply.has_value()) << "session died on flood item " << i;
    if (is_ok(*reply)) {
      ++accepted;
      const auto pos = reply->find("pending=");
      ASSERT_NE(pos, std::string::npos) << *reply;
      EXPECT_LE(std::stoull(reply->substr(pos + 8)), 2u) << *reply;
    } else {
      EXPECT_TRUE(is_busy(*reply)) << *reply;
      ++refused;
    }
    EXPECT_LE(server.stats().queue_depth, 2u);
  }
  EXPECT_GE(accepted, 1u);
  EXPECT_EQ(accepted + refused, 30u);
  server.stop();
}

// -------------------------------------------------------------- health

TEST(ServeFaultHealth, HealthReportsTheOverloadGauges) {
  ServeOptions options;
  options.tcp_port = 0;
  options.refit.base = fast_config();
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_tcp(server.port());
  const auto health = client.request("HEALTH");
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(is_ok(*health)) << *health;
  for (const char* token :
       {"active_sessions=", "queue_depth=", "shed=", "timeouts="}) {
    EXPECT_NE(health->find(token), std::string::npos)
        << *health << " lacks " << token;
  }
  // The session asking is itself active.
  EXPECT_NE(health->find("active_sessions=1"), std::string::npos)
      << *health;
  // Arity is enforced: HEALTH takes no arguments.
  EXPECT_FALSE(is_ok(client.request("HEALTH extra").value_or("ERR")));
  server.stop();
}

// ------------------------------------------------- client resilience

// The server's first reply write is dropped mid-request (connection
// hard-closed before any byte): one retry must reconnect and succeed.
TEST(ServeFaultClient, RetryRidesOutAnInjectedDisconnect) {
  const std::string socket = unique_socket_path("drop");
  ckpt::FaultInjector injector;
  injector.net_drop_write(1);
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.net_fault = &injector;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_unix(socket);
  RetryPolicy policy;
  policy.attempts = 3;
  policy.timeout_ms = 5000;
  policy.backoff_ms = 10;
  int attempts_used = 0;
  EXPECT_EQ(client.request_retry("PING", policy, &attempts_used),
            "OK pong");
  EXPECT_GE(attempts_used, 2);  // the first attempt really was dropped
  EXPECT_EQ(server.stats().active_sessions, 1u);
  server.stop();
}

// Same resilience against a torn reply: the peer sees half a frame,
// classifies it as torn (not a short answer), and retries to success.
TEST(ServeFaultClient, RetryRidesOutAnInjectedTornReply) {
  const std::string socket = unique_socket_path("tear");
  ckpt::FaultInjector injector;
  injector.net_tear_write(1, 6);  // 4 prefix bytes + "OK"
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.net_fault = &injector;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  Client client = Client::connect_unix(socket);
  RetryPolicy policy;
  policy.attempts = 3;
  policy.timeout_ms = 5000;
  policy.backoff_ms = 10;
  int attempts_used = 0;
  EXPECT_EQ(client.request_retry("PING", policy, &attempts_used),
            "OK pong");
  EXPECT_GE(attempts_used, 2);
  server.stop();
}

// --------------------------------------------------------------- storm

// The acceptance scenario: hostile peers (torn frames, oversized
// prefixes, instant hangups, mid-frame stalls) hammer the daemon WHILE
// healthy clients keep querying. Healthy traffic must see zero
// failures, every hostile session must be reaped, and the drain must
// stay prompt.
TEST(ServeFaultStorm, HealthyClientsSurviveHostileTraffic) {
  const std::string socket = unique_socket_path("storm");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  // Generous enough that TSan-throttled healthy clients never trip the
  // deadlines; tight enough that the stalled peers reap within the test.
  options.idle_timeout_ms = 30000;
  options.frame_timeout_ms = 1000;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  std::atomic<std::uint64_t> replies{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> healthy;
  for (int c = 0; c < 3; ++c) {
    healthy.emplace_back([&, c] {
      Client client = Client::connect_unix(socket);
      for (int i = 0; i < 40; ++i) {
        const char* verbs[3] = {"MEMBER g ", "EPOCH g", "MODULARITY g"};
        std::string payload = verbs[i % 3];
        if (i % 3 == 0) payload += std::to_string((i + c) % 60);
        const auto reply = client.request(payload, /*timeout_ms=*/20000);
        if (!reply.has_value() || !is_ok(*reply)) {
          failures.fetch_add(1);
          return;
        }
        replies.fetch_add(1);
      }
    });
  }

  // Hostile traffic interleaved with the healthy storm.
  int stalled_peers = 0;
  std::vector<int> stalled;
  for (int round = 0; round < 6; ++round) {
    // Torn frame: promise 32 bytes, deliver 5, hang up.
    int fd = raw_connect(socket);
    if (fd >= 0) {
      const char torn[9] = {32, 0, 0, 0, 'h', 'e', 'l', 'l', 'o'};
      (void)!::write(fd, torn, sizeof(torn));
      ::close(fd);
    }
    // Oversized prefix: a garbage length the reader must refuse.
    fd = raw_connect(socket);
    if (fd >= 0) {
      const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
      (void)!::write(fd, huge, sizeof(huge));
      ::close(fd);
    }
    // Instant hangup: connect, say nothing, vanish.
    fd = raw_connect(socket);
    if (fd >= 0) ::close(fd);
    // Mid-frame stall: half a prefix, then silence (reaped by the
    // frame deadline while the test waits below).
    fd = raw_connect(socket);
    if (fd >= 0) {
      const char partial[2] = {16, 0};
      (void)!::write(fd, partial, 2);
      stalled.push_back(fd);
      ++stalled_peers;
    }
    std::this_thread::sleep_for(5ms);
  }

  for (auto& t : healthy) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(replies.load(), 3u * 40u);

  // Every hostile session — including the stalls, once the frame
  // deadline fires — must be reaped with no further connections.
  EXPECT_TRUE(await(
      [&] {
        const ServerStats s = server.stats();
        return s.active_sessions == 0 &&
               s.timeouts >= static_cast<std::uint64_t>(stalled_peers);
      },
      std::chrono::seconds(60)));

  // The surviving snapshot still answers correctly after the storm.
  Client check = Client::connect_unix(socket);
  const auto info = check.request("INFO g");
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(is_ok(*info));
  EXPECT_NE(info->find("vertices=60"), std::string::npos) << *info;

  for (const int fd : stalled) ::close(fd);
  const auto start = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
}

}  // namespace
}  // namespace hsbp::serve
