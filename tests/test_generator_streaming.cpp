#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "generator/dcsbm.hpp"

namespace hsbp::generator {
namespace {

GeneratedGraph small_graph(std::uint64_t seed) {
  DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generate_dcsbm(p);
}

class OrderSweep : public ::testing::TestWithParam<StreamingOrder> {};

TEST_P(OrderSweep, LastSnapshotIsTheFullGraph) {
  const auto g = small_graph(1);
  const auto parts = streaming_snapshots(g, 5, GetParam(), 7);
  ASSERT_EQ(parts.snapshots.size(), 5u);
  const auto& last = parts.snapshots.back();
  EXPECT_EQ(last.num_vertices(), g.graph.num_vertices());
  EXPECT_EQ(last.num_edges(), g.graph.num_edges());
}

TEST_P(OrderSweep, SnapshotsAreCumulative) {
  const auto g = small_graph(2);
  const auto parts = streaming_snapshots(g, 6, GetParam(), 8);
  for (std::size_t i = 1; i < parts.snapshots.size(); ++i) {
    EXPECT_GE(parts.snapshots[i].num_vertices(),
              parts.snapshots[i - 1].num_vertices());
    EXPECT_GE(parts.snapshots[i].num_edges(),
              parts.snapshots[i - 1].num_edges());
  }
}

TEST_P(OrderSweep, DeterministicForFixedSeed) {
  const auto g = small_graph(3);
  const auto a = streaming_snapshots(g, 4, GetParam(), 9);
  const auto b = streaming_snapshots(g, 4, GetParam(), 9);
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].edges(), b.snapshots[i].edges());
  }
  EXPECT_EQ(a.ground_truth, b.ground_truth);
}

TEST_P(OrderSweep, SinglePartIsJustTheGraph) {
  const auto g = small_graph(4);
  const auto parts = streaming_snapshots(g, 1, GetParam(), 10);
  ASSERT_EQ(parts.snapshots.size(), 1u);
  EXPECT_EQ(parts.snapshots[0].num_edges(), g.graph.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweep,
                         ::testing::Values(StreamingOrder::EdgeSampling,
                                           StreamingOrder::Snowball));

TEST(EdgeSampling, AllSnapshotsSpanAllVertices) {
  const auto g = small_graph(5);
  const auto parts =
      streaming_snapshots(g, 4, StreamingOrder::EdgeSampling, 11);
  for (const auto& snapshot : parts.snapshots) {
    EXPECT_EQ(snapshot.num_vertices(), g.graph.num_vertices());
  }
  EXPECT_EQ(parts.ground_truth, g.ground_truth);
}

TEST(EdgeSampling, PartsHaveBalancedEdgeCounts) {
  const auto g = small_graph(6);
  const auto parts =
      streaming_snapshots(g, 4, StreamingOrder::EdgeSampling, 12);
  const auto quarter = g.graph.num_edges() / 4;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parts.snapshots[i].num_edges(),
              quarter * static_cast<graph::EdgeCount>(i + 1));
  }
}

TEST(Snowball, VerticesGrowAndEdgesAreInduced) {
  const auto g = small_graph(7);
  const auto parts = streaming_snapshots(g, 4, StreamingOrder::Snowball, 13);
  // Vertex counts follow the arrival quarters.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parts.snapshots[i].num_vertices(),
              static_cast<graph::Vertex>(200 * (i + 1) / 4));
  }
  // Every edge of snapshot k has both endpoints inside its vertex set
  // (guaranteed by from_edges not throwing) and appears in the final
  // graph with the same relabeled ids.
  auto final_edges = parts.snapshots.back().edges();
  std::sort(final_edges.begin(), final_edges.end());
  auto early_edges = parts.snapshots[1].edges();
  for (const auto& edge : early_edges) {
    EXPECT_TRUE(std::binary_search(final_edges.begin(), final_edges.end(),
                                   edge));
  }
}

TEST(Snowball, GroundTruthIsRelabeledConsistently) {
  const auto g = small_graph(8);
  const auto parts = streaming_snapshots(g, 3, StreamingOrder::Snowball, 14);
  // Same multiset of labels as the original ground truth.
  auto original = g.ground_truth;
  auto relabeled = parts.ground_truth;
  std::sort(original.begin(), original.end());
  std::sort(relabeled.begin(), relabeled.end());
  EXPECT_EQ(original, relabeled);
  // And the relabeled truth matches the final snapshot's realized
  // within-ratio (only possible if edges and labels moved together).
  EXPECT_NEAR(
      realized_within_ratio(parts.snapshots.back(), parts.ground_truth),
      realized_within_ratio(g.graph, g.ground_truth), 1e-9);
}

TEST(StreamingSnapshots, Validation) {
  const auto g = small_graph(9);
  EXPECT_THROW(
      streaming_snapshots(g, 0, StreamingOrder::EdgeSampling, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace hsbp::generator
