#include <gtest/gtest.h>

#include <omp.h>

#include <set>
#include <sstream>

#include "blockmodel/blockmodel.hpp"
#include "eval/runner.hpp"
#include "generator/dcsbm.hpp"
#include "graph/io.hpp"
#include "metrics/metrics.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/sbp.hpp"
#include "util/args.hpp"

namespace hsbp {
namespace {

using graph::Edge;
using graph::Graph;

TEST(SbpRun, OuterIterationCapIsRespected) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.seed = 11;
  const auto g = generator::generate_dcsbm(p);
  sbp::SbpConfig config;
  config.max_outer_iterations = 1;
  config.seed = 1;
  const auto result = sbp::run(g.graph, config);
  EXPECT_EQ(result.stats.outer_iterations, 1);
  // Even truncated, the result is a valid dense partition.
  for (const std::int32_t label : result.assignment) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, result.num_blocks);
  }
}

TEST(SbpRun, IsolatedVerticesGetLabels) {
  // Graph with structure plus 5 isolated vertices.
  generator::DcsbmParams p;
  p.num_vertices = 100;
  p.num_communities = 3;
  p.num_edges = 800;
  p.seed = 12;
  const auto g = generator::generate_dcsbm(p);
  auto edges = g.graph.edges();
  const Graph padded =
      Graph::from_edges(g.graph.num_vertices() + 5, edges);

  sbp::SbpConfig config;
  config.seed = 2;
  const auto result = sbp::run(padded, config);
  EXPECT_EQ(result.assignment.size(), 105u);
  for (const std::int32_t label : result.assignment) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, result.num_blocks);
  }
}

TEST(SbpRun, OversubscribedThreadsStillCorrect) {
  // Request more threads than cores: the parallel paths must stay
  // correct (just slower).
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.ratio_within_between = 5.0;
  p.seed = 13;
  const auto g = generator::generate_dcsbm(p);
  sbp::SbpConfig config;
  config.variant = sbp::Variant::AsyncGibbs;
  config.num_threads = 4;  // host has 1 core
  config.seed = 3;
  const auto result = sbp::run(g.graph, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.8);
  omp_set_num_threads(1);  // restore for subsequent tests
}

TEST(BestOf, WorksWithEveryVariant) {
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 4;
  p.num_edges = 1200;
  p.seed = 14;
  const auto g = generator::generate_dcsbm(p);
  for (const auto variant :
       {sbp::Variant::Metropolis, sbp::Variant::AsyncGibbs,
        sbp::Variant::Hybrid, sbp::Variant::BatchedGibbs}) {
    sbp::SbpConfig config;
    config.variant = variant;
    config.seed = 4;
    const auto outcome = eval::best_of(g.graph, config, 2);
    EXPECT_EQ(outcome.per_run_stats.size(), 2u)
        << sbp::variant_name(variant);
    // Best is no worse than either run's final state implies.
    EXPECT_GT(outcome.best.num_blocks, 0);
  }
}

TEST(ConvergenceWindow, WindowSizeIsConfigurable) {
  sbp::ConvergenceWindow w(1e-3, 1);  // single-pass window
  EXPECT_TRUE(w.record(0.0, 100.0));
  sbp::ConvergenceWindow w5(1e-3, 5);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(w5.record(0.0, 100.0));
  EXPECT_TRUE(w5.record(0.0, 100.0));
}

TEST(MatrixMarketIo, SkewSymmetricMirrors) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 1\n"
      "2 1 -4.0\n");
  const Graph g = graph::read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2);  // (1,0) and mirrored (0,1)
}

TEST(Modularity, SelfLoopsCountAsWithinEdges) {
  // One self-loop on an otherwise split graph contributes to its own
  // community's within mass.
  const std::vector<Edge> edges = {{0, 0}, {1, 2}, {2, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> split = {0, 1, 1};
  // within_0 = 1, d_out_0 = d_in_0 = 1; within_1 = 2, d = 2 each.
  // Q = (1/3 − 1/9) + (2/3 − 4/9) = 2/9 + 2/9.
  EXPECT_NEAR(metrics::modularity(g, split), 4.0 / 9.0, 1e-12);
}

TEST(Args, BareFlagHasEmptyStringValue) {
  const char* argv[] = {"prog", "--flag"};
  const util::Args args(2, argv);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get_string("flag", "default"), "");
}

TEST(Blockmodel, FromAssignmentAllowsUnusedTrailingLabels) {
  // num_blocks may exceed the labels actually used (empty blocks are
  // representable; the MCMC layer just never creates them).
  const std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(2, edges);
  const std::vector<std::int32_t> assignment = {0, 1};
  const auto b = blockmodel::Blockmodel::from_assignment(g, assignment, 4);
  EXPECT_EQ(b.num_blocks(), 4);
  EXPECT_EQ(b.block_size(2), 0);
  EXPECT_EQ(b.block_size(3), 0);
  EXPECT_EQ(b.degree_out(3), 0);
}

}  // namespace
}  // namespace hsbp
