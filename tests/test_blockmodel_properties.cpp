#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "metrics/pairwise.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Graph;
using graph::Vertex;

/// Applies a random label permutation to an assignment.
std::vector<std::int32_t> permute_labels(
    const std::vector<std::int32_t>& assignment, std::int32_t num_blocks,
    util::Rng& rng) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(num_blocks));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  std::vector<std::int32_t> out(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    out[i] = perm[static_cast<std::size_t>(assignment[i])];
  }
  return out;
}

class RelabelInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelabelInvariance, MdlIsInvariantUnderLabelPermutation) {
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 6;
  p.num_edges = 1200;
  p.seed = GetParam();
  const auto g = generator::generate_dcsbm(p);

  util::Rng rng(GetParam() * 3 + 1);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  const double original = mdl(b, g.graph.num_vertices(), g.graph.num_edges());

  for (int trial = 0; trial < 5; ++trial) {
    const auto permuted = permute_labels(g.ground_truth, 6, rng);
    const auto pb = Blockmodel::from_assignment(g.graph, permuted, 6);
    EXPECT_NEAR(mdl(pb, g.graph.num_vertices(), g.graph.num_edges()),
                original, 1e-8);
  }
}

TEST_P(RelabelInvariance, MetricsAreInvariantUnderLabelPermutation) {
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 6;
  p.num_edges = 1200;
  p.seed = GetParam();
  const auto g = generator::generate_dcsbm(p);

  util::Rng rng(GetParam() * 7 + 5);
  // A degraded labeling so metrics are non-trivial.
  std::vector<std::int32_t> noisy = g.ground_truth;
  for (auto& label : noisy) {
    if (rng.uniform() < 0.2) {
      label = static_cast<std::int32_t>(rng.uniform_int(6));
    }
  }
  const double nmi0 = metrics::nmi(g.ground_truth, noisy);
  const double ari0 = metrics::adjusted_rand_index(g.ground_truth, noisy);
  const double mod0 = metrics::modularity(g.graph, noisy);

  const auto permuted = permute_labels(noisy, 6, rng);
  EXPECT_NEAR(metrics::nmi(g.ground_truth, permuted), nmi0, 1e-10);
  EXPECT_NEAR(metrics::adjusted_rand_index(g.ground_truth, permuted), ari0,
              1e-10);
  EXPECT_NEAR(metrics::modularity(g.graph, permuted), mod0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabelInvariance,
                         ::testing::Values(101, 202, 303, 404));

TEST(MdlBounds, ModelTermGrowsWithBlockCount) {
  // E·h(C²/E) + V·log C is increasing in C for fixed V, E.
  double previous = 0.0;
  for (BlockId c = 1; c <= 64; c *= 2) {
    const double value = model_description_length(1000, 10000, c);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(MdlBounds, FinerTruePartitionLowersMdlOnStructuredGraph) {
  // Ground truth must beat both the 1-block null and random partitions
  // of the same size on a strongly structured graph.
  generator::DcsbmParams p;
  p.num_vertices = 400;
  p.num_communities = 8;
  p.num_edges = 4000;
  p.ratio_within_between = 6.0;
  p.seed = 505;
  const auto g = generator::generate_dcsbm(p);

  const auto truth = Blockmodel::from_assignment(g.graph, g.ground_truth, 8);
  const double truth_mdl =
      mdl(truth, g.graph.num_vertices(), g.graph.num_edges());
  EXPECT_LT(truth_mdl,
            null_mdl(g.graph.num_vertices(), g.graph.num_edges()));

  util::Rng rng(506);
  std::vector<std::int32_t> random_state(400);
  for (auto& label : random_state) {
    label = static_cast<std::int32_t>(rng.uniform_int(8));
  }
  const auto random_b =
      Blockmodel::from_assignment(g.graph, random_state, 8);
  EXPECT_LT(truth_mdl,
            mdl(random_b, g.graph.num_vertices(), g.graph.num_edges()));
}

TEST(MetricAgreement, PerfectRecoveryAgreesAcrossMetrics) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2, 0, 1, 2};
  const std::vector<std::int32_t> y = {2, 2, 0, 0, 1, 1, 2, 0, 1};
  EXPECT_NEAR(metrics::nmi(x, y), 1.0, 1e-12);
  EXPECT_NEAR(metrics::adjusted_rand_index(x, y), 1.0, 1e-12);
  const auto pw = metrics::pairwise_scores(x, y);
  EXPECT_NEAR(pw.f1, 1.0, 1e-12);
}

TEST(MetricAgreement, DegradationMovesAllMetricsDown) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 2400;
  p.seed = 507;
  const auto g = generator::generate_dcsbm(p);

  util::Rng rng(508);
  double last_nmi = 1.1, last_ari = 1.1, last_f1 = 1.1;
  for (const double noise : {0.0, 0.2, 0.5, 0.9}) {
    std::vector<std::int32_t> noisy = g.ground_truth;
    for (auto& label : noisy) {
      if (rng.uniform() < noise) {
        label = static_cast<std::int32_t>(rng.uniform_int(5));
      }
    }
    const double n = metrics::nmi(g.ground_truth, noisy);
    const double a = metrics::adjusted_rand_index(g.ground_truth, noisy);
    const double f = metrics::pairwise_scores(g.ground_truth, noisy).f1;
    EXPECT_LT(n, last_nmi);
    EXPECT_LT(a, last_ari);
    EXPECT_LT(f, last_f1);
    last_nmi = n;
    last_ari = a;
    last_f1 = f;
  }
}

}  // namespace
}  // namespace hsbp::blockmodel
