#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "generator/dcsbm.hpp"
#include "metrics/contingency.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace hsbp::metrics {
namespace {

using graph::Edge;
using graph::Graph;

// ------------------------------------------------------------- contingency

TEST(ContingencyTable, HandComputed) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1};
  const std::vector<std::int32_t> y = {0, 1, 0, 1};
  const ContingencyTable t(x, y);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_EQ(t.num_clusters_x(), 2u);
  EXPECT_EQ(t.num_clusters_y(), 2u);
  EXPECT_NEAR(t.entropy_x(), std::log(2.0), 1e-12);
  EXPECT_NEAR(t.entropy_y(), std::log(2.0), 1e-12);
  EXPECT_NEAR(t.mutual_information(), 0.0, 1e-12);  // independent
}

TEST(ContingencyTable, PerfectDependence) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2};
  const ContingencyTable t(x, x);
  EXPECT_NEAR(t.mutual_information(), t.entropy_x(), 1e-12);
}

TEST(ContingencyTable, SparseLabelsCompacted) {
  const std::vector<std::int32_t> x = {100, 100, 7};
  const std::vector<std::int32_t> y = {3, 3, 900};
  const ContingencyTable t(x, y);
  EXPECT_EQ(t.num_clusters_x(), 2u);
  EXPECT_EQ(t.num_clusters_y(), 2u);
}

TEST(ContingencyTable, Errors) {
  const std::vector<std::int32_t> a = {0, 1};
  const std::vector<std::int32_t> b = {0};
  EXPECT_THROW(ContingencyTable(a, b), std::invalid_argument);
  EXPECT_THROW(ContingencyTable({}, {}), std::invalid_argument);
  const std::vector<std::int32_t> neg = {0, -1};
  EXPECT_THROW(ContingencyTable(neg, a), std::invalid_argument);
}

// --------------------------------------------------------------------- NMI

TEST(Nmi, IdenticalLabelingsScoreOne) {
  const std::vector<std::int32_t> x = {0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(nmi(x, x), 1.0, 1e-12);
}

TEST(Nmi, PermutedLabelsScoreOne) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> y = {2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(nmi(x, y), 1.0, 1e-12);
}

TEST(Nmi, IsSymmetric) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2, 0, 1};
  const std::vector<std::int32_t> y = {0, 1, 1, 1, 2, 0, 0, 2};
  EXPECT_NEAR(nmi(x, y), nmi(y, x), 1e-12);
}

TEST(Nmi, DegenerateConventions) {
  const std::vector<std::int32_t> constant = {5, 5, 5, 5};
  const std::vector<std::int32_t> varied = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(nmi(constant, constant), 1.0);
  EXPECT_DOUBLE_EQ(nmi(constant, varied), 0.0);
  EXPECT_DOUBLE_EQ(nmi(varied, constant), 0.0);
}

TEST(Nmi, IndependentLargeLabelingsNearZero) {
  util::Rng rng(404);
  std::vector<std::int32_t> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(8));
    y[i] = static_cast<std::int32_t>(rng.uniform_int(8));
  }
  EXPECT_LT(nmi(x, y), 0.05);
}

TEST(Nmi, BoundedInUnitInterval) {
  util::Rng rng(405);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int32_t> x(100), y(100);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<std::int32_t>(rng.uniform_int(5));
      y[i] = static_cast<std::int32_t>(rng.uniform_int(3));
    }
    const double value = nmi(x, y);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0 + 1e-12);
  }
}

// -------------------------------------------------------------- modularity

TEST(Modularity, SingleCommunityIsZero) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> one = {0, 0, 0};
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, HandComputedTwoCliques) {
  // Two bidirected triangles, split correctly:
  // Q = Σ_r [6/12 − (6/12)²] = 2·(0.5 − 0.25) = 0.5.
  std::vector<Edge> edges;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 3; ++i) {
      const auto a = static_cast<graph::Vertex>(3 * c + i);
      const auto b = static_cast<graph::Vertex>(3 * c + (i + 1) % 3);
      edges.emplace_back(a, b);
      edges.emplace_back(b, a);
    }
  }
  const Graph g = Graph::from_edges(6, edges);
  const std::vector<std::int32_t> split = {0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(modularity(g, split), 0.5, 1e-12);
}

TEST(Modularity, GoodSplitBeatsBadSplit) {
  std::vector<Edge> edges;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 3; ++i) {
      const auto a = static_cast<graph::Vertex>(3 * c + i);
      const auto b = static_cast<graph::Vertex>(3 * c + (i + 1) % 3);
      edges.emplace_back(a, b);
    }
  }
  const Graph g = Graph::from_edges(6, edges);
  const std::vector<std::int32_t> good = {0, 0, 0, 1, 1, 1};
  const std::vector<std::int32_t> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(modularity(g, good), modularity(g, bad));
}

TEST(Modularity, EmptyEdgeSetIsZero) {
  const Graph g = Graph::from_edges(3, {});
  const std::vector<std::int32_t> any = {0, 1, 2};
  EXPECT_EQ(modularity(g, any), 0.0);
}

TEST(Modularity, Errors) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  const std::vector<std::int32_t> wrong_size = {0};
  EXPECT_THROW(modularity(g, wrong_size), std::invalid_argument);
  const std::vector<std::int32_t> negative = {0, -1};
  EXPECT_THROW(modularity(g, negative), std::invalid_argument);
}

// ---------------------------------------------------------- normalized MDL

TEST(NormalizedMdl, OneBlockPartitionScoresOne) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {1, 0}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> one = {0, 0, 0};
  EXPECT_NEAR(normalized_mdl(g, one), 1.0, 1e-9);
}

TEST(NormalizedMdl, StructuredFitScoresBelowOne) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 4;
  p.num_edges = 3000;
  p.ratio_within_between = 6.0;
  p.seed = 21;
  const auto generated = generator::generate_dcsbm(p);
  const double value =
      normalized_mdl(generated.graph, generated.ground_truth);
  EXPECT_LT(value, 0.99);
  EXPECT_GT(value, 0.3);
}

TEST(NormalizedMdl, ScalarOverloadConsistent) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const std::vector<std::int32_t> split = {0, 0, 1, 1};
  const double via_graph = normalized_mdl(g, split);
  const auto b = hsbp::blockmodel::Blockmodel::from_assignment(g, split, 2);
  const double via_scalar = normalized_mdl(
      hsbp::blockmodel::mdl(b, 4, 4), g.num_vertices(), g.num_edges());
  EXPECT_NEAR(via_graph, via_scalar, 1e-12);
}

}  // namespace
}  // namespace hsbp::metrics
