#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "generator/dcsbm.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

/// 5 vertices, 2 blocks {0,1,2} and {3,4}; includes a self-loop and a
/// parallel edge so every bookkeeping path is exercised.
Graph hand_graph() {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3},
                                   {3, 4}, {4, 3}, {1, 1}, {0, 3}};
  return Graph::from_edges(5, edges);
}

const std::vector<std::int32_t> kHandAssignment = {0, 0, 0, 1, 1};

TEST(Blockmodel, HandComputedMatrix) {
  const Graph g = hand_graph();
  const auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  // Within block 0: (0,1),(1,2),(2,0),(1,1) → M[0][0] = 4.
  EXPECT_EQ(b.matrix().get(0, 0), 4);
  // Block 0 → block 1: two copies of (0,3) → M[0][1] = 2.
  EXPECT_EQ(b.matrix().get(0, 1), 2);
  EXPECT_EQ(b.matrix().get(1, 0), 0);
  // Within block 1: (3,4),(4,3) → M[1][1] = 2.
  EXPECT_EQ(b.matrix().get(1, 1), 2);
  EXPECT_EQ(b.matrix().total(), g.num_edges());
}

TEST(Blockmodel, HandComputedDegreesAndSizes) {
  const Graph g = hand_graph();
  const auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  EXPECT_EQ(b.degree_out(0), 6);
  EXPECT_EQ(b.degree_in(0), 4);
  EXPECT_EQ(b.degree_out(1), 2);
  EXPECT_EQ(b.degree_in(1), 4);
  EXPECT_EQ(b.block_size(0), 3);
  EXPECT_EQ(b.block_size(1), 2);
  EXPECT_EQ(b.degree_total(0), 10);
}

TEST(Blockmodel, IdentityPartition) {
  const Graph g = hand_graph();
  const auto b = Blockmodel::identity(g);
  EXPECT_EQ(b.num_blocks(), 5);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(b.block_of(v), v);
    EXPECT_EQ(b.block_size(v), 1);
    EXPECT_EQ(b.degree_out(v), g.out_degree(v));
    EXPECT_EQ(b.degree_in(v), g.in_degree(v));
  }
  EXPECT_TRUE(b.check_consistency(g));
}

TEST(Blockmodel, ValidationErrors) {
  const Graph g = hand_graph();
  const std::vector<std::int32_t> short_assignment = {0, 0, 0};
  EXPECT_THROW(Blockmodel::from_assignment(g, short_assignment, 1),
               std::invalid_argument);
  const std::vector<std::int32_t> out_of_range = {0, 0, 0, 0, 2};
  EXPECT_THROW(Blockmodel::from_assignment(g, out_of_range, 2),
               std::invalid_argument);
  const std::vector<std::int32_t> negative = {0, 0, 0, 0, -1};
  EXPECT_THROW(Blockmodel::from_assignment(g, negative, 2),
               std::invalid_argument);
}

TEST(Blockmodel, MoveVertexUpdatesEverything) {
  const Graph g = hand_graph();
  auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  b.move_vertex(g, 2, 1);  // vertex 2 (edges 1→2, 2→0) to block 1
  EXPECT_EQ(b.block_of(2), 1);
  EXPECT_EQ(b.block_size(0), 2);
  EXPECT_EQ(b.block_size(1), 3);
  EXPECT_TRUE(b.check_consistency(g));
  // M[0][0] loses (1,2) and (2,0): 4 → 2.
  EXPECT_EQ(b.matrix().get(0, 0), 2);
  // (1,2) becomes block0→block1, (2,0) becomes block1→block0.
  EXPECT_EQ(b.matrix().get(0, 1), 3);
  EXPECT_EQ(b.matrix().get(1, 0), 1);
}

TEST(Blockmodel, MoveVertexWithSelfLoop) {
  const Graph g = hand_graph();
  auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  b.move_vertex(g, 1, 1);  // vertex 1 has the (1,1) self-loop
  EXPECT_TRUE(b.check_consistency(g));
  // Self-loop moved to the diagonal of block 1.
  EXPECT_EQ(b.matrix().get(1, 1), 3);
}

TEST(Blockmodel, MoveToSameBlockIsNoop) {
  const Graph g = hand_graph();
  auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  const auto before = b.matrix().get(0, 0);
  b.move_vertex(g, 0, 0);
  EXPECT_EQ(b.matrix().get(0, 0), before);
  EXPECT_EQ(b.block_size(0), 3);
}

TEST(Blockmodel, MoveThereAndBackRestoresState) {
  const Graph g = hand_graph();
  auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  const auto reference = Blockmodel::from_assignment(g, kHandAssignment, 2);
  b.move_vertex(g, 0, 1);
  b.move_vertex(g, 0, 0);
  EXPECT_EQ(b.assignment(), reference.assignment());
  for (BlockId r = 0; r < 2; ++r) {
    EXPECT_EQ(b.degree_out(r), reference.degree_out(r));
    EXPECT_EQ(b.degree_in(r), reference.degree_in(r));
    for (BlockId s = 0; s < 2; ++s) {
      EXPECT_EQ(b.matrix().get(r, s), reference.matrix().get(r, s));
    }
  }
}

TEST(Blockmodel, RebuildMatchesFromAssignment) {
  const Graph g = hand_graph();
  auto b = Blockmodel::from_assignment(g, kHandAssignment, 2);
  const std::vector<std::int32_t> other = {1, 0, 1, 0, 1};
  b.rebuild(g, other);
  const auto fresh = Blockmodel::from_assignment(g, other, 2);
  EXPECT_EQ(b.assignment(), fresh.assignment());
  for (BlockId r = 0; r < 2; ++r) {
    for (BlockId s = 0; s < 2; ++s) {
      EXPECT_EQ(b.matrix().get(r, s), fresh.matrix().get(r, s));
    }
  }
  EXPECT_TRUE(b.check_consistency(g));
}

/// Property: arbitrary random move sequences stay consistent with a
/// from-scratch rebuild.
class MoveSequenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoveSequenceProperty, IncrementalEqualsRebuilt) {
  generator::DcsbmParams params;
  params.num_vertices = 120;
  params.num_communities = 6;
  params.num_edges = 900;
  params.seed = GetParam();
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;

  auto b = Blockmodel::from_assignment(g, generated.ground_truth, 6);
  util::Rng rng(GetParam() * 31 + 7);
  for (int step = 0; step < 200; ++step) {
    const auto v = static_cast<Vertex>(rng.uniform_int(120));
    const auto to = static_cast<BlockId>(rng.uniform_int(6));
    if (b.block_size(b.block_of(v)) <= 1) continue;  // keep blocks non-empty
    b.move_vertex(g, v, to);
  }
  EXPECT_TRUE(b.check_consistency(g));
  EXPECT_EQ(b.matrix().total(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveSequenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hsbp::blockmodel
