/// Forced-dispatch bit-identity of the SIMD layer (DESIGN §13): every
/// dispatch level the host supports — scalar, SSE2, AVX2 — must produce
/// the SAME bits as the audited scalar reference, for the low-level
/// primitives and for the full move kernels on random moves across the
/// three graph densities. All comparisons are exact ==, never
/// EXPECT_NEAR: the canonical strided-4 accumulation order makes the
/// levels literally interchangeable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/simd_kernels.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "generator/dcsbm.hpp"
#include "reference_kernels.hpp"
#include "sbp/hastings.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Graph;
using graph::Vertex;
namespace usimd = util::simd;

/// Forces a dispatch level for the test body and restores the previous
/// one on scope exit, so test order never leaks a forced level.
class ScopedLevel {
 public:
  explicit ScopedLevel(usimd::Level level) : saved_(usimd::active_level()) {
    usimd::set_level(level);
  }
  ~ScopedLevel() { usimd::set_level(saved_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  usimd::Level saved_;
};

std::vector<usimd::Level> supported_levels() {
  std::vector<usimd::Level> levels;
  for (const auto level :
       {usimd::Level::kScalar, usimd::Level::kSse2, usimd::Level::kAvx2}) {
    if (level <= usimd::max_supported_level()) levels.push_back(level);
  }
  return levels;
}

TEST(SimdDispatch, ParseLevelRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(usimd::parse_level("scalar"), usimd::Level::kScalar);
  EXPECT_EQ(usimd::parse_level("sse2"), usimd::Level::kSse2);
  EXPECT_EQ(usimd::parse_level("avx2"), usimd::Level::kAvx2);
  EXPECT_EQ(usimd::parse_level("auto"), std::nullopt);
  EXPECT_EQ(usimd::parse_level("neon"), std::nullopt);
  EXPECT_EQ(usimd::parse_level(""), std::nullopt);
  for (const auto level : supported_levels()) {
    EXPECT_EQ(usimd::parse_level(usimd::level_name(level)), level);
  }
}

TEST(SimdDispatch, SetLevelClampsToHostSupport) {
  const usimd::Level saved = usimd::active_level();
  usimd::set_level(usimd::Level::kAvx2);
  EXPECT_LE(usimd::active_level(), usimd::max_supported_level());
  usimd::set_level(usimd::Level::kScalar);
  EXPECT_EQ(usimd::active_level(), usimd::Level::kScalar);
  usimd::set_level(saved);
}

/// The primitives on raw arrays: every level must match the scalar
/// level bit-for-bit across awkward lengths (0, 1, partial vectors,
/// tails of every residue mod 8).
TEST(SimdPrimitives, BitIdenticalAcrossLevelsAndLengths) {
  util::Rng rng(20260808);
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<std::int32_t> base(512);
    for (auto& x : base)
      x = static_cast<std::int32_t>(
          rng.uniform_int(std::uint64_t{1} << 20));
    std::vector<std::int32_t> idx(n);
    for (auto& i : idx)
      i = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(base.size())));
    std::vector<double> terms(n), kd(n), fnum(n), fden(n), bnum(n), bden(n);
    std::vector<Count> newv(n), oldv(n), fa(n), fb(n), fc(n);
    for (std::size_t i = 0; i < n; ++i) {
      terms[i] = rng.uniform() * 100.0 - 50.0;
      kd[i] = static_cast<double>(1 + rng.uniform_int(std::uint64_t{16}));
      fnum[i] = rng.uniform() * 40.0 + 1.0;
      fden[i] = rng.uniform() * 40.0 + 2.0;
      bnum[i] = rng.uniform() * 40.0 + 1.0;
      bden[i] = rng.uniform() * 40.0 + 2.0;
      // Straddle the xlogx table boundary so the live-log fallback
      // lanes are exercised too.
      oldv[i] = static_cast<Count>(rng.uniform_int(
          static_cast<std::uint64_t>(2 * kXlogxTableSize)));
      newv[i] = static_cast<Count>(rng.uniform_int(
          static_cast<std::uint64_t>(2 * kXlogxTableSize)));
      fb[i] = static_cast<Count>(rng.uniform_int(
          static_cast<std::uint64_t>(kXlogxTableSize)));
      fc[i] = static_cast<Count>(rng.uniform_int(
          static_cast<std::uint64_t>(kXlogxTableSize)));
      fa[i] = fb[i] + fc[i];
    }

    // Scalar results are the reference bits.
    std::vector<std::int32_t> gathered_ref(n, -1);
    double strided_ref = 0.0, fwd_ref = 0.0, bwd_ref = 0.0;
    double diff_ref = 0.0, fold_ref = 0.0;
    {
      const ScopedLevel force(usimd::Level::kScalar);
      usimd::gather_i32(base.data(), idx.data(), n, gathered_ref.data());
      strided_ref = usimd::strided_sum(terms.data(), n);
      usimd::ratio_pair_sums(kd.data(), fnum.data(), fden.data(), bnum.data(),
                             bden.data(), n, &fwd_ref, &bwd_ref);
      diff_ref = simd::xlogx_diff_sum(newv.data(), oldv.data(), n);
      fold_ref = simd::merge_fold_sum(fa.data(), fb.data(), fc.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(gathered_ref[i], base[static_cast<std::size_t>(idx[i])]);
    }

    for (const auto level : supported_levels()) {
      const ScopedLevel force(level);
      std::vector<std::int32_t> gathered(n, -2);
      usimd::gather_i32(base.data(), idx.data(), n, gathered.data());
      EXPECT_EQ(gathered, gathered_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
      EXPECT_EQ(usimd::strided_sum(terms.data(), n), strided_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
      double fwd = 0.0, bwd = 0.0;
      usimd::ratio_pair_sums(kd.data(), fnum.data(), fden.data(), bnum.data(),
                             bden.data(), n, &fwd, &bwd);
      EXPECT_EQ(fwd, fwd_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
      EXPECT_EQ(bwd, bwd_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
      EXPECT_EQ(simd::xlogx_diff_sum(newv.data(), oldv.data(), n), diff_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
      EXPECT_EQ(simd::merge_fold_sum(fa.data(), fb.data(), fc.data(), n),
                fold_ref)
          << "level=" << usimd::level_name(level) << " n=" << n;
    }
  }
}

/// The async phase can stage transiently negative post-move counts
/// (fresh membership reads against a pass-frozen matrix). xlogx_count
/// routes them through the live-log fallback — a NaN term — and every
/// vector level must do the same instead of gathering table[negative]
/// out of bounds (the scalar/AVX2 divergence this test pins down).
/// NaN != NaN, so the comparison is on bits, not values.
TEST(SimdPrimitives, NegativeCountsTakeFallbackLaneBitIdentically) {
  util::Rng rng(20260809);
  for (std::size_t n = 1; n <= 19; ++n) {
    std::vector<Count> newv(n), oldv(n);
    for (std::size_t i = 0; i < n; ++i) {
      oldv[i] = static_cast<Count>(rng.uniform_int(std::uint64_t{8}));
      newv[i] = oldv[i] + 1;
    }
    // One negative staged value per group of 4 so the vector loop body
    // (not just the scalar tail) sees it.
    for (std::size_t i = 0; i < n; i += 4) newv[i] = -1;

    double ref;
    {
      const ScopedLevel force(usimd::Level::kScalar);
      ref = simd::xlogx_diff_sum(newv.data(), oldv.data(), n);
    }
    EXPECT_TRUE(std::isnan(ref)) << "n=" << n;
    for (const auto level : supported_levels()) {
      const ScopedLevel force(level);
      const double got = simd::xlogx_diff_sum(newv.data(), oldv.data(), n);
      EXPECT_EQ(std::memcmp(&got, &ref, sizeof(double)), 0)
          << "level=" << usimd::level_name(level) << " n=" << n
          << " got=" << got << " ref=" << ref;
    }
  }
}

struct SimdDensityCase {
  graph::Vertex vertices;
  std::int32_t communities;
  graph::EdgeCount edges;
};

/// Sparse, medium, and dense: density controls the neighbor fan-out and
/// hence whether the kernels take their small-n scalar or batched
/// vector paths — both must hold the identity.
const SimdDensityCase kSimdDensities[] = {
    {120, 6, 360},    // sparse: avg degree 3
    {120, 6, 1800},   // medium: avg degree 15
    {120, 6, 7200},   // dense: avg degree 60
};

class SimdKernelIdentity : public ::testing::TestWithParam<int> {};

/// The full move-kernel chain — gather, ΔMDL, Hastings correction,
/// post-move cell lookup — forced to each supported dispatch level,
/// compared == against the audited reference on random moves.
TEST_P(SimdKernelIdentity, MoveChainBitIdenticalAtEveryLevel) {
  const SimdDensityCase& dc = kSimdDensities[GetParam()];

  generator::DcsbmParams params;
  params.num_vertices = dc.vertices;
  params.num_communities = dc.communities;
  params.num_edges = dc.edges;
  params.seed = 4242;
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;

  util::Rng rng(913 + static_cast<std::uint64_t>(GetParam()));
  std::vector<std::int32_t> state(static_cast<std::size_t>(dc.vertices));
  for (auto& label : state) {
    label = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
  }
  auto b = Blockmodel::from_assignment(g, state, dc.communities);
  const FlatMembershipView view{b.assignment().data()};
  const auto ref_view = [&b](Vertex u) { return b.block_of(u); };

  MoveScratch scratch;
  int compared = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto v = static_cast<Vertex>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.vertices)));
    const BlockId from = b.block_of(v);
    const auto to = static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
    if (to == from) continue;

    const auto ref_nb =
        reference::gather_neighbor_blocks_view(g, ref_view, v);
    const auto ref_delta = reference::vertex_move_delta(b, from, to, ref_nb);
    const double ref_corr =
        reference::hastings_correction(b, ref_nb, from, to, ref_delta);
    const auto ref_merge = reference::merge_delta_mdl(
        b, from, to, g.num_vertices(), g.num_edges());

    for (const auto level : supported_levels()) {
      const ScopedLevel force(level);
      gather_neighbor_blocks_into(g, view, v, scratch);
      EXPECT_EQ(scratch.nb.out, ref_nb.out)
          << "level=" << usimd::level_name(level);
      EXPECT_EQ(scratch.nb.in, ref_nb.in)
          << "level=" << usimd::level_name(level);
      vertex_move_delta_into(b, from, to, scratch.nb, scratch);
      EXPECT_EQ(scratch.delta.delta_mdl, ref_delta.delta_mdl)
          << "level=" << usimd::level_name(level) << " v=" << v << " from="
          << from << " to=" << to;
      EXPECT_EQ(sbp::hastings_correction(b, from, to, scratch), ref_corr)
          << "level=" << usimd::level_name(level) << " v=" << v << " from="
          << from << " to=" << to;
      EXPECT_EQ(merge_delta_mdl(b, from, to, g.num_vertices(), g.num_edges()),
                ref_merge)
          << "level=" << usimd::level_name(level) << " merge " << from
          << " into " << to;
    }

    ++compared;
    // Walk the chain so later trials see evolving, messy matrices.
    if (b.block_size(from) > 1 && trial % 3 == 0) b.move_vertex(g, v, to);
  }
  EXPECT_GT(compared, 200);
}

INSTANTIATE_TEST_SUITE_P(Densities, SimdKernelIdentity,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace hsbp::blockmodel
