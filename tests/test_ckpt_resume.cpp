// Kill-and-resume determinism: a checkpointed run that dies (simulated
// kill, failed write, graceful shutdown) and resumes must reproduce the
// uninterrupted run's assignment and MDL exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/config.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "generator/dcsbm.hpp"
#include "sample/sample_sbp.hpp"
#include "sbp/sbp.hpp"
#include "util/errors.hpp"

namespace hsbp {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 120;
  p.num_communities = 4;
  p.num_edges = 900;
  p.ratio_within_between = 4.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

/// One RNG stream pins the thread budget, which resume requires to
/// match, and keeps every variant's phase order deterministic — the
/// precondition for the exact-reproduction assertions below.
sbp::SbpConfig small_config(sbp::Variant variant) {
  sbp::SbpConfig config;
  config.variant = variant;
  config.seed = 11;
  config.num_threads = 1;
  return config;
}

/// Runs to completion with a passive injector just to learn how many
/// phase boundaries the run crosses.
int count_phases(const graph::Graph& graph, const sbp::SbpConfig& config) {
  ckpt::FaultInjector probe;
  ckpt::CheckpointConfig ck;
  ck.fault = &probe;
  sbp::run(graph, config, ck);
  return probe.phases_seen();
}

void expect_identical(const sbp::SbpResult& resumed,
                      const sbp::SbpResult& baseline, const char* tag) {
  EXPECT_EQ(resumed.assignment, baseline.assignment) << tag;
  EXPECT_EQ(resumed.num_blocks, baseline.num_blocks) << tag;
  EXPECT_EQ(resumed.mdl, baseline.mdl) << tag;  // exact, not approximate
  EXPECT_EQ(resumed.stats.outer_iterations, baseline.stats.outer_iterations)
      << tag;
  EXPECT_EQ(resumed.stats.mcmc_iterations, baseline.stats.mcmc_iterations)
      << tag;
}

void kill_and_resume_reproduces(sbp::Variant variant, const char* tag) {
  const auto g = planted(5);
  const auto config = small_config(variant);
  const auto baseline = sbp::run(g.graph, config);

  const int phases = count_phases(g.graph, config);
  ASSERT_GE(phases, 2) << tag;

  const std::string path = temp_path(std::string("kill_") + tag + ".ckpt");
  ckpt::FaultInjector fault;
  fault.kill_at_phase(phases / 2 + 1);  // mid-run; a snapshot exists
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  ck.fault = &fault;
  EXPECT_THROW(sbp::run(g.graph, config, ck), ckpt::SimulatedKill) << tag;
  ASSERT_TRUE(fs::exists(path)) << tag;

  ckpt::CheckpointConfig resume;
  resume.save_path = path;
  resume.resume_path = path;
  const auto resumed = sbp::run(g.graph, config, resume);
  EXPECT_FALSE(resumed.interrupted) << tag;
  expect_identical(resumed, baseline, tag);
  fs::remove(path);
}

TEST(KillAndResume, MetropolisReproducesUninterruptedRun) {
  kill_and_resume_reproduces(sbp::Variant::Metropolis, "sbp");
}

TEST(KillAndResume, HybridReproducesUninterruptedRun) {
  kill_and_resume_reproduces(sbp::Variant::Hybrid, "hsbp");
}

TEST(KillAndResume, FailedWriteLeavesPreviousCheckpointUsable) {
  const auto g = planted(5);
  const auto config = small_config(sbp::Variant::Metropolis);
  const auto baseline = sbp::run(g.graph, config);
  ASSERT_GE(baseline.stats.outer_iterations, 2);

  // The 2nd checkpoint write dies (disk full); the phase-1 snapshot
  // must survive and remain resumable.
  const std::string path = temp_path("fail_write.ckpt");
  ckpt::FaultInjector fault;
  fault.fail_write(2);
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  ck.fault = &fault;
  EXPECT_THROW(sbp::run(g.graph, config, ck), util::IoError);

  const auto survivor = ckpt::load_sbp_checkpoint(path);
  EXPECT_EQ(survivor.stats.outer_iterations, 1);

  ckpt::CheckpointConfig resume;
  resume.save_path = path;
  resume.resume_path = path;
  expect_identical(sbp::run(g.graph, config, resume), baseline,
                   "fail-write");
  fs::remove(path);
}

TEST(GracefulShutdown, InterruptedRunResumesToSameAnswer) {
  const auto g = planted(6);
  const auto config = small_config(sbp::Variant::Hybrid);
  const auto baseline = sbp::run(g.graph, config);
  ASSERT_GE(baseline.stats.outer_iterations, 2);

  const std::string path = temp_path("shutdown.ckpt");
  ckpt::clear_shutdown();
  ckpt::request_shutdown();
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  const auto partial = sbp::run(g.graph, config, ck);
  ckpt::clear_shutdown();

  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.stats.outer_iterations, 1);  // stopped at 1st boundary
  EXPECT_FALSE(partial.assignment.empty());      // best-so-far partition
  ASSERT_TRUE(fs::exists(path));

  ckpt::CheckpointConfig resume;
  resume.save_path = path;
  resume.resume_path = path;
  const auto resumed = sbp::run(g.graph, config, resume);
  EXPECT_FALSE(resumed.interrupted);
  expect_identical(resumed, baseline, "shutdown");
  fs::remove(path);
}

TEST(Resume, MissingCheckpointThrowsIoError) {
  const auto g = planted(5);
  ckpt::CheckpointConfig resume;
  resume.resume_path = temp_path("never_written.ckpt");
  EXPECT_THROW(
      sbp::run(g.graph, small_config(sbp::Variant::Metropolis), resume),
      util::IoError);
}

TEST(Resume, TornCheckpointRejected) {
  const auto g = planted(5);
  const auto config = small_config(sbp::Variant::Metropolis);
  const std::string path = temp_path("torn.ckpt");
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  sbp::run(g.graph, config, ck);

  // Tear the file the way a post-rename data loss would.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  ckpt::CheckpointConfig resume;
  resume.resume_path = path;
  EXPECT_THROW(sbp::run(g.graph, config, resume), util::DataError);
  fs::remove(path);
}

TEST(Resume, WrongGraphRejected) {
  const auto g = planted(5);
  const auto other = planted(99);
  const auto config = small_config(sbp::Variant::Metropolis);
  const std::string path = temp_path("wrong_graph.ckpt");
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  sbp::run(g.graph, config, ck);

  ckpt::CheckpointConfig resume;
  resume.resume_path = path;
  try {
    sbp::run(other.graph, config, resume);
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("different graph"),
              std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST(Resume, WrongSeedOrVariantRejected) {
  const auto g = planted(5);
  const auto config = small_config(sbp::Variant::Metropolis);
  const std::string path = temp_path("wrong_config.ckpt");
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  sbp::run(g.graph, config, ck);

  ckpt::CheckpointConfig resume;
  resume.resume_path = path;
  auto reseeded = config;
  reseeded.seed += 1;
  EXPECT_THROW(sbp::run(g.graph, reseeded, resume), util::DataError);
  auto revariant = config;
  revariant.variant = sbp::Variant::Hybrid;
  EXPECT_THROW(sbp::run(g.graph, revariant, resume), util::DataError);
  fs::remove(path);
}

TEST(Resume, ThreadBudgetMismatchRejected) {
  const auto g = planted(5);
  const auto config = small_config(sbp::Variant::Metropolis);
  const std::string path = temp_path("wrong_threads.ckpt");
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  sbp::run(g.graph, config, ck);

  auto rethreaded = config;
  rethreaded.num_threads = 2;
  ckpt::CheckpointConfig resume;
  resume.resume_path = path;
  try {
    sbp::run(g.graph, rethreaded, resume);
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

// ------------------------------------------------------ sample pipeline

sample::SampleConfig sample_config(sbp::Variant variant) {
  sample::SampleConfig config;
  config.base = small_config(variant);
  config.fraction = 0.5;
  config.finetune_max_iterations = 5;
  return config;
}

void expect_identical_pipeline(const sample::SamplePipelineResult& resumed,
                               const sample::SamplePipelineResult& baseline,
                               const char* tag) {
  EXPECT_EQ(resumed.assignment, baseline.assignment) << tag;
  EXPECT_EQ(resumed.num_blocks, baseline.num_blocks) << tag;
  EXPECT_EQ(resumed.mdl, baseline.mdl) << tag;
  EXPECT_EQ(resumed.frontier_assigned, baseline.frontier_assigned) << tag;
}

TEST(SamplePipeline, KillDuringSubgraphFitResumes) {
  const auto g = planted(7);
  const auto config = sample_config(sbp::Variant::Hybrid);
  const auto baseline = sample::run(g.graph, config);

  // Boundaries: one per nested fit phase, then the partition-done and
  // extrapolate-done stage boundaries.
  ckpt::FaultInjector probe;
  ckpt::CheckpointConfig probe_ck;
  probe_ck.fault = &probe;
  sample::run(g.graph, config, probe_ck);
  const int phases = probe.phases_seen();
  ASSERT_GE(phases, 4);  // at least two fit phases to kill between

  const std::string path = temp_path("sample_kill_fit.ckpt");
  ckpt::FaultInjector fault;
  fault.kill_at_phase(2);  // inside the stage-2 subgraph fit
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  ck.fault = &fault;
  EXPECT_THROW(sample::run(g.graph, config, ck), ckpt::SimulatedKill);
  // Only the partial-fit checkpoint exists so far.
  EXPECT_TRUE(fs::exists(path + ".stage2"));
  EXPECT_FALSE(fs::exists(path));

  ckpt::CheckpointConfig resume;
  resume.save_path = path;
  resume.resume_path = path;
  const auto resumed = sample::run(g.graph, config, resume);
  EXPECT_FALSE(resumed.interrupted);
  expect_identical_pipeline(resumed, baseline, "kill-in-fit");
  fs::remove(path);
  fs::remove(path + ".stage2");
}

TEST(SamplePipeline, KillAfterPartitionStageResumes) {
  const auto g = planted(7);
  const auto config = sample_config(sbp::Variant::Metropolis);
  const auto baseline = sample::run(g.graph, config);

  ckpt::FaultInjector probe;
  ckpt::CheckpointConfig probe_ck;
  probe_ck.fault = &probe;
  sample::run(g.graph, config, probe_ck);
  const int phases = probe.phases_seen();
  ASSERT_GE(phases, 3);

  // phases - 1 is the partition-done stage boundary: the pipeline
  // snapshot was written and the partial fit retired just before.
  const std::string path = temp_path("sample_kill_stage.ckpt");
  ckpt::FaultInjector fault;
  fault.kill_at_phase(phases - 1);
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  ck.fault = &fault;
  EXPECT_THROW(sample::run(g.graph, config, ck), ckpt::SimulatedKill);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".stage2"));

  ckpt::CheckpointConfig resume;
  resume.save_path = path;
  resume.resume_path = path;
  const auto resumed = sample::run(g.graph, config, resume);
  expect_identical_pipeline(resumed, baseline, "kill-at-stage");
  fs::remove(path);
}

TEST(SamplePipeline, MissingResumeFileThrowsIoError) {
  const auto g = planted(7);
  ckpt::CheckpointConfig resume;
  resume.resume_path = temp_path("sample_absent.ckpt");
  EXPECT_THROW(
      sample::run(g.graph, sample_config(sbp::Variant::Metropolis), resume),
      util::IoError);
}

TEST(SamplePipeline, WrongSamplerConfigRejected) {
  const auto g = planted(7);
  auto config = sample_config(sbp::Variant::Metropolis);
  const std::string path = temp_path("sample_config.ckpt");
  ckpt::CheckpointConfig ck;
  ck.save_path = path;
  sample::run(g.graph, config, ck);

  config.sampler = sample::SamplerKind::UniformRandom;
  ckpt::CheckpointConfig resume;
  resume.resume_path = path;
  EXPECT_THROW(sample::run(g.graph, config, resume), util::DataError);
  fs::remove(path);
}

}  // namespace
}  // namespace hsbp
