#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sample/extrapolate.hpp"
#include "sample/sample_sbp.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::sample {
namespace {

using graph::Graph;
using graph::Vertex;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 3000;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

TEST(Extrapolate, SampledKeepLabelsNeighborsJoinPlurality) {
  //   0──1   sampled: {0, 1, 2} with blocks {0, 0, 1};
  //   │      3 touches 0 and 1 (block 0 twice) and 2 (block 1 once).
  //   2   4 is isolated → fallback = largest block (0).
  const Graph g = Graph::from_edges(
      5, {{{0, 1}, {0, 2}, {3, 0}, {3, 1}, {2, 3}}});
  SampledGraph sampled;
  sampled.to_full = {0, 1, 2};
  sampled.to_sample = {0, 1, 2, -1, -1};
  const std::vector<std::int32_t> labels = {0, 0, 1};

  const auto out = extrapolate(g, sampled, labels, 2);
  EXPECT_EQ(out.assignment, (std::vector<std::int32_t>{0, 0, 1, 0, 0}));
  EXPECT_EQ(out.frontier_assigned, 1);
  EXPECT_EQ(out.isolated_assigned, 1);
  EXPECT_TRUE(out.model.check_consistency(g));
}

TEST(Extrapolate, ChainsPropagateThroughUnsampledVertices) {
  // 0 (sampled) — 1 — 2 — 3: the whole chain inherits block 0 via BFS.
  const Graph g = Graph::from_edges(4, {{{0, 1}, {1, 2}, {2, 3}}});
  SampledGraph sampled;
  sampled.to_full = {0};
  sampled.to_sample = {0, -1, -1, -1};
  const auto out = extrapolate(g, sampled, std::vector<std::int32_t>{0}, 1);
  EXPECT_EQ(out.assignment, (std::vector<std::int32_t>{0, 0, 0, 0}));
  EXPECT_EQ(out.frontier_assigned, 3);
  EXPECT_EQ(out.isolated_assigned, 0);
}

TEST(Extrapolate, Validation) {
  const Graph g = Graph::from_edges(3, {{{0, 1}, {1, 2}}});
  SampledGraph sampled;
  sampled.to_full = {0, 1};
  sampled.to_sample = {0, 1, -1};
  EXPECT_THROW(extrapolate(g, sampled, std::vector<std::int32_t>{0}, 1),
               std::invalid_argument);  // size mismatch
  EXPECT_THROW(
      extrapolate(g, sampled, std::vector<std::int32_t>{0, 5}, 2),
      std::invalid_argument);  // label outside [0, C)
  EXPECT_THROW(
      extrapolate(g, sampled, std::vector<std::int32_t>{0, 1}, 0),
      std::invalid_argument);  // no blocks
}

TEST(SamplePipeline, Validation) {
  const auto g = planted(31);
  SampleConfig config;
  config.fraction = 0.0;
  EXPECT_THROW(run(g.graph, config), std::invalid_argument);
  config.fraction = 1.5;
  EXPECT_THROW(run(g.graph, config), std::invalid_argument);
  config.fraction = 0.5;
  config.finetune_max_iterations = -1;
  EXPECT_THROW(run(g.graph, config), std::invalid_argument);
  EXPECT_THROW(run(Graph(), SampleConfig{}), std::invalid_argument);
}

TEST(SamplePipeline, CoversEveryVertexWithValidBlocks) {
  const auto g = planted(32);
  for (const SamplerKind kind : all_sampler_kinds()) {
    SampleConfig config;
    config.base.variant = sbp::Variant::Hybrid;
    config.base.seed = 3;
    config.sampler = kind;
    config.fraction = 0.3;
    const auto result = run(g.graph, config);

    ASSERT_EQ(result.assignment.size(),
              static_cast<std::size_t>(g.graph.num_vertices()));
    for (const std::int32_t block : result.assignment) {
      EXPECT_GE(block, 0);
      EXPECT_LT(block, result.num_blocks);
    }
    EXPECT_EQ(result.sample_vertices,
              sample_size(g.graph.num_vertices(), config.fraction));
    // Everything unsampled was labeled by exactly one of the two paths.
    EXPECT_EQ(result.frontier_assigned + result.isolated_assigned,
              g.graph.num_vertices() - result.sample_vertices);
    EXPECT_GT(result.timings.total_seconds, 0.0);
    EXPECT_GE(result.timings.partition_seconds, 0.0);
    EXPECT_GE(result.timings.finetune_seconds, 0.0);
  }
}

TEST(SamplePipeline, HalfSampleKeepsNinetyPercentOfFullQuality) {
  const auto g = planted(33);

  sbp::SbpConfig full_config;
  full_config.variant = sbp::Variant::Hybrid;
  full_config.seed = 7;
  const auto full = sbp::run(g.graph, full_config);
  const double full_nmi = metrics::nmi(g.ground_truth, full.assignment);

  SampleConfig config;
  config.base = full_config;
  config.sampler = SamplerKind::DegreeWeighted;
  config.fraction = 0.5;
  const auto pipeline = run(g.graph, config);
  const double pipeline_nmi =
      metrics::nmi(g.ground_truth, pipeline.assignment);

  EXPECT_GE(pipeline_nmi, 0.9 * full_nmi);
  // The MCMC-heavy stage really ran on the half-size subgraph.
  EXPECT_EQ(pipeline.sample_vertices, 150);
}

TEST(SamplePipeline, FullFractionMatchesPlainRunQuality) {
  const auto g = planted(34);

  sbp::SbpConfig base;
  base.variant = sbp::Variant::Hybrid;
  base.seed = 11;
  const auto plain = sbp::run(g.graph, base);

  SampleConfig config;
  config.base = base;
  config.fraction = 1.0;
  const auto pipeline = run(g.graph, config);

  // frac = 1.0: the subgraph fit IS the plain run (identical graph and
  // seed); fine-tune then keeps the better of pre/post MDL.
  EXPECT_LE(pipeline.mdl, plain.mdl + 1e-6);
  const double plain_nmi = metrics::nmi(g.ground_truth, plain.assignment);
  const double pipeline_nmi =
      metrics::nmi(g.ground_truth, pipeline.assignment);
  EXPECT_GE(pipeline_nmi, plain_nmi - 0.05);
  EXPECT_EQ(pipeline.sample_vertices, g.graph.num_vertices());
  EXPECT_EQ(pipeline.frontier_assigned, 0);
  EXPECT_EQ(pipeline.isolated_assigned, 0);
}

TEST(SamplePipeline, SeedDeterministicAcrossAllSamplers) {
  const auto g = planted(35);
  for (const SamplerKind kind : all_sampler_kinds()) {
    SampleConfig config;
    config.base.variant = sbp::Variant::Metropolis;
    config.base.seed = 21;
    config.sampler = kind;
    config.fraction = 0.4;
    const auto a = run(g.graph, config);
    const auto b = run(g.graph, config);
    EXPECT_EQ(a.assignment, b.assignment) << sampler_name(kind);
    EXPECT_EQ(a.num_blocks, b.num_blocks);
    EXPECT_DOUBLE_EQ(a.mdl, b.mdl);
  }
}

TEST(SamplePipeline, FinetuneDisabledStillCoversGraph) {
  const auto g = planted(36);
  SampleConfig config;
  config.base.seed = 4;
  config.fraction = 0.4;
  config.finetune_max_iterations = 0;
  const auto result = run(g.graph, config);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(g.graph.num_vertices()));
  EXPECT_EQ(result.finetune.iterations, 0);
  EXPECT_EQ(result.timings.finetune_seconds, 0.0);
  for (const std::int32_t block : result.assignment) {
    EXPECT_GE(block, 0);
    EXPECT_LT(block, result.num_blocks);
  }
}

TEST(SamplePipeline, TinyFractionWithEdgelessSampleStillWorks) {
  // 2 vertices sampled out of 300 will often induce zero edges; the
  // pipeline must fall back to identity blocks and still cover the
  // graph after extrapolation + fine-tune.
  const auto g = planted(37);
  SampleConfig config;
  config.base.seed = 9;
  config.sampler = SamplerKind::UniformRandom;
  config.fraction = 0.007;  // 3 vertices
  const auto result = run(g.graph, config);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(g.graph.num_vertices()));
  for (const std::int32_t block : result.assignment) {
    EXPECT_GE(block, 0);
    EXPECT_LT(block, result.num_blocks);
  }
}

}  // namespace
}  // namespace hsbp::sample
