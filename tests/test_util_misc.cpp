#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "util/logger.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hsbp::util {
namespace {

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, AccumulatesIntervals) {
  Stopwatch w;
  EXPECT_EQ(w.total(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double lap = w.stop();
  EXPECT_GT(lap, 0.0);
  EXPECT_DOUBLE_EQ(w.total(), lap);
  EXPECT_EQ(w.laps(), 1u);
  w.start();
  w.stop();
  EXPECT_EQ(w.laps(), 2u);
  EXPECT_GE(w.total(), lap);
}

TEST(Stopwatch, StopWithoutStartIsNoop) {
  Stopwatch w;
  EXPECT_EQ(w.stop(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
}

TEST(Stopwatch, ClearResets) {
  Stopwatch w;
  w.start();
  w.stop();
  w.clear();
  EXPECT_EQ(w.total(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
}

TEST(PhaseTimers, TotalsSortedByName) {
  PhaseTimers timers;
  timers["mcmc"].start();
  timers["mcmc"].stop();
  timers["block_merge"].start();
  timers["block_merge"].stop();
  const auto totals = timers.totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "block_merge");
  EXPECT_EQ(totals[1].first, "mcmc");
  EXPECT_GE(timers.grand_total(), 0.0);
}

TEST(ScopedInterval, StopsOnDestruction) {
  Stopwatch w;
  {
    ScopedInterval interval(w);
  }
  EXPECT_EQ(w.laps(), 1u);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "V"});
  t.row().cell("s1").cell(static_cast<std::int64_t>(100));
  t.row().cell("longer-name").cell(static_cast<std::int64_t>(7));
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
  // Every line has the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, FormatsDoublesWithPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell("x");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Logger, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(Logger, FormattingDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  HSBP_LOG_INFO("dropped %d %s", 1, "msg");
  set_log_level(LogLevel::Error);
  HSBP_LOG_ERROR("emitted %d", 2);
  set_log_level(original);
}

}  // namespace
}  // namespace hsbp::util
