#include <gtest/gtest.h>

#include <vector>

#include "metrics/pairwise.hpp"
#include "util/rng.hpp"

namespace hsbp::metrics {
namespace {

TEST(AdjustedRandIndex, IdenticalLabelingsScoreOne) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(x, x), 1.0);
}

TEST(AdjustedRandIndex, PermutedLabelsScoreOne) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> y = {5, 5, 9, 9, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(x, y), 1.0);
}

TEST(AdjustedRandIndex, HandComputedExample) {
  // Classic example: X = {0,0,0,1,1,1}, Y = {0,0,1,1,2,2}.
  // Contingency: rows {2,1,0},{0,1,2}. S_joint = 1+0+0+0+0+1 = 2.
  // S_a = 2·C(3,2) = 6, S_b = C(2,2)·3 = 3, N = C(6,2) = 15.
  // expected = 6·3/15 = 1.2; max = 4.5; ARI = (2−1.2)/(4.5−1.2) = 0.2424…
  const std::vector<std::int32_t> x = {0, 0, 0, 1, 1, 1};
  const std::vector<std::int32_t> y = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjusted_rand_index(x, y), 0.8 / 3.3, 1e-12);
}

TEST(AdjustedRandIndex, IndependentLargeLabelingsNearZero) {
  util::Rng rng(77);
  std::vector<std::int32_t> x(4000), y(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(6));
    y[i] = static_cast<std::int32_t>(rng.uniform_int(6));
  }
  EXPECT_NEAR(adjusted_rand_index(x, y), 0.0, 0.02);
}

TEST(AdjustedRandIndex, SymmetricInArguments) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1, 2, 0, 1};
  const std::vector<std::int32_t> y = {1, 0, 1, 2, 2, 0, 0};
  EXPECT_NEAR(adjusted_rand_index(x, y), adjusted_rand_index(y, x), 1e-12);
}

TEST(AdjustedRandIndex, DegenerateSingletonPartitions) {
  const std::vector<std::int32_t> singletons = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(singletons, singletons), 1.0);
  const std::vector<std::int32_t> one_cluster = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(one_cluster, one_cluster), 1.0);
}

TEST(PairwiseScores, PerfectPrediction) {
  const std::vector<std::int32_t> x = {0, 0, 1, 1};
  const auto s = pairwise_scores(x, x);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(PairwiseScores, OverMergingHurtsPrecisionNotRecall) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const std::vector<std::int32_t> merged = {0, 0, 0, 0};
  const auto s = pairwise_scores(truth, merged);
  // TP = 2 truly-together pairs; predicted positives = 6.
  EXPECT_NEAR(s.precision, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(PairwiseScores, OverSplittingHurtsRecallNotPrecision) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<std::int32_t> split = {0, 0, 2, 1, 1, 3};
  const auto s = pairwise_scores(truth, split);
  // Predicted positives: {0,0} pair + {1,1} pair = 2, both correct.
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 2.0 / 6.0, 1e-12);
}

TEST(PairwiseScores, AllSingletonsConventions) {
  const std::vector<std::int32_t> singletons = {0, 1, 2, 3};
  const std::vector<std::int32_t> pairs_labels = {0, 0, 1, 1};
  // Predicted has no positive pairs → precision 1 by convention.
  const auto s = pairwise_scores(pairs_labels, singletons);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(PairwiseScores, F1IsHarmonicMean) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> pred = {0, 0, 0, 1, 2, 2};
  const auto s = pairwise_scores(truth, pred);
  EXPECT_NEAR(s.f1, 2.0 * s.precision * s.recall / (s.precision + s.recall),
              1e-12);
}

}  // namespace
}  // namespace hsbp::metrics
