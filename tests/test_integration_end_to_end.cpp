#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "eval/experiment.hpp"
#include "eval/runner.hpp"
#include "generator/suites.hpp"
#include "graph/io.hpp"
#include "metrics/metrics.hpp"
#include "sbp/sbp.hpp"

namespace hsbp {
namespace {

TEST(BestOf, KeepsLowestMdlAndSumsTimings) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.ratio_within_between = 5.0;
  p.seed = 61;
  const auto g = generator::generate_dcsbm(p);

  sbp::SbpConfig config;
  config.seed = 100;
  const auto outcome = eval::best_of(g.graph, config, 3);
  ASSERT_EQ(outcome.per_run_stats.size(), 3u);
  double min_total = 0.0;
  for (const auto& stats : outcome.per_run_stats) {
    min_total += stats.mcmc_seconds;
  }
  EXPECT_NEAR(outcome.total_mcmc_seconds, min_total, 1e-9);
  EXPECT_GT(outcome.total_mcmc_iterations, 0);
  EXPECT_GE(outcome.total_seconds, outcome.total_mcmc_seconds);
}

TEST(BestOf, RejectsZeroRuns) {
  generator::DcsbmParams p;
  p.num_vertices = 50;
  p.num_communities = 2;
  p.num_edges = 200;
  p.seed = 62;
  const auto g = generator::generate_dcsbm(p);
  EXPECT_THROW(eval::best_of(g.graph, sbp::SbpConfig{}, 0),
               std::invalid_argument);
}

TEST(Experiment, RowFieldsAreCoherent) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.ratio_within_between = 5.0;
  p.seed = 63;
  auto g = generator::generate_dcsbm(p);
  g.name = "row-test";

  sbp::SbpConfig config;
  config.seed = 5;
  const auto row = eval::run_experiment(g, sbp::Variant::Hybrid, config, 2);
  EXPECT_EQ(row.graph_id, "row-test");
  EXPECT_EQ(row.algorithm, "H-SBP");
  EXPECT_EQ(row.num_vertices, 200);
  EXPECT_EQ(row.num_edges, 1600);
  EXPECT_GE(row.nmi, 0.0);
  EXPECT_LE(row.nmi, 1.0 + 1e-9);
  EXPECT_GT(row.mdl_norm, 0.0);
  EXPECT_LT(row.mdl_norm, 1.01);
  EXPECT_GT(row.mcmc_iterations, 0);
  EXPECT_GT(row.parallel_update_fraction, 0.5);  // H-SBP: 85% parallel
}

TEST(Integration, SuiteEntryEndToEndRecovery) {
  // A strong-structure, high-density suite entry at tiny scale: SBP and
  // H-SBP should both beat the null model clearly. (The low-density
  // groups are genuinely hard at this scale — the paper itself redacts
  // graphs where all algorithms fail.)
  const auto suite = generator::synthetic_suite(0.002, 71);
  const auto& entry = suite[12];  // S13: r = 5 group, high density
  ASSERT_DOUBLE_EQ(entry.params.ratio_within_between, 5.0);
  auto g = generator::generate(entry);

  sbp::SbpConfig config;
  config.seed = 8;
  for (const auto variant :
       {sbp::Variant::Metropolis, sbp::Variant::Hybrid}) {
    const auto row = eval::run_experiment(g, variant, config, 2);
    EXPECT_LT(row.mdl_norm, 0.95) << sbp::variant_name(variant);
  }
}

TEST(Integration, FileRoundTripThenDetect) {
  // Write a planted graph to Matrix Market, read it back, run H-SBP on
  // the reread copy, and score against the original ground truth.
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 3000;
  p.ratio_within_between = 6.0;
  p.seed = 64;
  const auto g = generator::generate_dcsbm(p);

  const auto path = std::filesystem::temp_directory_path() /
                    "hsbp_integration_roundtrip.mtx";
  graph::write_matrix_market_file(g.graph, path.string());
  const auto reread = graph::read_matrix_market_file(path.string());
  std::filesystem::remove(path);

  ASSERT_EQ(reread.num_vertices(), g.graph.num_vertices());
  ASSERT_EQ(reread.num_edges(), g.graph.num_edges());

  sbp::SbpConfig config;
  config.variant = sbp::Variant::Hybrid;
  config.seed = 12;
  const auto result = sbp::run(reread, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.8);
}

TEST(Integration, WeakStructureYieldsNearNullMdl) {
  // r ≈ 1: the graph has essentially no community structure; the paper's
  // diagnostic is MDL_norm ≈ 1 (p2p-Gnutella31 discussion, §5.3).
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 1200;
  p.ratio_within_between = 1.0;
  p.seed = 65;
  auto g = generator::generate_dcsbm(p);
  g.name = "weak";

  sbp::SbpConfig config;
  config.seed = 14;
  const auto row =
      eval::run_experiment(g, sbp::Variant::Metropolis, config, 2);
  EXPECT_GT(row.mdl_norm, 0.93);
  EXPECT_LT(row.nmi, 0.5);
}

TEST(Integration, HybridMatchesBaselineQualityOnStrongGraphs) {
  // The paper's headline claim (Figs. 4a/5): H-SBP matches SBP quality.
  const auto suite = generator::synthetic_suite(0.002, 72);
  const auto& entry = suite[4];  // S5: r = 3, high density group
  auto g = generator::generate(entry);

  sbp::SbpConfig config;
  config.seed = 10;
  const auto base =
      eval::run_experiment(g, sbp::Variant::Metropolis, config, 3);
  const auto hybrid =
      eval::run_experiment(g, sbp::Variant::Hybrid, config, 3);
  EXPECT_GT(base.nmi, 0.7);
  EXPECT_GT(hybrid.nmi, base.nmi - 0.1);
  EXPECT_LT(hybrid.mdl_norm, base.mdl_norm + 0.02);
}

}  // namespace
}  // namespace hsbp
