// The divide-and-conquer out-of-core fit: piece planning, the chunked
// blockmodel builder, determinism, mmap-vs-in-memory equality, and
// quality parity with the in-memory baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "generator/dcsbm.hpp"
#include "graph/binary_csr.hpp"
#include "graph/mmap_graph.hpp"
#include "metrics/metrics.hpp"
#include "ooc/ooc.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::ooc {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

graph::Graph community_graph(std::uint64_t seed = 5) {
  generator::DcsbmParams params;
  params.num_vertices = 600;
  params.num_communities = 8;
  params.num_edges = 9000;
  params.ratio_within_between = 6.0;
  params.seed = seed;
  return generator::generate_dcsbm(params).graph;
}

OocConfig test_config() {
  OocConfig config;
  config.base.seed = 42;
  config.base.variant = sbp::Variant::Hybrid;
  config.sampler = sample::SamplerKind::DegreeWeighted;
  config.skeleton_fraction = 0.3;
  config.pieces = 3;
  config.finetune_max_iterations = 5;
  config.chunk_vertices = 128;  // small: exercises the chunk boundaries
  return config;
}

TEST(PlanPieces, ExplicitRequestWins) {
  EXPECT_EQ(plan_pieces(1000, 100000, 1, 4), 4);
  EXPECT_EQ(plan_pieces(3, 10, 1, 100), 3);  // clamped to V
}

TEST(PlanPieces, DerivedFromBudget) {
  // 1M vertices, 10M edges: 16·(V+1) + 8·E = 96 MB → 4 pieces at 24 MiB.
  const graph::Vertex v = 1'000'000;
  const graph::EdgeCount e = 10'000'000;
  EXPECT_EQ(plan_pieces(v, e, 24, 0),
            static_cast<int>((estimated_csr_bytes(v, e) + 24 * 1024 * 1024 - 1) /
                             (24 * 1024 * 1024)));
  EXPECT_EQ(plan_pieces(v, e, 0, 0), 1);     // no budget → one piece
  EXPECT_EQ(plan_pieces(v, e, 1 << 20, 0), 1);  // huge budget → one piece
}

TEST(PlanPieces, EstimateCountsFourArrays) {
  EXPECT_EQ(estimated_csr_bytes(0, 0), 16);
  EXPECT_EQ(estimated_csr_bytes(9, 25), 16 * 10 + 8 * 25);
}

TEST(ChunkedBlockmodel, MatchesUnchunkedBuildExactly) {
  const graph::Graph graph = community_graph();
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph.num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v % 7);
  }
  const auto whole =
      blockmodel::Blockmodel::from_assignment(graph, assignment, 7);
  int releases = 0;
  const auto chunked = blockmodel::Blockmodel::from_assignment_chunked(
      graph, assignment, 7, 64, [&releases] { ++releases; });
  EXPECT_GT(releases, 0);
  // Fixed-point sums are order-independent: equality is exact.
  EXPECT_EQ(whole.log_likelihood(), chunked.log_likelihood());
  for (blockmodel::BlockId b = 0; b < 7; ++b) {
    EXPECT_EQ(whole.degree_out(b), chunked.degree_out(b));
    EXPECT_EQ(whole.degree_in(b), chunked.degree_in(b));
    EXPECT_EQ(whole.block_size(b), chunked.block_size(b));
  }
  EXPECT_TRUE(chunked.check_consistency(graph));
}

TEST(OocFit, ProducesValidPartition) {
  const graph::Graph graph = community_graph();
  OocConfig config = test_config();
  int releases = 0;
  config.release_cache = [&releases] { ++releases; };

  const OocResult result = fit(graph, config);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(graph.num_vertices()));
  ASSERT_GE(result.num_blocks, 1);
  std::vector<bool> used(static_cast<std::size_t>(result.num_blocks), false);
  for (const std::int32_t block : result.assignment) {
    ASSERT_GE(block, 0);
    ASSERT_LT(block, result.num_blocks);
    used[static_cast<std::size_t>(block)] = true;
  }
  for (std::size_t b = 0; b < used.size(); ++b) {
    EXPECT_TRUE(used[b]) << "label space not dense at " << b;
  }
  EXPECT_GT(releases, 0);  // the chunk hooks actually fired
  EXPECT_EQ(result.pieces_planned, 3);
  EXPECT_GT(result.skeleton_vertices, 0);
  EXPECT_GT(result.timings.total_seconds, 0.0);
}

TEST(OocFit, DeterministicInSeed) {
  const graph::Graph graph = community_graph();
  const OocConfig config = test_config();
  const OocResult a = fit(graph, config);
  const OocResult b = fit(graph, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.mdl, b.mdl);
}

TEST(OocFit, MmapViewEqualsInMemoryView) {
  const graph::Graph graph = community_graph();
  const std::string path = temp_path("fit_equality.csr");
  graph::write_binary_csr(graph, path);
  const graph::MmapGraph mapped(path);

  OocConfig config = test_config();
  const OocResult in_memory = fit(graph, config);
  // Same pipeline over the mapped file, with real page eviction between
  // chunks: the eviction hook must not change a single label.
  config.release_cache = [&mapped] { mapped.evict(); };
  const OocResult over_mmap = fit(mapped.view(), config);

  EXPECT_EQ(in_memory.assignment, over_mmap.assignment);
  EXPECT_EQ(in_memory.num_blocks, over_mmap.num_blocks);
  EXPECT_EQ(in_memory.mdl, over_mmap.mdl);
  fs::remove(path);
}

TEST(OocFit, QualityNearInMemoryBaseline) {
  const graph::Graph graph = community_graph();
  OocConfig config = test_config();

  sbp::SbpConfig baseline_config = config.base;
  const sbp::SbpResult baseline = sbp::run(graph, baseline_config);
  const OocResult ooc = fit(graph, config);

  // The divide-and-conquer fit must land close to the full fit on a
  // well-separated planted partition (deterministic seeds, so this is a
  // regression bound rather than a statistical one).
  const double agreement = metrics::nmi(baseline.assignment, ooc.assignment);
  EXPECT_GE(agreement, 0.7) << "baseline blocks=" << baseline.num_blocks
                            << " ooc blocks=" << ooc.num_blocks;
  EXPECT_LE(ooc.mdl, 1.10 * baseline.mdl);
}

TEST(OocFit, RejectsBadConfig) {
  const graph::Graph graph = community_graph();
  OocConfig config = test_config();
  config.skeleton_fraction = 0.0;
  EXPECT_THROW(fit(graph, config), std::invalid_argument);
  config = test_config();
  config.skeleton_fraction = 1.5;
  EXPECT_THROW(fit(graph, config), std::invalid_argument);
  config = test_config();
  config.finetune_max_iterations = -1;
  EXPECT_THROW(fit(graph, config), std::invalid_argument);
  config = test_config();
  config.chunk_vertices = 0;
  EXPECT_THROW(fit(graph, config), std::invalid_argument);
  EXPECT_THROW(fit(graph::Graph(), test_config()), std::invalid_argument);
}

TEST(OocFit, SinglePieceSkipsRefitStage) {
  const graph::Graph graph = community_graph();
  OocConfig config = test_config();
  config.pieces = 1;
  const OocResult result = fit(graph, config);
  EXPECT_EQ(result.pieces_planned, 1);
  EXPECT_EQ(result.pieces_refit, 0);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(graph.num_vertices()));
}

}  // namespace
}  // namespace hsbp::ooc
