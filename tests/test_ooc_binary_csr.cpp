// Binary CSR file format and MmapGraph: round-trips against the
// in-memory Graph, the streaming converter against the text readers,
// and the rejection gates (truncation, corrupt header, wrong version,
// wrong byte order, payload corruption).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/fault_injector.hpp"
#include "generator/dcsbm.hpp"
#include "graph/binary_csr.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/mmap_graph.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

/// Multigraph with self-loops, parallel edges, and an isolated vertex —
/// every CSR feature the format must carry.
Graph fixture_graph() {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {1, 2}, {2, 0}, {2, 2},
                                   {3, 0}, {1, 3}, {3, 3}, {3, 3}, {4, 0}};
  return Graph::from_edges(6, edges);  // vertex 5 isolated
}

void expect_views_equal(const GraphView& expected, const GraphView& actual) {
  ASSERT_EQ(expected.num_vertices(), actual.num_vertices());
  ASSERT_EQ(expected.num_edges(), actual.num_edges());
  EXPECT_EQ(expected.num_self_loops(), actual.num_self_loops());
  for (Vertex v = 0; v < expected.num_vertices(); ++v) {
    ASSERT_EQ(expected.out_degree(v), actual.out_degree(v)) << "vertex " << v;
    ASSERT_EQ(expected.in_degree(v), actual.in_degree(v)) << "vertex " << v;
    const auto expected_out = expected.out_neighbors(v);
    const auto actual_out = actual.out_neighbors(v);
    const auto expected_in = expected.in_neighbors(v);
    const auto actual_in = actual.in_neighbors(v);
    EXPECT_TRUE(std::equal(expected_out.begin(), expected_out.end(),
                           actual_out.begin(), actual_out.end()))
        << "out-neighbors differ at vertex " << v;
    EXPECT_TRUE(std::equal(expected_in.begin(), expected_in.end(),
                           actual_in.begin(), actual_in.end()))
        << "in-neighbors differ at vertex " << v;
  }
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BinaryCsr, RoundTripMatchesInMemoryGraph) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("roundtrip.csr");
  write_binary_csr(graph, path);
  ASSERT_EQ(static_cast<std::int64_t>(fs::file_size(path)),
            binary_csr_file_bytes(graph.num_vertices(), graph.num_edges()));

  const MmapGraph mapped(path);
  expect_views_equal(graph, mapped.view());
  EXPECT_NO_THROW(mapped.verify_payload());
  EXPECT_EQ(mapped.view().edges(), graph.edges());
  fs::remove(path);
}

TEST(BinaryCsr, RoundTripGeneratedGraph) {
  generator::DcsbmParams params;
  params.num_vertices = 400;
  params.num_communities = 6;
  params.num_edges = 3000;
  params.seed = 11;
  const Graph graph = generator::generate_dcsbm(params).graph;

  const std::string path = temp_path("roundtrip_gen.csr");
  write_binary_csr(graph, path);
  const MmapGraph mapped(path);
  expect_views_equal(graph, mapped.view());
  fs::remove(path);
}

TEST(BinaryCsr, EmptyAndEdgelessGraphsRoundTrip) {
  const std::string path = temp_path("edgeless.csr");
  const Graph edgeless = Graph::from_edges(3, {});
  write_binary_csr(edgeless, path);
  const MmapGraph mapped(path);
  EXPECT_EQ(mapped.num_vertices(), 3);
  EXPECT_EQ(mapped.num_edges(), 0);
  expect_views_equal(edgeless, mapped.view());
  fs::remove(path);
}

TEST(BinaryCsr, ConvertEdgeListMatchesReader) {
  const Graph graph = fixture_graph();
  const std::string text = temp_path("convert_in.txt");
  const std::string csr = temp_path("convert_out.csr");
  write_edge_list_file(graph, text);

  // Parity contract is with the reader, not the fixture: the edge list
  // cannot express the fixture's trailing isolated vertex, and the
  // converter must agree with read_edge_list_file on that.
  const Graph reloaded = read_edge_list_file(text, WeightHandling::Ignore);
  const auto stats =
      convert_text_to_csr(text, csr, WeightHandling::Ignore);
  EXPECT_EQ(stats.num_vertices, reloaded.num_vertices());
  EXPECT_EQ(stats.num_edges, reloaded.num_edges());
  EXPECT_EQ(stats.self_loops, reloaded.num_self_loops());
  EXPECT_EQ(stats.file_bytes, static_cast<std::int64_t>(fs::file_size(csr)));
  EXPECT_FALSE(fs::exists(csr + ".tmp"));
  const MmapGraph mapped(csr);
  expect_views_equal(reloaded, mapped.view());
  EXPECT_NO_THROW(mapped.verify_payload());
  fs::remove(text);
  fs::remove(csr);
}

TEST(BinaryCsr, ConvertMatrixMarketWithWeightsMatchesReader) {
  const std::string mtx = temp_path("convert_in.mtx");
  const std::string csr = temp_path("convert_mtx.csr");
  {
    std::ofstream out(mtx);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "5 5 4\n"
        << "2 1 2.0\n"
        << "3 1 1.0\n"
        << "4 4 1.0\n"
        << "5 3 3.0\n";
  }
  const auto stats =
      convert_text_to_csr(mtx, csr, WeightHandling::Multiplicity);
  const Graph reloaded =
      read_matrix_market_file(mtx, WeightHandling::Multiplicity);
  EXPECT_EQ(stats.num_vertices, reloaded.num_vertices());
  EXPECT_EQ(stats.num_edges, reloaded.num_edges());
  const MmapGraph mapped(csr);
  expect_views_equal(reloaded, mapped.view());
  fs::remove(mtx);
  fs::remove(csr);
}

TEST(BinaryCsr, TornWriteIsRejected) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("torn.csr");
  // The injected truncation persists a 100-byte prefix under the final
  // name — a crash mid-write. The size gate must reject it.
  ckpt::FaultInjector fault;
  fault.truncate_write(1, 100);
  write_binary_csr(graph, path, &fault);
  ASSERT_EQ(fs::file_size(path), 100u);
  EXPECT_THROW(MmapGraph{path}, util::DataError);
  fs::remove(path);
}

TEST(BinaryCsr, HeaderShorterThanFixedSizeIsRejected) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("stub.csr");
  ckpt::FaultInjector fault;
  fault.truncate_write(1, 10);  // not even a full magic + version
  write_binary_csr(graph, path, &fault);
  EXPECT_THROW(MmapGraph{path}, util::DataError);
  fs::remove(path);
}

TEST(BinaryCsr, CorruptHeaderFieldFailsCrc) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("crc.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  bytes[20] = static_cast<char>(bytes[20] ^ 0x01);  // num_edges field
  write_bytes(path, bytes);
  EXPECT_THROW(MmapGraph{path}, util::DataError);
  fs::remove(path);
}

TEST(BinaryCsr, WrongMagicIsRejected) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("magic.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  bytes[0] = 'X';
  write_bytes(path, bytes);
  EXPECT_THROW(MmapGraph{path}, util::DataError);
  fs::remove(path);
}

/// Patches a header field and re-stamps the header CRC so only the
/// targeted gate (version / byte order) can reject the file.
void patch_header_u32(std::string& bytes, std::size_t offset,
                      std::uint32_t value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
  const std::uint32_t crc =
      ckpt::crc32(std::string_view(bytes.data(), 40));
  std::memcpy(bytes.data() + 40, &crc, sizeof(crc));
}

TEST(BinaryCsr, FutureVersionIsRejected) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("version.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  patch_header_u32(bytes, 8, kBinaryCsrVersion + 1);
  write_bytes(path, bytes);
  try {
    MmapGraph mapped(path);
    FAIL() << "future version must be rejected";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  fs::remove(path);
}

TEST(BinaryCsr, ForeignByteOrderIsRejected) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("endian.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  patch_header_u32(bytes, 12, 0x04030201u);  // byte-swapped marker
  write_bytes(path, bytes);
  try {
    MmapGraph mapped(path);
    FAIL() << "foreign byte order must be rejected";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("byte-order"), std::string::npos);
  }
  fs::remove(path);
}

TEST(BinaryCsr, OffsetSentinelCorruptionIsRejectedOnOpen) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("sentinel.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  bytes[kBinaryCsrHeaderBytes] ^= 0x01;  // out_offsets[0] != 0
  write_bytes(path, bytes);
  EXPECT_THROW(MmapGraph{path}, util::DataError);
  fs::remove(path);
}

TEST(BinaryCsr, PayloadBitRotCaughtByVerify) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("bitrot.csr");
  write_binary_csr(graph, path);
  std::string bytes = read_bytes(path);
  // Flip a bit inside the edge-target arrays: the offsets stay
  // consistent, so open succeeds; the full CRC must still catch it.
  bytes[bytes.size() - 1] ^= 0x40;
  write_bytes(path, bytes);
  const MmapGraph mapped(path);
  EXPECT_THROW(mapped.verify_payload(), util::DataError);
  fs::remove(path);
}

TEST(MmapGraph, MissingFileIsIoError) {
  EXPECT_THROW(MmapGraph{temp_path("does_not_exist.csr")}, util::IoError);
}

TEST(MmapGraph, EvictDropsResidentPages) {
  generator::DcsbmParams params;
  params.num_vertices = 2000;
  params.num_communities = 4;
  params.num_edges = 40000;
  params.seed = 3;
  const Graph graph = generator::generate_dcsbm(params).graph;
  const std::string path = temp_path("evict.csr");
  write_binary_csr(graph, path);

  const MmapGraph mapped(path);
  mapped.verify_payload();  // faults in the whole file
  const std::int64_t resident_before = mapped.resident_bytes();
  ASSERT_GT(resident_before, 0);
  mapped.evict();
  const std::int64_t resident_after = mapped.resident_bytes();
  ASSERT_GE(resident_after, 0);
  EXPECT_LT(resident_after, resident_before);
  // The mapping still works after eviction (pages fault back in).
  expect_views_equal(graph, mapped.view());
  fs::remove(path);
}

TEST(MmapGraph, MoveTransfersOwnership) {
  const Graph graph = fixture_graph();
  const std::string path = temp_path("move.csr");
  write_binary_csr(graph, path);
  MmapGraph a(path);
  MmapGraph b(std::move(a));
  expect_views_equal(graph, b.view());
  MmapGraph c;
  c = std::move(b);
  expect_views_equal(graph, c.view());
  fs::remove(path);
}

}  // namespace
}  // namespace hsbp::graph
