#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "generator/suites.hpp"

namespace hsbp::generator {
namespace {

TEST(SyntheticSuite, HasTwentyFourUniqueIds) {
  const auto suite = synthetic_suite(0.01, 1);
  ASSERT_EQ(suite.size(), 24u);
  std::set<std::string> ids;
  for (const auto& entry : suite) ids.insert(entry.id);
  EXPECT_EQ(ids.size(), 24u);
  EXPECT_EQ(suite.front().id, "S1");
  EXPECT_EQ(suite.back().id, "S24");
}

TEST(SyntheticSuite, PaperSizesMatchTableOne) {
  const auto suite = synthetic_suite(0.01, 1);
  EXPECT_EQ(suite[0].paper_vertices, 198101);
  EXPECT_EQ(suite[0].paper_edges, 321071);
  EXPECT_EQ(suite[7].paper_vertices, 225999);
  EXPECT_EQ(suite[7].paper_edges, 6327321);
}

TEST(SyntheticSuite, ScalePreservesDensity) {
  const auto suite = synthetic_suite(0.02, 1);
  for (const auto& entry : suite) {
    const double paper_density = static_cast<double>(entry.paper_edges) /
                                 static_cast<double>(entry.paper_vertices);
    const double scaled_density =
        static_cast<double>(entry.params.num_edges) /
        static_cast<double>(entry.params.num_vertices);
    EXPECT_NEAR(scaled_density, paper_density, 0.2 * paper_density)
        << entry.id;
  }
}

TEST(SyntheticSuite, GroupsCarryTheThreeRatioLevels) {
  const auto suite = synthetic_suite(0.01, 1);
  EXPECT_DOUBLE_EQ(suite[0].params.ratio_within_between, 3.0);   // S1
  EXPECT_DOUBLE_EQ(suite[8].params.ratio_within_between, 5.0);   // S9
  EXPECT_DOUBLE_EQ(suite[16].params.ratio_within_between, 1.5);  // S17
}

TEST(SyntheticSuite, SeedsDifferAcrossEntries) {
  const auto suite = synthetic_suite(0.01, 1);
  std::set<std::uint64_t> seeds;
  for (const auto& entry : suite) seeds.insert(entry.params.seed);
  EXPECT_EQ(seeds.size(), suite.size());
}

TEST(SyntheticSuite, RejectsBadScale) {
  EXPECT_THROW(synthetic_suite(0.0, 1), std::invalid_argument);
  EXPECT_THROW(synthetic_suite(-0.5, 1), std::invalid_argument);
  EXPECT_THROW(synthetic_suite(1.5, 1), std::invalid_argument);
}

TEST(RealWorldSuite, HasFourteenNamedEntries) {
  const auto suite = realworld_surrogate_suite(0.01, 2);
  ASSERT_EQ(suite.size(), 14u);
  EXPECT_EQ(suite.front().id, "rajat01");
  EXPECT_EQ(suite.back().id, "flickr");
}

TEST(RealWorldSuite, PaperSizesMatchTableTwo) {
  const auto suite = realworld_surrogate_suite(0.01, 2);
  for (const auto& entry : suite) {
    if (entry.id == "web-BerkStan") {
      EXPECT_EQ(entry.paper_vertices, 685230);
      EXPECT_EQ(entry.paper_edges, 7600595);
    }
    if (entry.id == "soc-Slashdot0902") {
      EXPECT_EQ(entry.paper_vertices, 82168);
      EXPECT_EQ(entry.paper_edges, 948464);
    }
  }
}

TEST(RealWorldSuite, GnutellaIsStructurePoor) {
  const auto suite = realworld_surrogate_suite(0.01, 2);
  for (const auto& entry : suite) {
    if (entry.id == "p2p-Gnutella31") {
      EXPECT_LT(entry.params.ratio_within_between, 1.2);
    } else {
      EXPECT_GE(entry.params.ratio_within_between, 2.0);
    }
  }
}

TEST(Suites, GenerateProducesNamedGraph) {
  const auto suite = synthetic_suite(0.005, 3);
  const auto g = generate(suite[1]);
  EXPECT_EQ(g.name, "S2");
  EXPECT_EQ(g.graph.num_vertices(), suite[1].params.num_vertices);
  EXPECT_EQ(g.graph.num_edges(), suite[1].params.num_edges);
}

TEST(Suites, ScaledGraphsAreGenerable) {
  // Every suite entry must produce a valid graph at bench scale.
  for (const auto& entry : synthetic_suite(0.004, 4)) {
    const auto g = generate(entry);
    EXPECT_GT(g.graph.num_vertices(), 0) << entry.id;
    EXPECT_GT(g.graph.num_edges(), 0) << entry.id;
  }
  for (const auto& entry : realworld_surrogate_suite(0.004, 4)) {
    const auto g = generate(entry);
    EXPECT_GT(g.graph.num_vertices(), 0) << entry.id;
  }
}

}  // namespace
}  // namespace hsbp::generator
