// Snapshot isolation of the serving daemon's GraphStore/Registry: a
// reader always observes one fully constructed snapshot, publishes are
// atomic swaps, and superseded snapshots stay alive while referenced.
// The concurrent-hammer tests here are the ones the TSan stage
// exercises for torn reads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "serve/registry.hpp"

namespace hsbp::serve {
namespace {

std::shared_ptr<const graph::Graph> tiny_graph() {
  generator::DcsbmParams params;
  params.num_vertices = 40;
  params.num_communities = 4;
  params.num_edges = 200;
  params.seed = 7;
  auto generated = generator::generate_dcsbm(params);
  return std::make_shared<const graph::Graph>(std::move(generated.graph));
}

/// A labeled snapshot whose assignment is all `label % blocks`.
std::shared_ptr<const Snapshot> labeled_snapshot(
    std::shared_ptr<const graph::Graph> graph, std::int32_t label,
    std::uint64_t epoch) {
  const auto n = static_cast<std::size_t>(graph->num_vertices());
  std::vector<std::int32_t> assignment(n);
  for (std::size_t v = 0; v < n; ++v) {
    assignment[v] = (static_cast<std::int32_t>(v) + label) % 4;
  }
  return make_snapshot(std::move(graph), std::move(assignment), 4,
                       100.0 + label, epoch);
}

TEST(ServeSnapshot, MakeSnapshotComputesDerivedFigures) {
  const auto graph = tiny_graph();
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph->num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v % 3);
  }
  const auto snapshot = make_snapshot(graph, assignment, 3, 123.5, 9);
  EXPECT_EQ(snapshot->graph.get(), graph.get());
  EXPECT_EQ(snapshot->assignment, assignment);
  EXPECT_EQ(snapshot->num_blocks, 3);
  EXPECT_DOUBLE_EQ(snapshot->mdl, 123.5);
  EXPECT_EQ(snapshot->epoch, 9u);
  // Modularity is computed once at construction, not per query.
  EXPECT_DOUBLE_EQ(snapshot->modularity,
                   metrics::modularity(*graph, assignment));
}

TEST(ServeGraphStore, PublishSwapsAndHoldersKeepTheOldSnapshot) {
  const auto graph = tiny_graph();
  GraphStore store("g");
  store.publish(labeled_snapshot(graph, 0, 1));

  const auto held = store.acquire();
  EXPECT_EQ(held->epoch, 1u);

  store.publish(labeled_snapshot(graph, 1, 2));
  // The holder's view is immutable; a fresh acquire sees the successor.
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(held->assignment[0], 0);
  const auto fresh = store.acquire();
  EXPECT_EQ(fresh->epoch, 2u);
  EXPECT_EQ(fresh->assignment[0], 1);
}

TEST(ServeGraphStore, SupersededSnapshotDiesWithItsLastReader) {
  const auto graph = tiny_graph();
  GraphStore store("g");
  store.publish(labeled_snapshot(graph, 0, 1));
  std::weak_ptr<const Snapshot> watch;
  {
    const auto held = store.acquire();
    watch = held;
    store.publish(labeled_snapshot(graph, 1, 2));
    EXPECT_FALSE(watch.expired());  // reader still holds it
  }
  EXPECT_TRUE(watch.expired());  // last reference dropped
}

TEST(ServeGraphStore, EnqueueDrainAndCounters) {
  GraphStore store("g");
  EXPECT_EQ(store.pending_batches(), 0u);
  EXPECT_EQ(store.enqueue({{0, 1}, {1, 2}}), 1u);
  EXPECT_EQ(store.enqueue({{2, 3}}), 2u);
  EXPECT_EQ(store.pending_batches(), 2u);

  const auto drained = store.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].size(), 2u);
  EXPECT_EQ(drained[1].size(), 1u);
  EXPECT_EQ(store.pending_batches(), 0u);
  EXPECT_TRUE(store.drain().empty());

  store.count_query();
  store.count_query();
  store.count_refit(0.25);
  EXPECT_EQ(store.queries(), 2u);
  EXPECT_EQ(store.refits(), 1u);
  EXPECT_DOUBLE_EQ(store.refit_seconds(), 0.25);
}

TEST(ServeRegistry, AddFindNamesAndDuplicates) {
  Registry registry;
  GraphStore& a = registry.add("alpha");
  registry.add("beta");
  EXPECT_EQ(registry.find("alpha"), &a);
  EXPECT_EQ(registry.find("gamma"), nullptr);
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(registry.stores().size(), 2u);
  EXPECT_THROW(registry.add("alpha"), std::invalid_argument);
}

// The isolation contract under concurrency: readers hammer acquire()
// while a writer publishes successors. Every snapshot a reader sees
// must be internally consistent (label matches mdl matches epoch) —
// a torn read would break the correspondence. Run under TSan via the
// `serve` label.
TEST(ServeGraphStore, ConcurrentReadersNeverSeeATornSnapshot) {
  const auto graph = tiny_graph();
  GraphStore store("g");
  store.publish(labeled_snapshot(graph, 0, 1));

  constexpr int kPublishes = 200;
  std::atomic<bool> running{true};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (running.load(std::memory_order_relaxed)) {
        const auto s = store.acquire();
        // Internal consistency: every field derives from one label.
        const auto label = static_cast<std::int32_t>(s->epoch - 1);
        if (s->assignment[0] != label % 4 ||
            s->mdl != 100.0 + static_cast<double>(label)) {
          violations.fetch_add(1);
        }
        // Publishes are ordered: epochs never run backwards.
        if (s->epoch < last_epoch) violations.fetch_add(1);
        last_epoch = s->epoch;
      }
    });
  }

  for (int p = 1; p <= kPublishes; ++p) {
    store.publish(labeled_snapshot(graph, p,
                                   static_cast<std::uint64_t>(p) + 1));
  }
  running.store(false);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace hsbp::serve
