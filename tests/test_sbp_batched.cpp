#include <gtest/gtest.h>

#include <vector>

#include "blockmodel/mdl.hpp"
#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sbp/mcmc_phases.hpp"
#include "sbp/sbp.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 240;
  p.num_communities = 6;
  p.num_edges = 2400;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

TEST(BatchedGibbs, VariantNameIsBSBP) {
  EXPECT_STREQ(variant_name(Variant::BatchedGibbs), "B-SBP");
}

TEST(BatchedGibbs, RejectsNonPositiveBatchCount) {
  const auto g = planted(81);
  SbpConfig config;
  config.variant = Variant::BatchedGibbs;
  config.batch_count = 0;
  EXPECT_THROW(run(g.graph, config), std::invalid_argument);
}

class BatchCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(BatchCountSweep, PhaseImprovesMdlAndStaysConsistent) {
  const auto g = planted(82);
  // Scramble 40% of labels so a single phase has work to do.
  std::vector<std::int32_t> state = g.ground_truth;
  util::Rng rng(5);
  for (auto& label : state) {
    if (rng.uniform() < 0.4) {
      label = static_cast<std::int32_t>(rng.uniform_int(6));
    }
  }
  auto b = Blockmodel::from_assignment(g.graph, state, 6);
  const double before =
      blockmodel::mdl(b, g.graph.num_vertices(), g.graph.num_edges());

  McmcSettings settings;
  settings.max_iterations = 30;
  util::RngPool rngs(7, 8);
  const auto outcome =
      batched_gibbs_phase(g.graph, b, settings, GetParam(), rngs);

  EXPECT_TRUE(b.check_consistency(g.graph));
  EXPECT_LT(outcome.stats.final_mdl, before);
  EXPECT_EQ(outcome.serial_updates, 0);  // no serial section at all
  EXPECT_GT(outcome.parallel_updates, 0);
  for (BlockId r = 0; r < b.num_blocks(); ++r) {
    EXPECT_GT(b.block_size(r), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchCounts, BatchCountSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(BatchedGibbs, FullRunRecoversPlantedPartition) {
  const auto g = planted(83);
  SbpConfig config;
  config.variant = Variant::BatchedGibbs;
  config.batch_count = 4;
  config.seed = 3;
  const auto result = run(g.graph, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.85);
  EXPECT_EQ(result.stats.serial_updates, 0);
}

TEST(BatchedGibbs, EachPassCoversEveryVertexOnce) {
  const auto g = planted(84);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  McmcSettings settings;
  settings.max_iterations = 1;
  util::RngPool rngs(9, 4);
  const auto outcome = batched_gibbs_phase(g.graph, b, settings, 5, rngs);
  // One pass: proposals == V regardless of how the batches divide.
  EXPECT_EQ(outcome.stats.proposals, g.graph.num_vertices());
  EXPECT_EQ(outcome.parallel_updates, g.graph.num_vertices());
}

TEST(BatchedGibbs, DynamicScheduleAlsoConverges) {
  const auto g = planted(85);
  SbpConfig config;
  config.variant = Variant::BatchedGibbs;
  config.schedule = hsbp::sbp::PassSchedule::Dynamic;
  config.seed = 6;
  const auto result = run(g.graph, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.8);
}

TEST(AsyncGibbs, DynamicScheduleAlsoConverges) {
  const auto g = planted(86);
  SbpConfig config;
  config.variant = Variant::AsyncGibbs;
  config.schedule = hsbp::sbp::PassSchedule::Dynamic;
  config.seed = 6;
  const auto result = run(g.graph, config);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.8);
}

}  // namespace
}  // namespace hsbp::sbp
