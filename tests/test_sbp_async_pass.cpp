#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "generator/dcsbm.hpp"
#include "sbp/async_pass.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp::detail {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Vertex;

TEST(AtomicHelpers, AssignmentRoundTrip) {
  const std::vector<std::int32_t> original = {3, 1, 4, 1, 5};
  const auto shared = make_atomic_assignment(original);
  EXPECT_EQ(snapshot_assignment(shared), original);
}

TEST(AtomicHelpers, SizesMatchBlockmodel) {
  generator::DcsbmParams p;
  p.num_vertices = 100;
  p.num_communities = 4;
  p.num_edges = 600;
  p.seed = 31;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  const auto sizes = make_atomic_sizes(b);
  ASSERT_EQ(sizes.size(), 4u);
  for (BlockId r = 0; r < 4; ++r) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(r)].load(), b.block_size(r));
  }
}

TEST(AsyncPass, EvaluatesExactlyTheGivenVertices) {
  generator::DcsbmParams p;
  p.num_vertices = 120;
  p.num_communities = 4;
  p.num_edges = 900;
  p.ratio_within_between = 4.0;
  p.seed = 32;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);

  auto shared = make_atomic_assignment(b.assignment());
  auto sizes = make_atomic_sizes(b);
  std::vector<Vertex> subset = {0, 5, 10, 15, 20};
  util::RngPool rngs(1, 4);
  const auto counters =
      async_pass(g.graph, b, shared, sizes, subset, 3.0, rngs);
  EXPECT_EQ(counters.proposals, 5);
  EXPECT_LE(counters.accepted, counters.proposals);

  // Vertices outside the subset are untouched.
  const auto result = snapshot_assignment(shared);
  for (Vertex v = 0; v < 120; ++v) {
    const bool in_subset =
        std::find(subset.begin(), subset.end(), v) != subset.end();
    if (!in_subset) {
      EXPECT_EQ(result[static_cast<std::size_t>(v)], b.block_of(v));
    }
  }
}

TEST(AsyncPass, SizeAccountingStaysExact) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 5;
  p.num_edges = 1500;
  p.seed = 33;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 5);

  auto shared = make_atomic_assignment(b.assignment());
  auto sizes = make_atomic_sizes(b);
  std::vector<Vertex> all(200);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(2, 4);
  async_pass(g.graph, b, shared, sizes, all, 3.0, rngs);

  // Tracked sizes equal recounted sizes; all blocks stay non-empty.
  const auto result = snapshot_assignment(shared);
  std::vector<std::int32_t> recounted(5, 0);
  for (const std::int32_t label : result) {
    ++recounted[static_cast<std::size_t>(label)];
  }
  for (BlockId r = 0; r < 5; ++r) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(r)].load(),
              recounted[static_cast<std::size_t>(r)]);
    EXPECT_GT(recounted[static_cast<std::size_t>(r)], 0);
  }
}

TEST(AsyncPass, NeverEmptiesSingletonBlocks) {
  // A state with several singleton blocks: after the pass each must
  // still have its vertex.
  generator::DcsbmParams p;
  p.num_vertices = 60;
  p.num_communities = 3;
  p.num_edges = 400;
  p.seed = 34;
  const auto g = generator::generate_dcsbm(p);
  // Labels 3,4,5 are singletons held by vertices 0,1,2.
  std::vector<std::int32_t> state = g.ground_truth;
  for (auto& label : state) label = label % 3;
  state[0] = 3;
  state[1] = 4;
  state[2] = 5;
  const auto b = Blockmodel::from_assignment(g.graph, state, 6);

  auto shared = make_atomic_assignment(b.assignment());
  auto sizes = make_atomic_sizes(b);
  std::vector<Vertex> all(60);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(3, 4);
  async_pass(g.graph, b, shared, sizes, all, 3.0, rngs);

  const auto result = snapshot_assignment(shared);
  std::vector<int> counts(6, 0);
  for (const std::int32_t label : result) {
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int label = 3; label <= 5; ++label) {
    EXPECT_GE(counts[static_cast<std::size_t>(label)], 1);
  }
}

TEST(AsyncPass, DeterministicForFixedThreadCountAndSeed) {
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 4;
  p.num_edges = 1000;
  p.seed = 35;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  std::vector<Vertex> all(150);
  std::iota(all.begin(), all.end(), 0);

  const auto run_once = [&]() {
    auto shared = make_atomic_assignment(b.assignment());
    auto sizes = make_atomic_sizes(b);
    util::RngPool rngs(9, 4);
    async_pass(g.graph, b, shared, sizes, all, 3.0, rngs);
    return snapshot_assignment(shared);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AsyncPass, EmptyVertexSetIsNoop) {
  generator::DcsbmParams p;
  p.num_vertices = 50;
  p.num_communities = 2;
  p.num_edges = 300;
  p.seed = 36;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 2);
  auto shared = make_atomic_assignment(b.assignment());
  auto sizes = make_atomic_sizes(b);
  util::RngPool rngs(1, 2);
  const auto counters =
      async_pass(g.graph, b, shared, sizes, {}, 3.0, rngs);
  EXPECT_EQ(counters.proposals, 0);
  EXPECT_EQ(counters.accepted, 0);
  EXPECT_EQ(snapshot_assignment(shared), b.assignment());
}

}  // namespace
}  // namespace hsbp::sbp::detail
