#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "generator/dcsbm.hpp"
#include "sbp/async_pass.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp::detail {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Vertex;

TEST(AtomicHelpers, AssignmentRoundTrip) {
  generator::DcsbmParams p;
  p.num_vertices = 50;
  p.num_communities = 5;
  p.num_edges = 300;
  p.seed = 30;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 5);
  PassWorkspace ws;
  ws.reset(b);
  EXPECT_EQ(snapshot_assignment(ws.shared), b.assignment());
}

TEST(AtomicHelpers, SizesMatchBlockmodel) {
  generator::DcsbmParams p;
  p.num_vertices = 100;
  p.num_communities = 4;
  p.num_edges = 600;
  p.seed = 31;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  PassWorkspace ws;
  ws.reset(b);
  ASSERT_EQ(ws.sizes.size(), 4u);
  for (BlockId r = 0; r < 4; ++r) {
    EXPECT_EQ(ws.sizes[static_cast<std::size_t>(r)].load(), b.block_size(r));
  }
}

TEST(AtomicHelpers, ResetReusesBuffersAcrossCalls) {
  generator::DcsbmParams p;
  p.num_vertices = 80;
  p.num_communities = 4;
  p.num_edges = 500;
  p.seed = 37;
  const auto g = generator::generate_dcsbm(p);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  PassWorkspace ws;
  ws.reset(b);
  const auto* shared_data = ws.shared.data();
  b.move_vertex(g.graph, 0, (b.block_of(0) + 1) % 4);
  ws.reset(b);
  // Same sizes → the atomic vectors are reused, not reallocated, and
  // the contents track the mutated blockmodel.
  EXPECT_EQ(ws.shared.data(), shared_data);
  EXPECT_EQ(snapshot_assignment(ws.shared), b.assignment());
  for (BlockId r = 0; r < 4; ++r) {
    EXPECT_EQ(ws.sizes[static_cast<std::size_t>(r)].load(), b.block_size(r));
  }
}

TEST(AsyncPass, EvaluatesExactlyTheGivenVertices) {
  generator::DcsbmParams p;
  p.num_vertices = 120;
  p.num_communities = 4;
  p.num_edges = 900;
  p.ratio_within_between = 4.0;
  p.seed = 32;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);

  PassWorkspace ws;
  ws.reset(b);
  std::vector<Vertex> subset = {0, 5, 10, 15, 20};
  util::RngPool rngs(1, 4);
  const auto counters = async_pass(g.graph, b, ws, subset, 3.0, rngs);
  EXPECT_EQ(counters.proposals, 5);
  EXPECT_LE(counters.accepted, counters.proposals);

  // Vertices outside the subset are untouched, and the move log only
  // mentions subset vertices.
  const auto result = snapshot_assignment(ws.shared);
  for (Vertex v = 0; v < 120; ++v) {
    const bool in_subset =
        std::find(subset.begin(), subset.end(), v) != subset.end();
    if (!in_subset) {
      EXPECT_EQ(result[static_cast<std::size_t>(v)], b.block_of(v));
    }
  }
  for (const auto& log : ws.logs) {
    for (const MoveRecord& rec : log) {
      EXPECT_NE(std::find(subset.begin(), subset.end(), rec.v), subset.end());
    }
  }
}

TEST(AsyncPass, MoveLogIsExactlyThePassDiff) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 5;
  p.num_edges = 1500;
  p.seed = 38;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 5);

  PassWorkspace ws;
  ws.reset(b);
  std::vector<Vertex> all(200);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(7, 4);
  const auto counters = async_pass(g.graph, b, ws, all, 3.0, rngs);

  // Each vertex appears at most once across the per-thread logs, the
  // logged destinations match the shared memberships, and every vertex
  // whose membership changed is in the log.
  const auto result = snapshot_assignment(ws.shared);
  std::set<Vertex> logged;
  std::int64_t records = 0;
  for (const auto& log : ws.logs) {
    for (const MoveRecord& rec : log) {
      ++records;
      EXPECT_TRUE(logged.insert(rec.v).second)
          << "vertex " << rec.v << " logged twice";
      EXPECT_EQ(result[static_cast<std::size_t>(rec.v)], rec.to);
      EXPECT_NE(rec.to, b.block_of(rec.v));
    }
  }
  EXPECT_EQ(records, counters.accepted);
  for (Vertex v = 0; v < 200; ++v) {
    if (result[static_cast<std::size_t>(v)] != b.block_of(v)) {
      EXPECT_TRUE(logged.count(v)) << "moved vertex " << v << " not logged";
    }
  }
}

TEST(AsyncPass, SizeAccountingStaysExact) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 5;
  p.num_edges = 1500;
  p.seed = 33;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 5);

  PassWorkspace ws;
  ws.reset(b);
  std::vector<Vertex> all(200);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(2, 4);
  async_pass(g.graph, b, ws, all, 3.0, rngs);

  // Tracked sizes equal recounted sizes; all blocks stay non-empty.
  const auto result = snapshot_assignment(ws.shared);
  std::vector<std::int32_t> recounted(5, 0);
  for (const std::int32_t label : result) {
    ++recounted[static_cast<std::size_t>(label)];
  }
  for (BlockId r = 0; r < 5; ++r) {
    EXPECT_EQ(ws.sizes[static_cast<std::size_t>(r)].load(),
              recounted[static_cast<std::size_t>(r)]);
    EXPECT_GT(recounted[static_cast<std::size_t>(r)], 0);
  }
}

TEST(AsyncPass, NeverEmptiesSingletonBlocks) {
  // A state with several singleton blocks: after the pass each must
  // still have its vertex.
  generator::DcsbmParams p;
  p.num_vertices = 60;
  p.num_communities = 3;
  p.num_edges = 400;
  p.seed = 34;
  const auto g = generator::generate_dcsbm(p);
  // Labels 3,4,5 are singletons held by vertices 0,1,2.
  std::vector<std::int32_t> state = g.ground_truth;
  for (auto& label : state) label = label % 3;
  state[0] = 3;
  state[1] = 4;
  state[2] = 5;
  const auto b = Blockmodel::from_assignment(g.graph, state, 6);

  PassWorkspace ws;
  ws.reset(b);
  std::vector<Vertex> all(60);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(3, 4);
  async_pass(g.graph, b, ws, all, 3.0, rngs);

  const auto result = snapshot_assignment(ws.shared);
  std::vector<int> counts(6, 0);
  for (const std::int32_t label : result) {
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int label = 3; label <= 5; ++label) {
    EXPECT_GE(counts[static_cast<std::size_t>(label)], 1);
  }
}

TEST(AsyncPass, DeterministicForSingleThreadTeam) {
  // The hogwild pass reads neighbors' *live* labels, so with more than
  // one thread the accepted set depends on cross-thread visibility
  // timing — the static schedule pins the vertex→RNG mapping, not the
  // interleaving (TSan's scheduler perturbation surfaces this). The
  // replayable contract is the single-thread team: same seed, same
  // schedule, identical result, asserted exactly here. Multi-thread
  // passes promise workspace validity (invariant tests above), not
  // replay.
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 4;
  p.num_edges = 1000;
  p.seed = 35;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  std::vector<Vertex> all(150);
  std::iota(all.begin(), all.end(), 0);

  const int prev_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto run_once = [&]() {
    PassWorkspace ws;
    ws.reset(b);
    util::RngPool rngs(9, 4);
    async_pass(g.graph, b, ws, all, 3.0, rngs);
    return snapshot_assignment(ws.shared);
  };
  const auto first = run_once();
  const auto second = run_once();
  omp_set_num_threads(prev_threads);
  EXPECT_EQ(first, second);
}

TEST(AsyncPass, EmptyVertexSetIsNoop) {
  generator::DcsbmParams p;
  p.num_vertices = 50;
  p.num_communities = 2;
  p.num_edges = 300;
  p.seed = 36;
  const auto g = generator::generate_dcsbm(p);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 2);
  PassWorkspace ws;
  ws.reset(b);
  util::RngPool rngs(1, 2);
  const auto counters = async_pass(g.graph, b, ws, {}, 3.0, rngs);
  EXPECT_EQ(counters.proposals, 0);
  EXPECT_EQ(counters.accepted, 0);
  EXPECT_EQ(snapshot_assignment(ws.shared), b.assignment());
  const auto apply = finish_pass(g.graph, b, ws);
  EXPECT_EQ(apply.moved, 0);
  EXPECT_EQ(apply.moved_degree, 0);
  EXPECT_FALSE(apply.rebuilt);
}

TEST(AsyncPass, SyncMoveKeepsWorkspaceInvariant) {
  generator::DcsbmParams p;
  p.num_vertices = 90;
  p.num_communities = 3;
  p.num_edges = 600;
  p.seed = 39;
  const auto g = generator::generate_dcsbm(p);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 3);
  PassWorkspace ws;
  ws.reset(b);

  // Serial-style moves mirrored through sync_move, as the hybrid
  // phase's high-degree sweep does.
  for (Vertex v = 0; v < 10; ++v) {
    const BlockId from = b.block_of(v);
    if (b.block_size(from) <= 1) continue;
    const auto to = static_cast<BlockId>((from + 1) % 3);
    b.move_vertex(g.graph, v, to);
    ws.sync_move(v, from, to);
  }
  EXPECT_EQ(snapshot_assignment(ws.shared), b.assignment());
  for (BlockId r = 0; r < 3; ++r) {
    EXPECT_EQ(ws.sizes[static_cast<std::size_t>(r)].load(), b.block_size(r));
  }
}

TEST(Schedule, NamesRoundTrip) {
  for (const PassSchedule s :
       {PassSchedule::Static, PassSchedule::Dynamic, PassSchedule::Guided,
        PassSchedule::DegreeSorted}) {
    const auto parsed = parse_schedule(schedule_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(parse_schedule("degree_sorted"), PassSchedule::DegreeSorted);
  EXPECT_FALSE(parse_schedule("auto").has_value());
}

TEST(Schedule, DegreeSortedOrderIsDescendingAndStable) {
  generator::DcsbmParams p;
  p.num_vertices = 120;
  p.num_communities = 4;
  p.num_edges = 900;
  p.seed = 41;
  const auto g = generator::generate_dcsbm(p);
  std::vector<Vertex> all(120);
  std::iota(all.begin(), all.end(), 0);

  std::vector<Vertex> order;
  degree_sorted_order(g.graph, all, order);
  ASSERT_EQ(order.size(), all.size());
  std::vector<Vertex> sorted_copy = order;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  EXPECT_EQ(sorted_copy, all);  // a permutation
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto prev = g.graph.degree(order[i - 1]);
    const auto cur = g.graph.degree(order[i]);
    EXPECT_GE(prev, cur);
    // Stability: equal degrees keep their input (ascending-id) order.
    if (prev == cur) EXPECT_LT(order[i - 1], order[i]);
  }
}

/// One pass + apply under every schedule: the work distribution must
/// not affect any workspace or blockmodel invariant. Running this
/// suite under TSan (ctest -L async in check_tier1.sh) exercises the
/// chunk-stealing interleavings the static schedule never produces.
class AsyncPassSchedule : public ::testing::TestWithParam<PassSchedule> {};

TEST_P(AsyncPassSchedule, PassAndApplyKeepInvariants) {
  generator::DcsbmParams p;
  p.num_vertices = 300;
  p.num_communities = 5;
  p.num_edges = 2400;
  p.seed = 42;
  const auto g = generator::generate_dcsbm(p);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 5);

  PassWorkspace ws;
  ws.reset(b);
  std::vector<Vertex> all(300);
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(11, 4);
  const auto counters =
      async_pass(g.graph, b, ws, all, 3.0, rngs, GetParam());
  EXPECT_EQ(counters.proposals, 300);
  EXPECT_LE(counters.accepted, counters.proposals);

  // Size accounting stays exact and no block empties, regardless of
  // which thread evaluated which vertex.
  const auto result = snapshot_assignment(ws.shared);
  std::vector<std::int32_t> recounted(5, 0);
  for (const std::int32_t label : result) {
    ++recounted[static_cast<std::size_t>(label)];
  }
  for (BlockId r = 0; r < 5; ++r) {
    EXPECT_EQ(ws.sizes[static_cast<std::size_t>(r)].load(),
              recounted[static_cast<std::size_t>(r)]);
    EXPECT_GT(recounted[static_cast<std::size_t>(r)], 0);
  }

  // The applied blockmodel lands exactly on the shared memberships.
  finish_pass(g.graph, b, ws);
  EXPECT_EQ(b.assignment(), result);
}

TEST_P(AsyncPassSchedule, DeterministicForSingleThreadTeam) {
  // Static and DegreeSorted promise a deterministic vertex→thread→RNG
  // mapping at a fixed thread count; with a single-thread team every
  // schedule degenerates to a fixed order, so all four must replay.
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 4;
  p.num_edges = 1000;
  p.seed = 43;
  const auto g = generator::generate_dcsbm(p);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 4);
  std::vector<Vertex> all(150);
  std::iota(all.begin(), all.end(), 0);

  const int prev_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto run_once = [&]() {
    PassWorkspace ws;
    ws.reset(b);
    util::RngPool rngs(9, 4);
    async_pass(g.graph, b, ws, all, 3.0, rngs, GetParam());
    return snapshot_assignment(ws.shared);
  };
  const auto first = run_once();
  const auto second = run_once();
  omp_set_num_threads(prev_threads);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, AsyncPassSchedule,
    ::testing::Values(PassSchedule::Static, PassSchedule::Dynamic,
                      PassSchedule::Guided, PassSchedule::DegreeSorted),
    [](const ::testing::TestParamInfo<PassSchedule>& info) {
      switch (info.param) {
        case PassSchedule::Static:
          return "Static";
        case PassSchedule::Dynamic:
          return "Dynamic";
        case PassSchedule::Guided:
          return "Guided";
        case PassSchedule::DegreeSorted:
          return "DegreeSorted";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace hsbp::sbp::detail
