#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::Count;
using graph::Edge;
using graph::Graph;

/// A fixture small enough to compute the proposal distribution exactly:
/// 3 blocks, known M. Vertex 0 (in block 0) has one out-edge to block 1
/// and one to block 2.
///
///   edges: 0→2(blk1), 0→4(blk2), 2→3 ×2 within blk1, 4→5 within blk2,
///          1→0 within blk0
///   blocks: {0,1}, {2,3}, {4,5}
struct ExactFixture {
  Graph graph;
  Blockmodel b;

  ExactFixture()
      : graph(Graph::from_edges(
            6, std::vector<Edge>{{0, 2}, {0, 4}, {2, 3}, {2, 3}, {4, 5},
                                 {1, 0}})),
        b(Blockmodel::from_assignment(graph,
                                      std::vector<std::int32_t>{0, 0, 1, 1,
                                                                2, 2},
                                      3)) {}
};

/// Exact probability of proposing each block for vertex 0, by
/// enumerating the proposal chain:
///   step 2: neighbor edge uniform over {→blk1, →blk2, ←blk0}
///   step 3: escape with C/(d_t + C) → uniform 1/3 each
///   step 4: draw from row t + column t of M.
std::map<BlockId, double> exact_distribution(const Blockmodel& b) {
  const double c = 3.0;
  std::map<BlockId, double> prob;
  const double neighbor_weight = 1.0 / 3.0;  // three incident edges

  // Neighbor blocks of vertex 0 with multiplicity: blk1 (0→2),
  // blk2 (0→4), blk0 (1→0).
  for (const BlockId t : {1, 2, 0}) {
    const double d_t = static_cast<double>(b.degree_total(t));
    const double escape = c / (d_t + c);
    // Escape: uniform over the 3 blocks.
    for (BlockId s = 0; s < 3; ++s) {
      prob[s] += neighbor_weight * escape / 3.0;
    }
    // Multinomial over row t + column t of M.
    for (BlockId s = 0; s < 3; ++s) {
      const double mass = static_cast<double>(b.matrix().get(t, s) +
                                              b.matrix().get(s, t));
      if (d_t > 0) {
        prob[s] += neighbor_weight * (1.0 - escape) * mass / d_t;
      }
    }
  }
  return prob;
}

TEST(ProposalExact, EmpiricalMatchesEnumeratedDistribution) {
  ExactFixture fx;
  const auto expected = exact_distribution(fx.b);

  // Sanity: exact probabilities sum to 1.
  double total = 0.0;
  for (const auto& [block, p] : expected) total += p;
  ASSERT_NEAR(total, 1.0, 1e-12);

  util::Rng rng(271828);
  const auto nb =
      blockmodel::gather_neighbor_blocks(fx.graph, fx.b.assignment(), 0);
  constexpr int kDraws = 200000;
  std::map<BlockId, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[propose_block(fx.b, nb, 0, false, rng)];
  }

  for (BlockId s = 0; s < 3; ++s) {
    const double empirical =
        counts[s] / static_cast<double>(kDraws);
    // 3σ binomial tolerance.
    const double p = expected.at(s);
    const double sigma = std::sqrt(p * (1.0 - p) / kDraws);
    EXPECT_NEAR(empirical, p, 4.0 * sigma + 1e-4) << "block " << s;
  }
}

TEST(ProposalExact, MergeDistributionExcludesSelf) {
  ExactFixture fx;
  util::Rng rng(31415);
  const auto nb = block_neighbor_counts(fx.b, 0);
  std::map<BlockId, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[propose_block(fx.b, nb, 0, true, rng)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

}  // namespace
}  // namespace hsbp::sbp
