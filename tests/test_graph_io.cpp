#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {
namespace {

std::vector<Edge> sorted_edges(const Graph& g) {
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  return edges;
}

// ---------------------------------------------------------------- edge list

TEST(EdgeListIo, ReadsBasicFile) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# SNAP comment\n% matrix-style comment\n\n0\t1\n\n1\t0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(EdgeListIo, TabAndSpaceSeparatorsBothWork) {
  std::istringstream in("0\t1\n2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  std::istringstream in("0 1\nnot-an-edge\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, RejectsNegativeIds) {
  std::istringstream in("0 -1\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, ErrorMentionsLineNumber) {
  std::istringstream in("0 1\n1 2\nbroken\n");
  try {
    read_edge_list(in);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// The io.hpp contract: malformed input is util::DataError carrying the
// offending line number; unopenable files are util::IoError.
TEST(EdgeListIo, MalformedInputIsDataErrorWithLineNumber) {
  std::istringstream in("# header\n0 1\n\n0 -7\n");
  try {
    read_edge_list(in);
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(EdgeListIo, MissingFileIsIoError) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.tsv"),
               util::IoError);
}

TEST(EdgeListIo, RoundTripPreservesEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 1}, {2, 0}, {0, 1}};
  const Graph original = Graph::from_edges(3, edges);
  std::ostringstream out;
  write_edge_list(original, out);
  std::istringstream in(out.str());
  const Graph reread = read_edge_list(in);
  EXPECT_EQ(sorted_edges(original), sorted_edges(reread));
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.tsv"),
               std::runtime_error);
}

// ------------------------------------------------------------ Matrix Market

TEST(MatrixMarketIo, ReadsPatternGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "3 3 3\n"
      "1 2\n"
      "2 3\n"
      "3 3\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_self_loops(), 1);  // (3,3) → vertex 2 self-loop
}

TEST(MatrixMarketIo, SymmetricMirrorsOffDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const Graph g = read_matrix_market(in);
  // (2,1) mirrors to (1,2); diagonal (3,3) does not mirror.
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(1), 1);
}

TEST(MatrixMarketIo, RealValuesIgnored) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 3.5\n"
      "2 1 -1.25e3\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(MatrixMarketIo, IntegerFieldAccepted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 1);
}

TEST(MatrixMarketIo, RejectsMissingBanner) {
  std::istringstream in("3 3 1\n1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 1\n1 2 1.0 0.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RejectsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n2 2\n1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RejectsNonSquare) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n1 5\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RejectsTruncatedEntryList) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 5\n1 2\n2 3\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIo, RoundTripPreservesEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 2}, {0, 1}};
  const Graph original = Graph::from_edges(4, edges);
  std::ostringstream out;
  write_matrix_market(original, out);
  std::istringstream in(out.str());
  const Graph reread = read_matrix_market(in);
  EXPECT_EQ(reread.num_vertices(), 4);
  EXPECT_EQ(sorted_edges(original), sorted_edges(reread));
}

TEST(MatrixMarketIo, CaseInsensitiveHeader) {
  std::istringstream in(
      "%%MatrixMarket MATRIX Coordinate Pattern General\n"
      "2 2 1\n1 2\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 1);
}

TEST(MatrixMarketIo, MalformedEntryIsDataErrorWithLineNumber) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n1 2\n9 9\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected util::DataError";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(MatrixMarketIo, MissingFileIsIoError) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"),
               util::IoError);
}

}  // namespace
}  // namespace hsbp::graph
