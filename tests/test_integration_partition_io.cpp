#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "eval/partition_io.hpp"
#include "generator/dcsbm.hpp"
#include "graph/degree.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace hsbp::eval {
namespace {

TEST(PartitionIo, RoundTrip) {
  const std::vector<std::int32_t> assignment = {2, 0, 1, 2, 0, 1};
  std::ostringstream out;
  save_assignment(assignment, out);
  std::istringstream in(out.str());
  EXPECT_EQ(load_assignment(in), assignment);
}

TEST(PartitionIo, AcceptsOutOfOrderEntries) {
  std::istringstream in("2\t1\n0\t0\n1\t0\n");
  const auto assignment = load_assignment(in);
  EXPECT_EQ(assignment, (std::vector<std::int32_t>{0, 0, 1}));
}

TEST(PartitionIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n% other comment\n0\t5\n");
  EXPECT_EQ(load_assignment(in), (std::vector<std::int32_t>{5}));
}

TEST(PartitionIo, RejectsDuplicateVertex) {
  std::istringstream in("0\t0\n0\t1\n");
  EXPECT_THROW(load_assignment(in), std::runtime_error);
}

TEST(PartitionIo, RejectsMissingVertex) {
  std::istringstream in("0\t0\n2\t1\n");  // vertex 1 absent
  EXPECT_THROW(load_assignment(in), std::runtime_error);
}

TEST(PartitionIo, RejectsNegativeValues) {
  std::istringstream a("-1\t0\n");
  EXPECT_THROW(load_assignment(a), std::runtime_error);
  std::istringstream b("0\t-3\n");
  EXPECT_THROW(load_assignment(b), std::runtime_error);
}

TEST(PartitionIo, RejectsEmptyAndMalformedInput) {
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(load_assignment(empty), std::runtime_error);
  std::istringstream broken("0 zero\n");
  EXPECT_THROW(load_assignment(broken), std::runtime_error);
}

TEST(PartitionIo, ErrorsCarryLineNumbers) {
  std::istringstream in("0\t0\nbroken-line\n");
  try {
    load_assignment(in);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PartitionIo, FileRoundTripScoresIdentically) {
  generator::DcsbmParams p;
  p.num_vertices = 120;
  p.num_communities = 4;
  p.num_edges = 900;
  p.seed = 77;
  const auto g = generator::generate_dcsbm(p);

  const auto path =
      std::string(::testing::TempDir()) + "hsbp_partition_io.tsv";
  save_assignment_file(g.ground_truth, path);
  const auto loaded = load_assignment_file(path);
  EXPECT_NEAR(metrics::nmi(g.ground_truth, loaded), 1.0, 1e-12);
  std::remove(path.c_str());
}

TEST(PartitionIo, MissingFileThrows) {
  EXPECT_THROW(load_assignment_file("/nonexistent/partition.tsv"),
               std::runtime_error);
}

// Generator option added alongside: independent in/out propensities.
TEST(GeneratorDirectedDegrees, DefaultModeUnchangedBySwitch) {
  generator::DcsbmParams p;
  p.num_vertices = 150;
  p.num_communities = 4;
  p.num_edges = 1200;
  p.seed = 99;
  p.independent_in_out_degrees = false;
  const auto a = generator::generate_dcsbm(p);
  const auto b = generator::generate_dcsbm(p);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

TEST(GeneratorDirectedDegrees, IndependentModeDecorrelatesDegrees) {
  generator::DcsbmParams p;
  p.num_vertices = 1500;
  p.num_communities = 4;
  p.num_edges = 15000;
  p.degree_exponent = 2.0;
  p.max_degree = 200;
  p.seed = 100;

  const auto correlation = [](const graph::Graph& g) {
    std::vector<double> out_deg, in_deg;
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
      out_deg.push_back(static_cast<double>(g.out_degree(v)));
      in_deg.push_back(static_cast<double>(g.in_degree(v)));
    }
    return hsbp::util::pearson(out_deg, in_deg).r;
  };

  p.independent_in_out_degrees = false;
  const double correlated = correlation(generator::generate_dcsbm(p).graph);
  p.independent_in_out_degrees = true;
  const double independent =
      correlation(generator::generate_dcsbm(p).graph);

  EXPECT_GT(correlated, 0.6);   // one θ drives both directions
  EXPECT_LT(independent, 0.4);  // separate θ_out/θ_in decorrelate
  EXPECT_GT(correlated, independent + 0.3);
}

TEST(GeneratorDirectedDegrees, IndependentModeKeepsPlantedRatio) {
  generator::DcsbmParams p;
  p.num_vertices = 1000;
  p.num_communities = 5;
  p.num_edges = 10000;
  p.ratio_within_between = 4.0;
  p.independent_in_out_degrees = true;
  p.seed = 101;
  const auto g = generator::generate_dcsbm(p);
  EXPECT_NEAR(generator::realized_within_ratio(g.graph, g.ground_truth), 4.0,
              1.0);
}

}  // namespace
}  // namespace hsbp::eval
