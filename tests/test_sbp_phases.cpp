#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "blockmodel/mdl.hpp"
#include "generator/dcsbm.hpp"
#include "graph/degree.hpp"
#include "sbp/block_merge.hpp"
#include "sbp/golden_search.hpp"
#include "sbp/mcmc_phases.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Graph;

generator::GeneratedGraph planted(std::uint64_t seed, int communities = 6,
                                  double ratio = 5.0) {
  generator::DcsbmParams p;
  p.num_vertices = 240;
  p.num_communities = communities;
  p.num_edges = 2400;
  p.ratio_within_between = ratio;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

/// Scrambled warm start: ground truth with a fraction of labels
/// randomized — lets a single MCMC phase show measurable improvement.
std::vector<std::int32_t> scrambled(const generator::GeneratedGraph& g,
                                    double fraction, std::uint64_t seed) {
  std::vector<std::int32_t> state = g.ground_truth;
  util::Rng rng(seed);
  for (auto& label : state) {
    if (rng.uniform() < fraction) {
      label = static_cast<std::int32_t>(
          rng.uniform_int(static_cast<std::uint64_t>(g.params.num_communities)));
    }
  }
  return state;
}

TEST(ConvergenceWindow, TriggersOnSmallDeltas) {
  ConvergenceWindow w(1e-3, 3);
  EXPECT_FALSE(w.record(0.0, 1000.0));
  EXPECT_FALSE(w.record(0.0, 1000.0));
  EXPECT_TRUE(w.record(0.0, 1000.0));  // window full, sum 0 < 1
}

TEST(ConvergenceWindow, DoesNotTriggerOnLargeDeltas) {
  ConvergenceWindow w(1e-3, 3);
  EXPECT_FALSE(w.record(-10.0, 1000.0));
  EXPECT_FALSE(w.record(-10.0, 1000.0));
  EXPECT_FALSE(w.record(-10.0, 1000.0));  // sum 30 > 1
}

TEST(ConvergenceWindow, SlidesOverOldDeltas) {
  ConvergenceWindow w(1e-3, 3);
  w.record(-100.0, 1000.0);
  w.record(0.0, 1000.0);
  EXPECT_FALSE(w.record(0.0, 1000.0));  // 100 still in window
  EXPECT_TRUE(w.record(0.0, 1000.0));   // 100 dropped out
}

class PhaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhaseSweep, PhaseImprovesScrambledPartition) {
  const auto g = planted(17);
  const auto state = scrambled(g, 0.4, 23);
  auto b = Blockmodel::from_assignment(g.graph, state, 6);
  const double before = blockmodel::mdl(b, g.graph.num_vertices(),
                                        g.graph.num_edges());

  McmcSettings settings;
  settings.max_iterations = 30;
  util::RngPool rngs(99, 8);
  PhaseOutcome outcome;
  switch (GetParam()) {
    case 0:
      outcome = metropolis_hastings_phase(g.graph, b, settings, rngs);
      break;
    case 1:
      outcome = async_gibbs_phase(g.graph, b, settings, rngs);
      break;
    default: {
      const auto split = graph::split_by_degree(g.graph, 0.15);
      outcome = hybrid_phase(g.graph, b, settings, split, rngs);
      break;
    }
  }

  EXPECT_TRUE(b.check_consistency(g.graph));
  EXPECT_NEAR(outcome.stats.initial_mdl, before, 1e-6);
  EXPECT_LT(outcome.stats.final_mdl, before);  // MCMC must improve MDL
  EXPECT_GT(outcome.stats.iterations, 0);
  EXPECT_GT(outcome.stats.proposals, 0);
  EXPECT_GT(outcome.stats.accepted, 0);
  // Exact MDL of the final state matches the reported value.
  EXPECT_NEAR(blockmodel::mdl(b, g.graph.num_vertices(),
                              g.graph.num_edges()),
              outcome.stats.final_mdl, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PhaseSweep, ::testing::Values(0, 1, 2));

TEST(MetropolisPhase, CountsSerialUpdatesOnly) {
  const auto g = planted(31);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  McmcSettings settings;
  settings.max_iterations = 3;
  util::RngPool rngs(1, 4);
  const auto outcome = metropolis_hastings_phase(g.graph, b, settings, rngs);
  EXPECT_EQ(outcome.parallel_updates, 0);
  EXPECT_GT(outcome.serial_updates, 0);
}

TEST(AsyncGibbsPhase, CountsParallelUpdatesOnly) {
  const auto g = planted(32);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  McmcSettings settings;
  settings.max_iterations = 3;
  util::RngPool rngs(1, 4);
  const auto outcome = async_gibbs_phase(g.graph, b, settings, rngs);
  EXPECT_EQ(outcome.serial_updates, 0);
  EXPECT_GT(outcome.parallel_updates, 0);
}

TEST(HybridPhase, SplitsUpdatesFifteenEightyFive) {
  const auto g = planted(33);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  McmcSettings settings;
  settings.max_iterations = 2;
  util::RngPool rngs(1, 4);
  const auto split = graph::split_by_degree(g.graph, 0.15);
  const auto outcome = hybrid_phase(g.graph, b, settings, split, rngs);
  EXPECT_GT(outcome.serial_updates, 0);
  EXPECT_GT(outcome.parallel_updates, 0);
  const double serial_share =
      static_cast<double>(outcome.serial_updates) /
      static_cast<double>(outcome.serial_updates + outcome.parallel_updates);
  EXPECT_NEAR(serial_share, 0.15, 0.02);
}

TEST(PhasesNeverEmptyBlocks, AllVariants) {
  const auto g = planted(34);
  McmcSettings settings;
  settings.max_iterations = 10;
  util::RngPool rngs(7, 4);
  const auto split = graph::split_by_degree(g.graph, 0.15);
  for (int variant = 0; variant < 3; ++variant) {
    auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
    switch (variant) {
      case 0: metropolis_hastings_phase(g.graph, b, settings, rngs); break;
      case 1: async_gibbs_phase(g.graph, b, settings, rngs); break;
      default: hybrid_phase(g.graph, b, settings, split, rngs); break;
    }
    for (BlockId r = 0; r < b.num_blocks(); ++r) {
      EXPECT_GT(b.block_size(r), 0) << "variant " << variant;
    }
  }
}

// ---------------------------------------------------------------- merges

TEST(BlockMerge, ReachesTargetWithDenseLabels) {
  const auto g = planted(41);
  const auto b = Blockmodel::identity(g.graph);
  util::RngPool rngs(3, 4);
  const auto outcome = block_merge_phase(g.graph, b, 60, 10, rngs);
  EXPECT_EQ(outcome.num_blocks, 60);
  std::set<std::int32_t> labels(outcome.assignment.begin(),
                                outcome.assignment.end());
  EXPECT_EQ(labels.size(), 60u);
  EXPECT_EQ(*labels.begin(), 0);
  EXPECT_EQ(*labels.rbegin(), 59);
}

TEST(BlockMerge, NoopWhenTargetEqualsCurrent) {
  const auto g = planted(42);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  util::RngPool rngs(3, 4);
  const auto outcome = block_merge_phase(g.graph, b, 6, 10, rngs);
  EXPECT_EQ(outcome.num_blocks, 6);
  EXPECT_EQ(outcome.assignment, b.assignment());
}

TEST(BlockMerge, MergingPreservesPartitionStructure) {
  const auto g = planted(43);
  const auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, 6);
  util::RngPool rngs(5, 4);
  const auto outcome = block_merge_phase(g.graph, b, 3, 10, rngs);
  EXPECT_EQ(outcome.num_blocks, 3);
  // Vertices that shared a block still share one (merges only coarsen).
  for (std::size_t i = 0; i < outcome.assignment.size(); ++i) {
    for (std::size_t j = i + 1; j < outcome.assignment.size(); ++j) {
      if (g.ground_truth[i] == g.ground_truth[j]) {
        EXPECT_EQ(outcome.assignment[i], outcome.assignment[j]);
      }
    }
  }
}

TEST(BlockMerge, PrefersMergingTwinBlocks) {
  // Split one true community across two labels; the best halving merge
  // should reunite it rather than merging two different communities.
  const auto g = planted(44, 4, 8.0);
  std::vector<std::int32_t> split_state = g.ground_truth;
  // Split community 0 into labels 0 and 4 (alternating).
  bool flip = false;
  for (auto& label : split_state) {
    if (label == 0) {
      label = flip ? 4 : 0;
      flip = !flip;
    }
  }
  const auto b = Blockmodel::from_assignment(g.graph, split_state, 5);
  util::RngPool rngs(9, 4);
  const auto outcome = block_merge_phase(g.graph, b, 4, 10, rngs);
  EXPECT_EQ(outcome.num_blocks, 4);
  // All of true community 0 back together.
  std::set<std::int32_t> labels_of_zero;
  for (std::size_t v = 0; v < split_state.size(); ++v) {
    if (g.ground_truth[v] == 0) labels_of_zero.insert(outcome.assignment[v]);
  }
  EXPECT_EQ(labels_of_zero.size(), 1u);
}

// ---------------------------------------------------------- golden search

Snapshot snap(BlockId blocks, double mdl_value) {
  return Snapshot{{}, blocks, mdl_value};
}

TEST(GoldenSearch, FindsMinimumOfConvexProfile) {
  // Synthetic MDL profile minimized at B = 13.
  const auto profile = [](BlockId b) {
    const double d = static_cast<double>(b) - 13.0;
    return 100.0 + d * d;
  };
  GoldenSearch search(snap(100, profile(100)), 0.5);
  int steps = 0;
  while (!search.done() && steps < 60) {
    const auto probe = search.next_probe();
    ASSERT_GE(probe.target_blocks, 1);
    ASSERT_LT(probe.target_blocks, probe.warm_start->num_blocks);
    search.record(snap(probe.target_blocks, profile(probe.target_blocks)));
    ++steps;
  }
  EXPECT_TRUE(search.done());
  EXPECT_NEAR(static_cast<double>(search.best().num_blocks), 13.0, 2.0);
}

TEST(GoldenSearch, MonotoneProfileDescendsToOne) {
  // MDL keeps improving as blocks decrease: optimum is B = 1.
  const auto profile = [](BlockId b) { return static_cast<double>(b); };
  GoldenSearch search(snap(64, profile(64)), 0.5);
  int steps = 0;
  while (!search.done() && steps < 60) {
    const auto probe = search.next_probe();
    search.record(snap(probe.target_blocks, profile(probe.target_blocks)));
    ++steps;
  }
  EXPECT_TRUE(search.done());
  EXPECT_EQ(search.best().num_blocks, 1);
}

TEST(GoldenSearch, SingleBlockStartIsImmediatelyDone) {
  GoldenSearch search(snap(1, 5.0), 0.5);
  EXPECT_TRUE(search.done());
  EXPECT_EQ(search.best().num_blocks, 1);
}

TEST(GoldenSearch, BracketEstablishedAfterWorsening) {
  const auto profile = [](BlockId b) {
    const double d = static_cast<double>(b) - 20.0;
    return d * d;
  };
  GoldenSearch search(snap(80, profile(80)), 0.5);
  EXPECT_FALSE(search.bracket_established());
  // 80 → 40 → 20 → 10: the probe at 10 is worse than 20 → bracket.
  while (!search.bracket_established() && !search.done()) {
    const auto probe = search.next_probe();
    search.record(snap(probe.target_blocks, profile(probe.target_blocks)));
  }
  EXPECT_TRUE(search.bracket_established());
}

TEST(GoldenSearch, StalledMergeStillTerminates) {
  // record() snapshots that ignore the requested target and always
  // return the mid block count; the search must still finish.
  GoldenSearch search(snap(32, 32.0), 0.5);
  int steps = 0;
  while (!search.done() && steps < 100) {
    const auto probe = search.next_probe();
    const BlockId reached =
        search.bracket_established() ? search.best().num_blocks
                                     : probe.target_blocks;
    search.record(snap(reached, static_cast<double>(reached)));
    ++steps;
  }
  EXPECT_TRUE(search.done());
  EXPECT_LT(steps, 100);
}

}  // namespace
}  // namespace hsbp::sbp
