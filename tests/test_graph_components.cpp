#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/components.hpp"
#include "graph/graph.hpp"

namespace hsbp::graph {
namespace {

TEST(Components, EmptyGraph) {
  const Graph g;
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.count, 0);
  EXPECT_TRUE(info.component_of.empty());
}

TEST(Components, EdgelessGraphIsAllSingletons) {
  const Graph g = Graph::from_edges(4, {});
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.count, 4);
  for (const auto size : info.sizes) EXPECT_EQ(size, 1);
}

TEST(Components, DirectionIsIgnored) {
  // 0→1→2 chain: weakly connected even though 2 can't reach 0.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.count, 1);
  EXPECT_EQ(info.sizes[0], 3);
}

TEST(Components, TwoComponentsWithSizes) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const Graph g = Graph::from_edges(6, edges);  // vertex 5 isolated
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.count, 3);
  EXPECT_EQ(info.sizes[info.component_of[0]], 3);
  EXPECT_EQ(info.sizes[info.component_of[3]], 2);
  EXPECT_EQ(info.sizes[info.component_of[5]], 1);
  EXPECT_EQ(info.largest, info.component_of[0]);
}

TEST(Components, SameComponentSameLabel) {
  const std::vector<Edge> edges = {{0, 1}, {2, 1}, {3, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.component_of[0], info.component_of[1]);
  EXPECT_EQ(info.component_of[1], info.component_of[2]);
  EXPECT_EQ(info.component_of[3], info.component_of[4]);
  EXPECT_NE(info.component_of[0], info.component_of[3]);
}

TEST(Components, SelfLoopsDoNotConfuse) {
  const std::vector<Edge> edges = {{0, 0}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const auto info = weakly_connected_components(g);
  EXPECT_EQ(info.count, 2);
}

TEST(ExtractComponent, PreservesInducedEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {1, 1}, {2, 3}, {3, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto info = weakly_connected_components(g);
  const auto sub = extract_component(g, info, info.component_of[0]);
  EXPECT_EQ(sub.graph.num_vertices(), 2);
  EXPECT_EQ(sub.graph.num_edges(), 3);  // 0↔1 plus the self-loop
  EXPECT_EQ(sub.graph.num_self_loops(), 1);
  ASSERT_EQ(sub.original_ids.size(), 2u);
  EXPECT_EQ(sub.original_ids[0], 0);
  EXPECT_EQ(sub.original_ids[1], 1);
}

TEST(ExtractComponent, SingletonComponent) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const auto info = weakly_connected_components(g);
  const auto sub = extract_component(g, info, info.component_of[2]);
  EXPECT_EQ(sub.graph.num_vertices(), 1);
  EXPECT_EQ(sub.graph.num_edges(), 0);
  EXPECT_EQ(sub.original_ids[0], 2);
}

TEST(Components, SizesSumToVertexCount) {
  const std::vector<Edge> edges = {{0, 1}, {2, 3}, {4, 5}, {5, 6}, {8, 8}};
  const Graph g = Graph::from_edges(10, edges);
  const auto info = weakly_connected_components(g);
  std::int64_t total = 0;
  for (const auto size : info.sizes) total += size;
  EXPECT_EQ(total, g.num_vertices());
}

}  // namespace
}  // namespace hsbp::graph
