// Atomic-write protocol, fault injector mechanics, graceful-shutdown
// flag, and the hardened result writers built on top of them.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/atomic_file.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "eval/experiment.hpp"
#include "eval/partition_io.hpp"
#include "eval/report.hpp"
#include "util/errors.hpp"

namespace hsbp::ckpt {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

TEST(AtomicFile, RoundTripLeavesNoTempFile) {
  const std::string path = temp_path("atomic_roundtrip.bin");
  atomic_write_file(path, "payload bytes\x00with nul");
  EXPECT_EQ(read_file(path), std::string("payload bytes\x00with nul"));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST(AtomicFile, ReplacesExistingContents) {
  const std::string path = temp_path("atomic_replace.bin");
  atomic_write_file(path, "first");
  atomic_write_file(path, "second, longer than the first");
  EXPECT_EQ(read_file(path), "second, longer than the first");
  fs::remove(path);
}

TEST(AtomicFile, InjectedFailureLeavesOriginalIntact) {
  const std::string path = temp_path("atomic_fail.bin");
  atomic_write_file(path, "previous checkpoint");

  FaultInjector fault;
  fault.fail_write(1);
  EXPECT_THROW(atomic_write_file(path, "doomed", &fault), util::IoError);

  // The failed write must not have touched the destination or left a
  // temp file behind.
  EXPECT_EQ(read_file(path), "previous checkpoint");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(fault.writes_seen(), 1);
  fs::remove(path);
}

TEST(AtomicFile, InjectedTruncationPersistsTornPrefix) {
  const std::string path = temp_path("atomic_truncate.bin");
  FaultInjector fault;
  fault.truncate_write(1, 4);
  atomic_write_file(path, "0123456789", &fault);
  // The torn write renamed only a prefix into place — the reader side
  // (checkpoint loader) is responsible for rejecting it.
  EXPECT_EQ(read_file(path), "0123");
  fs::remove(path);
}

TEST(AtomicFile, FaultCountersAreOneBasedAndSequential) {
  const std::string path = temp_path("atomic_nth.bin");
  FaultInjector fault;
  fault.fail_write(2);
  atomic_write_file(path, "one", &fault);  // write 1 succeeds
  EXPECT_THROW(atomic_write_file(path, "two", &fault), util::IoError);
  atomic_write_file(path, "three", &fault);  // write 3 succeeds again
  EXPECT_EQ(read_file(path), "three");
  EXPECT_EQ(fault.writes_seen(), 3);
  fs::remove(path);
}

TEST(AtomicFile, UnwritableDirectoryThrowsIoError) {
  EXPECT_THROW(
      atomic_write_file("/nonexistent-hsbp-dir/out.bin", "payload"),
      util::IoError);
}

TEST(AtomicFile, ReadMissingFileThrowsIoError) {
  EXPECT_THROW(read_file(temp_path("does_not_exist.bin")), util::IoError);
}

TEST(FaultInjector, KillFiresAtArmedPhaseBoundaryOnly) {
  FaultInjector fault;
  fault.kill_at_phase(3);
  EXPECT_NO_THROW(fault.on_phase_boundary());
  EXPECT_NO_THROW(fault.on_phase_boundary());
  EXPECT_THROW(fault.on_phase_boundary(), SimulatedKill);
  EXPECT_EQ(fault.phases_seen(), 3);
  // Past the armed boundary, later phases proceed normally.
  EXPECT_NO_THROW(fault.on_phase_boundary());
}

TEST(Shutdown, FlagRoundTrip) {
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
}

TEST(ResultWriters, AssignmentFileIsAtomicAndRoundTrips) {
  const std::string path = temp_path("assignment.tsv");
  const std::vector<std::int32_t> assignment = {0, 1, 1, 2, 0};
  eval::save_assignment_file(assignment, path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(eval::load_assignment_file(path), assignment);
  fs::remove(path);
}

TEST(ResultWriters, AssignmentStreamFailureThrowsIoError) {
  std::ofstream out("/nonexistent-hsbp-dir/assignment.tsv");
  const std::vector<std::int32_t> assignment = {0, 1};
  EXPECT_THROW(eval::save_assignment(assignment, out), util::IoError);
}

TEST(ResultWriters, AssignmentFileToUnwritablePathThrowsIoError) {
  const std::vector<std::int32_t> assignment = {0, 1};
  EXPECT_THROW(eval::save_assignment_file(assignment,
                                          "/nonexistent-hsbp-dir/a.tsv"),
               util::IoError);
}

TEST(ResultWriters, CsvFileIsAtomicAndComplete) {
  const std::string path = temp_path("rows.csv");
  eval::ExperimentRow row;
  row.graph_id = "toy";
  row.algorithm = "H-SBP";
  eval::write_rows_csv_file({row}, path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const std::string csv = read_file(path);
  EXPECT_NE(csv.find("graph,algorithm"), std::string::npos);
  EXPECT_NE(csv.find("toy,H-SBP"), std::string::npos);
  fs::remove(path);
}

TEST(ResultWriters, CsvFileToUnwritablePathThrowsIoError) {
  EXPECT_THROW(
      eval::write_rows_csv_file({}, "/nonexistent-hsbp-dir/rows.csv"),
      util::IoError);
}

}  // namespace
}  // namespace hsbp::ckpt
