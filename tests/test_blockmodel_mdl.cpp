#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "graph/graph.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Edge;
using graph::Graph;

TEST(Xlogx, Basics) {
  EXPECT_DOUBLE_EQ(xlogx(0.0), 0.0);
  EXPECT_DOUBLE_EQ(xlogx(1.0), 0.0);
  EXPECT_NEAR(xlogx(2.0), 2.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(xlogx(std::exp(1.0)), std::exp(1.0), 1e-12);
}

TEST(HFunction, Basics) {
  EXPECT_DOUBLE_EQ(h_function(0.0), 0.0);
  // h(1) = 2 log 2 − 0.
  EXPECT_NEAR(h_function(1.0), 2.0 * std::log(2.0), 1e-12);
  // h is increasing on small x.
  EXPECT_GT(h_function(0.2), h_function(0.1));
}

TEST(ModelDescriptionLength, Formula) {
  // E=100, V=50, C=4: E·h(16/100) + 50·log 4.
  const double expected =
      100.0 * h_function(0.16) + 50.0 * std::log(4.0);
  EXPECT_NEAR(model_description_length(50, 100, 4), expected, 1e-9);
}

TEST(ModelDescriptionLength, OneBlockNearZero) {
  // C=1: V·log 1 = 0, leaving only E·h(1/E) → small.
  const double v = model_description_length(100, 1000, 1);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 20.0);
}

TEST(LogLikelihood, HandComputedTwoBlocks) {
  // Two blocks, M = [[4,2],[0,2]], d_out = (6,2), d_in = (4,4).
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3},
                                   {3, 4}, {4, 3}, {1, 1}, {0, 3}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 0, 1, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 2);

  // Direct Eq. 1: Σ M_rs log(M_rs / (d_out_r d_in_s)).
  double expected = 0.0;
  const double m[2][2] = {{4, 2}, {0, 2}};
  const double d_out[2] = {6, 2};
  const double d_in[2] = {4, 4};
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < 2; ++s) {
      if (m[r][s] > 0) {
        expected += m[r][s] * std::log(m[r][s] / (d_out[r] * d_in[s]));
      }
    }
  }
  EXPECT_NEAR(log_likelihood(b), expected, 1e-9);
}

TEST(LogLikelihood, DecompositionMatchesDirectForm) {
  // On a random-ish small graph, the xlogx decomposition used by
  // log_likelihood must equal the direct Eq. 1 sum.
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {0, 2},
                                   {4, 4}, {4, 1}, {3, 4}, {2, 2}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> assignment = {0, 1, 2, 0, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 3);

  double direct = 0.0;
  for (BlockId r = 0; r < 3; ++r) {
    for (const auto& [s, count] : b.matrix().row(r)) {
      direct += static_cast<double>(count) *
                std::log(static_cast<double>(count) /
                         (static_cast<double>(b.degree_out(r)) *
                          static_cast<double>(b.degree_in(s))));
    }
  }
  EXPECT_NEAR(log_likelihood(b), direct, 1e-9);
}

TEST(Mdl, CombinesModelAndLikelihood) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 2);
  const double expected =
      model_description_length(4, 4, 2) - log_likelihood(b);
  EXPECT_NEAR(mdl(b, 4, 4), expected, 1e-12);
}

TEST(NullMdl, MatchesOneBlockPartition) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {1, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> ones(3, 0);
  const auto b = Blockmodel::from_assignment(g, ones, 1);
  EXPECT_NEAR(null_mdl(g.num_vertices(), g.num_edges()),
              mdl(b, g.num_vertices(), g.num_edges()), 1e-9);
}

TEST(NullMdl, DegenerateInputs) {
  EXPECT_EQ(null_mdl(10, 0), 0.0);
}

TEST(LogLikelihood, MaintainedEqualsRescanExactly) {
  // The O(1) maintained likelihood and the O(nnz) rescan accumulate the
  // same quantized fixed-point terms, so they must agree to the bit —
  // EXPECT_EQ on doubles, no tolerance.
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {0, 2},
                                   {4, 4}, {4, 1}, {3, 4}, {2, 2}, {1, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> assignment = {0, 1, 2, 0, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 3);
  EXPECT_EQ(log_likelihood(b), log_likelihood_rescan(b));
}

TEST(LogLikelihood, MaintainedTracksMoveSequenceExactly) {
  // After every in-place move the maintained sums must still equal the
  // rescan and a from-scratch construction of the same assignment —
  // this is the invariant the pass-to-pass delta application rests on.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4},
                                   {4, 3}, {1, 1}, {0, 3}, {2, 4}, {4, 0},
                                   {3, 1}, {1, 4}};
  const Graph g = Graph::from_edges(5, edges);
  std::vector<std::int32_t> assignment = {0, 0, 1, 1, 2};
  auto b = Blockmodel::from_assignment(g, assignment, 3);

  const std::vector<std::pair<graph::Vertex, BlockId>> moves = {
      {0, 1}, {2, 2}, {4, 0}, {0, 2}, {2, 1}, {4, 2}, {0, 0}};
  for (const auto& [v, to] : moves) {
    if (b.block_size(b.block_of(v)) <= 1 || b.block_of(v) == to) continue;
    b.move_vertex(g, v, to);
    assignment[static_cast<std::size_t>(v)] = to;
    EXPECT_EQ(log_likelihood(b), log_likelihood_rescan(b));
    const auto fresh = Blockmodel::from_assignment(g, assignment, 3);
    EXPECT_EQ(log_likelihood(b), log_likelihood(fresh));
    EXPECT_EQ(mdl(b, 5, 12), mdl(fresh, 5, 12));
  }
}

TEST(Mdl, GoodPartitionBeatsBadPartition) {
  // Two disconnected bidirected triangles: the true 2-block split must
  // have lower MDL than a mixed split.
  std::vector<Edge> edges;
  for (int i = 0; i < 3; ++i) {
    const auto a = static_cast<graph::Vertex>(i);
    const auto b2 = static_cast<graph::Vertex>((i + 1) % 3);
    edges.emplace_back(a, b2);
    edges.emplace_back(b2, a);
    edges.emplace_back(static_cast<graph::Vertex>(3 + i),
                       static_cast<graph::Vertex>(3 + (i + 1) % 3));
    edges.emplace_back(static_cast<graph::Vertex>(3 + (i + 1) % 3),
                       static_cast<graph::Vertex>(3 + i));
  }
  const Graph g = Graph::from_edges(6, edges);
  const std::vector<std::int32_t> good = {0, 0, 0, 1, 1, 1};
  const std::vector<std::int32_t> bad = {0, 1, 0, 1, 0, 1};
  const auto b_good = Blockmodel::from_assignment(g, good, 2);
  const auto b_bad = Blockmodel::from_assignment(g, bad, 2);
  EXPECT_LT(mdl(b_good, 6, 12), mdl(b_bad, 6, 12));
}

}  // namespace
}  // namespace hsbp::blockmodel
