#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sbp/sbp.hpp"
#include "sbp/vertex_selection.hpp"

namespace hsbp::sbp {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

Graph hub_graph() {
  // Vertex 0: degree 8; vertices 1-4 connect to it and each other.
  std::vector<Edge> edges;
  for (Vertex i = 1; i <= 4; ++i) {
    edges.emplace_back(0, i);
    edges.emplace_back(i, 0);
  }
  edges.emplace_back(1, 2);
  edges.emplace_back(3, 4);
  return Graph::from_edges(5, edges);
}

TEST(SelectionName, AllStrategiesNamed) {
  EXPECT_STREQ(selection_name(HybridSelection::Degree), "degree");
  EXPECT_STREQ(selection_name(HybridSelection::EdgeInfo), "edge-info");
  EXPECT_STREQ(selection_name(HybridSelection::Random), "random");
}

class SelectionSweep : public ::testing::TestWithParam<HybridSelection> {};

TEST_P(SelectionSweep, SplitIsAPartitionOfTheRightSize) {
  const Graph g = hub_graph();
  const auto split = select_hybrid_vertices(g, 0.4, GetParam(), 7);
  EXPECT_EQ(split.high.size(), 2u);  // ceil(0.4·5)
  EXPECT_EQ(split.low.size(), 3u);
  std::set<Vertex> all(split.high.begin(), split.high.end());
  all.insert(split.low.begin(), split.low.end());
  EXPECT_EQ(all.size(), 5u);  // disjoint cover
}

TEST_P(SelectionSweep, ExtremeFractions) {
  const Graph g = hub_graph();
  const auto none = select_hybrid_vertices(g, 0.0, GetParam(), 7);
  EXPECT_TRUE(none.high.empty());
  const auto everyone = select_hybrid_vertices(g, 1.0, GetParam(), 7);
  EXPECT_TRUE(everyone.low.empty());
}

INSTANTIATE_TEST_SUITE_P(Strategies, SelectionSweep,
                         ::testing::Values(HybridSelection::Degree,
                                           HybridSelection::EdgeInfo,
                                           HybridSelection::Random));

TEST(Selection, DegreeAndEdgeInfoBothPickTheHub) {
  const Graph g = hub_graph();
  for (const auto strategy :
       {HybridSelection::Degree, HybridSelection::EdgeInfo}) {
    const auto split = select_hybrid_vertices(g, 0.2, strategy, 7);
    ASSERT_EQ(split.high.size(), 1u);
    EXPECT_EQ(split.high[0], 0) << selection_name(strategy);
  }
}

TEST(Selection, RandomIsSeedDeterministic) {
  const Graph g = hub_graph();
  const auto a = select_hybrid_vertices(g, 0.4, HybridSelection::Random, 11);
  const auto b = select_hybrid_vertices(g, 0.4, HybridSelection::Random, 11);
  EXPECT_EQ(a.high, b.high);
  const auto c = select_hybrid_vertices(g, 0.4, HybridSelection::Random, 12);
  // Different seed usually reshuffles (5 vertices: collision possible but
  // this seed pair differs).
  EXPECT_TRUE(a.high != c.high || a.low != c.low);
}

TEST(Selection, EdgeInfoRanksBridgesOverPendants) {
  // Two hubs joined by a bridge vertex: the bridge has low degree but
  // its edges touch two hubs, so edge-info ranks it above a pendant of
  // equal degree.
  std::vector<Edge> edges;
  for (Vertex i = 1; i <= 4; ++i) {
    edges.emplace_back(0, i);   // hub A = 0
    edges.emplace_back(5, static_cast<Vertex>(5 + i));  // hub B = 5
  }
  edges.emplace_back(10, 0);  // bridge 10: two edges, both to hubs
  edges.emplace_back(10, 5);
  edges.emplace_back(11, 1);  // pendant-ish 11: two edges to leaves
  edges.emplace_back(11, 2);
  const Graph g = Graph::from_edges(12, edges);
  ASSERT_EQ(g.degree(10), g.degree(11));

  const auto split =
      select_hybrid_vertices(g, 0.25, HybridSelection::EdgeInfo, 1);  // top 3
  const std::set<Vertex> high(split.high.begin(), split.high.end());
  EXPECT_TRUE(high.contains(0));
  EXPECT_TRUE(high.contains(5));
  EXPECT_TRUE(high.contains(10));  // bridge beats the pendant
}

TEST(Selection, HybridRunsWithEveryStrategy) {
  generator::DcsbmParams p;
  p.num_vertices = 240;
  p.num_communities = 6;
  p.num_edges = 2400;
  p.ratio_within_between = 5.0;
  p.seed = 91;
  const auto g = generator::generate_dcsbm(p);
  for (const auto strategy :
       {HybridSelection::Degree, HybridSelection::EdgeInfo,
        HybridSelection::Random}) {
    SbpConfig config;
    config.variant = Variant::Hybrid;
    config.hybrid_selection = strategy;
    config.seed = 4;
    const auto result = run(g.graph, config);
    EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.75)
        << selection_name(strategy);
  }
}

}  // namespace
}  // namespace hsbp::sbp
