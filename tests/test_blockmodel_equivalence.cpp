/// Bit-identity of the optimized hot-path kernels against their pre-PR
/// reference transcriptions (tests/reference_kernels.hpp). Every
/// comparison uses exact equality: the scratch-arena/xlogx-table/flat-
/// slice rewrite must be a pure performance change, with no numerical
/// drift at all.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "blockmodel/xlogx_table.hpp"
#include "generator/dcsbm.hpp"
#include "reference_kernels.hpp"
#include "sbp/hastings.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(XlogxTable, BitIdenticalToLiveLogAcrossTable) {
  // Every tabulated integer, both sides of the table boundary, and a
  // spread of large values must match the live-log reference exactly.
  for (Count x = 0; x < static_cast<Count>(kXlogxTableSize); ++x) {
    EXPECT_EQ(xlogx_count(x), reference::xlogx(static_cast<double>(x)))
        << "x=" << x;
  }
  const Count boundary = static_cast<Count>(kXlogxTableSize);
  for (Count x = boundary - 2; x <= boundary + 2; ++x) {
    EXPECT_EQ(xlogx_count(x), reference::xlogx(static_cast<double>(x)))
        << "x=" << x;
  }
  for (Count x = boundary; x < boundary * 64; x += 997) {
    EXPECT_EQ(xlogx_count(x), reference::xlogx(static_cast<double>(x)))
        << "x=" << x;
  }
}

struct DensityCase {
  graph::Vertex vertices;
  std::int32_t communities;
  graph::EdgeCount edges;
};

/// Sparse, medium, and dense DCSBM graphs: density controls the
/// neighbor-block fan-out k and hence how hard the stamped dedup and
/// the flat slices are exercised.
const DensityCase kDensities[] = {
    {120, 6, 360},    // sparse: avg degree 3
    {120, 6, 1800},   // medium: avg degree 15
    {120, 6, 7200},   // dense: avg degree 60, k often ≈ num_blocks
};

class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(KernelEquivalence, MoveKernelsBitIdenticalOnRandomMoves) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const DensityCase& dc = kDensities[std::get<1>(GetParam())];

  generator::DcsbmParams params;
  params.num_vertices = dc.vertices;
  params.num_communities = dc.communities;
  params.num_edges = dc.edges;
  params.seed = seed;
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;

  util::Rng rng(seed * 7919 + 31);
  std::vector<std::int32_t> state(static_cast<std::size_t>(dc.vertices));
  for (auto& label : state) {
    label = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
  }
  auto b = Blockmodel::from_assignment(g, state, dc.communities);
  const auto view = [&b](Vertex u) { return b.block_of(u); };

  MoveScratch scratch;
  int compared = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const auto v = static_cast<Vertex>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.vertices)));
    const BlockId from = b.block_of(v);
    const auto to = static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
    if (to == from) continue;

    // Reference chain: allocate-per-call kernels.
    const auto ref_nb = reference::gather_neighbor_blocks_view(g, view, v);
    const auto ref_delta = reference::vertex_move_delta(b, from, to, ref_nb);
    const double ref_corr =
        reference::hastings_correction(b, ref_nb, from, to, ref_delta);

    // Optimized chain: one scratch arena end to end.
    gather_neighbor_blocks_into(g, view, v, scratch);
    EXPECT_EQ(scratch.nb.out, ref_nb.out);
    EXPECT_EQ(scratch.nb.in, ref_nb.in);
    EXPECT_EQ(scratch.nb.self_loops, ref_nb.self_loops);
    EXPECT_EQ(scratch.nb.degree_out, ref_nb.degree_out);
    EXPECT_EQ(scratch.nb.degree_in, ref_nb.degree_in);

    vertex_move_delta_into(b, from, to, scratch.nb, scratch);
    EXPECT_EQ(scratch.delta.delta_mdl, ref_delta.delta_mdl)
        << "v=" << v << " from=" << from << " to=" << to;
    ASSERT_EQ(scratch.delta.cell_deltas.size(), ref_delta.cell_deltas.size());
    for (std::size_t i = 0; i < ref_delta.cell_deltas.size(); ++i) {
      EXPECT_EQ(scratch.delta.cell_deltas[i].row,
                ref_delta.cell_deltas[i].row);
      EXPECT_EQ(scratch.delta.cell_deltas[i].col,
                ref_delta.cell_deltas[i].col);
      EXPECT_EQ(scratch.delta.cell_deltas[i].delta,
                ref_delta.cell_deltas[i].delta);
    }

    const double opt_corr = sbp::hastings_correction(b, from, to, scratch);
    EXPECT_EQ(opt_corr, ref_corr) << "v=" << v << " from=" << from
                                  << " to=" << to;

    // The O(1) post-move lookup must agree with the scanning reference
    // on every cell of the affected rows/columns.
    for (BlockId r = 0; r < b.num_blocks(); ++r) {
      EXPECT_EQ(move_new_value(b, scratch, from, r),
                reference::new_value(b, ref_delta, from, r));
      EXPECT_EQ(move_new_value(b, scratch, r, to),
                reference::new_value(b, ref_delta, r, to));
    }

    ++compared;
    // Walk the chain so later trials see evolving, messy matrices.
    if (b.block_size(from) > 1 && trial % 3 == 0) b.move_vertex(g, v, to);
  }
  EXPECT_GT(compared, 500);
}

TEST_P(KernelEquivalence, MergeDeltaBitIdenticalOnRandomMerges) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const DensityCase& dc = kDensities[std::get<1>(GetParam())];

  generator::DcsbmParams params;
  params.num_vertices = dc.vertices;
  params.num_communities = dc.communities;
  params.num_edges = dc.edges;
  params.seed = seed + 17;
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;
  const auto b = Blockmodel::from_assignment(g, generated.ground_truth,
                                             dc.communities);

  util::Rng rng(seed + 101);
  for (int trial = 0; trial < 200; ++trial) {
    const auto from = static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
    const auto to = static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(dc.communities)));
    if (from == to) continue;
    EXPECT_EQ(merge_delta_mdl(b, from, to, g.num_vertices(), g.num_edges()),
              reference::merge_delta_mdl(b, from, to, g.num_vertices(),
                                         g.num_edges()))
        << "merge " << from << " into " << to;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByDensity, KernelEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 21, 63),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace hsbp::blockmodel
