#include <gtest/gtest.h>

#include "blockmodel/dense_matrix.hpp"
#include "blockmodel/dict_transpose_matrix.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

TEST(DenseMatrix, StartsEmpty) {
  const DenseMatrix m(3);
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.total(), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_EQ(m.get(1, 2), 0);
}

TEST(DenseMatrix, AddAndSums) {
  DenseMatrix m(3);
  m.add(0, 1, 5);
  m.add(0, 2, 2);
  m.add(2, 1, 3);
  EXPECT_EQ(m.get(0, 1), 5);
  EXPECT_EQ(m.total(), 10);
  EXPECT_EQ(m.row_sum(0), 7);
  EXPECT_EQ(m.col_sum(1), 8);
  EXPECT_EQ(m.nonzeros(), 3u);
}

TEST(DenseMatrix, RoundTripThroughSparse) {
  util::Rng rng(55);
  DictTransposeMatrix sparse(12);
  for (int i = 0; i < 200; ++i) {
    sparse.add(static_cast<BlockId>(rng.uniform_int(12)),
               static_cast<BlockId>(rng.uniform_int(12)),
               static_cast<Count>(1 + rng.uniform_int(5)));
  }
  const DenseMatrix dense = DenseMatrix::from_sparse(sparse);
  EXPECT_TRUE(dense.equals(sparse));
  EXPECT_EQ(dense.total(), sparse.total());
  EXPECT_EQ(dense.nonzeros(), sparse.nonzeros());

  const DictTransposeMatrix back = dense.to_sparse();
  EXPECT_TRUE(dense.equals(back));
  EXPECT_TRUE(back.check_consistency());
}

TEST(DenseMatrix, SumsMatchSparseDegrees) {
  util::Rng rng(56);
  DictTransposeMatrix sparse(8);
  for (int i = 0; i < 100; ++i) {
    sparse.add(static_cast<BlockId>(rng.uniform_int(8)),
               static_cast<BlockId>(rng.uniform_int(8)), 1);
  }
  const DenseMatrix dense = DenseMatrix::from_sparse(sparse);
  for (BlockId r = 0; r < 8; ++r) {
    Count row_expected = 0;
    for (const auto& [c, v] : sparse.row(r)) {
      (void)c;
      row_expected += v;
    }
    EXPECT_EQ(dense.row_sum(r), row_expected);
    Count col_expected = 0;
    for (const auto& [c, v] : sparse.col(r)) {
      (void)c;
      col_expected += v;
    }
    EXPECT_EQ(dense.col_sum(r), col_expected);
  }
}

TEST(DenseMatrix, NegativeDeltasCancel) {
  DenseMatrix m(2);
  m.add(1, 1, 4);
  m.add(1, 1, -4);
  EXPECT_EQ(m.get(1, 1), 0);
  EXPECT_EQ(m.total(), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(DenseMatrix, EqualsDetectsMismatch) {
  DictTransposeMatrix sparse(2);
  sparse.add(0, 1, 2);
  DenseMatrix dense(2);
  dense.add(0, 1, 2);
  EXPECT_TRUE(dense.equals(sparse));
  dense.add(1, 0, 1);
  EXPECT_FALSE(dense.equals(sparse));
  const DictTransposeMatrix bigger(3);
  EXPECT_FALSE(dense.equals(bigger));
}

}  // namespace
}  // namespace hsbp::blockmodel
