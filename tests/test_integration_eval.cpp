#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "eval/report.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/golden_search.hpp"
#include "util/rng.hpp"

namespace hsbp::eval {
namespace {

ExperimentRow sample_row(const std::string& graph, const std::string& algo,
                         double mcmc_seconds, double nmi) {
  ExperimentRow row;
  row.graph_id = graph;
  row.algorithm = algo;
  row.num_vertices = 100;
  row.num_edges = 800;
  row.num_blocks = 5;
  row.nmi = nmi;
  row.mdl_norm = 0.9;
  row.modularity = 0.5;
  row.mdl = 1234.5;
  row.mcmc_seconds = mcmc_seconds;
  row.merge_seconds = 0.1;
  row.total_seconds = mcmc_seconds + 0.1;
  row.mcmc_iterations = 42;
  row.parallel_update_fraction = 0.85;
  return row;
}

TEST(Report, QualityTableContainsEveryRow) {
  std::ostringstream out;
  print_quality_table({sample_row("g1", "SBP", 1.0, 0.9),
                       sample_row("g1", "H-SBP", 0.5, 0.91)},
                      out);
  const std::string text = out.str();
  EXPECT_NE(text.find("g1"), std::string::npos);
  EXPECT_NE(text.find("SBP"), std::string::npos);
  EXPECT_NE(text.find("H-SBP"), std::string::npos);
  EXPECT_NE(text.find("0.900"), std::string::npos);
}

TEST(Report, SpeedupTableComputesRatiosAgainstFirstAlgorithm) {
  std::ostringstream out;
  print_speedup_table({sample_row("g1", "SBP", 2.0, 0.9),
                       sample_row("g1", "H-SBP", 1.0, 0.9)},
                      out);
  const std::string text = out.str();
  // H-SBP MCMC speedup = 2.0/1.0 = 2.00.
  EXPECT_NE(text.find("2.00"), std::string::npos);
  EXPECT_NE(text.find("proj@128t"), std::string::npos);
}

TEST(Report, IterationTableShowsCounts) {
  std::ostringstream out;
  print_iteration_table({sample_row("g2", "A-SBP", 1.0, 0.5)}, out);
  EXPECT_NE(out.str().find("42"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneLinePerRow) {
  std::ostringstream out;
  write_rows_csv({sample_row("g1", "SBP", 1.0, 0.9),
                  sample_row("g2", "H-SBP", 0.5, 0.8)},
                 out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  EXPECT_NE(text.find("graph,algorithm,"), std::string::npos);
  EXPECT_NE(text.find("g2,H-SBP,"), std::string::npos);
}

TEST(Report, CsvFileRejectsBadPath) {
  EXPECT_THROW(
      write_rows_csv_file({}, "/nonexistent-dir/rows.csv"),
      std::runtime_error);
}

TEST(Report, BannerIncludesScaleAndRuns) {
  std::ostringstream out;
  print_banner("Test Bench", 0.25, 5, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Test Bench"), std::string::npos);
  EXPECT_NE(text.find("scale=0.25"), std::string::npos);
  EXPECT_NE(text.find("runs=5"), std::string::npos);
}

/// Golden-search fuzz: noisy unimodal MDL profiles with random minima —
/// the search must terminate and land near the minimum.
class GoldenFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenFuzz, ConvergesNearMinimumOfNoisyConvexProfile) {
  util::Rng rng(GetParam());
  const auto optimum = static_cast<blockmodel::BlockId>(
      4 + rng.uniform_int(60));
  const double curvature = 0.5 + rng.uniform() * 5.0;
  const auto profile = [&](blockmodel::BlockId blocks) {
    const double d = static_cast<double>(blocks - optimum);
    // Deterministic "noise" from the block count so reruns agree.
    const double wobble =
        0.3 * std::sin(static_cast<double>(blocks) * 2.39996);
    return 1000.0 + curvature * d * d + wobble;
  };

  sbp::GoldenSearch search(
      sbp::Snapshot{{}, 256, profile(256)}, 0.5);
  int steps = 0;
  while (!search.done() && steps < 80) {
    const auto probe = search.next_probe();
    ASSERT_GE(probe.target_blocks, 1);
    ASSERT_LT(probe.target_blocks, probe.warm_start->num_blocks);
    search.record(
        sbp::Snapshot{{}, probe.target_blocks, profile(probe.target_blocks)});
    ++steps;
  }
  ASSERT_TRUE(search.done());
  EXPECT_NEAR(static_cast<double>(search.best().num_blocks),
              static_cast<double>(optimum), 6.0)
      << "optimum=" << optimum << " curvature=" << curvature;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace hsbp::eval
