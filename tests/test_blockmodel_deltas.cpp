#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "generator/dcsbm.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

Graph hand_graph() {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3},
                                   {3, 4}, {4, 3}, {1, 1}, {0, 3}};
  return Graph::from_edges(5, edges);
}

TEST(GatherNeighborBlocks, HandComputed) {
  const Graph g = hand_graph();
  const std::vector<std::int32_t> assignment = {0, 0, 0, 1, 1};
  const auto nb = gather_neighbor_blocks(g, assignment, 0);
  EXPECT_EQ(nb.degree_out, 3);  // 0→1 and 0→3 twice
  EXPECT_EQ(nb.degree_in, 1);   // 2→0
  EXPECT_EQ(nb.self_loops, 0);
  // Out: block0 ×1 (0→1), block1 ×2 (0→3 twice).
  Count out_block0 = 0, out_block1 = 0;
  for (const auto& [b, c] : nb.out) {
    if (b == 0) out_block0 = c;
    if (b == 1) out_block1 = c;
  }
  EXPECT_EQ(out_block0, 1);
  EXPECT_EQ(out_block1, 2);
  // In: block0 ×1 (2→0).
  ASSERT_EQ(nb.in.size(), 1u);
  EXPECT_EQ(nb.in[0].first, 0);
  EXPECT_EQ(nb.in[0].second, 1);
}

TEST(GatherNeighborBlocks, SelfLoopSeparated) {
  const Graph g = hand_graph();
  const std::vector<std::int32_t> assignment = {0, 0, 0, 1, 1};
  const auto nb = gather_neighbor_blocks(g, assignment, 1);
  EXPECT_EQ(nb.self_loops, 1);
  EXPECT_EQ(nb.degree_out, 2);  // 1→2 and 1→1
  EXPECT_EQ(nb.degree_in, 2);   // 0→1 and 1→1
  // Neither out nor in lists contain the self-loop.
  Count listed = 0;
  for (const auto& [b, c] : nb.out) listed += c;
  for (const auto& [b, c] : nb.in) listed += c;
  EXPECT_EQ(listed, 2);
}

TEST(VertexMoveDelta, MatchesFullRecomputeOnHandGraph) {
  const Graph g = hand_graph();
  const std::vector<std::int32_t> assignment = {0, 0, 0, 1, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);
  const double before = mdl(b, g.num_vertices(), g.num_edges());

  const auto nb = gather_neighbor_blocks(g, assignment, 2);
  const auto delta = vertex_move_delta(b, 0, 1, nb);

  b.move_vertex(g, 2, 1);
  const double after = mdl(b, g.num_vertices(), g.num_edges());
  EXPECT_NEAR(delta.delta_mdl, after - before, 1e-9);
}

TEST(VertexMoveDelta, NewValueReflectsCellDeltas) {
  const Graph g = hand_graph();
  const std::vector<std::int32_t> assignment = {0, 0, 0, 1, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);
  const auto nb = gather_neighbor_blocks(g, assignment, 2);
  const auto delta = vertex_move_delta(b, 0, 1, nb);

  auto moved = b;
  moved.move_vertex(g, 2, 1);
  for (BlockId r = 0; r < 2; ++r) {
    for (BlockId s = 0; s < 2; ++s) {
      EXPECT_EQ(delta.new_value(b, r, s), moved.matrix().get(r, s))
          << "cell (" << r << "," << s << ")";
    }
  }
}

/// The core property: the O(deg) delta equals the brute-force MDL
/// difference for random graphs, random states, random moves.
class MoveDeltaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoveDeltaProperty, DeltaEqualsRecompute) {
  generator::DcsbmParams params;
  params.num_vertices = 80;
  params.num_communities = 5;
  params.num_edges = 640;
  params.seed = GetParam();
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;

  util::Rng rng(GetParam() * 977 + 13);
  // Random (not ground-truth) state to cover messy matrices.
  std::vector<std::int32_t> state(80);
  for (auto& label : state) {
    label = static_cast<std::int32_t>(rng.uniform_int(5));
  }
  auto b = Blockmodel::from_assignment(g, state, 5);

  for (int trial = 0; trial < 60; ++trial) {
    const auto v = static_cast<Vertex>(rng.uniform_int(80));
    const BlockId from = b.block_of(v);
    const auto to = static_cast<BlockId>(rng.uniform_int(5));
    if (to == from || b.block_size(from) <= 1) continue;

    const auto nb = gather_neighbor_blocks(g, b.assignment(), v);
    const auto delta = vertex_move_delta(b, from, to, nb);

    const double before = mdl(b, g.num_vertices(), g.num_edges());
    auto moved = b;
    moved.move_vertex(g, v, to);
    const double after = mdl(moved, g.num_vertices(), g.num_edges());

    EXPECT_NEAR(delta.delta_mdl, after - before, 1e-8)
        << "v=" << v << " from=" << from << " to=" << to;

    // Walk the chain: apply the move so later trials see fresh states.
    b = std::move(moved);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveDeltaProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           111));

/// Merge delta property: equals recompute after relabel+compact.
class MergeDeltaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeDeltaProperty, DeltaEqualsRecompute) {
  generator::DcsbmParams params;
  params.num_vertices = 90;
  params.num_communities = 6;
  params.num_edges = 700;
  params.seed = GetParam();
  const auto generated = generator::generate_dcsbm(params);
  const Graph& g = generated.graph;

  const auto b =
      Blockmodel::from_assignment(g, generated.ground_truth, 6);
  const double before = mdl(b, g.num_vertices(), g.num_edges());

  util::Rng rng(GetParam() + 5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto from = static_cast<BlockId>(rng.uniform_int(6));
    const auto to = static_cast<BlockId>(rng.uniform_int(6));
    if (from == to) continue;

    const double delta =
        merge_delta_mdl(b, from, to, g.num_vertices(), g.num_edges());

    // Brute force: relabel from→to, compact labels, rebuild with C−1.
    std::vector<std::int32_t> merged(b.assignment());
    for (auto& label : merged) {
      if (label == from) label = to;
      if (label > from) --label;  // compact: labels above `from` shift down
    }
    const auto b_merged = Blockmodel::from_assignment(g, merged, 5);
    const double after = mdl(b_merged, g.num_vertices(), g.num_edges());

    EXPECT_NEAR(delta, after - before, 1e-8)
        << "merge " << from << " into " << to;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeDeltaProperty,
                         ::testing::Values(3, 6, 9, 12, 15, 18));

TEST(VertexMoveDelta, SelfLoopVertexMove) {
  // Vertex with only a self-loop: moving it must keep ΔMDL consistent.
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 2}, {2, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> assignment = {0, 1, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);
  const auto nb = gather_neighbor_blocks(g, assignment, 0);
  EXPECT_EQ(nb.self_loops, 1);

  // Can't test 0→1 leaving block 0 empty via the MDL of 2 blocks with an
  // empty row — instead verify the delta math against direct recompute
  // with the empty block retained.
  const auto delta = vertex_move_delta(b, 0, 1, nb);
  const double before = mdl(b, g.num_vertices(), g.num_edges());
  auto moved = b;
  moved.move_vertex(g, 0, 1);
  const double after = mdl(moved, g.num_vertices(), g.num_edges());
  EXPECT_NEAR(delta.delta_mdl, after - before, 1e-9);
}

}  // namespace
}  // namespace hsbp::blockmodel
