/// FlatSlice differential tests: the open-addressing small-map must
/// behave exactly like a std::unordered_map<BlockId, Count> with
/// erase-on-zero semantics, across the inline→indexed transition, grow,
/// and backward-shift deletion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "blockmodel/flat_slice.hpp"
#include "util/rng.hpp"

namespace hsbp::blockmodel {
namespace {

void expect_matches(const FlatSlice& slice,
                    const std::unordered_map<BlockId, Count>& model,
                    BlockId key_range) {
  ASSERT_EQ(slice.size(), model.size());
  ASSERT_EQ(slice.empty(), model.empty());
  // Every key in [0, key_range) agrees, present or absent.
  for (BlockId k = 0; k < key_range; ++k) {
    const auto it = model.find(k);
    EXPECT_EQ(slice.get(k), it == model.end() ? 0 : it->second) << "key " << k;
  }
  // Iteration yields exactly the model's entries (order-free), and the
  // entries() span is the same sequence as begin()/end().
  std::unordered_map<BlockId, Count> seen;
  for (const auto& [key, value] : slice) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate key " << key;
    EXPECT_NE(value, 0) << "zero entry surfaced for key " << key;
  }
  EXPECT_EQ(seen, model);
  EXPECT_EQ(slice.entries().size(), slice.size());
}

TEST(FlatSlice, BasicAddGetErase) {
  FlatSlice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.get(3), 0);

  EXPECT_EQ(s.add(3, 2), +1);   // created
  EXPECT_EQ(s.add(3, 5), 0);    // updated
  EXPECT_EQ(s.get(3), 7);
  EXPECT_EQ(s.at(3), 7);
  EXPECT_EQ(s.add(3, -7), -1);  // erased on zero
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.get(3), 0);
  EXPECT_THROW((void)s.at(3), std::out_of_range);
}

TEST(FlatSlice, InlineToIndexedTransitionPreservesEntries) {
  FlatSlice s;
  std::unordered_map<BlockId, Count> model;
  // Fill well past any plausible inline capacity.
  for (BlockId k = 0; k < 64; ++k) {
    EXPECT_EQ(s.add(k * 3, k + 1), +1);
    model[k * 3] = k + 1;
    expect_matches(s, model, 64 * 3 + 1);
  }
  EXPECT_TRUE(s.indexed());
}

TEST(FlatSlice, EraseUnderProbeChains) {
  // Keys chosen in a narrow range force probe-chain collisions; deleting
  // from the middle of chains exercises backward-shift deletion.
  FlatSlice s;
  std::unordered_map<BlockId, Count> model;
  for (BlockId k = 0; k < 40; ++k) {
    s.add(k, 1);
    model[k] = 1;
  }
  for (BlockId k = 0; k < 40; k += 2) {
    EXPECT_EQ(s.add(k, -1), -1);
    model.erase(k);
    expect_matches(s, model, 41);
  }
  // Reinsert into the holes.
  for (BlockId k = 0; k < 40; k += 2) {
    EXPECT_EQ(s.add(k, 5), +1);
    model[k] = 5;
  }
  expect_matches(s, model, 41);
}

class FlatSliceRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatSliceRandomized, MatchesUnorderedMapUnderRandomOps) {
  util::Rng rng(GetParam());
  FlatSlice s;
  std::unordered_map<BlockId, Count> model;
  // Key range shifts over time so the slice both grows and drains.
  for (int op = 0; op < 4000; ++op) {
    const BlockId key_range = op < 2000 ? 96 : 16;
    const auto key = static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(key_range)));
    const auto it = model.find(key);
    const Count current = it == model.end() ? 0 : it->second;
    Count delta;
    if (current > 0 && rng.uniform() < 0.45) {
      // Decrement, sometimes all the way to zero (erase).
      delta = rng.uniform() < 0.5 ? -current
                                  : -static_cast<Count>(rng.uniform_int(
                                        static_cast<std::uint64_t>(current)));
      if (delta == 0) delta = -current;
    } else {
      delta = static_cast<Count>(1 + rng.uniform_int(4));
    }

    const int expected = current == 0 ? +1 : (current + delta == 0 ? -1 : 0);
    EXPECT_EQ(s.add(key, delta), expected);
    if (current + delta == 0) {
      model.erase(key);
    } else {
      model[key] = current + delta;
    }

    if (op % 97 == 0) expect_matches(s, model, 97);
  }
  expect_matches(s, model, 97);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatSliceRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hsbp::blockmodel
