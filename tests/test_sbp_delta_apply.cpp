/// Bit-identity of the pass-to-pass delta application (DESIGN §11):
/// after every pass of every parallel variant, the delta-applied
/// blockmodel must equal a from-scratch rebuild of the pass snapshot
/// exactly — matrix cells (both slice directions), degrees, sizes, and
/// the MDL double. No tolerances: the fixed-point likelihood sums make
/// the two paths produce the same bits by construction, and this suite
/// is the enforcement.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/mcmc_common.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp::detail {
namespace {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Vertex;

struct Density {
  graph::EdgeCount edges;
};

constexpr Vertex kVertices = 120;
constexpr BlockId kBlocks = 6;

generator::GeneratedGraph make_graph(graph::EdgeCount edges, std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = kVertices;
  p.num_communities = kBlocks;
  p.num_edges = edges;
  p.ratio_within_between = 3.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

/// Exact equality of two blockmodels: every cell in both slice
/// directions, the incremental counters, degrees, sizes, and the MDL
/// doubles bit-for-bit (EXPECT_EQ, not EXPECT_NEAR).
void expect_identical(const Blockmodel& got, const Blockmodel& want,
                      const graph::Graph& graph, const char* context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(got.num_blocks(), want.num_blocks());
  EXPECT_EQ(got.assignment(), want.assignment());
  EXPECT_EQ(got.matrix().total(), want.matrix().total());
  EXPECT_EQ(got.matrix().nonzeros(), want.matrix().nonzeros());
  for (BlockId r = 0; r < got.num_blocks(); ++r) {
    for (const auto& [col, count] : got.matrix().row(r)) {
      EXPECT_EQ(count, want.matrix().get(r, col))
          << "row cell (" << r << ", " << col << ")";
    }
    for (const auto& [col, count] : want.matrix().row(r)) {
      EXPECT_EQ(count, got.matrix().get(r, col))
          << "missing row cell (" << r << ", " << col << ")";
    }
    for (const auto& [row, count] : got.matrix().col(r)) {
      EXPECT_EQ(count, want.matrix().get(row, r))
          << "col cell (" << row << ", " << r << ")";
    }
    EXPECT_EQ(got.degree_out(r), want.degree_out(r)) << "d_out of " << r;
    EXPECT_EQ(got.degree_in(r), want.degree_in(r)) << "d_in of " << r;
    EXPECT_EQ(got.block_size(r), want.block_size(r)) << "size of " << r;
  }
  // Exact double equality: both sides decode the same fixed-point sums.
  EXPECT_EQ(got.log_likelihood(), want.log_likelihood());
  EXPECT_EQ(
      blockmodel::mdl(got, graph.num_vertices(), graph.num_edges()),
      blockmodel::mdl(want, graph.num_vertices(), graph.num_edges()));
  EXPECT_TRUE(got.check_consistency(graph));
}

/// Reference state for the current workspace memberships: a fresh
/// from-scratch construction.
Blockmodel reference_of(const graph::Graph& graph, const PassWorkspace& ws,
                        BlockId num_blocks) {
  return Blockmodel::from_assignment(graph, snapshot_assignment(ws.shared),
                                     num_blocks);
}

constexpr double kForceDelta = 1e12;   ///< threshold no pass can exceed
constexpr double kForceRebuild = -1.0; ///< any moved degree exceeds it

class DeltaApplyBitIdentity
    : public ::testing::TestWithParam<graph::EdgeCount> {};

TEST_P(DeltaApplyBitIdentity, AsbpPassesDeltaVsRebuild) {
  const auto g = make_graph(GetParam(), 101);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, kBlocks);
  std::vector<Vertex> all(static_cast<std::size_t>(kVertices));
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(21, 4);
  PassWorkspace ws;
  ws.reset(b);

  for (int pass = 0; pass < 4; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    async_pass(g.graph, b, ws, all, 1.0, rngs);
    const auto want = reference_of(g.graph, ws, kBlocks);

    // Same pass applied both ways: the delta path to b, the rebuild
    // path to a copy. Both must land on the reference exactly.
    Blockmodel via_rebuild = b;
    const auto delta_apply = finish_pass(g.graph, b, ws, kForceDelta);
    EXPECT_FALSE(delta_apply.rebuilt);
    const auto rebuild_apply =
        finish_pass(g.graph, via_rebuild, ws, kForceRebuild);
    EXPECT_EQ(rebuild_apply.rebuilt, rebuild_apply.moved > 0);
    EXPECT_EQ(delta_apply.moved, rebuild_apply.moved);
    EXPECT_EQ(delta_apply.moved_degree, rebuild_apply.moved_degree);

    expect_identical(b, want, g.graph, "delta path");
    expect_identical(via_rebuild, want, g.graph, "rebuild path");
  }
}

TEST_P(DeltaApplyBitIdentity, HsbpPassesWithSerialSweep) {
  const auto g = make_graph(GetParam(), 102);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, kBlocks);

  // Manual high/low degree split: top 10% by total degree go serial.
  std::vector<Vertex> order(static_cast<std::size_t>(kVertices));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](Vertex a, Vertex c) {
    return g.graph.degree(a) > g.graph.degree(c);
  });
  const std::vector<Vertex> high(order.begin(), order.begin() + 12);
  const std::vector<Vertex> low(order.begin() + 12, order.end());

  util::RngPool rngs(22, 4);
  util::Rng& serial_rng = rngs.stream(0);
  blockmodel::MoveScratch scratch;
  PassWorkspace ws;
  ws.reset(b);

  for (int pass = 0; pass < 4; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    // Synchronous high-degree sweep with mirrored moves (Alg. 4 first
    // half), exactly as hybrid_phase interleaves with the workspace.
    const auto fresh_view = [&b](Vertex u) { return b.block_of(u); };
    for (const Vertex v : high) {
      const auto result =
          evaluate_vertex(g.graph, b, fresh_view, v,
                          b.block_size(b.block_of(v)), 1.0, serial_rng,
                          scratch);
      if (result.moved) {
        const auto from = b.block_of(v);
        b.move_vertex(g.graph, v, result.to);
        ws.sync_move(v, from, result.to);
      }
    }
    async_pass(g.graph, b, ws, low, 1.0, rngs);
    const auto want = reference_of(g.graph, ws, kBlocks);

    Blockmodel via_rebuild = b;
    finish_pass(g.graph, b, ws, kForceDelta);
    finish_pass(g.graph, via_rebuild, ws, kForceRebuild);
    expect_identical(b, want, g.graph, "delta path");
    expect_identical(via_rebuild, want, g.graph, "rebuild path");
  }
}

TEST_P(DeltaApplyBitIdentity, BsbpBatchesDeltaVsRebuild) {
  const auto g = make_graph(GetParam(), 103);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, kBlocks);
  std::vector<Vertex> all(static_cast<std::size_t>(kVertices));
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(23, 4);
  PassWorkspace ws;
  ws.reset(b);
  constexpr int kBatches = 4;

  for (int pass = 0; pass < 2; ++pass) {
    rngs.stream(0).shuffle(all);
    for (int batch = 0; batch < kBatches; ++batch) {
      SCOPED_TRACE("pass " + std::to_string(pass) + " batch " +
                   std::to_string(batch));
      const std::size_t begin =
          all.size() * static_cast<std::size_t>(batch) / kBatches;
      const std::size_t end =
          all.size() * static_cast<std::size_t>(batch + 1) / kBatches;
      const std::span<const Vertex> slice(all.data() + begin, end - begin);
      async_pass(g.graph, b, ws, slice, 1.0, rngs);
      const auto want = reference_of(g.graph, ws, kBlocks);

      Blockmodel via_rebuild = b;
      finish_pass(g.graph, b, ws, kForceDelta);
      finish_pass(g.graph, via_rebuild, ws, kForceRebuild);
      expect_identical(b, want, g.graph, "delta path");
      expect_identical(via_rebuild, want, g.graph, "rebuild path");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, DeltaApplyBitIdentity,
                         ::testing::Values(360, 1800, 7200),
                         [](const auto& info) {
                           return "edges" + std::to_string(info.param);
                         });

TEST(AdaptiveFallback, ThresholdCrossingFlipsPathNotState) {
  const auto g = make_graph(1800, 104);
  auto b = Blockmodel::from_assignment(g.graph, g.ground_truth, kBlocks);
  std::vector<Vertex> all(static_cast<std::size_t>(kVertices));
  std::iota(all.begin(), all.end(), 0);
  util::RngPool rngs(24, 4);
  PassWorkspace ws;
  ws.reset(b);

  // Low beta → high acceptance → a pass with real degree mass moved.
  async_pass(g.graph, b, ws, all, 0.2, rngs);
  const auto want = reference_of(g.graph, ws, kBlocks);

  // Probe the pass's moved degree without consuming the log.
  Blockmodel probe = b;
  const auto measured = finish_pass(g.graph, probe, ws, kForceDelta);
  ASSERT_GT(measured.moved, 0) << "pass moved nothing; raise acceptance";
  const double frac = static_cast<double>(measured.moved_degree) /
                      (2.0 * static_cast<double>(g.graph.num_edges()));

  // Threshold just above the moved fraction → delta path; just below →
  // rebuild path. Either way the state is the same reference, exactly.
  Blockmodel via_delta = b;
  Blockmodel via_rebuild = b;
  const auto above = finish_pass(g.graph, via_delta, ws, frac * 1.01);
  const auto below = finish_pass(g.graph, via_rebuild, ws, frac * 0.99);
  EXPECT_FALSE(above.rebuilt);
  EXPECT_TRUE(below.rebuilt);
  expect_identical(via_delta, want, g.graph, "just-above threshold");
  expect_identical(via_rebuild, want, g.graph, "just-below threshold");
}

TEST(AdaptiveFallback, DefaultThresholdMatchesSettingsDefault) {
  EXPECT_EQ(kDefaultRebuildThreshold, McmcSettings{}.rebuild_threshold);
}

}  // namespace
}  // namespace hsbp::sbp::detail
