#include <gtest/gtest.h>

#include <vector>

#include "generator/power_law.hpp"
#include "graph/degree.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hsbp::graph {
namespace {

Graph star_plus_chain() {
  // Vertex 0 is a hub (degree 6); 4-5-6 a chain.
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {1, 0},
                                   {2, 0}, {3, 0}, {4, 5}, {5, 6}};
  return Graph::from_edges(7, edges);
}

TEST(DegreeSequence, MatchesPerVertexDegrees) {
  const Graph g = star_plus_chain();
  const auto degrees = degree_sequence(g);
  ASSERT_EQ(degrees.size(), 7u);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(degrees[static_cast<std::size_t>(v)], g.degree(v));
  }
  EXPECT_EQ(degrees[0], 6);
}

TEST(VerticesByDegree, DescendingWithStableTies) {
  const Graph g = star_plus_chain();
  const auto order = vertices_by_degree_desc(g);
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0], 0);  // the hub first
  for (std::size_t i = 1; i < order.size(); ++i) {
    const EdgeCount prev = g.degree(order[i - 1]);
    const EdgeCount curr = g.degree(order[i]);
    EXPECT_GE(prev, curr);
    if (prev == curr) EXPECT_LT(order[i - 1], order[i]);  // tie → id order
  }
}

TEST(SplitByDegree, FractionZeroPutsEverythingLow) {
  const Graph g = star_plus_chain();
  const auto split = split_by_degree(g, 0.0);
  EXPECT_TRUE(split.high.empty());
  EXPECT_EQ(split.low.size(), 7u);
}

TEST(SplitByDegree, FractionOnePutsEverythingHigh) {
  const Graph g = star_plus_chain();
  const auto split = split_by_degree(g, 1.0);
  EXPECT_EQ(split.high.size(), 7u);
  EXPECT_TRUE(split.low.empty());
}

TEST(SplitByDegree, PaperFractionCeilsCount) {
  const Graph g = star_plus_chain();
  const auto split = split_by_degree(g, 0.15);  // ceil(0.15·7) = 2
  EXPECT_EQ(split.high.size(), 2u);
  EXPECT_EQ(split.low.size(), 5u);
  EXPECT_EQ(split.high[0], 0);  // hub in the serial set
  // Every high vertex has degree >= every low vertex.
  for (const Vertex h : split.high) {
    for (const Vertex l : split.low) {
      EXPECT_GE(g.degree(h), g.degree(l));
    }
  }
}

TEST(PowerLawMle, RecoversGeneratorExponent) {
  util::Rng rng(4242);
  hsbp::generator::PowerLawSampler sampler(2, 2000, 2.5);
  std::vector<EdgeCount> degrees(20000);
  for (auto& d : degrees) d = sampler.sample(rng);
  const double alpha = powerlaw_exponent_mle(degrees, 2);
  EXPECT_NEAR(alpha, 2.5, 0.15);
}

TEST(PowerLawMle, DegenerateInputsReturnZero) {
  EXPECT_EQ(powerlaw_exponent_mle({}, 1), 0.0);
  EXPECT_EQ(powerlaw_exponent_mle({5}, 1), 0.0);
  // All degrees below d_min.
  EXPECT_EQ(powerlaw_exponent_mle({1, 1, 1}, 5), 0.0);
}

}  // namespace
}  // namespace hsbp::graph
