#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "generator/dcsbm.hpp"
#include "metrics/metrics.hpp"
#include "sbp/streaming.hpp"

namespace hsbp::sbp {
namespace {

using graph::Edge;
using graph::Graph;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 240;
  p.num_communities = 5;
  p.num_edges = 2400;
  p.ratio_within_between = 5.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

TEST(ExtendAssignment, KeepsExistingLabels) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> old_labels = {0, 0, 1, 1};
  blockmodel::BlockId num_blocks = 2;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  ASSERT_EQ(extended.size(), 5u);
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(extended[v], old_labels[v]);
  }
}

TEST(ExtendAssignment, NewVertexAdoptsMajorityNeighborBlock) {
  const std::vector<Edge> edges = {{0, 4}, {1, 4}, {4, 2}};
  const Graph g = Graph::from_edges(5, edges);
  // Vertices 0,1 in block 0; vertex 2 in block 1 → majority block 0.
  const std::vector<std::int32_t> old_labels = {0, 0, 1, 1};
  blockmodel::BlockId num_blocks = 2;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  EXPECT_EQ(extended[4], 0);
  EXPECT_EQ(num_blocks, 2);
}

TEST(ExtendAssignment, OrphanGetsFreshBlock) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(3, edges);  // vertex 2 isolated
  const std::vector<std::int32_t> old_labels = {0, 0};
  blockmodel::BlockId num_blocks = 1;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  EXPECT_EQ(extended[2], 1);
  EXPECT_EQ(num_blocks, 2);
}

TEST(ExtendAssignment, ChainsOfNewVerticesPropagate) {
  // 4 connects to 0 (labeled); 5 connects only to 4 (new but labeled by
  // the time 5 is processed).
  const std::vector<Edge> edges = {{0, 4}, {4, 5}};
  const Graph g = Graph::from_edges(6, edges);
  const std::vector<std::int32_t> old_labels = {0, 0, 1, 1};
  blockmodel::BlockId num_blocks = 2;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  EXPECT_EQ(extended[4], 0);
  EXPECT_EQ(extended[5], 0);
  EXPECT_EQ(num_blocks, 2);
}

TEST(ExtendAssignment, EmptyPreviousPartition) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  blockmodel::BlockId num_blocks = 0;
  const auto extended = extend_assignment(g, {}, num_blocks);
  // Vertex 0 opens block 0; 1 and 2 attach down the chain.
  EXPECT_EQ(extended[0], 0);
  EXPECT_EQ(extended[1], 0);
  EXPECT_EQ(extended[2], 0);
  EXPECT_EQ(num_blocks, 1);
}

TEST(ExtendAssignment, AllNewVerticesWithoutLabeledNeighbors) {
  // The arriving snapshot's new vertices form their own component: no
  // new vertex touches a labeled one, so every one must be labeled by
  // the orphan/chain rules alone — fresh block for the first vertex of
  // the component, propagation down the chain — never left at -1.
  const std::vector<Edge> edges = {{0, 1},          // old component
                                   {2, 3}, {3, 4}}; // all-new component
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> old_labels = {0, 0};
  blockmodel::BlockId num_blocks = 1;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  ASSERT_EQ(extended.size(), 5u);
  EXPECT_EQ(extended[0], 0);
  EXPECT_EQ(extended[1], 0);
  // Vertex 2 has no labeled neighbor → fresh block; 3 and 4 chain off
  // it. Labels stay dense in [0, num_blocks).
  EXPECT_EQ(extended[2], 1);
  EXPECT_EQ(extended[3], 1);
  EXPECT_EQ(extended[4], 1);
  EXPECT_EQ(num_blocks, 2);
}

TEST(ExtendAssignment, DisconnectedNewVerticesEachOpenABlock) {
  // Two isolated new vertices: each is its own orphan and opens its own
  // fresh block (they share no edge, so no propagation links them).
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(4, edges);  // 2 and 3 isolated
  const std::vector<std::int32_t> old_labels = {0, 0};
  blockmodel::BlockId num_blocks = 1;
  const auto extended = extend_assignment(g, old_labels, num_blocks);
  EXPECT_EQ(extended[2], 1);
  EXPECT_EQ(extended[3], 2);
  EXPECT_EQ(num_blocks, 3);
}

TEST(ExtendAssignment, RejectsShrinkingVertexSet) {
  const Graph g = Graph::from_edges(2, {{{0, 1}}});
  const std::vector<std::int32_t> bigger = {0, 0, 1};
  blockmodel::BlockId num_blocks = 2;
  EXPECT_THROW(extend_assignment(g, bigger, num_blocks),
               std::invalid_argument);
}

TEST(RefineAssignment, SplitsAndCompacts) {
  const std::vector<std::int32_t> assignment = {0, 0, 0, 0, 1, 1, 1, 1};
  blockmodel::BlockId num_blocks = 2;
  const auto refined = refine_assignment(assignment, num_blocks, 3, 42);
  ASSERT_EQ(refined.size(), assignment.size());
  // Labels dense in [0, num_blocks).
  for (const std::int32_t label : refined) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, num_blocks);
  }
  EXPECT_GE(num_blocks, 2);
  EXPECT_LE(num_blocks, 6);
  // Refinement never merges: vertices in different old blocks stay in
  // different new blocks.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 4; j < 8; ++j) {
      EXPECT_NE(refined[i], refined[j]);
    }
  }
}

TEST(RefineAssignment, FactorOneIsIdentityUpToRelabel) {
  const std::vector<std::int32_t> assignment = {2, 0, 1, 2, 0};
  blockmodel::BlockId num_blocks = 3;
  const auto refined = refine_assignment(assignment, num_blocks, 1, 7);
  EXPECT_EQ(num_blocks, 3);
  // Same partition structure.
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    for (std::size_t j = 0; j < assignment.size(); ++j) {
      EXPECT_EQ(assignment[i] == assignment[j], refined[i] == refined[j]);
    }
  }
}

TEST(RefineAssignment, RejectsBadFactor) {
  const std::vector<std::int32_t> assignment = {0, 1};
  blockmodel::BlockId num_blocks = 2;
  EXPECT_THROW(refine_assignment(assignment, num_blocks, 0, 1),
               std::invalid_argument);
}

TEST(RunWarm, FromGroundTruthStaysNearGroundTruth) {
  const auto g = planted(21);
  SbpConfig config;
  config.seed = 2;
  const auto result = run_warm(g.graph, config, g.ground_truth, 5);
  EXPECT_GT(metrics::nmi(g.ground_truth, result.assignment), 0.9);
}

TEST(RunWarm, ValidatesAssignment) {
  const auto g = planted(22);
  SbpConfig config;
  std::vector<std::int32_t> bad(240, 7);  // label outside [0, 5)
  EXPECT_THROW(run_warm(g.graph, config, bad, 5), std::invalid_argument);
}

TEST(RunWarm, RejectsNonDenseLabels) {
  // The documented precondition: labels dense in [0, num_blocks). An
  // in-range but unused label would seed the merge-only search with an
  // empty block it can never fold away — run_warm must fail loudly, not
  // quietly degrade.
  const auto g = planted(26);
  SbpConfig config;
  std::vector<std::int32_t> sparse(240);
  for (std::size_t v = 0; v < sparse.size(); ++v) {
    // Labels {0, 1, 3, 4} of [0, 5): block 2 is empty.
    const auto raw = static_cast<std::int32_t>(v % 4);
    sparse[v] = raw >= 2 ? raw + 1 : raw;
  }
  EXPECT_THROW(run_warm(g.graph, config, sparse, 5),
               std::invalid_argument);
  // The refine/extend pipeline always produces dense labels, so the
  // same labels compacted to 4 blocks are accepted.
  std::vector<std::int32_t> dense(240);
  for (std::size_t v = 0; v < dense.size(); ++v) {
    dense[v] = static_cast<std::int32_t>(v % 4);
  }
  EXPECT_NO_THROW(run_warm(g.graph, config, dense, 4));
}

TEST(RunStreaming, Validation) {
  SbpConfig config;
  EXPECT_THROW(run_streaming({}, config), std::invalid_argument);

  const auto g = planted(23);
  std::vector<Graph> shrinking = {
      g.graph, Graph::from_edges(2, {{{0, 1}}})};
  EXPECT_THROW(run_streaming(shrinking, config), std::invalid_argument);
}

class StreamingOrderSweep
    : public ::testing::TestWithParam<generator::StreamingOrder> {};

TEST_P(StreamingOrderSweep, FinalSnapshotQualityMatchesColdStart) {
  const auto g = planted(24);
  const auto parts = generator::streaming_snapshots(g, 4, GetParam(), 3);

  SbpConfig config;
  config.seed = 5;
  // The NMI thresholds below compare two stochastic trajectories, and
  // the async trajectory depends on the thread count; pin it so the
  // statistical margins hold regardless of the ambient OMP settings
  // (the TSan tier runs with OMP_NUM_THREADS=4). Concurrency itself is
  // exercised by the rest of the suite.
  config.num_threads = 1;
  const auto streaming = run_streaming(parts.snapshots, config);
  ASSERT_EQ(streaming.snapshots.size(), 4u);

  const double streamed_nmi = metrics::nmi(
      parts.ground_truth, streaming.snapshots.back().assignment);
  const auto cold = run(parts.snapshots.back(), config);
  const double cold_nmi =
      metrics::nmi(parts.ground_truth, cold.assignment);

  // Warm starting trades a little quality for large per-part savings;
  // at this tiny scale the gap is noisiest, so the margin is generous.
  EXPECT_GT(streamed_nmi, 0.7);
  EXPECT_GT(streamed_nmi, cold_nmi - 0.2);
}

TEST_P(StreamingOrderSweep, IntermediateResultsAreValidPartitions) {
  const auto g = planted(25);
  const auto parts = generator::streaming_snapshots(g, 5, GetParam(), 4);
  SbpConfig config;
  config.seed = 6;
  const auto streaming = run_streaming(parts.snapshots, config);
  for (std::size_t i = 0; i < streaming.snapshots.size(); ++i) {
    const auto& result = streaming.snapshots[i];
    EXPECT_EQ(result.assignment.size(),
              static_cast<std::size_t>(parts.snapshots[i].num_vertices()));
    for (const std::int32_t label : result.assignment) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, result.num_blocks);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, StreamingOrderSweep,
    ::testing::Values(generator::StreamingOrder::EdgeSampling,
                      generator::StreamingOrder::Snowball));

}  // namespace
}  // namespace hsbp::sbp
