#include <gtest/gtest.h>

#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "blockmodel/merge_delta.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "sbp/hastings.hpp"

namespace hsbp::blockmodel {
namespace {

using graph::Edge;
using graph::Graph;

TEST(VertexMoveDelta, VertexWithOnlySelfLoops) {
  // Vertex 0 has two self-loops and nothing else; moving it transfers
  // the diagonal mass wholesale.
  const std::vector<Edge> edges = {{0, 0}, {0, 0}, {1, 2}, {2, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> assignment = {0, 1, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 2);

  const auto nb = gather_neighbor_blocks(g, assignment, 0);
  EXPECT_EQ(nb.self_loops, 2);
  EXPECT_TRUE(nb.out.empty());
  EXPECT_TRUE(nb.in.empty());

  const auto delta = vertex_move_delta(b, 0, 1, nb);
  auto moved = b;
  moved.move_vertex(g, 0, 1);
  const double expected = mdl(moved, 3, 4) - mdl(b, 3, 4);
  EXPECT_NEAR(delta.delta_mdl, expected, 1e-10);
  EXPECT_EQ(moved.matrix().get(1, 1), 4);
  EXPECT_EQ(moved.matrix().get(0, 0), 0);
}

TEST(VertexMoveDelta, MoveIntoCurrentlyEmptyAdjacencyCells) {
  // Destination block shares no cells with the mover's neighbor blocks:
  // all destination cells are created from zero.
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1, 2};
  const auto b = Blockmodel::from_assignment(g, assignment, 3);
  ASSERT_EQ(b.matrix().get(2, 0), 0);

  const auto nb = gather_neighbor_blocks(g, assignment, 0);
  const auto delta = vertex_move_delta(b, 0, 2, nb);
  auto moved = b;
  moved.move_vertex(g, 0, 2);
  EXPECT_NEAR(delta.delta_mdl, mdl(moved, 5, 5) - mdl(b, 5, 5), 1e-10);
  EXPECT_EQ(moved.matrix().get(2, 0), 1);  // 0→1 edge now block2→block0
}

TEST(HastingsCorrection, SelfLoopVertexRoundTripIsUnity) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 0}, {2, 2}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);

  const auto nb_fwd = gather_neighbor_blocks(g, b.assignment(), 1);
  const auto delta_fwd = vertex_move_delta(b, 0, 1, nb_fwd);
  const double h_fwd = sbp::hastings_correction(b, nb_fwd, 0, 1, delta_fwd);

  auto moved = b;
  moved.move_vertex(g, 1, 1);
  const auto nb_bwd = gather_neighbor_blocks(g, moved.assignment(), 1);
  const auto delta_bwd = vertex_move_delta(moved, 1, 0, nb_bwd);
  const double h_bwd =
      sbp::hastings_correction(moved, nb_bwd, 1, 0, delta_bwd);
  EXPECT_NEAR(h_fwd * h_bwd, 1.0, 1e-10);
}

TEST(MergeDelta, MergingMutuallyUnconnectedBlocks) {
  // Blocks 0 and 2 have no edges between them; the merge delta must
  // still be exact (only corner/degree terms move).
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2},
                                   {4, 5}, {5, 4}, {1, 2}};
  const Graph g = Graph::from_edges(6, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1, 2, 2};
  const auto b = Blockmodel::from_assignment(g, assignment, 3);
  ASSERT_EQ(b.matrix().get(0, 2), 0);
  ASSERT_EQ(b.matrix().get(2, 0), 0);

  const double delta = merge_delta_mdl(b, 0, 2, 6, 7);
  std::vector<std::int32_t> merged = {2, 2, 1, 1, 2, 2};
  // Compact: labels {1, 2} → {0, 1}.
  for (auto& label : merged) label = (label == 1) ? 0 : 1;
  const auto bm = Blockmodel::from_assignment(g, merged, 2);
  EXPECT_NEAR(delta, mdl(bm, 6, 7) - mdl(b, 6, 7), 1e-10);
}

TEST(MergeDelta, TwoBlocksDownToOneMatchesNullModel) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const std::vector<std::int32_t> assignment = {0, 0, 1, 1};
  const auto b = Blockmodel::from_assignment(g, assignment, 2);
  const double delta = merge_delta_mdl(b, 1, 0, 4, 5);
  const double expected = null_mdl(4, 5) - mdl(b, 4, 5);
  EXPECT_NEAR(delta, expected, 1e-10);
}

TEST(Blockmodel, MoveVertexBetweenBlocksWithParallelEdges) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 0}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges);
  const std::vector<std::int32_t> assignment = {0, 1, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);
  EXPECT_EQ(b.matrix().get(0, 1), 3);
  b.move_vertex(g, 1, 0);
  EXPECT_TRUE(b.check_consistency(g));
  EXPECT_EQ(b.matrix().get(0, 0), 4);  // 3 parallel + the return edge
}

TEST(Blockmodel, DegreesSurviveEmptyingABlock) {
  // move_vertex itself permits emptying (the guard lives in the MCMC
  // layer); the bookkeeping must stay exact regardless.
  const std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(2, edges);
  const std::vector<std::int32_t> assignment = {0, 1};
  auto b = Blockmodel::from_assignment(g, assignment, 2);
  b.move_vertex(g, 1, 0);
  EXPECT_EQ(b.block_size(1), 0);
  EXPECT_EQ(b.degree_out(1), 0);
  EXPECT_EQ(b.degree_in(1), 0);
  EXPECT_EQ(b.matrix().get(0, 0), 2);
  EXPECT_TRUE(b.matrix().check_consistency());
}

}  // namespace
}  // namespace hsbp::blockmodel
