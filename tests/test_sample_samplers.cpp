#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "generator/dcsbm.hpp"
#include "graph/builder.hpp"
#include "sample/samplers.hpp"

namespace hsbp::sample {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

generator::GeneratedGraph planted(std::uint64_t seed) {
  generator::DcsbmParams p;
  p.num_vertices = 200;
  p.num_communities = 4;
  p.num_edges = 1600;
  p.ratio_within_between = 4.0;
  p.seed = seed;
  return generator::generate_dcsbm(p);
}

TEST(SampleSize, CeilClampedBounds) {
  EXPECT_EQ(sample_size(100, 0.5), 50);
  EXPECT_EQ(sample_size(100, 0.301), 31);  // ceil
  EXPECT_EQ(sample_size(100, 1.0), 100);
  EXPECT_EQ(sample_size(100, 1e-9), 1);  // clamped up to 1
  EXPECT_EQ(sample_size(3, 0.34), 2);
  EXPECT_THROW(sample_size(100, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_size(100, 1.5), std::invalid_argument);
  EXPECT_THROW(sample_size(0, 0.5), std::invalid_argument);
}

TEST(SamplerNames, RoundTripAndRejects) {
  for (const SamplerKind kind : all_sampler_kinds()) {
    EXPECT_EQ(parse_sampler(sampler_name(kind)), kind);
  }
  EXPECT_THROW(parse_sampler("frontier"), std::invalid_argument);
}

class SamplerSweep : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(SamplerSweep, SelectsExactlyTargetDistinctVertices) {
  const auto g = planted(11);
  for (const double fraction : {0.05, 0.3, 0.5, 0.9, 1.0}) {
    const Vertex target = sample_size(g.graph.num_vertices(), fraction);
    util::Rng rng(7);
    const auto ids = make_sampler(GetParam())->select(g.graph, target, rng);
    EXPECT_EQ(static_cast<Vertex>(ids.size()), target);
    std::set<Vertex> distinct(ids.begin(), ids.end());
    EXPECT_EQ(distinct.size(), ids.size());
    for (const Vertex v : ids) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, g.graph.num_vertices());
    }
  }
}

TEST_P(SamplerSweep, IdMapIsBijective) {
  const auto g = planted(12);
  const auto sampled = sample_graph(g.graph, GetParam(), 0.4, 99);
  ASSERT_EQ(sampled.to_sample.size(),
            static_cast<std::size_t>(g.graph.num_vertices()));
  // to_full strictly ascending full ids, inverted exactly by to_sample.
  for (std::size_t s = 0; s < sampled.to_full.size(); ++s) {
    if (s > 0) EXPECT_LT(sampled.to_full[s - 1], sampled.to_full[s]);
    EXPECT_EQ(sampled.to_sample[static_cast<std::size_t>(
                  sampled.to_full[s])],
              static_cast<Vertex>(s));
  }
  // Unsampled vertices map to −1; sampled count matches the subgraph.
  std::size_t mapped = 0;
  for (const Vertex s : sampled.to_sample) {
    if (s >= 0) {
      ++mapped;
    } else {
      EXPECT_EQ(s, -1);
    }
  }
  EXPECT_EQ(mapped, sampled.to_full.size());
  EXPECT_EQ(static_cast<std::size_t>(sampled.subgraph.num_vertices()),
            sampled.to_full.size());
}

TEST_P(SamplerSweep, SeedDeterminism) {
  const auto g = planted(13);
  const auto a = sample_graph(g.graph, GetParam(), 0.35, 1234);
  const auto b = sample_graph(g.graph, GetParam(), 0.35, 1234);
  EXPECT_EQ(a.to_full, b.to_full);
  EXPECT_EQ(a.subgraph.edges(), b.subgraph.edges());
}

TEST_P(SamplerSweep, InducedEdgesMatchBruteForce) {
  const auto g = planted(14);
  const auto sampled = sample_graph(g.graph, GetParam(), 0.5, 5);

  // Brute force: every full-graph edge with both endpoints sampled,
  // relabeled, with multiplicity.
  std::multiset<Edge> expected;
  for (const auto& [source, target] : g.graph.edges()) {
    const Vertex s = sampled.to_sample[static_cast<std::size_t>(source)];
    const Vertex t = sampled.to_sample[static_cast<std::size_t>(target)];
    if (s >= 0 && t >= 0) expected.insert({s, t});
  }
  const auto actual_edges = sampled.subgraph.edges();
  const std::multiset<Edge> actual(actual_edges.begin(), actual_edges.end());
  EXPECT_EQ(actual, expected);
}

TEST_P(SamplerSweep, FullFractionIsIdentity) {
  const auto g = planted(15);
  const auto sampled = sample_graph(g.graph, GetParam(), 1.0, 3);
  ASSERT_EQ(sampled.subgraph.num_vertices(), g.graph.num_vertices());
  for (Vertex v = 0; v < g.graph.num_vertices(); ++v) {
    EXPECT_EQ(sampled.to_full[static_cast<std::size_t>(v)], v);
    EXPECT_EQ(sampled.to_sample[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(sampled.subgraph.edges(), g.graph.edges());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SamplerSweep,
    ::testing::Values(SamplerKind::UniformRandom,
                      SamplerKind::DegreeWeighted, SamplerKind::RandomEdge,
                      SamplerKind::ExpansionSnowball),
    [](const auto& info) { return sampler_name(info.param); });

TEST(DegreeWeightedSampler, PrefersHubs) {
  // Star graph: the hub should essentially always be sampled.
  graph::GraphBuilder builder(41);
  for (Vertex leaf = 1; leaf < 41; ++leaf) builder.add_edge(0, leaf);
  const Graph star = builder.build();
  int hub_hits = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto sampled =
        sample_graph(star, SamplerKind::DegreeWeighted, 0.25, seed);
    hub_hits += sampled.to_sample[0] >= 0 ? 1 : 0;
  }
  EXPECT_GE(hub_hits, 45);
}

TEST(ExpansionSnowballSampler, StaysConnectedOnAPath) {
  // Path graph: a snowball sample of any prefix size is one interval,
  // so the induced subgraph has sample_size − 1 edges (plus restarts
  // never happen while the frontier is alive).
  graph::GraphBuilder builder(60);
  for (Vertex v = 0; v + 1 < 60; ++v) builder.add_edge(v, v + 1);
  const Graph path = builder.build();
  const auto sampled =
      sample_graph(path, SamplerKind::ExpansionSnowball, 0.5, 17);
  EXPECT_EQ(sampled.subgraph.num_vertices(), 30);
  EXPECT_GE(sampled.subgraph.num_edges(), 25);  // near-interval sample
}

TEST(RandomEdgeSampler, CoversIsolatedVerticesViaFallback) {
  // 4 isolated vertices + one triangle; a 100% "edge" sample must still
  // return every vertex.
  graph::GraphBuilder builder(7);
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
  const Graph g = builder.build();
  const auto sampled = sample_graph(g, SamplerKind::RandomEdge, 1.0, 2);
  EXPECT_EQ(sampled.subgraph.num_vertices(), 7);
}

TEST(InducedSubgraph, RejectsBadIds) {
  const Graph g = Graph::from_edges(3, {{{0, 1}, {1, 2}}});
  EXPECT_THROW(induced_subgraph(g, {0, 3}), std::invalid_argument);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW(induced_subgraph(g, {-1}), std::invalid_argument);
}

TEST(InducedSubgraph, KeepsSelfLoopsAndMultiplicity) {
  const Graph g =
      Graph::from_edges(4, {{{0, 0}, {0, 1}, {0, 1}, {1, 2}, {3, 0}}});
  const auto sampled = induced_subgraph(g, {0, 1});
  EXPECT_EQ(sampled.subgraph.num_vertices(), 2);
  EXPECT_EQ(sampled.subgraph.num_edges(), 3);  // loop + double edge
  EXPECT_EQ(sampled.subgraph.num_self_loops(), 1);
}

}  // namespace
}  // namespace hsbp::sample
