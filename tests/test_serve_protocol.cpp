// Wire protocol of the serving daemon: request parsing (including the
// malformed-request taxonomy that must become ERR replies, never
// connection drops), the OK/ERR helpers, and the length-prefixed frame
// I/O over a socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace hsbp::serve {
namespace {

std::optional<Request> parse(const std::string& payload) {
  std::string error;
  return parse_request(payload, error);
}

std::string parse_error(const std::string& payload) {
  std::string error;
  const auto parsed = parse_request(payload, error);
  EXPECT_FALSE(parsed.has_value()) << "payload '" << payload
                                   << "' unexpectedly parsed";
  return error;
}

TEST(ServeProtocolParse, BareVerbs) {
  EXPECT_EQ(parse("PING")->verb, Verb::Ping);
  EXPECT_EQ(parse("LIST")->verb, Verb::List);
  EXPECT_EQ(parse("STATS")->verb, Verb::Stats);
  EXPECT_EQ(parse("SHUTDOWN")->verb, Verb::Shutdown);
}

TEST(ServeProtocolParse, GraphVerbs) {
  const auto info = parse("INFO web");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->verb, Verb::Info);
  EXPECT_EQ(info->graph, "web");

  EXPECT_EQ(parse("MODULARITY g")->verb, Verb::Modularity);
  EXPECT_EQ(parse("MDL g")->verb, Verb::Mdl);
  EXPECT_EQ(parse("EPOCH g")->verb, Verb::Epoch);
}

TEST(ServeProtocolParse, MemberAndCommunityCarryAnId) {
  const auto member = parse("MEMBER web 17");
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->verb, Verb::Member);
  EXPECT_EQ(member->graph, "web");
  EXPECT_EQ(member->argument, 17);

  const auto community = parse("COMMUNITY web 3");
  ASSERT_TRUE(community.has_value());
  EXPECT_EQ(community->verb, Verb::Community);
  EXPECT_EQ(community->argument, 3);
}

TEST(ServeProtocolParse, IngestCollectsEdgePairs) {
  const auto ingest = parse("INGEST web 3 0 1 2 3 4 0");
  ASSERT_TRUE(ingest.has_value());
  EXPECT_EQ(ingest->verb, Verb::Ingest);
  EXPECT_EQ(ingest->graph, "web");
  const std::vector<std::pair<std::int32_t, std::int32_t>> expected = {
      {0, 1}, {2, 3}, {4, 0}};
  EXPECT_EQ(ingest->edges, expected);
}

TEST(ServeProtocolParse, FormatIngestRoundTrips) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges = {
      {5, 9}, {0, 0}, {123456, 7}};
  const auto parsed = parse(format_ingest("mygraph", edges));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->graph, "mygraph");
  EXPECT_EQ(parsed->edges, edges);
}

TEST(ServeProtocolParse, TokenizerIgnoresExtraWhitespace) {
  const auto member = parse("  MEMBER \t web   17 \n");
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->verb, Verb::Member);
  EXPECT_EQ(member->argument, 17);
}

// Every malformed shape yields a reason string for an ERR reply — the
// daemon must never treat these as connection- or process-fatal.
TEST(ServeProtocolParse, MalformedRequestsYieldReasons) {
  EXPECT_NE(parse_error(""), "");
  EXPECT_NE(parse_error("   "), "");
  EXPECT_NE(parse_error("FROBNICATE web"), "");
  EXPECT_NE(parse_error("ping"), "");  // verbs are case-sensitive
  EXPECT_NE(parse_error("PING extra"), "");
  EXPECT_NE(parse_error("INFO"), "");
  EXPECT_NE(parse_error("MEMBER web"), "");
  EXPECT_NE(parse_error("MEMBER web twelve"), "");
  EXPECT_NE(parse_error("MEMBER web -4"), "");
  EXPECT_NE(parse_error("MEMBER web 17 extra"), "");
  EXPECT_NE(parse_error("INGEST web"), "");
  EXPECT_NE(parse_error("INGEST web 0"), "");
  EXPECT_NE(parse_error("INGEST web 2 0 1"), "");      // short
  EXPECT_NE(parse_error("INGEST web 1 0 1 2 3"), "");  // long
  EXPECT_NE(parse_error("INGEST web 1 0 x"), "");
  EXPECT_NE(parse_error("INGEST web 1 -1 2"), "");
  EXPECT_NE(parse_error("INGEST web 1 99999999999 2"), "");  // > INT32
}

TEST(ServeProtocolReplies, OkErrAndDetection) {
  EXPECT_EQ(ok_reply(""), "OK");
  EXPECT_EQ(ok_reply("pong"), "OK pong");
  EXPECT_EQ(err_reply("nope"), "ERR nope");
  EXPECT_TRUE(is_ok("OK"));
  EXPECT_TRUE(is_ok("OK pong"));
  EXPECT_FALSE(is_ok("OKAY"));  // token-exact, not prefix-loose
  EXPECT_FALSE(is_ok("ERR OK"));
  EXPECT_FALSE(is_ok(""));
}

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads) {
  for (const std::string payload :
       {std::string("PING"), std::string(""),
        std::string(1000, 'x') + " with spaces"}) {
    ASSERT_TRUE(write_frame(fds_[0], payload));
    std::string received;
    ASSERT_TRUE(read_frame(fds_[1], received));
    EXPECT_EQ(received, payload);
  }
}

TEST_F(FramePair, SequentialFramesStayDelimited) {
  ASSERT_TRUE(write_frame(fds_[0], "first"));
  ASSERT_TRUE(write_frame(fds_[0], "second frame"));
  std::string received;
  ASSERT_TRUE(read_frame(fds_[1], received));
  EXPECT_EQ(received, "first");
  ASSERT_TRUE(read_frame(fds_[1], received));
  EXPECT_EQ(received, "second frame");
}

TEST_F(FramePair, CleanEofReadsFalse) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, TornFrameReadsFalse) {
  // A length prefix promising more bytes than ever arrive.
  const char prefix[4] = {16, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
  ASSERT_EQ(::write(fds_[0], "short", 5), 5);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, OversizedLengthPrefixRejected) {
  // 0xFFFFFFFF bytes claimed: must be rejected before any allocation
  // of that size (the reader would otherwise trust a garbage prefix).
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, WriterRefusesOversizedPayload) {
  std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(write_frame(fds_[0], big));
}

}  // namespace
}  // namespace hsbp::serve
