// Wire protocol of the serving daemon: request parsing (including the
// malformed-request taxonomy that must become ERR replies, never
// connection drops), the OK/ERR helpers, and the length-prefixed frame
// I/O over a socketpair.
#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/fault_injector.hpp"
#include "serve/protocol.hpp"

namespace hsbp::serve {
namespace {

std::optional<Request> parse(const std::string& payload) {
  std::string error;
  return parse_request(payload, error);
}

std::string parse_error(const std::string& payload) {
  std::string error;
  const auto parsed = parse_request(payload, error);
  EXPECT_FALSE(parsed.has_value()) << "payload '" << payload
                                   << "' unexpectedly parsed";
  return error;
}

TEST(ServeProtocolParse, BareVerbs) {
  EXPECT_EQ(parse("PING")->verb, Verb::Ping);
  EXPECT_EQ(parse("LIST")->verb, Verb::List);
  EXPECT_EQ(parse("STATS")->verb, Verb::Stats);
  EXPECT_EQ(parse("SHUTDOWN")->verb, Verb::Shutdown);
}

TEST(ServeProtocolParse, GraphVerbs) {
  const auto info = parse("INFO web");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->verb, Verb::Info);
  EXPECT_EQ(info->graph, "web");

  EXPECT_EQ(parse("MODULARITY g")->verb, Verb::Modularity);
  EXPECT_EQ(parse("MDL g")->verb, Verb::Mdl);
  EXPECT_EQ(parse("EPOCH g")->verb, Verb::Epoch);
}

TEST(ServeProtocolParse, MemberAndCommunityCarryAnId) {
  const auto member = parse("MEMBER web 17");
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->verb, Verb::Member);
  EXPECT_EQ(member->graph, "web");
  EXPECT_EQ(member->argument, 17);

  const auto community = parse("COMMUNITY web 3");
  ASSERT_TRUE(community.has_value());
  EXPECT_EQ(community->verb, Verb::Community);
  EXPECT_EQ(community->argument, 3);
}

TEST(ServeProtocolParse, IngestCollectsEdgePairs) {
  const auto ingest = parse("INGEST web 3 0 1 2 3 4 0");
  ASSERT_TRUE(ingest.has_value());
  EXPECT_EQ(ingest->verb, Verb::Ingest);
  EXPECT_EQ(ingest->graph, "web");
  const std::vector<std::pair<std::int32_t, std::int32_t>> expected = {
      {0, 1}, {2, 3}, {4, 0}};
  EXPECT_EQ(ingest->edges, expected);
}

TEST(ServeProtocolParse, FormatIngestRoundTrips) {
  const std::vector<std::pair<std::int32_t, std::int32_t>> edges = {
      {5, 9}, {0, 0}, {123456, 7}};
  const auto parsed = parse(format_ingest("mygraph", edges));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->graph, "mygraph");
  EXPECT_EQ(parsed->edges, edges);
}

TEST(ServeProtocolParse, TokenizerIgnoresExtraWhitespace) {
  const auto member = parse("  MEMBER \t web   17 \n");
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->verb, Verb::Member);
  EXPECT_EQ(member->argument, 17);
}

// Every malformed shape yields a reason string for an ERR reply — the
// daemon must never treat these as connection- or process-fatal.
TEST(ServeProtocolParse, MalformedRequestsYieldReasons) {
  EXPECT_NE(parse_error(""), "");
  EXPECT_NE(parse_error("   "), "");
  EXPECT_NE(parse_error("FROBNICATE web"), "");
  EXPECT_NE(parse_error("ping"), "");  // verbs are case-sensitive
  EXPECT_NE(parse_error("PING extra"), "");
  EXPECT_NE(parse_error("INFO"), "");
  EXPECT_NE(parse_error("MEMBER web"), "");
  EXPECT_NE(parse_error("MEMBER web twelve"), "");
  EXPECT_NE(parse_error("MEMBER web -4"), "");
  EXPECT_NE(parse_error("MEMBER web 17 extra"), "");
  EXPECT_NE(parse_error("INGEST web"), "");
  EXPECT_NE(parse_error("INGEST web 0"), "");
  EXPECT_NE(parse_error("INGEST web 2 0 1"), "");      // short
  EXPECT_NE(parse_error("INGEST web 1 0 1 2 3"), "");  // long
  EXPECT_NE(parse_error("INGEST web 1 0 x"), "");
  EXPECT_NE(parse_error("INGEST web 1 -1 2"), "");
  EXPECT_NE(parse_error("INGEST web 1 99999999999 2"), "");  // > INT32
}

TEST(ServeProtocolReplies, OkErrAndDetection) {
  EXPECT_EQ(ok_reply(""), "OK");
  EXPECT_EQ(ok_reply("pong"), "OK pong");
  EXPECT_EQ(err_reply("nope"), "ERR nope");
  EXPECT_TRUE(is_ok("OK"));
  EXPECT_TRUE(is_ok("OK pong"));
  EXPECT_FALSE(is_ok("OKAY"));  // token-exact, not prefix-loose
  EXPECT_FALSE(is_ok("ERR OK"));
  EXPECT_FALSE(is_ok(""));
}

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads) {
  for (const std::string payload :
       {std::string("PING"), std::string(""),
        std::string(1000, 'x') + " with spaces"}) {
    ASSERT_TRUE(write_frame(fds_[0], payload));
    std::string received;
    ASSERT_TRUE(read_frame(fds_[1], received));
    EXPECT_EQ(received, payload);
  }
}

TEST_F(FramePair, SequentialFramesStayDelimited) {
  ASSERT_TRUE(write_frame(fds_[0], "first"));
  ASSERT_TRUE(write_frame(fds_[0], "second frame"));
  std::string received;
  ASSERT_TRUE(read_frame(fds_[1], received));
  EXPECT_EQ(received, "first");
  ASSERT_TRUE(read_frame(fds_[1], received));
  EXPECT_EQ(received, "second frame");
}

TEST_F(FramePair, CleanEofReadsFalse) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, TornFrameReadsFalse) {
  // A length prefix promising more bytes than ever arrive.
  const char prefix[4] = {16, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
  ASSERT_EQ(::write(fds_[0], "short", 5), 5);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, OversizedLengthPrefixRejected) {
  // 0xFFFFFFFF bytes claimed: must be rejected before any allocation
  // of that size (the reader would otherwise trust a garbage prefix).
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
  std::string received;
  EXPECT_FALSE(read_frame(fds_[1], received));
}

TEST_F(FramePair, WriterRefusesOversizedPayload) {
  std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(write_frame(fds_[0], big));
}

// ----------------------- fault-labelled frame-I/O edge paths ---------
// Suite names start with ServeFault so parallel_labels.cmake stamps
// LABELS "serve;fault": these repeat under the ASan `-L fault` stage
// and the TSan serve stage of check_tier1.sh.

using namespace std::chrono_literals;

/// The exact wire image of one frame: u32 LE length prefix + payload.
std::string frame_bytes(std::string_view payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.push_back(static_cast<char>(size & 0xff));
  wire.push_back(static_cast<char>((size >> 8) & 0xff));
  wire.push_back(static_cast<char>((size >> 16) & 0xff));
  wire.push_back(static_cast<char>((size >> 24) & 0xff));
  wire.append(payload);
  return wire;
}

class ServeFaultFrameIo : public FramePair {};

// Every possible cut point of one frame — mid-prefix, at the
// prefix/payload seam, mid-payload — must map to the right status:
// nothing sent is a clean Eof, anything partial is Torn, and only the
// complete frame is Ok. No cut may hang or crash the reader.
TEST_F(ServeFaultFrameIo, TornFrameAtEveryByteBoundary) {
  const std::string payload = "MEMBER g 17";
  const std::string wire = frame_bytes(payload);
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::write(fds[0], wire.data(), cut),
              static_cast<ssize_t>(cut));
    ::close(fds[0]);
    std::string received;
    const IoStatus status =
        read_frame(fds[1], received, FrameDeadline{2000, 2000});
    if (cut == 0) {
      EXPECT_EQ(status, IoStatus::Eof);
    } else if (cut < wire.size()) {
      EXPECT_EQ(status, IoStatus::Torn) << "cut=" << cut;
    } else {
      EXPECT_EQ(status, IoStatus::Ok);
      EXPECT_EQ(received, payload);
    }
    ::close(fds[1]);
  }
}

TEST_F(ServeFaultFrameIo, OversizedPrefixMapsToOversizedStatus) {
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
  std::string received;
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{2000, 2000}),
            IoStatus::Oversized);
}

TEST_F(ServeFaultFrameIo, SilentPeerHitsTheIdleDeadline) {
  std::string received;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{50, 10000}),
            IoStatus::Timeout);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

// A peer that sends part of a prefix and then stalls is governed by the
// (tight) frame deadline, not the (generous) idle one — proving the
// deadline switches over on the first byte.
TEST_F(ServeFaultFrameIo, MidFrameStallHitsTheFrameDeadline) {
  const char partial[2] = {16, 0};
  ASSERT_EQ(::write(fds_[0], partial, 2), 2);
  std::string received;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{60000, 100}),
            IoStatus::Timeout);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
}

TEST_F(ServeFaultFrameIo, CancelFlagUnblocksAReadWithNoDeadline) {
  std::atomic<bool> cancel{false};
  std::thread arm([&] {
    std::this_thread::sleep_for(50ms);
    cancel.store(true);
  });
  std::string received;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{-1, -1}, &cancel),
            IoStatus::Cancelled);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
  arm.join();
}

// A reader that stops draining must not park the writer forever: once
// the socket buffer fills, the write deadline fires.
TEST_F(ServeFaultFrameIo, StalledReaderHitsTheWriteDeadline) {
  const std::string big(1u << 22, 'x');  // far beyond any socket buffer
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(write_frame(fds_[0], big, /*deadline_ms=*/150),
            IoStatus::Timeout);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
}

void sigusr1_noop(int) {}

// EINTR coverage: a signal storm against the reading thread (handler
// installed WITHOUT SA_RESTART, so read/poll really return EINTR) while
// the frame trickles in 7 bytes at a time. The retry loops must absorb
// every interruption and still deliver the exact payload.
TEST_F(ServeFaultFrameIo, SignalStormDoesNotCorruptAFrameRead) {
  struct sigaction action {};
  action.sa_handler = sigusr1_noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  std::atomic<bool> done{false};
  std::string received;
  IoStatus status = IoStatus::Error;
  std::thread reader([&] {
    status = read_frame(fds_[1], received, FrameDeadline{20000, 20000});
    done.store(true);
  });
  const std::string payload(300, 'z');
  const std::string wire = frame_bytes(payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    const std::size_t n = std::min<std::size_t>(7, wire.size() - sent);
    ASSERT_EQ(::write(fds_[0], wire.data() + sent, n),
              static_cast<ssize_t>(n));
    sent += n;
    std::this_thread::sleep_for(1ms);
  }
  for (int i = 0; i < 200 && !done.load(); ++i) {
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(1ms);
  }
  reader.join();
  ::sigaction(SIGUSR1, &previous, nullptr);
  EXPECT_EQ(status, IoStatus::Ok);
  EXPECT_EQ(received, payload);
}

// The reader drains concurrently: hundreds of tiny send()s each cost
// kernel skb overhead, so an undrained socketpair fills up long before
// the byte count suggests — exactly like a real peer mid-conversation.
TEST_F(ServeFaultFrameIo, InjectedChunkedWritesExerciseTheRetryLoop) {
  ckpt::FaultInjector injector;
  injector.net_chunk_writes(3);  // 1004 wire bytes -> ~335 send() calls
  const std::string payload(1000, 'q');
  std::string received;
  IoStatus read_status = IoStatus::Error;
  std::thread reader([&] {
    read_status = read_frame(fds_[1], received, FrameDeadline{10000, 10000});
  });
  EXPECT_EQ(write_frame(fds_[0], payload, 10000, nullptr, &injector),
            IoStatus::Ok);
  reader.join();
  EXPECT_EQ(read_status, IoStatus::Ok);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(injector.net_writes_seen(), 1);
}

// The injector's torn write puts an exact number of bytes on the wire
// before hard-closing; the peer must classify each boundary correctly.
TEST_F(ServeFaultFrameIo, InjectedTornWriteYieldsTornAtThePeer) {
  for (const std::size_t bytes : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{4},
                                  std::size_t{9}}) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ckpt::FaultInjector injector;
    injector.net_tear_write(1, bytes);
    EXPECT_EQ(write_frame(fds[0], "OK pong", 2000, nullptr, &injector),
              IoStatus::Error);
    std::string received;
    const IoStatus status =
        read_frame(fds[1], received, FrameDeadline{2000, 2000});
    EXPECT_EQ(status, bytes == 0 ? IoStatus::Eof : IoStatus::Torn)
        << "bytes=" << bytes;
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST_F(ServeFaultFrameIo, InjectedDropWriteHangsUpBeforeAnyByte) {
  ckpt::FaultInjector injector;
  injector.net_drop_write(1);
  EXPECT_EQ(write_frame(fds_[0], "OK pong", 2000, nullptr, &injector),
            IoStatus::Error);
  std::string received;
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{2000, 2000}),
            IoStatus::Eof);
}

TEST_F(ServeFaultFrameIo, InjectedDropReadKillsTheConnection) {
  ASSERT_TRUE(write_frame(fds_[0], "PING"));
  ckpt::FaultInjector injector;
  injector.net_drop_read(1);
  std::string received;
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{2000, 2000},
                       nullptr, &injector),
            IoStatus::Error);
}

// A delayed read stalls past the already-armed idle deadline, so the
// frame sitting in the buffer is never delivered — the deterministic
// Timeout the daemon's reaper tests lean on.
TEST_F(ServeFaultFrameIo, InjectedDelayLandsInTheTimeoutPath) {
  ASSERT_TRUE(write_frame(fds_[0], "PING"));
  ckpt::FaultInjector injector;
  injector.net_delay_read(1, 200);
  std::string received;
  EXPECT_EQ(read_frame(fds_[1], received, FrameDeadline{50, 50}, nullptr,
                       &injector),
            IoStatus::Timeout);
}

}  // namespace
}  // namespace hsbp::serve
