#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/io.hpp"
#include "util/rng.hpp"

namespace hsbp::graph {
namespace {

/// Random printable garbage of the given length. Digit runs are capped
/// at 5 characters so a fuzz input that happens to parse cannot demand
/// a multi-gigabyte CSR allocation (vertex ids stay below 100 000).
std::string random_garbage(util::Rng& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "0123456789 \t-%#.eE+\nabcxyz";
  std::string out;
  out.reserve(length + length / 5);
  int digit_run = 0;
  for (std::size_t i = 0; i < length; ++i) {
    const char c = kAlphabet[rng.uniform_int(sizeof(kAlphabet) - 1)];
    if (c >= '0' && c <= '9') {
      if (++digit_run > 5) {
        out.push_back(' ');
        digit_run = 0;
      }
    } else {
      digit_run = 0;
    }
    out.push_back(c);
  }
  return out;
}

/// Fuzz contract: readers either parse or throw; they never crash,
/// hang, or return a structurally broken graph.
class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, EdgeListReaderNeverCrashes) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::istringstream in(random_garbage(rng, 1 + rng.uniform_int(400)));
    try {
      const Graph g = read_edge_list(in);
      // If it parsed, the graph must be self-consistent.
      EdgeCount degree_total = 0;
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        degree_total += g.degree(v);
      }
      EXPECT_EQ(degree_total, 2 * g.num_edges());
    } catch (const std::runtime_error&) {
      // rejected input: fine
    }
  }
}

TEST_P(IoFuzz, MatrixMarketReaderNeverCrashes) {
  util::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text = rng.bernoulli(0.5)
                           ? "%%MatrixMarket matrix coordinate pattern "
                             "general\n"
                           : "";
    text += random_garbage(rng, 1 + rng.uniform_int(400));
    std::istringstream in(text);
    try {
      const Graph g = read_matrix_market(in);
      EXPECT_GE(g.num_vertices(), 0);
    } catch (const std::runtime_error&) {
      // rejected input: fine
    }
  }
}

TEST_P(IoFuzz, WeightedReadersNeverCrash) {
  util::Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 30; ++trial) {
    std::istringstream in(random_garbage(rng, 1 + rng.uniform_int(300)));
    try {
      (void)read_edge_list(in, WeightHandling::Multiplicity);
    } catch (const std::runtime_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(IoRobustness, HugeVertexIdRejectedNotAllocated) {
  // A malicious edge list must be rejected before allocating a
  // multi-gigabyte CSR.
  std::istringstream in("0 999999999999\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoRobustness, WindowsLineEndingsAccepted) {
  std::istringstream in("0 1\r\n1 2\r\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(IoRobustness, TrailingWhitespaceAndColumnsIgnored) {
  std::istringstream in("0 1 extra columns here\n1 2\t\t\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2);
}

}  // namespace
}  // namespace hsbp::graph
