#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace hsbp::graph {
namespace {

TEST(WeightedEdgeList, MultiplicityExpandsEdges) {
  std::istringstream in("0 1 3\n1 2 1\n");
  const Graph g = read_edge_list(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.out_degree(1), 1);
}

TEST(WeightedEdgeList, IgnoreDropsWeightColumn) {
  std::istringstream in("0 1 3\n1 2 7\n");
  const Graph g = read_edge_list(in, WeightHandling::Ignore);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(WeightedEdgeList, MissingWeightDefaultsToOne) {
  std::istringstream in("0 1\n1 2 2\n");
  const Graph g = read_edge_list(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(WeightedEdgeList, RealWeightsRound) {
  std::istringstream in("0 1 2.6\n");
  const Graph g = read_edge_list(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(WeightedEdgeList, RejectsNonPositiveWeight) {
  std::istringstream zero("0 1 0\n");
  EXPECT_THROW(read_edge_list(zero, WeightHandling::Multiplicity),
               std::runtime_error);
  std::istringstream negative("0 1 -2\n");
  EXPECT_THROW(read_edge_list(negative, WeightHandling::Multiplicity),
               std::runtime_error);
}

TEST(WeightedEdgeList, RejectsHugeWeight) {
  std::istringstream in("0 1 99999999\n");
  EXPECT_THROW(read_edge_list(in, WeightHandling::Multiplicity),
               std::runtime_error);
}

TEST(WeightedMatrixMarket, IntegerValuesBecomeMultiplicities) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 2\n"
      "1 2 4\n"
      "2 3 1\n");
  const Graph g = read_matrix_market(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.out_degree(0), 4);
}

TEST(WeightedMatrixMarket, SymmetricWeightsMirrorWithMultiplicity) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  const Graph g = read_matrix_market(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 6);  // 3 each direction
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.out_degree(1), 3);
}

TEST(WeightedMatrixMarket, PatternDegradesToUnweighted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  const Graph g = read_matrix_market(in, WeightHandling::Multiplicity);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(WeightedMatrixMarket, IgnoreMatchesLegacyBehaviour) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 5.0\n"
      "2 1 2.0\n";
  std::istringstream a(text), b(text);
  EXPECT_EQ(read_matrix_market(a, WeightHandling::Ignore).num_edges(), 2);
  EXPECT_EQ(read_matrix_market(b, WeightHandling::Multiplicity).num_edges(),
            7);
}

}  // namespace
}  // namespace hsbp::graph
