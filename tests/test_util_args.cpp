#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/args.hpp"

namespace hsbp::util {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const Args args = make_args({});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_FALSE(args.has("anything"));
  EXPECT_TRUE(args.positionals().empty());
}

TEST(Args, SpaceSeparatedValue) {
  const Args args = make_args({"--vertices", "1000"});
  EXPECT_TRUE(args.has("vertices"));
  EXPECT_EQ(args.get_int("vertices", 0), 1000);
}

TEST(Args, EqualsSeparatedValue) {
  const Args args = make_args({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.25);
}

TEST(Args, BareFlagIsTrue) {
  const Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, BooleanSpellings) {
  EXPECT_TRUE(make_args({"--f", "yes"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f", "on"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f=1"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f", "TRUE"}).get_bool("f", false));
  EXPECT_FALSE(make_args({"--f", "no"}).get_bool("f", true));
  EXPECT_FALSE(make_args({"--f=0"}).get_bool("f", true));
  EXPECT_FALSE(make_args({"--f", "Off"}).get_bool("f", true));
}

TEST(Args, DefaultsWhenAbsent) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_string("s", "fallback"), "fallback");
  EXPECT_TRUE(args.get_bool("b", true));
}

TEST(Args, PositionalsCollected) {
  const Args args = make_args({"input.mtx", "--runs", "3", "output.tsv"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "input.mtx");
  EXPECT_EQ(args.positionals()[1], "output.tsv");
  EXPECT_EQ(args.get_int("runs", 0), 3);
}

TEST(Args, NegativeNumbersParse) {
  const Args args = make_args({"--offset=-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

TEST(Args, MalformedIntegerThrows) {
  const Args args = make_args({"--n", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

TEST(Args, MalformedDoubleThrows) {
  const Args args = make_args({"--x", "oops"});
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
}

TEST(Args, MalformedBoolThrows) {
  const Args args = make_args({"--b", "maybe"});
  EXPECT_THROW(args.get_bool("b", false), std::invalid_argument);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = make_args({"--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

}  // namespace
}  // namespace hsbp::util
