// Graceful shutdown and crash-safety of the serving daemon, reusing
// the PR 3 fault-injection harness:
//   - a SIGTERM (request_shutdown) racing an in-flight refit still
//     leaves a valid, loadable checkpoint at the published epoch,
//   - a daemon killed and resumed serves the exact snapshot it last
//     published (bit-exact assignment, MDL, epoch),
//   - a torn serve checkpoint is rejected by the loader, and a failed
//     persist never destroys the previous checkpoint or the daemon.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "generator/dcsbm.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/refit.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/errors.hpp"

namespace hsbp::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

graph::Graph tiny_graph(std::uint64_t seed = 13) {
  generator::DcsbmParams params;
  params.num_vertices = 50;
  params.num_communities = 4;
  params.num_edges = 350;
  params.ratio_within_between = 5.0;
  params.seed = seed;
  return generator::generate_dcsbm(params).graph;
}

std::string unique_dir(const char* tag) {
  const std::string dir = (fs::path(::testing::TempDir()) /
                           ("serve_" + std::string(tag) + "_" +
                            std::to_string(::getpid())))
                              .string();
  fs::create_directories(dir);
  return dir;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/hsbp_s_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

sbp::SbpConfig fast_config() {
  sbp::SbpConfig config;
  config.seed = 5;
  config.num_threads = 2;
  return config;
}

/// Guard: every test leaves the process-wide shutdown flag clear.
struct ShutdownFlagGuard {
  ~ShutdownFlagGuard() { ckpt::clear_shutdown(); }
};

TEST(ServeShutdown, SigtermMidRefitStillPublishesAValidCheckpoint) {
  ShutdownFlagGuard guard;
  const std::string dir = unique_dir("sigterm");
  const std::string socket = unique_socket_path("sigterm");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.refit.checkpoint_dir = dir;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  // Queue a batch, then raise the shutdown flag immediately — the
  // scheduler's drain-before-exit still fits it (run_warm early-exits
  // at its next phase boundary with best-so-far), publishes, persists.
  Client client = Client::connect_unix(socket);
  const auto ack = client.request("INGEST g 4 0 50 50 1 2 3 4 5");
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(is_ok(*ack)) << *ack;
  ckpt::request_shutdown();
  server.stop();

  // The checkpoint on disk must load cleanly and describe exactly the
  // snapshot the store last published — including the ingested growth.
  const GraphStore* store = server.registry().find("g");
  ASSERT_NE(store, nullptr);
  const auto published = store->acquire();
  EXPECT_EQ(published->epoch, 2u);
  EXPECT_EQ(published->graph->num_vertices(), 51);

  const auto loaded =
      ckpt::load_serve_checkpoint(checkpoint_path(dir, "g"));
  EXPECT_EQ(loaded.epoch, published->epoch);
  EXPECT_EQ(loaded.num_vertices, published->graph->num_vertices());
  EXPECT_EQ(loaded.assignment, published->assignment);
  EXPECT_EQ(loaded.num_blocks, published->num_blocks);
  EXPECT_DOUBLE_EQ(loaded.mdl, published->mdl);
}

TEST(ServeShutdown, KilledAndResumedDaemonServesTheSameSnapshot) {
  ShutdownFlagGuard guard;
  const std::string dir = unique_dir("kill");
  const std::string crash_dir = unique_dir("kill_crashcopy");
  const std::string socket = unique_socket_path("kill");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.refit.checkpoint_dir = dir;

  std::vector<std::int32_t> observed_assignment;
  std::uint64_t observed_epoch = 0;
  double observed_mdl = 0.0;
  blockmodel::BlockId observed_blocks = 0;
  {
    Server server(options);
    server.add_graph("g", tiny_graph());
    server.start();
    Client client = Client::connect_unix(socket);
    const auto ack = client.request("INGEST g 2 0 1 2 50");
    ASSERT_TRUE(ack.has_value());
    ASSERT_TRUE(is_ok(*ack)) << *ack;

    // Wait until the refit epoch is client-observable, then freeze the
    // on-disk state at that instant — persist-before-publish means the
    // checkpoint file already covers what we just observed. Copying it
    // simulates the state a `kill -9` at this exact moment leaves.
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    bool observed = false;
    while (std::chrono::steady_clock::now() < deadline && !observed) {
      const auto reply = client.request("EPOCH g");
      ASSERT_TRUE(reply.has_value());
      if (is_ok(*reply) && std::stoull(reply->substr(3)) >= 2) {
        observed = true;
      } else {
        std::this_thread::sleep_for(10ms);
      }
    }
    ASSERT_TRUE(observed) << "refit never published";
    fs::copy_file(checkpoint_path(dir, "g"),
                  checkpoint_path(crash_dir, "g"),
                  fs::copy_options::overwrite_existing);

    const auto snapshot = server.registry().find("g")->acquire();
    observed_assignment = snapshot->assignment;
    observed_epoch = snapshot->epoch;
    observed_mdl = snapshot->mdl;
    observed_blocks = snapshot->num_blocks;
    server.stop();
  }

  // "Resume after the kill": a fresh daemon pointed at the frozen dir.
  ServeOptions resumed_options;
  resumed_options.socket_path = unique_socket_path("kill2");
  resumed_options.refit.base = fast_config();
  resumed_options.refit.checkpoint_dir = crash_dir;
  resumed_options.resume = true;
  Server resumed(resumed_options);
  resumed.add_graph("g", tiny_graph());
  resumed.start();

  const auto snapshot = resumed.registry().find("g")->acquire();
  EXPECT_EQ(snapshot->epoch, observed_epoch);
  EXPECT_EQ(snapshot->assignment, observed_assignment);
  EXPECT_EQ(snapshot->num_blocks, observed_blocks);
  EXPECT_DOUBLE_EQ(snapshot->mdl, observed_mdl);
  EXPECT_EQ(snapshot->graph->num_vertices(), 51);  // ingested vertex kept

  // And it answers from that snapshot over the wire.
  Client client = Client::connect_unix(resumed_options.socket_path);
  const auto member = client.request("MEMBER g 50");
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(is_ok(*member));
  EXPECT_EQ(std::stoi(member->substr(3)),
            observed_assignment[50]);
  resumed.stop();
}

TEST(ServeShutdown, ShutdownUnderQueryLoadDrainsCleanly) {
  ShutdownFlagGuard guard;
  const std::string dir = unique_dir("load");
  const std::string socket = unique_socket_path("load");
  ServeOptions options;
  options.socket_path = socket;
  options.refit.base = fast_config();
  options.refit.checkpoint_dir = dir;
  Server server(options);
  server.add_graph("g", tiny_graph());
  server.start();

  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> hard_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      Client client = Client::connect_unix(socket);
      std::uint64_t i = 0;
      while (running.load(std::memory_order_relaxed)) {
        const auto reply =
            client.request("MEMBER g " + std::to_string(i % 50));
        // A drain hangs up after the in-flight reply: nullopt is the
        // expected end of session, an ERR reply would be a real bug.
        if (!reply.has_value()) break;
        if (!is_ok(*reply)) hard_failures.fetch_add(1);
        ++i;
      }
    });
  }
  Client control = Client::connect_unix(socket);
  const auto ack = control.request("INGEST g 2 0 1 2 3");
  ASSERT_TRUE(ack.has_value());
  std::this_thread::sleep_for(30ms);  // let the storm overlap the refit

  ckpt::request_shutdown();
  server.stop();
  running.store(false);
  for (auto& t : clients) t.join();
  EXPECT_EQ(hard_failures.load(), 0u);

  // Acknowledged INGEST survived the drain and is on disk.
  const auto loaded =
      ckpt::load_serve_checkpoint(checkpoint_path(dir, "g"));
  EXPECT_EQ(loaded.epoch, 2u);
}

TEST(ServeShutdown, TornServeCheckpointIsRejectedByTheLoader) {
  const std::string dir = unique_dir("torn");
  const auto graph =
      std::make_shared<const graph::Graph>(tiny_graph());
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph->num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v % 3);
  }
  const auto snapshot = make_snapshot(graph, assignment, 3, 42.0, 7);

  ckpt::FaultInjector fault;
  fault.truncate_write(1, 24);  // torn: renamed into place, data cut
  persist_snapshot(dir, "g", *snapshot, &fault);
  EXPECT_THROW(ckpt::load_serve_checkpoint(checkpoint_path(dir, "g")),
               util::DataError);
}

TEST(ServeShutdown, FailedPersistKeepsThePreviousCheckpointAndEpoch) {
  const std::string dir = unique_dir("failwrite");
  const auto graph =
      std::make_shared<const graph::Graph>(tiny_graph());
  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(graph->num_vertices()));
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    assignment[v] = static_cast<std::int32_t>(v % 3);
  }
  persist_snapshot(dir, "g", *make_snapshot(graph, assignment, 3, 42.0, 7),
                   nullptr);

  ckpt::FaultInjector fault;
  fault.fail_write(1);  // disk full on the successor's persist
  EXPECT_THROW(persist_snapshot(
                   dir, "g", *make_snapshot(graph, assignment, 3, 41.0, 8),
                   &fault),
               util::IoError);

  const auto loaded =
      ckpt::load_serve_checkpoint(checkpoint_path(dir, "g"));
  EXPECT_EQ(loaded.epoch, 7u);  // the previous epoch survived intact
  EXPECT_DOUBLE_EQ(loaded.mdl, 42.0);
}

}  // namespace
}  // namespace hsbp::serve
