#!/usr/bin/env bash
# Emits the Table-1 synthetic suite and the Table-2 real-world
# surrogates as Matrix Market files + ground-truth TSVs — the
# counterpart of the paper artifact's dataset-generation script.
#
# Usage: scripts/generate_datasets.sh [BUILD_DIR] [SCALE] [OUTDIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${2:-0.01}"
OUTDIR="${3:-generated_graphs}"

"$BUILD_DIR/examples/generate_graphs" --suite both --scale "$SCALE" \
  --outdir "$OUTDIR"
echo "datasets written to $OUTDIR/"
