#!/usr/bin/env bash
# Tier-1 verification: the exact verify line from ROADMAP.md, with an
# optional sanitizer toggle, followed by a sanitized pass over the
# fault-injection/durability suite (`ctest -L fault`).
#
# Usage: scripts/check_tier1.sh [BUILD_DIR]
#   HSBP_SANITIZE=address,undefined scripts/check_tier1.sh build-asan
#
# Environment:
#   HSBP_SANITIZE     comma-separated sanitizer list forwarded as
#                     -DHSBP_SANITIZE=... (empty = plain build)
#   HSBP_SKIP_FAULT   set to 1 to skip the extra sanitized fault-test
#                     stage (it is also skipped when HSBP_SANITIZE is
#                     set, since the whole suite is sanitized then)
#   HSBP_SKIP_TSAN    set to 1 to skip the thread-sanitized pass over
#                     the async/hybrid- and serve-labelled parallel
#                     suites (also skipped when HSBP_SANITIZE is set —
#                     TSan cannot combine with the address/leak
#                     runtimes)
#   HSBP_SKIP_SERVE   set to 1 to skip the serve smoke stage (daemon on
#                     an ephemeral socket + concurrent-load bench)
#   HSBP_TSAN_THREADS OpenMP thread count for the TSan stage (default
#                     4: races need real concurrency even on single-CPU
#                     machines, where OpenMP would otherwise run one
#                     thread and TSan would have nothing to observe)
#   HSBP_JOBS         build/test parallelism (default: nproc; a bare
#                     `-j` spawns every job at once and thrashes small
#                     machines)
#   HSBP_SKIP_SIMD    set to 1 to skip the forced-dispatch stage that
#                     reruns the kernel bit-identity tests under
#                     HSBP_SIMD=scalar and under the best vector path
#                     the host supports (the env override is the same
#                     knob users have, so this also audits the
#                     dispatch plumbing itself)
#   HSBP_SKIP_OOC     set to 1 to skip the out-of-core smoke stage
#                     (generate → convert → mmap fit in separate
#                     processes with a peak-RSS budget assertion, plus
#                     an ASan pass over the convert/fit pipeline and
#                     the ooc-labelled tests)
#   HSBP_BENCH_SMOKE  set to 1 to also run the bm_kernels suite briefly
#                     (--benchmark_min_time=0.05) after the tests, plus
#                     a fig7 strong-scaling smoke at 1 and 2 threads —
#                     a smoke check that the bench harness still builds
#                     and runs, not a measurement (use
#                     scripts/bench_kernels.sh for real numbers)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="${HSBP_JOBS:-$(nproc)}"
CMAKE_FLAGS=()
if [[ -n "${HSBP_SANITIZE:-}" ]]; then
  CMAKE_FLAGS+=("-DHSBP_SANITIZE=${HSBP_SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Stage 2: rebuild the fault-labelled tests under ASan/UBSan — the
# checkpoint/durability suite plus the ServeFault* torture tests
# (torn/oversized frames, injected disconnects, shed/reap paths).
# Checkpoint and frame-I/O bugs are exactly the kind that only a
# sanitizer catches (use-after-close, torn buffers).
if [[ -z "${HSBP_SANITIZE:-}" && "${HSBP_SKIP_FAULT:-0}" != "1" ]]; then
  FAULT_DIR="${BUILD_DIR}-fault-asan"
  cmake -B "$FAULT_DIR" -S . -DHSBP_SANITIZE=address,undefined
  cmake --build "$FAULT_DIR" -j "$JOBS"
  (cd "$FAULT_DIR" && ctest --output-on-failure -j "$JOBS" -L fault)
fi

# Stage 3: rebuild the async/hybrid- and serve-labelled parallel
# suites under TSan — the single-writer-per-vertex/move-log protocol
# (DESIGN §11) and the serve snapshot-swap contract (DESIGN §12) are
# exactly the kind of claims only a thread sanitizer can audit. Runs
# with a fixed OpenMP thread count so single-CPU machines still get
# real interleavings.
if [[ -z "${HSBP_SANITIZE:-}" && "${HSBP_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DHSBP_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$JOBS"
  (cd "$TSAN_DIR" &&
   OMP_NUM_THREADS="${HSBP_TSAN_THREADS:-4}" \
     ctest --output-on-failure -j "$JOBS" -L 'async|serve')
fi

# Stage 3a: forced-dispatch bit-identity — rerun the kernel equivalence
# and SIMD suites with HSBP_SIMD pinned to scalar, then to the best
# vector level the host supports (DESIGN §13). The suites also force
# levels internally via set_level(); running them under both env
# overrides additionally proves the HSBP_SIMD startup plumbing resolves
# and clamps correctly on this host.
if [[ "${HSBP_SKIP_SIMD:-0}" != "1" ]]; then
  # "avx2" is a request for the highest level; on hosts without AVX2 the
  # dispatcher clamps it down to the best supported vector path (with a
  # warning), which is exactly the level we want audited.
  for simd_level in scalar avx2; do
    echo "== kernel bit-identity under HSBP_SIMD=$simd_level =="
    HSBP_SIMD="$simd_level" "$BUILD_DIR/tests/test_blockmodel" \
      --gtest_filter='XlogxTable.*:*KernelEquivalence*:Simd*:*SimdKernel*'
  done
fi

# Stage 3b: serve smoke — start the real daemon on an ephemeral Unix
# socket, run the concurrent-load bench against it in smoke mode (>= 4
# client threads querying while edge batches refit), and require a
# clean SIGTERM drain (exit 0). This is the end-to-end path no unit
# test covers: real binary, real signals, real sockets.
#
# The daemon runs with --max-sessions 5 (the bench's 4 clients + its
# control connection fill the cap exactly) so the bench's overload
# probes (--overload 2) are shed deterministically with `ERR busy
# retry-after`, and its retrying client must ride the busy period out —
# the load-shedding and client-retry paths covered end to end, with the
# shed rate and healthy-client p99 in the bench's JSON.
if [[ "${HSBP_SKIP_SERVE:-0}" != "1" ]]; then
  cmake --build "$BUILD_DIR" -j "$JOBS" --target hsbp_cli ext_serving
  SERVE_SOCK="$(mktemp -u /tmp/hsbp_smoke_XXXXXX.sock)"
  SERVE_GRAPH_DIR="$(mktemp -d /tmp/hsbp_smoke_graph_XXXXXX)"
  trap 'rm -rf "$SERVE_SOCK" "$SERVE_GRAPH_DIR"' EXIT
  "$BUILD_DIR/tools/hsbp" generate --suite synthetic --scale 0.0005 \
      --only S2 --outdir "$SERVE_GRAPH_DIR"
  "$BUILD_DIR/tools/hsbp" serve "$SERVE_GRAPH_DIR/S2.mtx" \
      --socket "$SERVE_SOCK" --seed 3 --max-sessions 5 &
  SERVE_PID=$!
  for _ in $(seq 1 300); do [[ -S "$SERVE_SOCK" ]] && break; sleep 0.1; done
  [[ -S "$SERVE_SOCK" ]] || { kill "$SERVE_PID" 2>/dev/null; \
      echo "serve smoke: daemon never bound its socket" >&2; exit 1; }
  HSBP_BENCH_SMOKE=1 "$BUILD_DIR/bench/ext_serving" \
      --socket "$SERVE_SOCK" --graph S2 --clients 4 --batches 2 \
      --overload 2
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"  # set -e: a non-zero drain fails the stage
  echo "serve smoke: clean drain (overload probes shed and retried)"
fi

# Stage 3c: out-of-core smoke — generate → convert → mmap fit, each in
# its own process (ru_maxrss is a per-process high-water mark, so the
# fit's number is clean of the generator's footprint). Asserts the
# budget actually split the graph (pieces >= 2) and that peak RSS
# stayed within budget × 4 plus a fixed process allowance (binary +
# OpenMP runtime + O(V) bookkeeping — the budget bounds the graph
# working set, not the process baseline). Then repeats convert + fit
# and the ooc-labelled tests under the stage-2 ASan build: mmap'd
# reads, the chunked model build, and the stitch paths are exactly
# where an out-of-bounds read would hide.
if [[ "${HSBP_SKIP_OOC:-0}" != "1" ]]; then
  cmake --build "$BUILD_DIR" -j "$JOBS" --target hsbp_cli
  OOC_SMOKE_DIR="$(mktemp -d /tmp/hsbp_ooc_smoke_XXXXXX)"
  OOC_BUDGET_MB=1
  "$BUILD_DIR/tools/hsbp" generate --suite synthetic --scale 0.03 \
      --only S13 --outdir "$OOC_SMOKE_DIR"
  "$BUILD_DIR/tools/hsbp" convert "$OOC_SMOKE_DIR/S13.mtx" \
      "$OOC_SMOKE_DIR/S13.csr"
  "$BUILD_DIR/tools/hsbp" fit "$OOC_SMOKE_DIR/S13.csr" \
      --memory-budget-mb "$OOC_BUDGET_MB" --seed 3 --json \
      > "$OOC_SMOKE_DIR/fit.json"
  python3 - "$OOC_SMOKE_DIR/fit.json" "$OOC_BUDGET_MB" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
budget_mb = int(sys.argv[2])
assert doc["pieces"] >= 2, f"budget did not split the graph: {doc}"
limit_kb = budget_mb * 1024 * 4 + 32768
assert doc["peak_rss_kb"] <= limit_kb, \
    f"peak RSS {doc['peak_rss_kb']} KiB over limit {limit_kb} KiB: {doc}"
print(f"ooc smoke: {doc['pieces']} pieces, {doc['blocks']} blocks, "
      f"peak RSS {doc['peak_rss_kb']} KiB <= {limit_kb} KiB")
EOF
  if [[ -z "${HSBP_SANITIZE:-}" && "${HSBP_SKIP_FAULT:-0}" != "1" ]]; then
    FAULT_DIR="${BUILD_DIR}-fault-asan"
    cmake --build "$FAULT_DIR" -j "$JOBS" --target hsbp_cli
    "$FAULT_DIR/tools/hsbp" convert "$OOC_SMOKE_DIR/S13.mtx" \
        "$OOC_SMOKE_DIR/S13_asan.csr"
    "$FAULT_DIR/tools/hsbp" fit "$OOC_SMOKE_DIR/S13_asan.csr" \
        --memory-budget-mb "$OOC_BUDGET_MB" --seed 3 --json > /dev/null
    (cd "$FAULT_DIR" && ctest --output-on-failure -j "$JOBS" -L ooc)
    echo "ooc smoke: ASan convert/fit and ooc-labelled tests clean"
  fi
  rm -rf "$OOC_SMOKE_DIR"
fi

# Stage 4 (opt-in): bench smoke — every kernel bench must still build
# and complete. Short min_time on purpose: this guards against bit-rot
# in the bench harness, not performance (see scripts/bench_kernels.sh).
# Note the bare-number min_time: older google-benchmark releases reject
# the "0.05s" suffix spelling.
if [[ "${HSBP_BENCH_SMOKE:-0}" == "1" ]]; then
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bm_kernels \
    fig7_strong_scaling
  "$BUILD_DIR/bench/bm_kernels" --benchmark_min_time=0.05
  # fig7 smoke at 1 and 2 threads, one degree-aware schedule: the
  # tracked-benchmark path (--json + --schedule) must stay runnable.
  FIG7_SMOKE_JSON="$(mktemp)"
  "$BUILD_DIR/bench/fig7_strong_scaling" --scale 0.001 --runs 1 \
      --max-threads 2 --schedule degree-sorted --json "$FIG7_SMOKE_JSON"
  python3 -c "import json,sys; d=json.load(open(sys.argv[1])); \
assert [e['threads'] for e in d['entries']] == [1, 2], d" "$FIG7_SMOKE_JSON"
  rm -f "$FIG7_SMOKE_JSON"
  echo "fig7 smoke: 1- and 2-thread entries OK"
fi
