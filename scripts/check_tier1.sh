#!/usr/bin/env bash
# Tier-1 verification: the exact verify line from ROADMAP.md, with an
# optional sanitizer toggle.
#
# Usage: scripts/check_tier1.sh [BUILD_DIR]
#   HSBP_SANITIZE=address,undefined scripts/check_tier1.sh build-asan
#
# Environment:
#   HSBP_SANITIZE   comma-separated sanitizer list forwarded as
#                   -DHSBP_SANITIZE=... (empty = plain build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CMAKE_FLAGS=()
if [[ -n "${HSBP_SANITIZE:-}" ]]; then
  CMAKE_FLAGS+=("-DHSBP_SANITIZE=${HSBP_SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR" && ctest --output-on-failure -j
