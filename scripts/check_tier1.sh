#!/usr/bin/env bash
# Tier-1 verification: the exact verify line from ROADMAP.md, with an
# optional sanitizer toggle, followed by a sanitized pass over the
# fault-injection/durability suite (`ctest -L fault`).
#
# Usage: scripts/check_tier1.sh [BUILD_DIR]
#   HSBP_SANITIZE=address,undefined scripts/check_tier1.sh build-asan
#
# Environment:
#   HSBP_SANITIZE     comma-separated sanitizer list forwarded as
#                     -DHSBP_SANITIZE=... (empty = plain build)
#   HSBP_SKIP_FAULT   set to 1 to skip the extra sanitized fault-test
#                     stage (it is also skipped when HSBP_SANITIZE is
#                     set, since the whole suite is sanitized then)
#   HSBP_JOBS         build/test parallelism (default: nproc; a bare
#                     `-j` spawns every job at once and thrashes small
#                     machines)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="${HSBP_JOBS:-$(nproc)}"
CMAKE_FLAGS=()
if [[ -n "${HSBP_SANITIZE:-}" ]]; then
  CMAKE_FLAGS+=("-DHSBP_SANITIZE=${HSBP_SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Stage 2: rebuild the fault-labelled durability tests under
# ASan/UBSan — checkpoint/atomic-write bugs are exactly the kind that
# only a sanitizer catches (use-after-close, torn buffers).
if [[ -z "${HSBP_SANITIZE:-}" && "${HSBP_SKIP_FAULT:-0}" != "1" ]]; then
  FAULT_DIR="${BUILD_DIR}-fault-asan"
  cmake -B "$FAULT_DIR" -S . -DHSBP_SANITIZE=address,undefined
  cmake --build "$FAULT_DIR" -j "$JOBS"
  (cd "$FAULT_DIR" && ctest --output-on-failure -j "$JOBS" -L fault)
fi
