#!/usr/bin/env bash
# Kernel perf-regression harness: runs the bm_kernels google-benchmark
# suite and writes BENCH_kernels.json (ns/op per kernel, plus speedups
# against a baseline run when one is supplied).
#
# Usage: scripts/bench_kernels.sh [BUILD_DIR]
#
# Environment:
#   HSBP_BENCH_BEFORE   optional path to a google-benchmark JSON file
#                       from a baseline build (e.g. produced by running
#                       bm_kernels --benchmark_format=json in a worktree
#                       at the pre-optimization commit). When set, the
#                       output records before/after/speedup per kernel;
#                       otherwise the previous BENCH_kernels.json's
#                       "after" numbers are reused as the baseline so
#                       successive runs catch regressions.
#   HSBP_BENCH_MIN_TIME benchmark --benchmark_min_time value. Plain
#                       seconds as a bare number (older google-benchmark
#                       releases reject the "0.2s" suffix form).
#   HSBP_BENCH_OUT      output path (default: BENCH_kernels.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
MIN_TIME="${HSBP_BENCH_MIN_TIME:-0.2}"
OUT="${HSBP_BENCH_OUT:-BENCH_kernels.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" --target bm_kernels >&2

"$BUILD_DIR/bench/bm_kernels" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json
import subprocess
import sys
import os

raw_path, out_path = sys.argv[1], sys.argv[2]
after = {b["name"]: b["real_time"]
         for b in json.load(open(raw_path))["benchmarks"]
         if b.get("run_type", "iteration") == "iteration"}

before = {}
carried = {}  # hand-maintained keys (e.g. "end_to_end") survive rewrites
before_src = os.environ.get("HSBP_BENCH_BEFORE", "")
if os.path.exists(out_path):
    previous = json.load(open(out_path))
    carried = {k: v for k, v in previous.items()
               if k not in ("commit", "min_time_s", "baseline", "kernels")}
    if not before_src:
        before = {k: v["after_ns"] for k, v in previous["kernels"].items()}
if before_src:
    before = {b["name"]: b["real_time"]
              for b in json.load(open(before_src))["benchmarks"]
              if b.get("run_type", "iteration") == "iteration"}

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip()

kernels = {}
for name, ns in after.items():
    entry = {"after_ns": round(ns, 1)}
    if name in before:
        entry["before_ns"] = round(before[name], 1)
        entry["speedup"] = round(before[name] / ns, 2)
    kernels[name] = entry

doc = {
    "commit": commit,
    "min_time_s": float(os.environ.get("HSBP_BENCH_MIN_TIME", "0.2")),
    "baseline": before_src or (out_path if before else None),
    "kernels": kernels,
}
doc.update(carried)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

width = max(len(n) for n in kernels)
for name, entry in kernels.items():
    line = f"{name:<{width}}  after={entry['after_ns']:>12.1f} ns"
    if "speedup" in entry:
        line += f"  before={entry['before_ns']:>12.1f} ns  ({entry['speedup']}x)"
    print(line)
print(f"wrote {out_path}")
EOF
