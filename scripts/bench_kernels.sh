#!/usr/bin/env bash
# Kernel perf-regression harness: runs the bm_kernels google-benchmark
# suite with repetitions, aggregates min-of-N per kernel (minimum is the
# right statistic on a noisy shared host: it approaches the true cost
# from above and is immune to load spikes), records each kernel's noise
# floor, reruns kernels whose noise floor exceeds the threshold with
# doubled repetitions, folds in the fig7 strong-scaling per-thread
# entries and the out-of-core RSS/quality bench, and writes
# BENCH_kernels.json. Speedups that sit inside a kernel's own noise
# floor are stamped "inconclusive": they are not results.
#
# Usage: scripts/bench_kernels.sh [BUILD_DIR]
#
# Environment:
#   HSBP_BENCH_BEFORE   optional path to a google-benchmark JSON file
#                       from a baseline build (e.g. produced by running
#                       bm_kernels --benchmark_format=json in a worktree
#                       at the pre-optimization commit). When set, the
#                       output records before/after/speedup per kernel;
#                       otherwise the previous BENCH_kernels.json's
#                       "after" numbers are reused as the baseline so
#                       successive runs catch regressions.
#   HSBP_BENCH_REPS     benchmark repetitions per kernel (default 5);
#                       after_ns is the minimum across repetitions and
#                       noise_pct = (max-min)/min*100 is the recorded
#                       per-kernel noise floor for that run.
#   HSBP_BENCH_NOISE_PCT  noise threshold in percent (default 40):
#                       kernels noisier than this after the first pass
#                       are rerun with 2x repetitions and the pooled
#                       timings replace the first pass's.
#   HSBP_BENCH_MIN_TIME benchmark --benchmark_min_time value per
#                       repetition. Plain seconds as a bare number
#                       (older google-benchmark releases reject the
#                       "0.2s" suffix form).
#   HSBP_BENCH_OUT      output path (default: BENCH_kernels.json)
#   HSBP_BENCH_SKIP_FIG7  set to 1 to skip the fig7 strong-scaling
#                       sweep (kernel-only refresh; the previous fig7
#                       block is carried forward unchanged).
#   HSBP_FIG7_SCALE     fig7 dataset scale (default 0.005)
#   HSBP_FIG7_RUNS      fig7 best-of runs per thread count (default 2)
#   HSBP_FIG7_MAX_THREADS  fig7 sweep upper bound (default 8: records
#                       entries at 1/2/4/8 threads)
#   HSBP_BENCH_SKIP_OOC set to 1 to skip the ext_outofcore stage (the
#                       previous "ooc" block is carried forward).
#   HSBP_OOC_SCALE      out-of-core dataset scale (default 0.05)
#   HSBP_OOC_BUDGET_MB  out-of-core memory budget in MiB (default 1)
#   HSBP_OOC_SEED       out-of-core bench seed (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
MIN_TIME="${HSBP_BENCH_MIN_TIME:-0.2}"
REPS="${HSBP_BENCH_REPS:-5}"
NOISE_PCT="${HSBP_BENCH_NOISE_PCT:-40}"
OUT="${HSBP_BENCH_OUT:-BENCH_kernels.json}"
RAW="$(mktemp)"
RERUN="$(mktemp)"
FIG7_STATIC="$(mktemp)"
FIG7_DEGREE="$(mktemp)"
OOC_JSON="$(mktemp)"
trap 'rm -f "$RAW" "$RERUN" "$FIG7_STATIC" "$FIG7_DEGREE" "$OOC_JSON"' EXIT

cmake --build "$BUILD_DIR" -j "$(nproc)" --target bm_kernels \
  fig7_strong_scaling ext_outofcore >&2

"$BUILD_DIR/bench/bm_kernels" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_format=json > "$RAW"

# Second pass for kernels whose first-pass spread exceeds the noise
# threshold: doubled repetitions, pooled with the first pass (the min
# only improves; the recorded noise floor is the pooled spread).
NOISY_FILTER="$(python3 - "$RAW" "$NOISE_PCT" <<'EOF'
import json, re, sys
raw_path, threshold = sys.argv[1], float(sys.argv[2])
runs = {}
for b in json.load(open(raw_path))["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    runs.setdefault(b["name"], []).append(b["real_time"])
noisy = [n for n, t in runs.items()
         if (max(t) - min(t)) / min(t) * 100.0 > threshold]
if noisy:
    print("^(" + "|".join(re.escape(n) for n in noisy) + ")$")
EOF
)"
if [[ -n "$NOISY_FILTER" ]]; then
  echo "rerunning noisy kernels (noise > ${NOISE_PCT}%): $NOISY_FILTER" >&2
  "$BUILD_DIR/bench/bm_kernels" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions="$((REPS * 2))" \
    --benchmark_filter="$NOISY_FILTER" \
    --benchmark_format=json > "$RERUN"
else
  : > "$RERUN"
fi

# Fig. 7 strong scaling (async-pass thread sweep on the skewed-degree
# soc-Slashdot0902 surrogate), once per schedule so the degree-aware
# schedule can be compared against the static baseline at every thread
# count.
if [[ "${HSBP_BENCH_SKIP_FIG7:-0}" != "1" ]]; then
  for sched in static degree-sorted; do
    case "$sched" in
      static) fig7_out="$FIG7_STATIC" ;;
      *) fig7_out="$FIG7_DEGREE" ;;
    esac
    "$BUILD_DIR/bench/fig7_strong_scaling" \
      --scale "${HSBP_FIG7_SCALE:-0.005}" \
      --runs "${HSBP_FIG7_RUNS:-2}" \
      --max-threads "${HSBP_FIG7_MAX_THREADS:-8}" \
      --schedule "$sched" \
      --json "$fig7_out" >&2
  done
else
  : > "$FIG7_STATIC"
  : > "$FIG7_DEGREE"
fi

# Out-of-core fit vs in-memory baseline: peak RSS, stage timings, NMI.
# ext_outofcore re-execs itself per fit, so its children's ru_maxrss is
# clean of this harness's footprint by construction.
if [[ "${HSBP_BENCH_SKIP_OOC:-0}" != "1" ]]; then
  "$BUILD_DIR/bench/ext_outofcore" \
    --scale "${HSBP_OOC_SCALE:-0.05}" \
    --seed "${HSBP_OOC_SEED:-3}" \
    --budget-mb "${HSBP_OOC_BUDGET_MB:-1}" \
    --json "$OOC_JSON" >&2
else
  : > "$OOC_JSON"
fi

python3 - "$RAW" "$RERUN" "$OUT" "$FIG7_STATIC" "$FIG7_DEGREE" "$OOC_JSON" <<'EOF'
import json
import subprocess
import sys
import os

raw_path, rerun_path, out_path, fig7_static, fig7_degree, ooc_path = \
    sys.argv[1:7]

# Min-of-N across repetitions per kernel, plus the spread as the noise
# floor: a "speedup" smaller than the noise floor is not a result.
# Kernels that earned a doubled-repetition rerun pool both passes.
runs = {}
for b in json.load(open(raw_path))["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue  # skip _mean/_median/_stddev aggregate rows
    runs.setdefault(b["name"], []).append(b["real_time"])
rerun_names = set()
if os.path.getsize(rerun_path):
    for b in json.load(open(rerun_path))["benchmarks"]:
        if b.get("run_type", "iteration") != "iteration":
            continue
        rerun_names.add(b["name"])
        runs.setdefault(b["name"], []).append(b["real_time"])
after = {}
noise = {}
for name, times in runs.items():
    after[name] = min(times)
    noise[name] = (max(times) - min(times)) / min(times) * 100.0

before = {}
carried = {}  # hand-maintained keys (e.g. "end_to_end") survive rewrites
before_src = os.environ.get("HSBP_BENCH_BEFORE", "")
generated = ("commit", "min_time_s", "repetitions", "baseline", "kernels",
             "fig7", "ooc")
fig7_prev = None
ooc_prev = None
if os.path.exists(out_path):
    previous = json.load(open(out_path))
    carried = {k: v for k, v in previous.items() if k not in generated}
    fig7_prev = previous.get("fig7")
    ooc_prev = previous.get("ooc")
    if not before_src:
        before = {k: v["after_ns"] for k, v in previous["kernels"].items()}
if before_src:
    before = {b["name"]: b["real_time"]
              for b in json.load(open(before_src))["benchmarks"]
              if b.get("run_type", "iteration") == "iteration"}

commit = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                        capture_output=True, text=True).stdout.strip()

kernels = {}
for name, ns in after.items():
    entry = {"after_ns": round(ns, 1), "noise_pct": round(noise[name], 1)}
    if name in rerun_names:
        entry["reruns"] = len(runs[name])
    if name in before:
        entry["before_ns"] = round(before[name], 1)
        entry["speedup"] = round(before[name] / ns, 2)
        # A delta inside the kernel's own noise floor is indistinguishable
        # from measurement jitter; don't let it read as a result.
        if abs(entry["speedup"] - 1.0) * 100.0 <= entry["noise_pct"]:
            entry["inconclusive"] = True
    kernels[name] = entry

fig7 = fig7_prev  # carry the previous sweep on HSBP_BENCH_SKIP_FIG7=1
if os.path.getsize(fig7_static) and os.path.getsize(fig7_degree):
    static = json.load(open(fig7_static))
    degree = json.load(open(fig7_degree))
    fig7 = {
        "dataset": static["dataset"],
        "scale": static["scale"],
        "runs": static["runs"],
        "schedules": {
            static["schedule"]: static["entries"],
            degree["schedule"]: degree["entries"],
        },
    }

ooc = ooc_prev  # carry the previous result on HSBP_BENCH_SKIP_OOC=1
if os.path.getsize(ooc_path):
    ooc = json.load(open(ooc_path))

doc = {
    "commit": commit,
    "min_time_s": float(os.environ.get("HSBP_BENCH_MIN_TIME", "0.2")),
    "repetitions": int(os.environ.get("HSBP_BENCH_REPS", "5")),
    "baseline": before_src or (out_path if before else None),
    "kernels": kernels,
}
if fig7 is not None:
    doc["fig7"] = fig7
if ooc is not None:
    doc["ooc"] = ooc
doc.update(carried)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

width = max(len(n) for n in kernels)
for name, entry in kernels.items():
    line = (f"{name:<{width}}  after={entry['after_ns']:>12.1f} ns"
            f"  noise={entry['noise_pct']:>5.1f}%")
    if "speedup" in entry:
        line += f"  before={entry['before_ns']:>12.1f} ns  ({entry['speedup']}x)"
    if entry.get("inconclusive"):
        line += "  [inconclusive]"
    print(line)
if fig7 is not None and os.path.getsize(fig7_static):
    for sched, entries in fig7["schedules"].items():
        row = "  ".join(f"{e['threads']}t={e['mcmc_s']:.3f}s"
                        for e in entries)
        print(f"fig7[{sched:>13}]  {row}")
if ooc is not None and os.path.getsize(ooc_path):
    print(f"ooc[{ooc['graph']}]  rss {ooc['ooc']['peak_rss_kb']:.0f}/"
          f"{ooc['inmem']['peak_rss_kb']:.0f} KiB "
          f"({ooc['rss_ratio']:.2f}x)  nmi {ooc['ooc']['nmi']:.3f} vs "
          f"inmem {ooc['inmem']['nmi']:.3f}")
print(f"wrote {out_path}")
EOF
