#!/usr/bin/env bash
# Configure, build, and run the full test suite.
# Usage: scripts/run_tests.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure
