#!/usr/bin/env bash
# Reproduces every table/figure of the paper at the chosen scale and
# collects outputs under results/. Mirrors the artifact's scripts/
# directory described in the paper's Appendix B.
#
# Usage: scripts/run_all_experiments.sh [BUILD_DIR] [SCALE] [RUNS]
#   BUILD_DIR  cmake build directory (default: build)
#   SCALE      dataset scale vs the paper, 0 < s <= 1 (default: bench
#              defaults — laptop-friendly; the paper effectively ran 1.0
#              on a 128-core node)
#   RUNS       best-of-K runs per (graph, algorithm) (paper: 5)
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${2:-}"
RUNS="${3:-}"
OUT_DIR="results"
mkdir -p "$OUT_DIR"

FLAGS=()
[[ -n "$SCALE" ]] && FLAGS+=(--scale "$SCALE")
[[ -n "$RUNS" ]] && FLAGS+=(--runs "$RUNS")

BENCHES=(
  table1_synthetic_suite
  table2_realworld_suite
  fig2_phase_breakdown
  fig3_metric_correlation
  fig4a_synthetic_nmi
  fig4b_synthetic_speedup
  fig5_realworld_quality
  fig6_realworld_speedup
  fig7_strong_scaling
  fig8_mcmc_iterations
  ablation_hybrid_fraction
  ablation_influence
  ablation_batch_count
  ablation_threshold
  ablation_selection
)

for bench in "${BENCHES[@]}"; do
  binary="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "skipping $bench (not built)" >&2
    continue
  fi
  echo "== $bench =="
  "$binary" "${FLAGS[@]}" | tee "$OUT_DIR/$bench.txt"
done

echo "micro benches =="
"$BUILD_DIR/bench/bm_kernels" --benchmark_min_time=0.05s \
  | tee "$OUT_DIR/bm_kernels.txt"

echo
echo "all outputs in $OUT_DIR/"
