# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--vertices" "120" "--communities" "4" "--edges" "900")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_algorithms "/root/repo/build/examples/compare_algorithms" "--vertices" "120" "--communities" "4" "--edges" "900" "--runs" "1" "--influence")
set_tests_properties(example_compare_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_detection "/root/repo/build/examples/streaming_detection" "--vertices" "150" "--communities" "4" "--edges" "1200" "--parts" "3")
set_tests_properties(example_streaming_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generate_graphs "/root/repo/build/examples/generate_graphs" "--suite" "synthetic" "--scale" "0.0005" "--only" "S1" "--outdir" "/root/repo/build/examples/smoke")
set_tests_properties(example_generate_graphs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_detect_communities "/root/repo/build/examples/detect_communities" "/root/repo/build/examples/smoke/S1.mtx" "--runs" "1")
set_tests_properties(example_detect_communities PROPERTIES  DEPENDS "example_generate_graphs" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
