# Empty compiler generated dependencies file for generate_graphs.
# This may be replaced when dependencies are built.
