file(REMOVE_RECURSE
  "CMakeFiles/generate_graphs.dir/generate_graphs.cpp.o"
  "CMakeFiles/generate_graphs.dir/generate_graphs.cpp.o.d"
  "generate_graphs"
  "generate_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
