file(REMOVE_RECURSE
  "libhsbp.a"
)
