# Empty dependencies file for hsbp.
# This may be replaced when dependencies are built.
