
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockmodel/blockmodel.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/blockmodel.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/blockmodel.cpp.o.d"
  "/root/repo/src/blockmodel/dense_matrix.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/dense_matrix.cpp.o.d"
  "/root/repo/src/blockmodel/dict_transpose_matrix.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/dict_transpose_matrix.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/dict_transpose_matrix.cpp.o.d"
  "/root/repo/src/blockmodel/mdl.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/mdl.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/mdl.cpp.o.d"
  "/root/repo/src/blockmodel/merge_delta.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/merge_delta.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/merge_delta.cpp.o.d"
  "/root/repo/src/blockmodel/vertex_move_delta.cpp" "src/CMakeFiles/hsbp.dir/blockmodel/vertex_move_delta.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/blockmodel/vertex_move_delta.cpp.o.d"
  "/root/repo/src/ckpt/atomic_file.cpp" "src/CMakeFiles/hsbp.dir/ckpt/atomic_file.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/ckpt/atomic_file.cpp.o.d"
  "/root/repo/src/ckpt/checkpoint.cpp" "src/CMakeFiles/hsbp.dir/ckpt/checkpoint.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/ckpt/checkpoint.cpp.o.d"
  "/root/repo/src/ckpt/fault_injector.cpp" "src/CMakeFiles/hsbp.dir/ckpt/fault_injector.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/ckpt/fault_injector.cpp.o.d"
  "/root/repo/src/ckpt/shutdown.cpp" "src/CMakeFiles/hsbp.dir/ckpt/shutdown.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/ckpt/shutdown.cpp.o.d"
  "/root/repo/src/dist/comm.cpp" "src/CMakeFiles/hsbp.dir/dist/comm.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/dist/comm.cpp.o.d"
  "/root/repo/src/dist/dist_sbp.cpp" "src/CMakeFiles/hsbp.dir/dist/dist_sbp.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/dist/dist_sbp.cpp.o.d"
  "/root/repo/src/dist/partition.cpp" "src/CMakeFiles/hsbp.dir/dist/partition.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/dist/partition.cpp.o.d"
  "/root/repo/src/eval/experiment.cpp" "src/CMakeFiles/hsbp.dir/eval/experiment.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/eval/experiment.cpp.o.d"
  "/root/repo/src/eval/partition_io.cpp" "src/CMakeFiles/hsbp.dir/eval/partition_io.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/eval/partition_io.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/hsbp.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/runner.cpp" "src/CMakeFiles/hsbp.dir/eval/runner.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/eval/runner.cpp.o.d"
  "/root/repo/src/generator/dcsbm.cpp" "src/CMakeFiles/hsbp.dir/generator/dcsbm.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/generator/dcsbm.cpp.o.d"
  "/root/repo/src/generator/power_law.cpp" "src/CMakeFiles/hsbp.dir/generator/power_law.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/generator/power_law.cpp.o.d"
  "/root/repo/src/generator/streaming.cpp" "src/CMakeFiles/hsbp.dir/generator/streaming.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/generator/streaming.cpp.o.d"
  "/root/repo/src/generator/suites.cpp" "src/CMakeFiles/hsbp.dir/generator/suites.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/generator/suites.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/hsbp.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/hsbp.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/degree.cpp" "src/CMakeFiles/hsbp.dir/graph/degree.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/degree.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/hsbp.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io_edgelist.cpp" "src/CMakeFiles/hsbp.dir/graph/io_edgelist.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/io_edgelist.cpp.o.d"
  "/root/repo/src/graph/io_matrix_market.cpp" "src/CMakeFiles/hsbp.dir/graph/io_matrix_market.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/graph/io_matrix_market.cpp.o.d"
  "/root/repo/src/metrics/contingency.cpp" "src/CMakeFiles/hsbp.dir/metrics/contingency.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/metrics/contingency.cpp.o.d"
  "/root/repo/src/metrics/modularity.cpp" "src/CMakeFiles/hsbp.dir/metrics/modularity.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/metrics/modularity.cpp.o.d"
  "/root/repo/src/metrics/nmi.cpp" "src/CMakeFiles/hsbp.dir/metrics/nmi.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/metrics/nmi.cpp.o.d"
  "/root/repo/src/metrics/normalized_mdl.cpp" "src/CMakeFiles/hsbp.dir/metrics/normalized_mdl.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/metrics/normalized_mdl.cpp.o.d"
  "/root/repo/src/metrics/pairwise.cpp" "src/CMakeFiles/hsbp.dir/metrics/pairwise.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/metrics/pairwise.cpp.o.d"
  "/root/repo/src/sample/extrapolate.cpp" "src/CMakeFiles/hsbp.dir/sample/extrapolate.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sample/extrapolate.cpp.o.d"
  "/root/repo/src/sample/sample_sbp.cpp" "src/CMakeFiles/hsbp.dir/sample/sample_sbp.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sample/sample_sbp.cpp.o.d"
  "/root/repo/src/sample/samplers.cpp" "src/CMakeFiles/hsbp.dir/sample/samplers.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sample/samplers.cpp.o.d"
  "/root/repo/src/sbp/async_gibbs.cpp" "src/CMakeFiles/hsbp.dir/sbp/async_gibbs.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/async_gibbs.cpp.o.d"
  "/root/repo/src/sbp/batched_gibbs.cpp" "src/CMakeFiles/hsbp.dir/sbp/batched_gibbs.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/batched_gibbs.cpp.o.d"
  "/root/repo/src/sbp/block_merge.cpp" "src/CMakeFiles/hsbp.dir/sbp/block_merge.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/block_merge.cpp.o.d"
  "/root/repo/src/sbp/golden_search.cpp" "src/CMakeFiles/hsbp.dir/sbp/golden_search.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/golden_search.cpp.o.d"
  "/root/repo/src/sbp/hastings.cpp" "src/CMakeFiles/hsbp.dir/sbp/hastings.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/hastings.cpp.o.d"
  "/root/repo/src/sbp/hybrid.cpp" "src/CMakeFiles/hsbp.dir/sbp/hybrid.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/hybrid.cpp.o.d"
  "/root/repo/src/sbp/influence.cpp" "src/CMakeFiles/hsbp.dir/sbp/influence.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/influence.cpp.o.d"
  "/root/repo/src/sbp/mcmc_common.cpp" "src/CMakeFiles/hsbp.dir/sbp/mcmc_common.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/mcmc_common.cpp.o.d"
  "/root/repo/src/sbp/metropolis_hastings.cpp" "src/CMakeFiles/hsbp.dir/sbp/metropolis_hastings.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/metropolis_hastings.cpp.o.d"
  "/root/repo/src/sbp/proposal.cpp" "src/CMakeFiles/hsbp.dir/sbp/proposal.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/proposal.cpp.o.d"
  "/root/repo/src/sbp/sbp.cpp" "src/CMakeFiles/hsbp.dir/sbp/sbp.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/sbp.cpp.o.d"
  "/root/repo/src/sbp/streaming.cpp" "src/CMakeFiles/hsbp.dir/sbp/streaming.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/streaming.cpp.o.d"
  "/root/repo/src/sbp/vertex_selection.cpp" "src/CMakeFiles/hsbp.dir/sbp/vertex_selection.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/sbp/vertex_selection.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/hsbp.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/args.cpp.o.d"
  "/root/repo/src/util/logger.cpp" "src/CMakeFiles/hsbp.dir/util/logger.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/logger.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/hsbp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/hsbp.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/hsbp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/hsbp.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/hsbp.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
