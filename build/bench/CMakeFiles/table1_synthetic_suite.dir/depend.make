# Empty dependencies file for table1_synthetic_suite.
# This may be replaced when dependencies are built.
