# Empty compiler generated dependencies file for ablation_influence.
# This may be replaced when dependencies are built.
