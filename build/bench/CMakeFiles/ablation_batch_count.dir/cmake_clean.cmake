file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_count.dir/ablation_batch_count.cpp.o"
  "CMakeFiles/ablation_batch_count.dir/ablation_batch_count.cpp.o.d"
  "ablation_batch_count"
  "ablation_batch_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
