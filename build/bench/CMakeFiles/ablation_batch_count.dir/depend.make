# Empty dependencies file for ablation_batch_count.
# This may be replaced when dependencies are built.
