# Empty compiler generated dependencies file for fig4b_synthetic_speedup.
# This may be replaced when dependencies are built.
