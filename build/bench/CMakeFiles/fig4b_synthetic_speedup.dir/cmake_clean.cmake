file(REMOVE_RECURSE
  "CMakeFiles/fig4b_synthetic_speedup.dir/fig4b_synthetic_speedup.cpp.o"
  "CMakeFiles/fig4b_synthetic_speedup.dir/fig4b_synthetic_speedup.cpp.o.d"
  "fig4b_synthetic_speedup"
  "fig4b_synthetic_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_synthetic_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
