file(REMOVE_RECURSE
  "CMakeFiles/ablation_beta.dir/ablation_beta.cpp.o"
  "CMakeFiles/ablation_beta.dir/ablation_beta.cpp.o.d"
  "ablation_beta"
  "ablation_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
