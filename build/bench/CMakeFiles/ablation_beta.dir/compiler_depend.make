# Empty compiler generated dependencies file for ablation_beta.
# This may be replaced when dependencies are built.
