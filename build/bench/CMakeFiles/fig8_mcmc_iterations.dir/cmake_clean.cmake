file(REMOVE_RECURSE
  "CMakeFiles/fig8_mcmc_iterations.dir/fig8_mcmc_iterations.cpp.o"
  "CMakeFiles/fig8_mcmc_iterations.dir/fig8_mcmc_iterations.cpp.o.d"
  "fig8_mcmc_iterations"
  "fig8_mcmc_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mcmc_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
