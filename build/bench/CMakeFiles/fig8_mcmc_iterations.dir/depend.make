# Empty dependencies file for fig8_mcmc_iterations.
# This may be replaced when dependencies are built.
