# Empty dependencies file for fig5_realworld_quality.
# This may be replaced when dependencies are built.
