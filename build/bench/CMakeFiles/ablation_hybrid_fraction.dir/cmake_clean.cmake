file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_fraction.dir/ablation_hybrid_fraction.cpp.o"
  "CMakeFiles/ablation_hybrid_fraction.dir/ablation_hybrid_fraction.cpp.o.d"
  "ablation_hybrid_fraction"
  "ablation_hybrid_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
