# Empty compiler generated dependencies file for ablation_hybrid_fraction.
# This may be replaced when dependencies are built.
