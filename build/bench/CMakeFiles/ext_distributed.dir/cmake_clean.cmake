file(REMOVE_RECURSE
  "CMakeFiles/ext_distributed.dir/ext_distributed.cpp.o"
  "CMakeFiles/ext_distributed.dir/ext_distributed.cpp.o.d"
  "ext_distributed"
  "ext_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
