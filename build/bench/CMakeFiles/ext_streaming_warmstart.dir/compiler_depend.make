# Empty compiler generated dependencies file for ext_streaming_warmstart.
# This may be replaced when dependencies are built.
