file(REMOVE_RECURSE
  "CMakeFiles/ext_streaming_warmstart.dir/ext_streaming_warmstart.cpp.o"
  "CMakeFiles/ext_streaming_warmstart.dir/ext_streaming_warmstart.cpp.o.d"
  "ext_streaming_warmstart"
  "ext_streaming_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_streaming_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
