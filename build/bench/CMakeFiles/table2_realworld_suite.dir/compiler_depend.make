# Empty compiler generated dependencies file for table2_realworld_suite.
# This may be replaced when dependencies are built.
