# Empty dependencies file for fig6_realworld_speedup.
# This may be replaced when dependencies are built.
