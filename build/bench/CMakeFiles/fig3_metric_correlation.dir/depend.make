# Empty dependencies file for fig3_metric_correlation.
# This may be replaced when dependencies are built.
