file(REMOVE_RECURSE
  "CMakeFiles/fig3_metric_correlation.dir/fig3_metric_correlation.cpp.o"
  "CMakeFiles/fig3_metric_correlation.dir/fig3_metric_correlation.cpp.o.d"
  "fig3_metric_correlation"
  "fig3_metric_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_metric_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
