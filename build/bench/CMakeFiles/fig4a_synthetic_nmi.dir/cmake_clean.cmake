file(REMOVE_RECURSE
  "CMakeFiles/fig4a_synthetic_nmi.dir/fig4a_synthetic_nmi.cpp.o"
  "CMakeFiles/fig4a_synthetic_nmi.dir/fig4a_synthetic_nmi.cpp.o.d"
  "fig4a_synthetic_nmi"
  "fig4a_synthetic_nmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_synthetic_nmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
