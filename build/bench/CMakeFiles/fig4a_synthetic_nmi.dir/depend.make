# Empty dependencies file for fig4a_synthetic_nmi.
# This may be replaced when dependencies are built.
