file(REMOVE_RECURSE
  "CMakeFiles/bm_kernels.dir/bm_kernels.cpp.o"
  "CMakeFiles/bm_kernels.dir/bm_kernels.cpp.o.d"
  "bm_kernels"
  "bm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
