# Empty dependencies file for bm_kernels.
# This may be replaced when dependencies are built.
