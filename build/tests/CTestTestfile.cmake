# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_blockmodel[1]_include.cmake")
include("/root/repo/build/tests/test_sbp[1]_include.cmake")
include("/root/repo/build/tests/test_sample[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt[1]_include.cmake")
