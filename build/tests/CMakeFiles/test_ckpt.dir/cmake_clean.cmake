file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt.dir/test_ckpt_atomic.cpp.o"
  "CMakeFiles/test_ckpt.dir/test_ckpt_atomic.cpp.o.d"
  "CMakeFiles/test_ckpt.dir/test_ckpt_format.cpp.o"
  "CMakeFiles/test_ckpt.dir/test_ckpt_format.cpp.o.d"
  "CMakeFiles/test_ckpt.dir/test_ckpt_resume.cpp.o"
  "CMakeFiles/test_ckpt.dir/test_ckpt_resume.cpp.o.d"
  "test_ckpt"
  "test_ckpt.pdb"
  "test_ckpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
