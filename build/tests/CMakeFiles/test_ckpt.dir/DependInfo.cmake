
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ckpt_atomic.cpp" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_atomic.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_atomic.cpp.o.d"
  "/root/repo/tests/test_ckpt_format.cpp" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_format.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_format.cpp.o.d"
  "/root/repo/tests/test_ckpt_resume.cpp" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_resume.cpp.o" "gcc" "tests/CMakeFiles/test_ckpt.dir/test_ckpt_resume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hsbp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
