file(REMOVE_RECURSE
  "CMakeFiles/test_sample.dir/test_sample_pipeline.cpp.o"
  "CMakeFiles/test_sample.dir/test_sample_pipeline.cpp.o.d"
  "CMakeFiles/test_sample.dir/test_sample_samplers.cpp.o"
  "CMakeFiles/test_sample.dir/test_sample_samplers.cpp.o.d"
  "test_sample"
  "test_sample.pdb"
  "test_sample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
