file(REMOVE_RECURSE
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_core.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_core.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_deltas.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_deltas.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_dense.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_dense.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_edge_cases.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_edge_cases.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_matrix.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_matrix.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_mdl.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_mdl.cpp.o.d"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_properties.cpp.o"
  "CMakeFiles/test_blockmodel.dir/test_blockmodel_properties.cpp.o.d"
  "test_blockmodel"
  "test_blockmodel.pdb"
  "test_blockmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
