
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_blockmodel_core.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_core.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_core.cpp.o.d"
  "/root/repo/tests/test_blockmodel_deltas.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_deltas.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_deltas.cpp.o.d"
  "/root/repo/tests/test_blockmodel_dense.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_dense.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_dense.cpp.o.d"
  "/root/repo/tests/test_blockmodel_edge_cases.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_edge_cases.cpp.o.d"
  "/root/repo/tests/test_blockmodel_matrix.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_matrix.cpp.o.d"
  "/root/repo/tests/test_blockmodel_mdl.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_mdl.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_mdl.cpp.o.d"
  "/root/repo/tests/test_blockmodel_properties.cpp" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_properties.cpp.o" "gcc" "tests/CMakeFiles/test_blockmodel.dir/test_blockmodel_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hsbp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
