# Empty compiler generated dependencies file for test_blockmodel.
# This may be replaced when dependencies are built.
