file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/test_graph_components.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_components.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_core.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_core.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_degree.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_degree.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_fuzz_invariants.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_fuzz_invariants.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_io.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_io.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_io_fuzz.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_io_fuzz.cpp.o.d"
  "CMakeFiles/test_graph.dir/test_graph_weighted_io.cpp.o"
  "CMakeFiles/test_graph.dir/test_graph_weighted_io.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
