file(REMOVE_RECURSE
  "CMakeFiles/test_sbp.dir/test_sbp_async_pass.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_async_pass.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_batched.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_batched.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_phases.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_phases.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_proposal.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_proposal.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_proposal_exact.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_proposal_exact.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_run.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_run.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_selection.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_selection.cpp.o.d"
  "CMakeFiles/test_sbp.dir/test_sbp_streaming.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp_streaming.cpp.o.d"
  "test_sbp"
  "test_sbp.pdb"
  "test_sbp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
