# Empty dependencies file for test_sbp.
# This may be replaced when dependencies are built.
