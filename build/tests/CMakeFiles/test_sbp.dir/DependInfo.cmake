
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sbp_async_pass.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_async_pass.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_async_pass.cpp.o.d"
  "/root/repo/tests/test_sbp_batched.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_batched.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_batched.cpp.o.d"
  "/root/repo/tests/test_sbp_phases.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_phases.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_phases.cpp.o.d"
  "/root/repo/tests/test_sbp_proposal.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_proposal.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_proposal.cpp.o.d"
  "/root/repo/tests/test_sbp_proposal_exact.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_proposal_exact.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_proposal_exact.cpp.o.d"
  "/root/repo/tests/test_sbp_run.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_run.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_run.cpp.o.d"
  "/root/repo/tests/test_sbp_selection.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_selection.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_selection.cpp.o.d"
  "/root/repo/tests/test_sbp_streaming.cpp" "tests/CMakeFiles/test_sbp.dir/test_sbp_streaming.cpp.o" "gcc" "tests/CMakeFiles/test_sbp.dir/test_sbp_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hsbp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
