# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_version "/root/repo/build/tools/hsbp" "version")
set_tests_properties(cli_version PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/hsbp" "compare" "--vertices" "120" "--communities" "4" "--edges" "900" "--runs" "1")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sample "/root/repo/build/tools/hsbp" "sample" "--vertices" "150" "--communities" "4" "--edges" "1200" "--sample-frac" "0.4" "--sampler" "degree" "--baseline")
set_tests_properties(cli_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stream "/root/repo/build/tools/hsbp" "stream" "--vertices" "150" "--communities" "4" "--edges" "1200" "--parts" "3")
set_tests_properties(cli_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dist "/root/repo/build/tools/hsbp" "dist" "--vertices" "150" "--communities" "4" "--edges" "1200" "--ranks" "3")
set_tests_properties(cli_dist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_and_detect "/root/repo/build/tools/hsbp" "generate" "--suite" "synthetic" "--scale" "0.0005" "--only" "S2" "--outdir" "/root/repo/build/tools/cli_smoke")
set_tests_properties(cli_generate_and_detect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect "/root/repo/build/tools/hsbp" "detect" "/root/repo/build/tools/cli_smoke/S2.mtx" "--runs" "1")
set_tests_properties(cli_detect PROPERTIES  DEPENDS "cli_generate_and_detect" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build/tools/hsbp" "frobnicate")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect_save_then_score "sh" "-c" "./hsbp detect /root/repo/build/tools/cli_smoke/S2.mtx                 --runs 1 --out /root/repo/build/tools/cli_smoke/p.tsv             && ./hsbp score /root/repo/build/tools/cli_smoke/p.tsv                 /root/repo/build/tools/cli_smoke/p.tsv")
set_tests_properties(cli_detect_save_then_score PROPERTIES  DEPENDS "cli_generate_and_detect" WORKING_DIRECTORY "/root/repo/build/tools" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
