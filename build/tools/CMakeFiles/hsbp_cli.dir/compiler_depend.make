# Empty compiler generated dependencies file for hsbp_cli.
# This may be replaced when dependencies are built.
