file(REMOVE_RECURSE
  "CMakeFiles/hsbp_cli.dir/hsbp_cli.cpp.o"
  "CMakeFiles/hsbp_cli.dir/hsbp_cli.cpp.o.d"
  "hsbp"
  "hsbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsbp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
