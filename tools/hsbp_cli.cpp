/// \file hsbp_cli.cpp
/// \brief The `hsbp` command-line tool: one entry point for the
/// library's workflows.
///
///   hsbp generate  --suite synthetic|realworld|both --scale F --outdir D
///   hsbp detect    <graph-file> [--algorithm sbp|asbp|hsbp|bsbp]
///                  [--weighted] [--runs K] [--out FILE]
///                  [--checkpoint FILE] [--checkpoint-every N]
///                  [--resume FILE]
///   hsbp compare   [<graph-file>] [--runs K] [generator flags]
///   hsbp sample    [<graph-file>] [--sample-frac F]
///                  [--sampler uniform|degree|edge|snowball]
///                  [--finetune-iters N] [--algorithm ...] [--baseline]
///                  [--suite synthetic|realworld --scale F --only ID]
///                  [--checkpoint FILE] [--checkpoint-every N]
///                  [--resume FILE]
///   hsbp stream    [generator flags] [--parts K] [--order edge|snowball]
///   hsbp dist      [generator flags] [--ranks R]
///                  [--partition range|roundrobin|balanced]
///   hsbp score     <truth.tsv> <predicted.tsv>
///   hsbp convert   <graph-file> <out.csr> [--weighted]
///   hsbp fit       <graph-file|file.csr> [--mmap] [--memory-budget-mb N]
///                  [--pieces K] [--skeleton-frac F]
///                  [--sampler uniform|degree|edge|snowball]
///                  [--finetune-iters N] [--algorithm sbp|asbp|hsbp|bsbp]
///                  [--seed S] [--threads T] [--weighted] [--out FILE]
///                  [--json]
///   hsbp serve     <graph-file> [more graphs] (--socket PATH | --port N)
///                  [--algorithm ...] [--weighted] [--seed S] [--threads T]
///                  [--checkpoint DIR] [--resume] [--refine K]
///                  [--max-sessions N] [--idle-timeout-ms MS]
///                  [--frame-timeout-ms MS] [--max-pending N]
///                  [--retry-after-ms MS]
///   hsbp query     (--socket PATH | --port N) [--timeout MS]
///                  [--retries N] [--retry-backoff-ms MS] <verb> [args...]
///   hsbp version
///
/// Checkpointing (`detect`, `sample`): `--checkpoint FILE` snapshots
/// the run to FILE (atomically) every `--checkpoint-every N` outer
/// phases and on SIGINT/SIGTERM, which finish the in-flight phase,
/// checkpoint, and exit with the best-so-far partition. `--resume FILE`
/// continues a saved run; the graph, algorithm, and seed must match the
/// checkpoint exactly, and a resumed run reproduces the uninterrupted
/// one bit-for-bit when `--threads` also matches.
///
/// Exit codes (sysexits.h conventions, all diagnostics on stderr):
///    0  success (for `serve`: includes SIGINT/SIGTERM graceful drain)
///   64  usage error (bad flags, unknown command, bad flag value)
///   65  malformed input data (graph/assignment/checkpoint rejected,
///       or a `query` answered with an ERR reply)
///   69  service unavailable (`serve` cannot bind its socket/port)
///   70  internal error (unexpected exception)
///   74  I/O failure (cannot open/write a file, daemon hung up mid-query)
///   75  run interrupted by SIGINT/SIGTERM but state checkpointed —
///       rerun with --resume to continue
///
/// Malformed *client requests* to a running daemon are protocol-level
/// errors: the daemon replies `ERR ...` on the same connection and
/// keeps serving — they never terminate the `serve` process.
///
/// Each subcommand is a thin shell over the same public API the
/// examples demonstrate; `hsbp <cmd> --help` lists the flags.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "ckpt/config.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "dist/dist_sbp.hpp"
#include "eval/experiment.hpp"
#include "eval/partition_io.hpp"
#include "eval/report.hpp"
#include "generator/suites.hpp"
#include "graph/binary_csr.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "graph/mmap_graph.hpp"
#include "ooc/ooc.hpp"
#include "metrics/metrics.hpp"
#include "metrics/pairwise.hpp"
#include "sample/sample_sbp.hpp"
#include "sbp/streaming.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace {

using hsbp::util::Args;

constexpr const char* kVersion = "1.0.0";

// Exit codes, following sysexits.h (see the file docblock).
constexpr int kExitUsage = 64;
constexpr int kExitData = 65;
constexpr int kExitUnavailable = 69;
constexpr int kExitInternal = 70;
constexpr int kExitIo = 74;
constexpr int kExitInterrupted = 75;

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: hsbp <generate|detect|compare|sample|stream|dist|score|"
      "convert|fit|serve|query|version> "
      "[flags]\n"
      "run `hsbp <command> --help` for the command's flags\n");
  std::exit(code);
}

hsbp::sbp::Variant parse_variant(const std::string& name) {
  if (name == "sbp") return hsbp::sbp::Variant::Metropolis;
  if (name == "asbp") return hsbp::sbp::Variant::AsyncGibbs;
  if (name == "hsbp") return hsbp::sbp::Variant::Hybrid;
  if (name == "bsbp") return hsbp::sbp::Variant::BatchedGibbs;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

hsbp::graph::Graph load_graph(const std::string& path, bool weighted) {
  const auto weights = weighted
                           ? hsbp::graph::WeightHandling::Multiplicity
                           : hsbp::graph::WeightHandling::Ignore;
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".mtx") {
    return hsbp::graph::read_matrix_market_file(path, weights);
  }
  return hsbp::graph::read_edge_list_file(path, weights);
}

hsbp::generator::GeneratedGraph generated_workload(const Args& args) {
  hsbp::generator::DcsbmParams params;
  params.num_vertices =
      static_cast<hsbp::graph::Vertex>(args.get_int("vertices", 600));
  params.num_communities =
      static_cast<std::int32_t>(args.get_int("communities", 8));
  params.num_edges = args.get_int("edges", 6000);
  params.ratio_within_between = args.get_double("ratio", 4.0);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  auto generated = hsbp::generator::generate_dcsbm(params);
  generated.name = "generated";
  return generated;
}

hsbp::sbp::SbpConfig base_config(const Args& args) {
  hsbp::sbp::SbpConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.num_threads = static_cast<int>(args.get_int("threads", 0));
  config.hybrid_fraction = args.get_double("fraction", 0.15);
  config.batch_count = static_cast<int>(args.get_int("batches", 4));
  const std::string schedule = args.get_string("schedule", "static");
  const auto parsed = hsbp::sbp::parse_schedule(schedule);
  if (!parsed) {
    throw std::invalid_argument(
        "--schedule must be static|dynamic|guided|degree-sorted, got '" +
        schedule + "'");
  }
  config.schedule = *parsed;
  return config;
}

/// Builds the checkpoint config from `--checkpoint`, `--checkpoint-every`,
/// and `--resume`; `--resume` alone keeps checkpointing to the same file
/// so a chain of interruptions stays resumable. Installs the SIGINT/
/// SIGTERM handlers whenever checkpointing is on.
hsbp::ckpt::CheckpointConfig checkpoint_config(const Args& args) {
  hsbp::ckpt::CheckpointConfig ck;
  ck.save_path = args.get_string("checkpoint", "");
  ck.resume_path = args.get_string("resume", "");
  if (ck.save_path.empty()) ck.save_path = ck.resume_path;
  ck.every_phases = static_cast<int>(args.get_int("checkpoint-every", 1));
  if (ck.every_phases < 1) {
    throw std::invalid_argument("--checkpoint-every must be >= 1");
  }
  if (ck.enabled()) hsbp::ckpt::install_shutdown_handlers();
  return ck;
}

/// Reports an interrupted-but-checkpointed run and yields exit code 75.
int report_interrupted(const std::string& save_path) {
  std::fprintf(stderr,
               "interrupted: state saved to '%s'; rerun with --resume %s "
               "to continue\n",
               save_path.c_str(), save_path.c_str());
  return kExitInterrupted;
}

int cmd_generate(const Args& args) {
  if (args.has("help")) {
    std::printf(
        "hsbp generate --suite synthetic|realworld|both --scale F "
        "--seed S --outdir DIR [--only ID]\n");
    return 0;
  }
  const std::string suite = args.get_string("suite", "synthetic");
  const double scale = args.get_double("scale", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string outdir = args.get_string("outdir", "generated_graphs");
  const std::string only = args.get_string("only", "");

  std::vector<hsbp::generator::SuiteEntry> entries;
  if (suite == "synthetic" || suite == "both") {
    const auto s = hsbp::generator::synthetic_suite(scale, seed);
    entries.insert(entries.end(), s.begin(), s.end());
  }
  if (suite == "realworld" || suite == "both") {
    const auto s = hsbp::generator::realworld_surrogate_suite(scale, seed);
    entries.insert(entries.end(), s.begin(), s.end());
  }
  if (entries.empty()) {
    throw std::invalid_argument("--suite must be synthetic|realworld|both");
  }

  std::filesystem::create_directories(outdir);
  int written = 0;
  for (const auto& entry : entries) {
    if (!only.empty() && entry.id != only) continue;
    const auto generated = hsbp::generator::generate(entry);
    hsbp::graph::write_matrix_market_file(generated.graph,
                                          outdir + "/" + entry.id + ".mtx");
    std::printf("%s: V=%d E=%lld -> %s/%s.mtx\n", entry.id.c_str(),
                generated.graph.num_vertices(),
                static_cast<long long>(generated.graph.num_edges()),
                outdir.c_str(), entry.id.c_str());
    ++written;
  }
  if (written == 0) throw std::invalid_argument("no suite entry matched");
  return 0;
}

int cmd_detect(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::printf(
        "hsbp detect <graph-file> [--algorithm sbp|asbp|hsbp|bsbp] "
        "[--weighted] [--runs K] [--seed S] [--threads T] [--out FILE]\n"
        "            [--schedule static|dynamic|guided|degree-sorted]\n"
        "            [--checkpoint FILE] [--checkpoint-every N] "
        "[--resume FILE]\n");
    return args.has("help") ? 0 : kExitUsage;
  }
  const auto graph = load_graph(args.positionals().front(),
                                args.get_bool("weighted", false));
  const auto components = hsbp::graph::weakly_connected_components(graph);
  std::printf("V=%d E=%lld components=%d\n", graph.num_vertices(),
              static_cast<long long>(graph.num_edges()), components.count);

  hsbp::sbp::SbpConfig config = base_config(args);
  config.variant = parse_variant(args.get_string("algorithm", "hsbp"));
  const auto ck = checkpoint_config(args);

  hsbp::sbp::SbpResult best;
  int runs = static_cast<int>(args.get_int("runs", 5));
  if (ck.enabled()) {
    // A checkpoint captures exactly one chain, so checkpointed runs are
    // single-run; say so if the user asked for more.
    if (runs > 1) {
      std::fprintf(stderr,
                   "note: --checkpoint/--resume forces --runs 1 (a "
                   "checkpoint holds one chain)\n");
    }
    runs = 1;
    best = hsbp::sbp::run(graph, config, ck);
  } else {
    best = hsbp::eval::best_of(graph, config, runs).best;
  }

  std::printf("%s best-of-%d: %d communities, MDL %.2f (norm %.4f), "
              "modularity %.4f\n",
              hsbp::sbp::variant_name(config.variant), runs,
              best.num_blocks, best.mdl,
              hsbp::metrics::normalized_mdl(best.mdl, graph.num_vertices(),
                                            graph.num_edges()),
              hsbp::metrics::modularity(graph, best.assignment));

  if (args.has("out")) {
    const std::string path = args.get_string("out", "");
    hsbp::eval::save_assignment_file(best.assignment, path);
    std::printf("assignment -> %s\n", path.c_str());
  }
  if (best.interrupted) return report_interrupted(ck.save_path);
  return 0;
}

int cmd_compare(const Args& args) {
  if (args.has("help")) {
    std::printf(
        "hsbp compare [<graph-file>] [--runs K] [--vertices N] "
        "[--communities C] [--edges E] [--ratio R] [--seed S]\n");
    return 0;
  }
  hsbp::generator::GeneratedGraph workload;
  if (!args.positionals().empty()) {
    workload.graph = load_graph(args.positionals().front(),
                                args.get_bool("weighted", false));
    workload.name = args.positionals().front();
  } else {
    workload = generated_workload(args);
  }

  const int runs = static_cast<int>(args.get_int("runs", 3));
  std::vector<hsbp::eval::ExperimentRow> rows;
  for (const auto variant :
       {hsbp::sbp::Variant::Metropolis, hsbp::sbp::Variant::Hybrid,
        hsbp::sbp::Variant::AsyncGibbs, hsbp::sbp::Variant::BatchedGibbs}) {
    rows.push_back(hsbp::eval::run_experiment(workload, variant,
                                              base_config(args), runs));
  }
  hsbp::eval::print_quality_table(rows, std::cout);
  hsbp::eval::print_speedup_table(rows, std::cout);
  if (args.has("csv")) {
    hsbp::eval::write_rows_csv_file(rows, args.get_string("csv", ""));
  }
  return 0;
}

int cmd_sample(const Args& args) {
  if (args.has("help")) {
    std::printf(
        "hsbp sample [<graph-file>] [--sample-frac F] "
        "[--sampler uniform|degree|edge|snowball] [--finetune-iters N] "
        "[--algorithm sbp|asbp|hsbp|bsbp] [--baseline] [--out FILE]\n"
        "            [--suite synthetic|realworld --scale F --only ID | "
        "generator flags]\n"
        "            [--checkpoint FILE] [--checkpoint-every N] "
        "[--resume FILE]\n");
    return 0;
  }

  hsbp::generator::GeneratedGraph workload;
  if (!args.positionals().empty()) {
    workload.graph = load_graph(args.positionals().front(),
                                args.get_bool("weighted", false));
    workload.name = args.positionals().front();
  } else if (args.has("suite")) {
    const std::string suite = args.get_string("suite", "synthetic");
    const double scale = args.get_double("scale", 0.01);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto entries =
        suite == "realworld"
            ? hsbp::generator::realworld_surrogate_suite(scale, seed)
            : hsbp::generator::synthetic_suite(scale, seed);
    const std::string only = args.get_string("only", entries.front().id);
    bool found = false;
    for (const auto& entry : entries) {
      if (entry.id != only) continue;
      workload = hsbp::generator::generate(entry);
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument("no suite entry named '" + only + "'");
    }
  } else {
    workload = generated_workload(args);
  }

  hsbp::sample::SampleConfig config;
  config.base = base_config(args);
  config.base.variant = parse_variant(args.get_string("algorithm", "hsbp"));
  config.sampler =
      hsbp::sample::parse_sampler(args.get_string("sampler", "degree"));
  config.fraction = args.get_double("sample-frac", 0.5);
  config.finetune_max_iterations =
      static_cast<int>(args.get_int("finetune-iters", 20));

  std::printf("%s: V=%d E=%lld — %s pipeline, %s sampler, frac %.2f\n",
              workload.name.c_str(), workload.graph.num_vertices(),
              static_cast<long long>(workload.graph.num_edges()),
              hsbp::sbp::variant_name(config.base.variant),
              hsbp::sample::sampler_name(config.sampler), config.fraction);

  const auto ck = checkpoint_config(args);
  const auto result = hsbp::sample::run(workload.graph, config, ck);

  hsbp::util::Table table({"stage", "seconds", "%"});
  const auto& t = result.timings;
  const double total = t.total_seconds > 0.0 ? t.total_seconds : 1.0;
  const auto stage_row = [&](const char* name, double seconds) {
    table.row().cell(std::string(name)).cell(seconds, 3).cell(
        100.0 * seconds / total, 1);
  };
  stage_row("sample", t.sample_seconds);
  stage_row("partition", t.partition_seconds);
  stage_row("extrapolate", t.extrapolate_seconds);
  stage_row("finetune", t.finetune_seconds);
  stage_row("total", t.total_seconds);
  table.print(std::cout);

  std::size_t covered = 0;
  for (const std::int32_t block : result.assignment) {
    if (block >= 0 && block < result.num_blocks) ++covered;
  }
  std::printf("coverage: %zu/%d vertices assigned "
              "(%lld frontier, %lld isolated-fallback)\n",
              covered, workload.graph.num_vertices(),
              static_cast<long long>(result.frontier_assigned),
              static_cast<long long>(result.isolated_assigned));
  std::printf("sample: %d vertices, %lld edges; fine-tune: %lld passes, "
              "%lld/%lld moves accepted\n",
              result.sample_vertices,
              static_cast<long long>(result.sample_edges),
              static_cast<long long>(result.finetune.iterations),
              static_cast<long long>(result.finetune.accepted),
              static_cast<long long>(result.finetune.proposals));
  std::printf("%d communities, MDL %.2f (norm %.4f), modularity %.4f",
              result.num_blocks, result.mdl,
              hsbp::metrics::normalized_mdl(result.mdl,
                                            workload.graph.num_vertices(),
                                            workload.graph.num_edges()),
              hsbp::metrics::modularity(workload.graph, result.assignment));
  if (!workload.ground_truth.empty()) {
    std::printf(", NMI %.4f",
                hsbp::metrics::nmi(workload.ground_truth,
                                   result.assignment));
  }
  std::printf("\n");

  if (args.get_bool("baseline", false)) {
    const auto full = hsbp::sbp::run(workload.graph, config.base);
    std::printf("baseline %s (full graph): MDL %.2f in %.3fs — pipeline "
                "speedup %.2fx",
                hsbp::sbp::variant_name(config.base.variant), full.mdl,
                full.stats.total_seconds,
                full.stats.total_seconds / total);
    if (!workload.ground_truth.empty()) {
      std::printf(", NMI %.4f",
                  hsbp::metrics::nmi(workload.ground_truth,
                                     full.assignment));
    }
    std::printf("\n");
  }

  if (args.has("out")) {
    const std::string path = args.get_string("out", "");
    hsbp::eval::save_assignment_file(result.assignment, path);
    std::printf("assignment -> %s\n", path.c_str());
  }
  if (result.interrupted) return report_interrupted(ck.save_path);
  return 0;
}

int cmd_stream(const Args& args) {
  if (args.has("help")) {
    std::printf(
        "hsbp stream [--parts K] [--order edge|snowball] [generator "
        "flags] [--algorithm ...]\n");
    return 0;
  }
  const auto generated = generated_workload(args);
  const int parts = static_cast<int>(args.get_int("parts", 4));
  const std::string order_name = args.get_string("order", "edge");
  const auto order = order_name == "snowball"
                         ? hsbp::generator::StreamingOrder::Snowball
                         : hsbp::generator::StreamingOrder::EdgeSampling;
  const auto stream = hsbp::generator::streaming_snapshots(
      generated, parts, order,
      static_cast<std::uint64_t>(args.get_int("seed", 1)) + 1);

  hsbp::sbp::SbpConfig config = base_config(args);
  config.variant = parse_variant(args.get_string("algorithm", "hsbp"));
  const auto result = hsbp::sbp::run_streaming(stream.snapshots, config);

  hsbp::util::Table table({"part", "V", "E", "blocks", "NMI"});
  for (std::size_t i = 0; i < result.snapshots.size(); ++i) {
    const auto arrived =
        static_cast<std::size_t>(stream.snapshots[i].num_vertices());
    const std::vector<std::int32_t> truth(
        stream.ground_truth.begin(),
        stream.ground_truth.begin() + static_cast<std::ptrdiff_t>(arrived));
    table.row()
        .cell(static_cast<std::int64_t>(i + 1))
        .cell(static_cast<std::int64_t>(stream.snapshots[i].num_vertices()))
        .cell(stream.snapshots[i].num_edges())
        .cell(static_cast<std::int64_t>(result.snapshots[i].num_blocks))
        .cell(hsbp::metrics::nmi(truth, result.snapshots[i].assignment), 3);
  }
  table.print(std::cout);
  std::printf("total: %.2fs\n", result.total_seconds);
  return 0;
}

int cmd_score(const Args& args) {
  if (args.has("help") || args.positionals().size() != 2) {
    std::printf(
        "hsbp score <truth.tsv> <predicted.tsv> — NMI/ARI/pairwise-F1 "
        "between two assignment files\n");
    return args.has("help") ? 0 : kExitUsage;
  }
  const auto truth =
      hsbp::eval::load_assignment_file(args.positionals()[0]);
  const auto predicted =
      hsbp::eval::load_assignment_file(args.positionals()[1]);
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("assignments cover different vertex sets (" +
                                std::to_string(truth.size()) + " vs " +
                                std::to_string(predicted.size()) + ")");
  }
  const auto pairwise = hsbp::metrics::pairwise_scores(truth, predicted);
  std::printf("NMI        %.4f\n", hsbp::metrics::nmi(truth, predicted));
  std::printf("ARI        %.4f\n",
              hsbp::metrics::adjusted_rand_index(truth, predicted));
  std::printf("pair-P/R/F %.4f / %.4f / %.4f\n", pairwise.precision,
              pairwise.recall, pairwise.f1);
  return 0;
}

int cmd_dist(const Args& args) {
  if (args.has("help")) {
    std::printf(
        "hsbp dist [--ranks R] [--partition range|roundrobin|balanced] "
        "[generator flags]\n");
    return 0;
  }
  const auto generated = generated_workload(args);
  hsbp::dist::DistributedConfig config;
  config.base = base_config(args);
  config.ranks = static_cast<int>(args.get_int("ranks", 4));
  const std::string strategy = args.get_string("partition", "balanced");
  config.strategy =
      strategy == "range" ? hsbp::dist::PartitionStrategy::Range
      : strategy == "roundrobin"
          ? hsbp::dist::PartitionStrategy::RoundRobin
          : hsbp::dist::PartitionStrategy::DegreeBalanced;

  const auto out = hsbp::dist::run_distributed(generated.graph, config);
  std::printf(
      "D-SBP on %d ranks (%s, imbalance %.2f): %d communities, NMI %.3f\n",
      config.ranks, hsbp::dist::strategy_name(config.strategy),
      out.partition_imbalance, out.result.num_blocks,
      hsbp::metrics::nmi(generated.ground_truth, out.result.assignment));
  std::printf("communication: %.3f MB total (%zu collectives)\n",
              static_cast<double>(out.comm.total_bytes()) / (1024.0 * 1024.0),
              out.comm.collective_count());
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::printf(
        "hsbp serve <graph-file> [more graphs] (--socket PATH | --port N)\n"
        "           [--algorithm sbp|asbp|hsbp|bsbp] [--weighted] "
        "[--seed S] [--threads T]\n"
        "           [--checkpoint DIR] [--resume] [--refine K]\n"
        "           [--max-sessions N] [--idle-timeout-ms MS] "
        "[--frame-timeout-ms MS]\n"
        "           [--max-pending N] [--retry-after-ms MS]\n"
        "Serves partitions over a Unix socket or loopback TCP port "
        "(--port 0 picks an\n"
        "ephemeral port, printed on startup). Each graph is served under "
        "its file stem.\n"
        "SIGINT/SIGTERM drain gracefully: in-flight queries finish, the "
        "running refit\n"
        "publishes, final checkpoints are written, exit 0.\n"
        "Overload limits (see README): connections past --max-sessions "
        "and INGESTs\n"
        "past --max-pending are shed with 'ERR busy retry-after <ms>'; "
        "sessions idle\n"
        "past --idle-timeout-ms or stalled mid-frame past "
        "--frame-timeout-ms are cut.\n");
    return args.has("help") ? 0 : kExitUsage;
  }
  hsbp::serve::ServeOptions options;
  options.socket_path = args.get_string("socket", "");
  options.tcp_port = static_cast<int>(args.get_int("port", -1));
  if (options.socket_path.empty() == (options.tcp_port < 0)) {
    throw std::invalid_argument(
        "serve needs exactly one of --socket PATH or --port N");
  }
  options.refit.base = base_config(args);
  options.refit.base.variant =
      parse_variant(args.get_string("algorithm", "hsbp"));
  options.refit.refine_factor =
      static_cast<int>(args.get_int("refine", 3));
  options.refit.checkpoint_dir = args.get_string("checkpoint", "");
  options.resume = args.get_bool("resume", false);
  if (options.resume && options.refit.checkpoint_dir.empty()) {
    throw std::invalid_argument("--resume requires --checkpoint DIR");
  }
  if (!options.refit.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options.refit.checkpoint_dir);
  }
  options.max_sessions =
      static_cast<int>(args.get_int("max-sessions", options.max_sessions));
  options.idle_timeout_ms = static_cast<int>(
      args.get_int("idle-timeout-ms", options.idle_timeout_ms));
  options.frame_timeout_ms = static_cast<int>(
      args.get_int("frame-timeout-ms", options.frame_timeout_ms));
  options.retry_after_ms = static_cast<int>(
      args.get_int("retry-after-ms", options.retry_after_ms));
  const auto max_pending = args.get_int(
      "max-pending", static_cast<std::int64_t>(options.max_pending_batches));
  if (max_pending < 0) {
    throw std::invalid_argument("--max-pending must be >= 0");
  }
  options.max_pending_batches = static_cast<std::size_t>(max_pending);

  // Testing-only network fault seam: HSBP_SERVE_NET_FAULT arms the
  // frame-I/O injector from the environment so the sh-level tests can
  // drive transient disconnects through the real binary. Directives
  // (comma-separated): drop_read=N, drop_write=N, tear_write=N:BYTES,
  // delay_read=N:MS, chunk_writes=BYTES. Counters are process-wide and
  // 1-based, like the checkpoint injector's.
  static hsbp::ckpt::FaultInjector net_fault;
  if (const char* spec = std::getenv("HSBP_SERVE_NET_FAULT");
      spec != nullptr && *spec != '\0') {
    std::string directives(spec);
    std::size_t start = 0;
    while (start <= directives.size()) {
      std::size_t end = directives.find(',', start);
      if (end == std::string::npos) end = directives.size();
      const std::string directive = directives.substr(start, end - start);
      const auto eq = directive.find('=');
      if (eq != std::string::npos) {
        const std::string key = directive.substr(0, eq);
        const std::string value = directive.substr(eq + 1);
        const auto colon = value.find(':');
        const long first = std::strtol(value.c_str(), nullptr, 10);
        const long second =
            colon == std::string::npos
                ? 0
                : std::strtol(value.c_str() + colon + 1, nullptr, 10);
        if (key == "drop_read") {
          net_fault.net_drop_read(static_cast<int>(first));
        } else if (key == "drop_write") {
          net_fault.net_drop_write(static_cast<int>(first));
        } else if (key == "tear_write") {
          net_fault.net_tear_write(static_cast<int>(first),
                                   static_cast<std::size_t>(second));
        } else if (key == "delay_read") {
          net_fault.net_delay_read(static_cast<int>(first),
                                   static_cast<int>(second));
        } else if (key == "chunk_writes") {
          net_fault.net_chunk_writes(static_cast<std::size_t>(first));
        } else {
          throw std::invalid_argument("HSBP_SERVE_NET_FAULT: unknown '" +
                                      key + "'");
        }
      }
      start = end + 1;
    }
    options.net_fault = &net_fault;
    std::fprintf(stderr, "hsbpd: NETWORK FAULT INJECTION ARMED (%s)\n",
                 spec);
  }

  hsbp::serve::Server server(options);
  const bool weighted = args.get_bool("weighted", false);
  for (const std::string& path : args.positionals()) {
    const std::string name = std::filesystem::path(path).stem().string();
    server.add_graph(name, load_graph(path, weighted));
  }

  // The daemon's graceful drain rides the same SIGINT/SIGTERM flag the
  // engine polls at phase boundaries: one signal stops the accept loop
  // AND early-exits a mid-flight refit at its next phase boundary.
  hsbp::ckpt::install_shutdown_handlers();
  server.start();
  if (!options.socket_path.empty()) {
    std::printf("hsbpd: serving on unix:%s\n", options.socket_path.c_str());
  } else {
    std::printf("hsbpd: serving on tcp:127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);

  server.run();

  const auto stats = server.stats();
  std::printf("hsbpd: drained — %llu sessions, %llu queries (%llu errors), "
              "%llu ingests, %llu refits\n",
              static_cast<unsigned long long>(stats.sessions),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.ingests),
              static_cast<unsigned long long>(stats.refits));
  return 0;
}

int cmd_query(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::printf(
        "hsbp query (--socket PATH | --port N) [--timeout MS] "
        "[--retries N]\n"
        "           [--retry-backoff-ms MS] <verb> [args...]\n"
        "One request against a running daemon; the reply goes to stdout.\n"
        "Exit 0 on an OK reply, %d on an ERR reply.\n"
        "--timeout bounds each attempt; --retries N re-dials and resends "
        "up to N extra\n"
        "times on a hangup, timeout, or 'ERR busy' shed (exponential "
        "backoff + jitter,\n"
        "honoring the server's retry-after hint). Retried INGESTs are "
        "at-least-once.\n"
        "examples:\n"
        "  hsbp query --socket /tmp/hsbpd.sock LIST\n"
        "  hsbp query --socket /tmp/hsbpd.sock MEMBER mygraph 17\n"
        "  hsbp query --port 7471 INGEST mygraph 2 0 5 5 9\n"
        "  hsbp query --socket /tmp/hsbpd.sock --timeout 2000 --retries 3 "
        "HEALTH\n",
        kExitData);
    return args.has("help") ? 0 : kExitUsage;
  }
  const std::string socket_path = args.get_string("socket", "");
  const int port = static_cast<int>(args.get_int("port", -1));
  if (socket_path.empty() == (port < 0)) {
    throw std::invalid_argument(
        "query needs exactly one of --socket PATH or --port N");
  }
  const int retries = static_cast<int>(args.get_int("retries", 0));
  if (retries < 0) throw std::invalid_argument("--retries must be >= 0");
  hsbp::serve::RetryPolicy policy;
  policy.attempts = retries + 1;
  policy.timeout_ms = static_cast<int>(args.get_int("timeout", -1));
  policy.backoff_ms =
      static_cast<int>(args.get_int("retry-backoff-ms", 50));
  std::string payload;
  for (const std::string& word : args.positionals()) {
    if (!payload.empty()) payload += ' ';
    payload += word;
  }
  auto client = socket_path.empty()
                    ? hsbp::serve::Client::connect_tcp(port)
                    : hsbp::serve::Client::connect_unix(socket_path);
  const auto reply = client.request_retry(payload, policy);
  if (!reply.has_value()) {
    throw hsbp::util::IoError(
        retries > 0 ? "daemon hung up before replying (all " +
                          std::to_string(policy.attempts) +
                          " attempts failed)"
                    : "daemon hung up before replying");
  }
  std::printf("%s\n", reply->c_str());
  return hsbp::serve::is_ok(*reply) ? 0 : kExitData;
}

int cmd_convert(const Args& args) {
  if (args.has("help") || args.positionals().size() != 2) {
    std::printf("hsbp convert <graph-file> <out.csr> [--weighted]\n");
    return args.has("help") ? 0 : kExitUsage;
  }
  const std::string& input = args.positionals()[0];
  const std::string& output = args.positionals()[1];
  const auto weights = args.get_bool("weighted", false)
                           ? hsbp::graph::WeightHandling::Multiplicity
                           : hsbp::graph::WeightHandling::Ignore;
  const auto stats = hsbp::graph::convert_text_to_csr(input, output, weights);
  std::printf("V=%d E=%lld self-loops=%lld -> %s (%lld bytes)\n",
              stats.num_vertices, static_cast<long long>(stats.num_edges),
              static_cast<long long>(stats.self_loops), output.c_str(),
              static_cast<long long>(stats.file_bytes));
  return 0;
}

int cmd_fit(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::printf(
        "hsbp fit <graph-file|file.csr> [--mmap] [--memory-budget-mb N] "
        "[--pieces K] [--skeleton-frac F]\n"
        "         [--sampler uniform|degree|edge|snowball] "
        "[--finetune-iters N] [--algorithm sbp|asbp|hsbp|bsbp]\n"
        "         [--seed S] [--threads T] [--weighted] [--out FILE] "
        "[--json]\n");
    return args.has("help") ? 0 : kExitUsage;
  }
  const std::string& path = args.positionals().front();

  hsbp::ooc::OocConfig config;
  config.base = base_config(args);
  config.base.variant = parse_variant(args.get_string("algorithm", "hsbp"));
  config.sampler =
      hsbp::sample::parse_sampler(args.get_string("sampler", "degree"));
  config.skeleton_fraction = args.get_double("skeleton-frac", 0.1);
  config.memory_budget_mb = args.get_int("memory-budget-mb", 0);
  config.pieces = static_cast<int>(args.get_int("pieces", 0));
  config.finetune_max_iterations =
      static_cast<int>(args.get_int("finetune-iters", 10));

  const bool is_csr =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csr") == 0;
  const bool use_mmap = args.get_bool("mmap", false) || is_csr;

  hsbp::ooc::OocResult result;
  hsbp::graph::Vertex num_vertices = 0;
  hsbp::graph::EdgeCount num_edges = 0;
  if (use_mmap) {
    hsbp::graph::MmapGraph mapped(path);
    config.release_cache = [&mapped] { mapped.evict(); };
    num_vertices = mapped.num_vertices();
    num_edges = mapped.num_edges();
    result = hsbp::ooc::fit(mapped.view(), config);
  } else {
    const auto graph = load_graph(path, args.get_bool("weighted", false));
    num_vertices = graph.num_vertices();
    num_edges = graph.num_edges();
    result = hsbp::ooc::fit(graph, config);
  }

  const std::int64_t rss_kb = hsbp::ooc::peak_rss_kb();
  if (args.has("json")) {
    std::printf(
        "{\"vertices\":%d,\"edges\":%lld,\"blocks\":%d,\"mdl\":%.6f,"
        "\"pieces\":%d,\"pieces_refit\":%d,\"skeleton_vertices\":%d,"
        "\"estimated_csr_bytes\":%lld,\"peak_rss_kb\":%lld,"
        "\"timings\":{\"skeleton_s\":%.3f,\"extrapolate_s\":%.3f,"
        "\"pieces_s\":%.3f,\"finetune_s\":%.3f,\"total_s\":%.3f}}\n",
        num_vertices, static_cast<long long>(num_edges), result.num_blocks,
        result.mdl, result.pieces_planned, result.pieces_refit,
        result.skeleton_vertices,
        static_cast<long long>(result.estimated_csr_bytes),
        static_cast<long long>(rss_kb), result.timings.skeleton_seconds,
        result.timings.extrapolate_seconds, result.timings.pieces_seconds,
        result.timings.finetune_seconds, result.timings.total_seconds);
  } else {
    std::printf(
        "%s fit (%s): V=%d E=%lld -> %d communities, MDL %.2f\n"
        "pieces=%d/%d skeleton=%d vertices, peak RSS %lld KiB "
        "(CSR estimate %lld KiB)\n"
        "stages: skeleton %.2fs extrapolate %.2fs pieces %.2fs "
        "finetune %.2fs total %.2fs\n",
        hsbp::sbp::variant_name(config.base.variant),
        use_mmap ? "mmap" : "in-memory", num_vertices,
        static_cast<long long>(num_edges), result.num_blocks, result.mdl,
        result.pieces_refit, result.pieces_planned, result.skeleton_vertices,
        static_cast<long long>(rss_kb),
        static_cast<long long>(result.estimated_csr_bytes / 1024),
        result.timings.skeleton_seconds, result.timings.extrapolate_seconds,
        result.timings.pieces_seconds, result.timings.finetune_seconds,
        result.timings.total_seconds);
  }

  if (args.has("out")) {
    const std::string out_path = args.get_string("out", "");
    hsbp::eval::save_assignment_file(result.assignment, out_path);
    if (!args.has("json")) std::printf("assignment -> %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(kExitUsage);
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "detect") return cmd_detect(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "sample") return cmd_sample(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "dist") return cmd_dist(args);
    if (command == "score") return cmd_score(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "fit") return cmd_fit(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    if (command == "version") {
      std::printf("hsbp %s\n", kVersion);
      return 0;
    }
    if (command == "--help" || command == "help") usage(0);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(kExitUsage);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const hsbp::util::DataError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitData;
  } catch (const hsbp::serve::BindError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUnavailable;
  } catch (const hsbp::util::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIo;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternal;
  }
}
