/// \file block_merge.hpp
/// \brief The block-merge (agglomeration) phase, paper Alg. 1.
///
/// Every block proposes `proposals_per_block` merge partners through the
/// shared proposal distribution (block treated as a super-vertex) and
/// keeps its best ΔMDL. The best merges are then applied greedily in
/// ascending-ΔMDL order — with union-find chasing so chains r→s, s→q
/// resolve — until the block count reaches the target. The proposal
/// loop is embarrassingly parallel (OpenMP), the sort + apply serial,
/// exactly as the paper describes.
#pragma once

#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "graph/view.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

struct MergeOutcome {
  /// New membership with dense labels [0, num_blocks).
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
};

/// Merges blocks of `b` down to (at most) `target_blocks`.
/// \pre 1 <= target_blocks <= b.num_blocks().
MergeOutcome block_merge_phase(const graph::GraphView& graph,
                               const blockmodel::Blockmodel& b,
                               blockmodel::BlockId target_blocks,
                               int proposals_per_block, util::RngPool& rngs);

}  // namespace hsbp::sbp
