#include "sbp/block_merge.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "blockmodel/merge_delta.hpp"
#include "sbp/proposal.hpp"
#include "util/omp_region.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;

namespace {

struct BestMerge {
  double delta_mdl = std::numeric_limits<double>::infinity();
  BlockId partner = -1;
};

/// Path-compressing find over the merge parent forest.
BlockId find_root(std::vector<BlockId>& parent, BlockId x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

MergeOutcome block_merge_phase(const graph::GraphView& graph, const Blockmodel& b,
                               BlockId target_blocks, int proposals_per_block,
                               util::RngPool& rngs) {
  const BlockId num_blocks = b.num_blocks();
  assert(target_blocks >= 1 && target_blocks <= num_blocks);

  MergeOutcome outcome;
  if (target_blocks == num_blocks || num_blocks < 2) {
    outcome.assignment = b.assignment();
    outcome.num_blocks = num_blocks;
    return outcome;
  }

  // Parallel proposal sweep: each block evaluates `proposals_per_block`
  // candidate partners and records its best ΔMDL.
  std::vector<BestMerge> best(static_cast<std::size_t>(num_blocks));
  util::omp_region([&] {
#pragma omp for schedule(static)
    for (BlockId c = 0; c < num_blocks; ++c) {
      util::Rng& rng = rngs.local();
      // Reuse the thread's scratch arena: the neighbor-count buffers
      // are cleared and refilled per block instead of reallocated.
      blockmodel::NeighborBlockCounts& nb =
          blockmodel::thread_move_scratch().nb;
      block_neighbor_counts_into(b, c, nb);
      BestMerge& slot = best[static_cast<std::size_t>(c)];
      for (int attempt = 0; attempt < proposals_per_block; ++attempt) {
        const BlockId partner =
            propose_block(b, nb, c, /*is_merge=*/true, rng);
        if (partner == c) continue;
        const double delta = blockmodel::merge_delta_mdl(
            b, c, partner, graph.num_vertices(), graph.num_edges());
        if (delta < slot.delta_mdl) {
          slot.delta_mdl = delta;
          slot.partner = partner;
        }
      }
    }
  });

  // Sort blocks by their best ΔMDL and apply merges greedily.
  std::vector<BlockId> order(static_cast<std::size_t>(num_blocks));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&best](BlockId a, BlockId c) {
    return best[static_cast<std::size_t>(a)].delta_mdl <
           best[static_cast<std::size_t>(c)].delta_mdl;
  });

  std::vector<BlockId> parent(static_cast<std::size_t>(num_blocks));
  std::iota(parent.begin(), parent.end(), 0);
  BlockId remaining = num_blocks;
  for (const BlockId c : order) {
    if (remaining <= target_blocks) break;
    const BestMerge& merge = best[static_cast<std::size_t>(c)];
    if (merge.partner < 0) continue;  // block had no viable partner
    const BlockId root_from = find_root(parent, c);
    const BlockId root_to = find_root(parent, merge.partner);
    if (root_from == root_to) continue;  // chain already joined them
    parent[static_cast<std::size_t>(root_from)] = root_to;
    --remaining;
  }

  // Densely relabel the surviving roots.
  std::vector<BlockId> dense(static_cast<std::size_t>(num_blocks), -1);
  BlockId next_label = 0;
  for (BlockId c = 0; c < num_blocks; ++c) {
    const BlockId root = find_root(parent, c);
    if (dense[static_cast<std::size_t>(root)] < 0) {
      dense[static_cast<std::size_t>(root)] = next_label++;
    }
  }

  // Flatten root→dense into a per-old-block final label (O(C), serial,
  // path compression mutates `parent`) so the O(V) relabel sweep below
  // is a read-only data-parallel gather.
  std::vector<BlockId> final_label(static_cast<std::size_t>(num_blocks));
  for (BlockId c = 0; c < num_blocks; ++c) {
    final_label[static_cast<std::size_t>(c)] =
        dense[static_cast<std::size_t>(find_root(parent, c))];
  }

  outcome.num_blocks = next_label;
  outcome.assignment.resize(b.assignment().size());
  const auto& old_assignment = b.assignment();
  const auto v_count = static_cast<std::int64_t>(old_assignment.size());
  util::omp_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t v = 0; v < v_count; ++v) {
      outcome.assignment[static_cast<std::size_t>(v)] =
          final_label[static_cast<std::size_t>(
              old_assignment[static_cast<std::size_t>(v)])];
    }
  });
  return outcome;
}

}  // namespace hsbp::sbp
