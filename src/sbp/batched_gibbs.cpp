#include <algorithm>
#include <numeric>

#include "blockmodel/mdl.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/mcmc_phases.hpp"

namespace hsbp::sbp {

using blockmodel::Blockmodel;
using graph::GraphView;
using graph::Vertex;

PhaseOutcome batched_gibbs_phase(const GraphView& graph, Blockmodel& b,
                                 const McmcSettings& settings,
                                 int batch_count, util::RngPool& rngs) {
  PhaseOutcome outcome;
  McmcPhaseStats& stats = outcome.stats;
  stats.initial_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  double current_mdl = stats.initial_mdl;
  ConvergenceWindow window(settings.threshold);

  const auto v_count = static_cast<std::size_t>(graph.num_vertices());
  std::vector<Vertex> vertices(v_count);
  std::iota(vertices.begin(), vertices.end(), 0);
  const int batches = std::max(1, batch_count);

  // One workspace across every batch of every pass: each finish_pass
  // re-synchronizes b with the shared memberships, so the next batch
  // starts from consistent state without a copy-in.
  detail::PassWorkspace ws;
  ws.reset(b);

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    // Shuffle once per pass so batch composition varies — otherwise the
    // same vertex always sees the same staleness position.
    rngs.stream(0).shuffle(vertices);

    // One pass = `batches` parallel sweeps, each over a slice of the
    // permutation, with a blockmodel rebuild between slices. Staleness
    // is bounded by the slice length instead of the whole pass.
    for (int batch = 0; batch < batches; ++batch) {
      const std::size_t begin = v_count * static_cast<std::size_t>(batch) /
                                static_cast<std::size_t>(batches);
      const std::size_t end =
          v_count * static_cast<std::size_t>(batch + 1) /
          static_cast<std::size_t>(batches);
      if (begin == end) continue;

      const std::span<const Vertex> slice(vertices.data() + begin,
                                          end - begin);
      const auto counters =
          detail::async_pass(graph, b, ws, slice, settings.beta, rngs,
                             settings.schedule);
      stats.proposals += counters.proposals;
      stats.accepted += counters.accepted;
      outcome.parallel_updates += static_cast<std::int64_t>(slice.size());

      detail::finish_pass(graph, b, ws, settings.rebuild_threshold);
    }

    const double new_mdl =
        blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
    const double pass_delta = new_mdl - current_mdl;
    current_mdl = new_mdl;
    ++stats.iterations;
    if (window.record(pass_delta, current_mdl)) break;
  }

  stats.final_mdl = current_mdl;
  return outcome;
}

}  // namespace hsbp::sbp
