#include "sbp/golden_search.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hsbp::sbp {

using blockmodel::BlockId;

namespace {

constexpr double kGoldenSection = 0.381966;  // 2 − φ

BlockId shrink(BlockId blocks, double rate) {
  const auto removed = std::max<BlockId>(
      1, static_cast<BlockId>(
             std::llround(static_cast<double>(blocks) * rate)));
  return std::max<BlockId>(1, blocks - removed);
}

}  // namespace

GoldenSearch::GoldenSearch(Snapshot initial, double reduction_rate)
    : reduction_rate_(reduction_rate), upper_(std::move(initial)) {
  assert(reduction_rate_ > 0.0 && reduction_rate_ < 1.0);
  if (upper_.num_blocks <= 1) {
    mid_ = upper_;
    have_mid_ = true;
    done_ = true;
  }
}

GoldenSearch::GoldenSearch(State state, double reduction_rate)
    : reduction_rate_(reduction_rate),
      upper_(std::move(state.upper)),
      mid_(std::move(state.mid)),
      lower_(std::move(state.lower)),
      have_mid_(state.have_mid),
      have_lower_(state.have_lower),
      done_(state.done) {
  assert(reduction_rate_ > 0.0 && reduction_rate_ < 1.0);
}

GoldenSearch::State GoldenSearch::export_state() const {
  return {upper_, mid_, lower_, have_mid_, have_lower_, done_};
}

GoldenSearch::Probe GoldenSearch::next_probe() const {
  assert(!done_);
  if (!have_mid_) {
    return {&upper_, shrink(upper_.num_blocks, reduction_rate_)};
  }
  if (!have_lower_) {
    return {&mid_, shrink(mid_.num_blocks, reduction_rate_)};
  }
  const BlockId gap_hi = upper_.num_blocks - mid_.num_blocks;
  const BlockId gap_lo = mid_.num_blocks - lower_.num_blocks;
  if (gap_hi >= gap_lo) {
    assert(gap_hi >= 2);
    const auto step = std::max<BlockId>(
        1, static_cast<BlockId>(std::llround(
               kGoldenSection * static_cast<double>(gap_hi))));
    const BlockId target = std::clamp<BlockId>(
        mid_.num_blocks + step, mid_.num_blocks + 1, upper_.num_blocks - 1);
    return {&upper_, target};
  }
  assert(gap_lo >= 2);
  const auto step = std::max<BlockId>(
      1, static_cast<BlockId>(std::llround(
             kGoldenSection * static_cast<double>(gap_lo))));
  const BlockId target = std::clamp<BlockId>(
      mid_.num_blocks - step, lower_.num_blocks + 1, mid_.num_blocks - 1);
  return {&mid_, target};
}

void GoldenSearch::record(Snapshot snapshot) {
  assert(!done_);
  if (!have_mid_) {
    mid_ = std::move(snapshot);
    have_mid_ = true;
    if (mid_.num_blocks <= 1) done_ = true;
    return;
  }

  if (!have_lower_) {
    // Descent: keep halving while the MDL improves.
    if (snapshot.mdl < mid_.mdl) {
      upper_ = std::move(mid_);
      mid_ = std::move(snapshot);
      if (mid_.num_blocks <= 1) done_ = true;
    } else {
      lower_ = std::move(snapshot);
      have_lower_ = true;
      update_done();
    }
    return;
  }

  // Bracketed: classify the probe by block count.
  if (snapshot.num_blocks > mid_.num_blocks) {
    if (snapshot.mdl < mid_.mdl) {
      lower_ = std::move(mid_);
      mid_ = std::move(snapshot);
    } else {
      upper_ = std::move(snapshot);
    }
  } else if (snapshot.num_blocks < mid_.num_blocks) {
    if (snapshot.mdl < mid_.mdl) {
      upper_ = std::move(mid_);
      mid_ = std::move(snapshot);
    } else {
      lower_ = std::move(snapshot);
    }
  } else {
    // Merge stalled exactly on mid's block count: close the gap the
    // probe came from (the wider one) so the search still contracts.
    if (upper_.num_blocks - mid_.num_blocks >=
        mid_.num_blocks - lower_.num_blocks) {
      if (snapshot.mdl < mid_.mdl) mid_ = snapshot;
      upper_ = std::move(snapshot);
    } else {
      if (snapshot.mdl < mid_.mdl) mid_ = snapshot;
      lower_ = std::move(snapshot);
    }
  }
  update_done();
}

void GoldenSearch::update_done() {
  if (!have_lower_) return;
  const BlockId gap_hi = upper_.num_blocks - mid_.num_blocks;
  const BlockId gap_lo = mid_.num_blocks - lower_.num_blocks;
  if (gap_hi < 2 && gap_lo < 2) done_ = true;
  // The bracket can only close onto the better of mid/lower/upper; make
  // sure mid holds the best of the three at closure.
  if (done_) {
    if (lower_.mdl < mid_.mdl) mid_ = lower_;
    if (upper_.mdl < mid_.mdl) mid_ = upper_;
  }
}

}  // namespace hsbp::sbp
