/// \file vertex_selection.hpp
/// \brief Strategies for choosing H-SBP's serially-processed vertex set.
///
/// The paper selects the top fraction by total degree, justified by two
/// assumptions (§3.2): high-degree vertices are the most influential,
/// and (via Kao et al. [10]) an edge's community information content is
/// proportional to the product of its endpoint degrees. This module
/// implements the paper's selection plus two alternatives used by the
/// ablation bench to test those assumptions:
///
///   Degree    — paper default: rank by total degree;
///   EdgeInfo  — rank by Σ over incident edges of log(1 + d_v · d_u),
///               a direct reading of the information-content result;
///   Random    — control: a random fraction (same parallel/serial split,
///               no influence targeting).
#pragma once

#include <cstdint>

#include "graph/degree.hpp"
#include "graph/view.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

enum class HybridSelection {
  Degree,    ///< paper §3.2 (default)
  EdgeInfo,  ///< Kao et al. [10] edge information content
  Random,    ///< ablation control
};

const char* selection_name(HybridSelection selection) noexcept;

/// Splits vertices into (serial, async) sets of the same sizes as the
/// paper's split — ceil(fraction·V) serial — under the given strategy.
/// Deterministic in `seed` (used only by Random).
/// \pre 0 <= fraction <= 1.
graph::DegreeSplit select_hybrid_vertices(const graph::GraphView& graph,
                                          double fraction,
                                          HybridSelection selection,
                                          std::uint64_t seed);

}  // namespace hsbp::sbp
