#include "sbp/proposal.hpp"

#include <cassert>

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::Count;
using blockmodel::NeighborBlockCounts;

namespace {

/// Uniform random block, optionally excluding one.
BlockId uniform_block(BlockId num_blocks, BlockId excluded, bool exclude,
                      util::Rng& rng) {
  if (!exclude) {
    return static_cast<BlockId>(
        rng.uniform_int(static_cast<std::uint64_t>(num_blocks)));
  }
  assert(num_blocks >= 2);
  const auto draw = static_cast<BlockId>(
      rng.uniform_int(static_cast<std::uint64_t>(num_blocks - 1)));
  return draw >= excluded ? static_cast<BlockId>(draw + 1) : draw;
}

/// Weighted draw of a neighbor block from the mover's incident edges
/// (step 2). \pre total > 0.
BlockId draw_neighbor_block(const NeighborBlockCounts& nb, BlockId current,
                            Count total, util::Rng& rng) {
  auto draw = static_cast<Count>(
      rng.uniform_int(static_cast<std::uint64_t>(total)));
  for (const auto& [block, count] : nb.out) {
    draw -= count;
    if (draw < 0) return block;
  }
  for (const auto& [block, count] : nb.in) {
    draw -= count;
    if (draw < 0) return block;
  }
  return current;  // remaining mass: self-loops
}

/// Step 4: the block at the other end of a random edge incident on t,
/// i.e. a draw from row t + column t of M. When excluding `current`
/// (merges), its cells are skipped; returns current if nothing remains.
/// The two slice sweeps run over the contiguous FlatSlice entry spans.
BlockId draw_from_block_edges(const Blockmodel& b, BlockId t, BlockId current,
                              bool exclude_current, util::Rng& rng) {
  Count total = b.degree_total(t);
  if (exclude_current) {
    total -= b.matrix().get(t, current) + b.matrix().get(current, t);
  }
  if (total <= 0) return current;
  auto draw = static_cast<Count>(
      rng.uniform_int(static_cast<std::uint64_t>(total)));
  for (const auto& [block, count] : b.matrix().row(t).entries()) {
    if (exclude_current && block == current) continue;
    draw -= count;
    if (draw < 0) return block;
  }
  for (const auto& [block, count] : b.matrix().col(t).entries()) {
    if (exclude_current && block == current) continue;
    draw -= count;
    if (draw < 0) return block;
  }
  return current;  // unreachable unless counts were inconsistent
}

}  // namespace

BlockId propose_block(const Blockmodel& b, const NeighborBlockCounts& nb,
                      BlockId current, bool is_merge, util::Rng& rng) {
  const BlockId num_blocks = b.num_blocks();
  assert(!is_merge || num_blocks >= 2);

  const Count neighbor_total = nb.degree_total();
  if (neighbor_total == 0) {
    return uniform_block(num_blocks, current, is_merge, rng);
  }

  const BlockId t = draw_neighbor_block(nb, current, neighbor_total, rng);

  // Exploration escape: probability C / (d_t + C).
  const double c = static_cast<double>(num_blocks);
  const double escape =
      c / (static_cast<double>(b.degree_total(t)) + c);
  if (rng.uniform() < escape) {
    return uniform_block(num_blocks, current, is_merge, rng);
  }

  const BlockId proposal =
      draw_from_block_edges(b, t, current, is_merge, rng);
  if (is_merge && proposal == current) {
    // Row+column t had no non-self mass: fall back to uniform non-self.
    return uniform_block(num_blocks, current, true, rng);
  }
  return proposal;
}

void block_neighbor_counts_into(const Blockmodel& b, BlockId c,
                                NeighborBlockCounts& nb) {
  nb.out.clear();
  nb.in.clear();
  nb.self_loops = 0;
  for (const auto& [block, count] : b.matrix().row(c).entries()) {
    if (block == c) {
      nb.self_loops += count;
    } else {
      nb.out.emplace_back(block, count);
    }
  }
  for (const auto& [block, count] : b.matrix().col(c).entries()) {
    if (block == c) continue;  // block self-loops counted once above
    nb.in.emplace_back(block, count);
  }
  nb.degree_out = b.degree_out(c);
  nb.degree_in = b.degree_in(c);
}

NeighborBlockCounts block_neighbor_counts(const Blockmodel& b, BlockId c) {
  NeighborBlockCounts nb;
  block_neighbor_counts_into(b, c, nb);
  return nb;
}

}  // namespace hsbp::sbp
