/// \file proposal.hpp
/// \brief The SBP proposal distribution (shared by the MCMC phases and
/// the block-merge phase).
///
/// Reference Graph Challenge scheme, for a mover (vertex or block)
/// currently in block `current` with neighbor-block counts `nb`:
///   1. if the mover has no neighbors, propose a uniform random block;
///   2. otherwise pick a random incident edge; let t be the block of its
///      other endpoint;
///   3. with probability C/(d_t + C), propose a uniform random block
///      (the exploration escape that keeps the chain irreducible);
///   4. otherwise propose the block of a random edge incident on block t
///      (a draw from row t + column t of M).
///
/// For merge proposals (is_merge == true) the current block is excluded
/// everywhere: uniform draws avoid it and the step-4 multinomial zeroes
/// its entries (falling back to a uniform non-self draw if row+column t
/// contains nothing else).
#pragma once

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

/// Draws a proposed destination block. For vertex moves the result may
/// equal `current` (callers treat that as a no-op). \pre b.num_blocks()
/// >= 2 when is_merge.
blockmodel::BlockId propose_block(const blockmodel::Blockmodel& b,
                                  const blockmodel::NeighborBlockCounts& nb,
                                  blockmodel::BlockId current, bool is_merge,
                                  util::Rng& rng);

/// Neighbor-block counts of a *block* treated as a super-vertex: row c
/// of M are its out-edges, column c its in-edges, M[c][c] its
/// self-loops. Used by merge proposals. Writes into `nb`, reusing its
/// buffers (one linear sweep over the contiguous row/column slices).
void block_neighbor_counts_into(const blockmodel::Blockmodel& b,
                                blockmodel::BlockId c,
                                blockmodel::NeighborBlockCounts& nb);

/// By-value wrapper over block_neighbor_counts_into.
blockmodel::NeighborBlockCounts block_neighbor_counts(
    const blockmodel::Blockmodel& b, blockmodel::BlockId c);

}  // namespace hsbp::sbp
