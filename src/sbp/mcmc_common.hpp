/// \file mcmc_common.hpp
/// \brief Machinery shared by the three MCMC phases: the per-vertex
/// propose/evaluate/accept step and the convergence window.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "sbp/hastings.hpp"
#include "sbp/proposal.hpp"
#include "sbp/schedule.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

/// Per-phase knobs resolved by the driver (threshold depends on whether
/// the golden bracket is established).
struct McmcSettings {
  double beta = 3.0;
  double threshold = 1e-4;   ///< t in "ΔMDL < t × MDL"
  int max_iterations = 100;  ///< x in Algs. 2–4
  /// Work distribution of the asynchronous passes (load balance vs.
  /// reproducibility; see schedule.hpp and SbpConfig::schedule).
  PassSchedule schedule = PassSchedule::Static;
  /// Adaptive pass-apply fallback: rebuild the blockmodel instead of
  /// applying move deltas when a pass moved more than this fraction of
  /// the directed edge mass (detail::kDefaultRebuildThreshold).
  double rebuild_threshold = 0.25;
};

/// Outcome of evaluating one vertex.
struct VertexOutcome {
  bool moved = false;                  ///< proposal accepted (and not a no-op)
  blockmodel::BlockId to = 0;          ///< destination (valid if moved)
  double delta_mdl = 0.0;              ///< ΔMDL of the accepted move
};

/// Counters accumulated by each phase and surfaced through SbpStats.
struct McmcPhaseStats {
  std::int64_t iterations = 0;  ///< passes over the vertex set
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
  double initial_mdl = 0.0;
  double final_mdl = 0.0;
};

/// One propose → ΔMDL → Hastings → accept step for vertex v, reading
/// memberships through `view` (see gather_neighbor_blocks_into). Does
/// NOT apply the move; the phase decides how (in-place vs. deferred).
/// All intermediate state lives in `scratch` (per-thread, reused), so
/// the step allocates nothing after warm-up.
///
/// `can_empty_block(from)` guard: moves that would empty their source
/// block are rejected (the block count is owned by the merge phase).
template <typename View>
VertexOutcome evaluate_vertex(const graph::GraphView& graph,
                              const blockmodel::Blockmodel& b,
                              const View& view, graph::Vertex v,
                              std::int32_t source_block_size, double beta,
                              util::Rng& rng,
                              blockmodel::MoveScratch& scratch) {
  VertexOutcome outcome;
  const blockmodel::BlockId from = view(v);
  if (source_block_size <= 1) return outcome;  // would empty the block

  blockmodel::gather_neighbor_blocks_into(graph, view, v, scratch);
  const blockmodel::BlockId to =
      propose_block(b, scratch.nb, from, false, rng);
  if (to == from) return outcome;

  blockmodel::vertex_move_delta_into(b, from, to, scratch.nb, scratch);
  const double correction = hastings_correction(b, from, to, scratch);
  const double acceptance =
      std::exp(-beta * scratch.delta.delta_mdl) * correction;
  if (acceptance >= 1.0 || rng.uniform() < acceptance) {
    outcome.moved = true;
    outcome.to = to;
    outcome.delta_mdl = scratch.delta.delta_mdl;
  }
  return outcome;
}

/// Convenience overload using the calling thread's scratch arena.
template <typename View>
VertexOutcome evaluate_vertex(const graph::GraphView& graph,
                              const blockmodel::Blockmodel& b,
                              const View& view, graph::Vertex v,
                              std::int32_t source_block_size, double beta,
                              util::Rng& rng) {
  return evaluate_vertex(graph, b, view, v, source_block_size, beta, rng,
                         blockmodel::thread_move_scratch());
}

/// The paper's early-stopping rule: stop when the summed |ΔMDL| of the
/// last `window` passes drops below threshold × |MDL|. Fixed-size ring
/// buffer with a running sum — recording a pass is O(1) and the window
/// never allocates (every variant touches it once per pass).
class ConvergenceWindow {
 public:
  explicit ConvergenceWindow(double threshold, std::size_t window = 3)
      : threshold_(threshold), window_(window) {
    assert(window_ >= 1 && window_ <= kMaxWindow);
  }

  /// Records one pass; returns true if the chain has converged.
  bool record(double pass_delta_mdl, double current_mdl) {
    const double value = std::fabs(pass_delta_mdl);
    if (filled_ == window_) {
      sum_ -= history_[head_];
    } else {
      ++filled_;
    }
    history_[head_] = value;
    head_ = (head_ + 1) % window_;
    sum_ += value;
    if (filled_ < window_) return false;
    return sum_ < threshold_ * std::fabs(current_mdl);
  }

 private:
  static constexpr std::size_t kMaxWindow = 8;

  double threshold_;
  std::size_t window_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  double sum_ = 0.0;
  std::array<double, kMaxWindow> history_{};
};

}  // namespace hsbp::sbp
