/// \file mcmc_common.hpp
/// \brief Machinery shared by the three MCMC phases: the per-vertex
/// propose/evaluate/accept step and the convergence window.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/vertex_move_delta.hpp"
#include "sbp/hastings.hpp"
#include "sbp/proposal.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

/// Per-phase knobs resolved by the driver (threshold depends on whether
/// the golden bracket is established).
struct McmcSettings {
  double beta = 3.0;
  double threshold = 1e-4;   ///< t in "ΔMDL < t × MDL"
  int max_iterations = 100;  ///< x in Algs. 2–4
  /// Dynamic OpenMP schedule for the asynchronous passes (load balance
  /// vs. reproducibility; see SbpConfig::dynamic_schedule).
  bool dynamic_schedule = false;
};

/// Outcome of evaluating one vertex.
struct VertexOutcome {
  bool moved = false;                  ///< proposal accepted (and not a no-op)
  blockmodel::BlockId to = 0;          ///< destination (valid if moved)
  double delta_mdl = 0.0;              ///< ΔMDL of the accepted move
};

/// Counters accumulated by each phase and surfaced through SbpStats.
struct McmcPhaseStats {
  std::int64_t iterations = 0;  ///< passes over the vertex set
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
  double initial_mdl = 0.0;
  double final_mdl = 0.0;
};

/// One propose → ΔMDL → Hastings → accept step for vertex v, reading
/// memberships through `view` (see gather_neighbor_blocks_view). Does
/// NOT apply the move; the phase decides how (in-place vs. deferred).
///
/// `can_empty_block(from)` guard: moves that would empty their source
/// block are rejected (the block count is owned by the merge phase).
template <typename View>
VertexOutcome evaluate_vertex(const graph::Graph& graph,
                              const blockmodel::Blockmodel& b,
                              const View& view, graph::Vertex v,
                              std::int32_t source_block_size, double beta,
                              util::Rng& rng) {
  VertexOutcome outcome;
  const blockmodel::BlockId from = view(v);
  if (source_block_size <= 1) return outcome;  // would empty the block

  const auto nb = blockmodel::gather_neighbor_blocks_view(graph, view, v);
  const blockmodel::BlockId to = propose_block(b, nb, from, false, rng);
  if (to == from) return outcome;

  const auto delta = blockmodel::vertex_move_delta(b, from, to, nb);
  const double correction = hastings_correction(b, nb, from, to, delta);
  const double acceptance =
      std::exp(-beta * delta.delta_mdl) * correction;
  if (acceptance >= 1.0 || rng.uniform() < acceptance) {
    outcome.moved = true;
    outcome.to = to;
    outcome.delta_mdl = delta.delta_mdl;
  }
  return outcome;
}

/// The paper's early-stopping rule: stop when the summed |ΔMDL| of the
/// last `window` passes drops below threshold × |MDL|.
class ConvergenceWindow {
 public:
  explicit ConvergenceWindow(double threshold, std::size_t window = 3)
      : threshold_(threshold), window_(window) {}

  /// Records one pass; returns true if the chain has converged.
  bool record(double pass_delta_mdl, double current_mdl) {
    history_.push_back(std::fabs(pass_delta_mdl));
    if (history_.size() > window_) history_.pop_front();
    if (history_.size() < window_) return false;
    double sum = 0.0;
    for (const double d : history_) sum += d;
    return sum < threshold_ * std::fabs(current_mdl);
  }

 private:
  double threshold_;
  std::size_t window_;
  std::deque<double> history_;
};

}  // namespace hsbp::sbp
