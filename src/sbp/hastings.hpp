/// \file hastings.hpp
/// \brief Hastings correction for the asymmetric SBP proposal.
///
/// The proposal of proposal.hpp is not symmetric, so Metropolis-Hastings
/// acceptance needs the ratio p(s→r)/p(r→s). Following the reference
/// implementation, the per-neighbor-block terms are
///
///   p(r→s) ∝ Σ_t k_t · (M_ts + M_st + 1) / (d_t + C)
///   p(s→r) ∝ Σ_t k_t · (M'_tr + M'_rt + 1) / (d'_t + C)
///
/// with k_t the number of edges between the vertex and block t (either
/// direction, self-loops excluded), M' and d' the post-move matrix and
/// block degrees. The common 1/d_v factor cancels in the ratio.
#pragma once

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/vertex_move_delta.hpp"

namespace hsbp::sbp {

/// Returns p_backward / p_forward for the move `from` → `to` described
/// by `nb`/`delta`. Post-move cells are answered by a linear scan of
/// delta.cell_deltas per lookup — use the MoveScratch overload on the
/// hot path. \pre from != to; delta was computed for this move.
double hastings_correction(const blockmodel::Blockmodel& b,
                           const blockmodel::NeighborBlockCounts& nb,
                           blockmodel::BlockId from, blockmodel::BlockId to,
                           const blockmodel::MoveDelta& delta);

/// Same correction, reading the move description (neighbor counts,
/// staged cell values, count accumulators and corner deltas) from the
/// scratch a preceding gather + vertex_move_delta_into filled. This is
/// the batched hot path: per-term operands are staged into the
/// scratch's batch arrays (two matrix probes per term instead of four
/// — hence the non-const scratch; the move description itself is only
/// read) and reduced with util::simd::ratio_pair_sums — bit-identical
/// to the MoveDelta overload above. \pre from != to; scratch holds
/// that move's gather + delta.
double hastings_correction(const blockmodel::Blockmodel& b,
                           blockmodel::BlockId from, blockmodel::BlockId to,
                           blockmodel::MoveScratch& scratch);

}  // namespace hsbp::sbp
