#include "blockmodel/mdl.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/mcmc_phases.hpp"

namespace hsbp::sbp {

using blockmodel::Blockmodel;
using graph::GraphView;
using graph::Vertex;

PhaseOutcome hybrid_phase(const GraphView& graph, Blockmodel& b,
                          const McmcSettings& settings,
                          const graph::DegreeSplit& split,
                          util::RngPool& rngs) {
  PhaseOutcome outcome;
  McmcPhaseStats& stats = outcome.stats;
  stats.initial_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  double current_mdl = stats.initial_mdl;
  ConvergenceWindow window(settings.threshold);
  util::Rng& serial_rng = rngs.stream(0);
  blockmodel::MoveScratch& scratch = blockmodel::thread_move_scratch();

  // One workspace for the whole phase; the serial sweep mirrors its
  // in-place moves into it (sync_move) so the shared memberships stay
  // equal to b without a per-pass copy-in.
  detail::PassWorkspace ws;
  ws.reset(b);

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    // Alg. 4, first half: the influential high-degree vertices get a
    // synchronous Metropolis-Hastings sweep with in-place updates, so
    // they "switch communities first" against fresh state. The flat
    // view reads the in-place-updated assignment directly (no
    // reallocation ever happens) and batch-gathers memberships for
    // exactly these high-degree vertices.
    const blockmodel::FlatMembershipView fresh_view{b.assignment().data()};
    for (const Vertex v : split.high) {
      const auto result =
          evaluate_vertex(graph, b, fresh_view, v,
                          b.block_size(b.block_of(v)), settings.beta,
                          serial_rng, scratch);
      ++stats.proposals;
      if (result.moved) {
        const auto from = b.block_of(v);
        b.move_vertex(graph, v, result.to);
        ws.sync_move(v, from, result.to);
        ++stats.accepted;
      }
    }
    outcome.serial_updates += static_cast<std::int64_t>(split.high.size());

    // Second half: the low-degree majority in one asynchronous pass
    // against the post-sweep blockmodel, applied as move deltas.
    const auto counters =
        detail::async_pass(graph, b, ws, split.low, settings.beta, rngs,
                           settings.schedule);
    stats.proposals += counters.proposals;
    stats.accepted += counters.accepted;
    outcome.parallel_updates += static_cast<std::int64_t>(split.low.size());

    detail::finish_pass(graph, b, ws, settings.rebuild_threshold);
    const double new_mdl =
        blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
    const double pass_delta = new_mdl - current_mdl;
    current_mdl = new_mdl;
    ++stats.iterations;
    if (window.record(pass_delta, current_mdl)) break;
  }

  stats.final_mdl = current_mdl;
  return outcome;
}

}  // namespace hsbp::sbp
