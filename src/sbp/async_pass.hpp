/// \file async_pass.hpp
/// \brief Internal: one asynchronous-Gibbs pass over a vertex set plus
/// the pass-to-pass blockmodel maintenance around it, shared by the
/// A-SBP phase, the parallel half of the H-SBP phase, and B-SBP.
///
/// The pass reads/writes a shared membership vector with relaxed
/// atomics: every vertex is owned by exactly one loop index (so its own
/// cell has a single writer), while neighbor reads may observe a mix of
/// pre-pass and in-pass values — precisely the staleness asynchronous
/// Gibbs tolerates. Block sizes are tracked with a guarded atomic
/// transfer so no block is ever emptied by a vertex move.
///
/// Pass-to-pass maintenance (DESIGN §11): instead of paying O(E) per
/// pass to rebuild the blockmodel from a snapshot, each thread logs its
/// accepted moves. Because each vertex has a single writer and is
/// evaluated at most once per pass, the union of the per-thread logs is
/// exactly the pass diff — so applying the logged moves to the
/// blockmodel through move_vertex (O(degree) each) lands on the same
/// state a full rebuild would, cell for cell. finish_pass() applies the
/// log when the moved degree mass is small (the common late-pass case)
/// and falls back to a sharded full rebuild when a high-acceptance pass
/// moved more than `rebuild_threshold` of the edge mass, where the
/// rebuild's one-touch-per-edge scan is cheaper than ~4 slice updates
/// per moved edge.
#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/schedule.hpp"
#include "util/omp_region.hpp"
#include "util/rng.hpp"

// The hot pass body reads the shared memberships through a plain-load
// FlatMembershipView: for lock-free std::atomic<int32> a relaxed load
// and a plain load are the same instruction, and the hogwild pass
// tolerates any torn interleaving by design (it only needs *some*
// recently-valid label). Under ThreadSanitizer the genuine atomic view
// is kept so the race checker sees the accesses as the relaxed atomics
// they semantically are.
#if defined(__SANITIZE_THREAD__)
#define HSBP_ASYNC_ATOMIC_VIEW 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HSBP_ASYNC_ATOMIC_VIEW 1
#endif
#endif
#ifndef HSBP_ASYNC_ATOMIC_VIEW
#define HSBP_ASYNC_ATOMIC_VIEW 0
#endif

namespace hsbp::sbp::detail {

struct AsyncPassCounters {
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
};

using AtomicAssignment = std::vector<std::atomic<std::int32_t>>;
using AtomicSizes = std::vector<std::atomic<std::int32_t>>;

/// One accepted move: vertex v ended the pass in block `to`.
struct MoveRecord {
  graph::Vertex v;
  std::int32_t to;
};

/// What finish_pass() did with the move log.
struct PassApply {
  std::int64_t moved = 0;         ///< accepted moves in the log union
  std::int64_t moved_degree = 0;  ///< Σ degree(v) over moved vertices
  bool rebuilt = false;           ///< true when it fell back to rebuild()
};

/// Fills `out` from the shared vector (parallel; out is resized).
inline void snapshot_assignment_into(const AtomicAssignment& shared,
                                     std::vector<std::int32_t>& out) {
  out.resize(shared.size());
  const auto count = static_cast<std::int64_t>(shared.size());
  util::omp_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      out[static_cast<std::size_t>(i)] =
          shared[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
  });
}

inline std::vector<std::int32_t> snapshot_assignment(
    const AtomicAssignment& shared) {
  std::vector<std::int32_t> out;
  snapshot_assignment_into(shared, out);
  return out;
}

/// Per-phase workspace for the asynchronous passes: the shared atomic
/// membership vector, the atomic block sizes, the per-thread accepted-
/// move logs, and a snapshot buffer for the rebuild fallback. Allocated
/// once per phase (reset()) and reused across passes — the pass/apply
/// cycle keeps `shared`/`sizes` equal to the blockmodel's state, so no
/// copy-in is needed between passes.
///
/// Invariant between passes (established by reset(), preserved by
/// async_pass() + finish_pass(), and by sync_move() for serial
/// interleavings): shared[v] == b.assignment()[v] for every v, and
/// sizes[r] == b.block_size(r) for every r.
struct PassWorkspace {
  AtomicAssignment shared;
  AtomicSizes sizes;
  std::vector<std::vector<MoveRecord>> logs;
  std::vector<std::int32_t> snapshot;  ///< scratch for the fallback path
  std::vector<graph::Vertex> order;    ///< DegreeSorted reorder buffer
  /// Per-thread proposal/acceptance tallies, summed serially after the
  /// pass (an OpenMP reduction would merge through libgomp internals
  /// ThreadSanitizer cannot see; explicit slots keep the handoff on the
  /// bridged fork/join path and the buffers reusable across passes).
  std::vector<std::int64_t> thread_proposals;
  std::vector<std::int64_t> thread_accepted;

  /// (Re)sizes the buffers and copies in the blockmodel's state. Call
  /// once at phase start (vectors of atomics cannot resize in place, so
  /// per-pass construction would reallocate; this reuses them).
  void reset(const blockmodel::Blockmodel& b) {
    const std::size_t v_count = b.assignment().size();
    if (shared.size() != v_count) shared = AtomicAssignment(v_count);
    const auto blocks = static_cast<std::size_t>(b.num_blocks());
    if (sizes.size() != blocks) sizes = AtomicSizes(blocks);
    logs.resize(static_cast<std::size_t>(omp_get_max_threads()));

    const auto& assignment = b.assignment();
    const auto count = static_cast<std::int64_t>(v_count);
    util::omp_region([&] {
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < count; ++i) {
        shared[static_cast<std::size_t>(i)].store(
            assignment[static_cast<std::size_t>(i)],
            std::memory_order_relaxed);
      }
    });
    for (blockmodel::BlockId r = 0; r < b.num_blocks(); ++r) {
      sizes[static_cast<std::size_t>(r)].store(b.block_size(r),
                                               std::memory_order_relaxed);
    }
  }

  /// Mirrors a serially applied b.move_vertex(v, from → to) into the
  /// workspace, keeping the between-pass invariant when a synchronous
  /// sweep (H-SBP's high-degree half) interleaves with async passes.
  void sync_move(graph::Vertex v, blockmodel::BlockId from,
                 blockmodel::BlockId to) {
    shared[static_cast<std::size_t>(v)].store(to, std::memory_order_relaxed);
    sizes[static_cast<std::size_t>(from)].fetch_sub(1,
                                                    std::memory_order_relaxed);
    sizes[static_cast<std::size_t>(to)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }
};

/// Delta-apply vs rebuild crossover, as a fraction of the directed edge
/// mass 2E: applying a move touches ~4·deg(v) slice cells while a
/// rebuild touches each edge once (plus the merge), so deltas stop
/// winning somewhere below deg mass ≈ E/2. Conservative default;
/// overridable per call (and via McmcSettings::rebuild_threshold).
inline constexpr double kDefaultRebuildThreshold = 0.25;

/// Runs one parallel pass over `vertices`. `b` supplies the (stale)
/// blockmodel for proposal weights and ΔMDL; `ws.shared`/`ws.sizes`
/// carry the evolving memberships, and every accepted move is logged in
/// the executing thread's `ws.logs` entry (cleared here at pass start).
/// `schedule` picks the work distribution (see schedule.hpp): the
/// default Static keeps the vertex→thread→RNG mapping deterministic for
/// a fixed thread count; Dynamic/Guided trade that for load balance on
/// skewed degree distributions (the paper's §5.5 remark), and
/// DegreeSorted deals the heavy vertices round-robin while staying
/// deterministic. The evolving-membership semantics are identical in
/// every mode — only which thread evaluates which vertex (and hence
/// which staleness interleavings occur) changes.
inline AsyncPassCounters async_pass(
    const graph::GraphView& graph, const blockmodel::Blockmodel& b,
    PassWorkspace& ws, std::span<const graph::Vertex> vertices, double beta,
    util::RngPool& rngs, PassSchedule schedule = PassSchedule::Static) {
  AsyncPassCounters counters;
  if (schedule == PassSchedule::DegreeSorted) {
    degree_sorted_order(graph, vertices, ws.order);
    vertices = ws.order;
  }
  const auto count = static_cast<std::int64_t>(vertices.size());

  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  if (ws.logs.size() < threads) ws.logs.resize(threads);
  for (auto& log : ws.logs) log.clear();
  if (ws.thread_proposals.size() < threads) {
    ws.thread_proposals.resize(threads);
    ws.thread_accepted.resize(threads);
  }
  // Zero every slot up front: a smaller-than-max team would otherwise
  // leave stale tallies from an earlier pass in the unclaimed slots.
  std::fill(ws.thread_proposals.begin(), ws.thread_proposals.end(), 0);
  std::fill(ws.thread_accepted.begin(), ws.thread_accepted.end(), 0);
  auto& shared = ws.shared;
  auto& sizes = ws.sizes;

  // The loop body takes the tally counters as parameters: inside the
  // parallel region the names bind to region-local (hence per-thread)
  // accumulators, written out once per thread at pass end. Each thread
  // evaluates through its own MoveScratch arena, so steady-state
  // passes allocate nothing.
#if HSBP_ASYNC_ATOMIC_VIEW
  const auto view = [&shared](graph::Vertex u) {
    return shared[static_cast<std::size_t>(u)].load(std::memory_order_relaxed);
  };
#else
  static_assert(sizeof(std::atomic<std::int32_t>) == sizeof(std::int32_t) &&
                    std::atomic<std::int32_t>::is_always_lock_free,
                "flat view over the shared assignment requires plain-layout "
                "lock-free atomics");
  const blockmodel::FlatMembershipView view{
      reinterpret_cast<const std::int32_t*>(shared.data())};
#endif
  const auto body = [&](std::int64_t i, std::int64_t& proposals_local,
                        std::int64_t& accepted_local) {
    const graph::Vertex v = vertices[static_cast<std::size_t>(i)];
    const std::int32_t from = view(v);
    const std::int32_t source_size =
        sizes[static_cast<std::size_t>(from)].load(std::memory_order_relaxed);
    const VertexOutcome outcome =
        evaluate_vertex(graph, b, view, v, source_size, beta, rngs.local(),
                        blockmodel::thread_move_scratch());
    ++proposals_local;
    if (!outcome.moved) return;
    // Guarded size transfer: never empty a block, even under races.
    auto& from_size = sizes[static_cast<std::size_t>(from)];
    if (from_size.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      from_size.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sizes[static_cast<std::size_t>(outcome.to)].fetch_add(
        1, std::memory_order_relaxed);
    shared[static_cast<std::size_t>(v)].store(outcome.to,
                                              std::memory_order_relaxed);
    // Single writer per vertex + one evaluation per pass: at most one
    // record per vertex, so the log union is exactly the pass diff.
    ws.logs[static_cast<std::size_t>(omp_get_thread_num())].push_back(
        {v, outcome.to});
    ++accepted_local;
  };

  util::omp_region([&] {
    std::int64_t proposals_local = 0;
    std::int64_t accepted_local = 0;
    // Every thread takes the same branch (schedule is uniform across
    // the team), so the team encounters one worksharing construct.
    switch (schedule) {
      case PassSchedule::Dynamic:
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < count; ++i) {
          body(i, proposals_local, accepted_local);
        }
        break;
      case PassSchedule::Guided:
#pragma omp for schedule(guided) nowait
        for (std::int64_t i = 0; i < count; ++i) {
          body(i, proposals_local, accepted_local);
        }
        break;
      case PassSchedule::DegreeSorted:
        // The list is degree-descending; chunk size 1 deals it
        // round-robin so each thread gets an even heavy/light mix.
#pragma omp for schedule(static, 1) nowait
        for (std::int64_t i = 0; i < count; ++i) {
          body(i, proposals_local, accepted_local);
        }
        break;
      case PassSchedule::Static:
#pragma omp for schedule(static) nowait
        for (std::int64_t i = 0; i < count; ++i) {
          body(i, proposals_local, accepted_local);
        }
        break;
    }
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    ws.thread_proposals[tid] = proposals_local;
    ws.thread_accepted[tid] = accepted_local;
  });

  for (std::size_t t = 0; t < threads; ++t) {
    counters.proposals += ws.thread_proposals[t];
    counters.accepted += ws.thread_accepted[t];
  }
  return counters;
}

/// Applies the pass recorded in `ws.logs` to `b`: O(moved-degree) move
/// deltas when the moved degree mass is at most `rebuild_threshold` of
/// the directed edge mass 2E, a full rebuild from a snapshot of
/// `ws.shared` otherwise. Both paths leave b bit-identical to
/// rebuild(snapshot) — the delta path because move_vertex preserves
/// "state == f(assignment)" exactly at every step and the log union is
/// the pass diff; the MDL because the likelihood sums are maintained in
/// order-independent fixed point. Requires the PassWorkspace invariant
/// (shared == b.assignment on entry to the preceding async_pass).
inline PassApply finish_pass(const graph::GraphView& graph,
                             blockmodel::Blockmodel& b, PassWorkspace& ws,
                             double rebuild_threshold =
                                 kDefaultRebuildThreshold) {
  PassApply apply;
  for (const auto& log : ws.logs) {
    apply.moved += static_cast<std::int64_t>(log.size());
    for (const MoveRecord& rec : log) {
      apply.moved_degree += graph.degree(rec.v);
    }
  }
  if (apply.moved == 0) return apply;

  const double edge_mass = 2.0 * static_cast<double>(graph.num_edges());
  if (static_cast<double>(apply.moved_degree) >
      rebuild_threshold * edge_mass) {
    apply.rebuilt = true;
    snapshot_assignment_into(ws.shared, ws.snapshot);
    b.rebuild(graph, ws.snapshot);
    return apply;
  }

  for (const auto& log : ws.logs) {
    for (const MoveRecord& rec : log) {
      b.move_vertex(graph, rec.v, rec.to);
    }
  }
  return apply;
}

}  // namespace hsbp::sbp::detail
