/// \file async_pass.hpp
/// \brief Internal: one asynchronous-Gibbs pass over a vertex set,
/// shared by the A-SBP phase and the parallel half of the H-SBP phase.
///
/// The pass reads/writes a shared membership vector with relaxed
/// atomics: every vertex is owned by exactly one loop index (so its own
/// cell has a single writer), while neighbor reads may observe a mix of
/// pre-pass and in-pass values — precisely the staleness asynchronous
/// Gibbs tolerates. Block sizes are tracked with a guarded atomic
/// transfer so no block is ever emptied by a vertex move.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "sbp/mcmc_common.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp::detail {

struct AsyncPassCounters {
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
};

using AtomicAssignment = std::vector<std::atomic<std::int32_t>>;
using AtomicSizes = std::vector<std::atomic<std::int32_t>>;

inline AtomicAssignment make_atomic_assignment(
    std::span<const std::int32_t> assignment) {
  AtomicAssignment shared(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    shared[i].store(assignment[i], std::memory_order_relaxed);
  }
  return shared;
}

inline AtomicSizes make_atomic_sizes(const blockmodel::Blockmodel& b) {
  AtomicSizes sizes(static_cast<std::size_t>(b.num_blocks()));
  for (blockmodel::BlockId r = 0; r < b.num_blocks(); ++r) {
    sizes[static_cast<std::size_t>(r)].store(b.block_size(r),
                                             std::memory_order_relaxed);
  }
  return sizes;
}

inline std::vector<std::int32_t> snapshot_assignment(
    const AtomicAssignment& shared) {
  std::vector<std::int32_t> out(shared.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    out[i] = shared[i].load(std::memory_order_relaxed);
  }
  return out;
}

/// Runs one parallel pass over `vertices`. `b` supplies the (stale)
/// blockmodel for proposal weights and ΔMDL; `shared`/`sizes` carry the
/// evolving memberships. The default static schedule keeps the
/// vertex→thread→RNG mapping deterministic for a fixed thread count;
/// `dynamic_schedule` trades that for load balance on skewed degree
/// distributions (the paper's §5.5 load-balancing remark).
inline AsyncPassCounters async_pass(const graph::Graph& graph,
                                    const blockmodel::Blockmodel& b,
                                    AtomicAssignment& shared,
                                    AtomicSizes& sizes,
                                    std::span<const graph::Vertex> vertices,
                                    double beta, util::RngPool& rngs,
                                    bool dynamic_schedule = false) {
  AsyncPassCounters counters;
  std::int64_t proposals = 0;
  std::int64_t accepted = 0;
  const auto count = static_cast<std::int64_t>(vertices.size());

  // The loop body takes the reduction counters as parameters: inside
  // the parallel region the names bind to each thread's private copy
  // (a by-reference capture would alias the shared outer variables and
  // race). Each thread evaluates through its own MoveScratch arena, so
  // steady-state passes allocate nothing.
  const auto body = [&](std::int64_t i, std::int64_t& proposals_local,
                        std::int64_t& accepted_local) {
    const graph::Vertex v = vertices[static_cast<std::size_t>(i)];
    const auto view = [&shared](graph::Vertex u) {
      return shared[static_cast<std::size_t>(u)].load(
          std::memory_order_relaxed);
    };
    const std::int32_t from = view(v);
    const std::int32_t source_size =
        sizes[static_cast<std::size_t>(from)].load(std::memory_order_relaxed);
    const VertexOutcome outcome =
        evaluate_vertex(graph, b, view, v, source_size, beta, rngs.local(),
                        blockmodel::thread_move_scratch());
    ++proposals_local;
    if (!outcome.moved) return;
    // Guarded size transfer: never empty a block, even under races.
    auto& from_size = sizes[static_cast<std::size_t>(from)];
    if (from_size.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      from_size.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sizes[static_cast<std::size_t>(outcome.to)].fetch_add(
        1, std::memory_order_relaxed);
    shared[static_cast<std::size_t>(v)].store(outcome.to,
                                              std::memory_order_relaxed);
    ++accepted_local;
  };

  if (dynamic_schedule) {
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : proposals, accepted)
    for (std::int64_t i = 0; i < count; ++i) body(i, proposals, accepted);
  } else {
#pragma omp parallel for schedule(static) reduction(+ : proposals, accepted)
    for (std::int64_t i = 0; i < count; ++i) body(i, proposals, accepted);
  }

  counters.proposals = proposals;
  counters.accepted = accepted;
  return counters;
}

}  // namespace hsbp::sbp::detail
