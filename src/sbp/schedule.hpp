/// \file schedule.hpp
/// \brief Work-distribution policy for the asynchronous MCMC passes
/// (DESIGN §13).
///
/// The async pass's default `schedule(static)` gives every thread one
/// contiguous vertex range — deterministic (fixed vertex→thread→RNG
/// mapping at a fixed thread count) but skew-blind: one hub-heavy chunk
/// serializes the pass (the paper's §5.5 load-balancing remark). The
/// alternatives trade determinism or ordering for balance:
///
///   - Static:       contiguous chunks; deterministic; the default.
///   - Dynamic:      `schedule(dynamic, 64)`; threads steal 64-vertex
///                   chunks; nondeterministic assignment.
///   - Guided:       `schedule(guided)`; geometrically shrinking chunks;
///                   nondeterministic assignment, lower steal overhead
///                   than Dynamic on long loops.
///   - DegreeSorted: vertices re-ordered by descending degree, then
///                   dealt round-robin (`schedule(static, 1)`); the
///                   heavy vertices spread across threads first, so the
///                   mapping is again deterministic at a fixed thread
///                   count — just a different one than Static.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/view.hpp"

namespace hsbp::sbp {

/// OpenMP work distribution of an asynchronous pass over its vertex set.
enum class PassSchedule {
  Static,
  Dynamic,
  Guided,
  DegreeSorted,
};

/// Stable lowercase name ("static", "dynamic", "guided",
/// "degree-sorted") — the CLI/bench spelling.
const char* schedule_name(PassSchedule schedule) noexcept;

/// Inverse of schedule_name; nullopt for unknown spellings.
std::optional<PassSchedule> parse_schedule(std::string_view name) noexcept;

/// Fills `out` with `vertices` re-ordered by descending total degree.
/// Ties keep their input order (stable), so the result — and therefore
/// the DegreeSorted vertex→thread mapping — is deterministic.
void degree_sorted_order(const graph::GraphView& graph,
                         std::span<const graph::Vertex> vertices,
                         std::vector<graph::Vertex>& out);

}  // namespace hsbp::sbp
