#include "sbp/schedule.hpp"

#include <algorithm>

namespace hsbp::sbp {

const char* schedule_name(PassSchedule schedule) noexcept {
  switch (schedule) {
    case PassSchedule::Static:
      return "static";
    case PassSchedule::Dynamic:
      return "dynamic";
    case PassSchedule::Guided:
      return "guided";
    case PassSchedule::DegreeSorted:
      return "degree-sorted";
  }
  return "static";
}

std::optional<PassSchedule> parse_schedule(std::string_view name) noexcept {
  if (name == "static") return PassSchedule::Static;
  if (name == "dynamic") return PassSchedule::Dynamic;
  if (name == "guided") return PassSchedule::Guided;
  if (name == "degree-sorted" || name == "degree_sorted") {
    return PassSchedule::DegreeSorted;
  }
  return std::nullopt;
}

void degree_sorted_order(const graph::GraphView& graph,
                         std::span<const graph::Vertex> vertices,
                         std::vector<graph::Vertex>& out) {
  out.assign(vertices.begin(), vertices.end());
  std::stable_sort(out.begin(), out.end(),
                   [&graph](graph::Vertex a, graph::Vertex b) {
                     return graph.degree(a) > graph.degree(b);
                   });
}

}  // namespace hsbp::sbp
