/// \file golden_search.hpp
/// \brief Golden-section ("fibonacci", per the paper) search over the
/// number of communities.
///
/// SBP cannot split blocks, only merge them, so the search always
/// produces a probe by warm-starting from a snapshot with MORE blocks
/// and merging down. Two regimes:
///
///   Descent (no bracket yet): each probe removes `reduction_rate` of
///   the current best's blocks (paper: communities halved). The descent
///   ends when a probe's MDL is worse than the best seen — that probe
///   becomes the lower end of the bracket.
///
///   Bracketed: three snapshots lower.B < mid.B < upper.B with mid
///   holding the best MDL. Each probe lands at the golden section of
///   the wider interval, warm-started from the snapshot just above it;
///   the bracket contracts classically until no interior points remain.
#pragma once

#include <cstdint>
#include <vector>

#include "blockmodel/blockmodel.hpp"

namespace hsbp::sbp {

/// A saved partition: membership, block count, and achieved MDL.
struct Snapshot {
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
  double mdl = 0.0;
};

class GoldenSearch {
 public:
  /// The complete search state — the three bracket snapshots plus the
  /// regime flags — as captured by (and restored from) checkpoints.
  /// Unset snapshots are represented with num_blocks == 0 and an empty
  /// assignment.
  struct State {
    Snapshot upper;
    Snapshot mid;
    Snapshot lower;
    bool have_mid = false;
    bool have_lower = false;
    bool done = false;
  };

  /// \param initial an evaluated starting partition (normally the
  /// identity partition with its MDL); it seeds the upper bracket end.
  /// \param reduction_rate fraction of blocks removed per descent step.
  GoldenSearch(Snapshot initial, double reduction_rate);

  /// Resumes a search from an exported state (checkpoint restore).
  GoldenSearch(State state, double reduction_rate);

  /// Exports the full search state for checkpointing.
  State export_state() const;

  /// True once the bracket has closed (or the descent bottomed out at
  /// one block); best() is then the answer.
  bool done() const noexcept { return done_; }

  bool bracket_established() const noexcept { return have_lower_; }

  struct Probe {
    const Snapshot* warm_start;         ///< partition to merge down from
    blockmodel::BlockId target_blocks;  ///< block count to merge to
  };

  /// Next probe to evaluate. \pre !done().
  Probe next_probe() const;

  /// Records the evaluated probe and updates the bracket. The snapshot's
  /// num_blocks may differ from the requested target (merges can stall);
  /// the search uses the actual value.
  void record(Snapshot snapshot);

  /// Best snapshot seen. \pre at least one record() call (or the initial
  /// snapshot stands in).
  const Snapshot& best() const noexcept { return mid_; }

 private:
  void update_done();

  double reduction_rate_;
  Snapshot upper_;          // largest B end (starts as the initial partition)
  Snapshot mid_;            // best MDL so far
  Snapshot lower_;          // smallest B end (valid once have_lower_)
  bool have_mid_ = false;
  bool have_lower_ = false;
  bool done_ = false;
};

}  // namespace hsbp::sbp
