#include "sbp/influence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "blockmodel/vertex_move_delta.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Vertex;

namespace {

/// π_i(· | state): softmax over exp(−β ΔMDL(i→c)).
std::vector<double> conditional_distribution(const graph::GraphView& graph,
                                             const Blockmodel& b, Vertex i,
                                             double beta) {
  const BlockId current = b.block_of(i);
  const auto nb = blockmodel::gather_neighbor_blocks(
      graph, b.assignment(), i);
  const auto blocks = static_cast<std::size_t>(b.num_blocks());
  std::vector<double> weights(blocks);
  double max_log = 0.0;  // ΔMDL of staying is 0
  std::vector<double> logs(blocks);
  for (std::size_t c = 0; c < blocks; ++c) {
    if (static_cast<BlockId>(c) == current) {
      logs[c] = 0.0;
    } else {
      const auto delta = blockmodel::vertex_move_delta(
          b, current, static_cast<BlockId>(c), nb);
      logs[c] = -beta * delta.delta_mdl;
    }
    max_log = std::max(max_log, logs[c]);
  }
  double total = 0.0;
  for (std::size_t c = 0; c < blocks; ++c) {
    weights[c] = std::exp(logs[c] - max_log);
    total += weights[c];
  }
  for (double& w : weights) w /= total;
  return weights;
}

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  double sum = 0.0;
  for (std::size_t c = 0; c < p.size(); ++c) sum += std::fabs(p[c] - q[c]);
  return 0.5 * sum;
}

}  // namespace

InfluenceResult total_influence(const graph::GraphView& graph,
                                std::span<const std::int32_t> assignment,
                                BlockId num_blocks, double beta,
                                Vertex max_vertices) {
  const Vertex v_count = graph.num_vertices();
  if (v_count > max_vertices) {
    throw std::invalid_argument(
        "total_influence: graph too large for the O(V^2 C^3) computation "
        "(the intractability the paper describes); raise max_vertices "
        "explicitly to force it");
  }
  const Blockmodel base =
      Blockmodel::from_assignment(graph, assignment, num_blocks);
  const auto blocks = static_cast<std::size_t>(num_blocks);
  const auto n = static_cast<std::size_t>(v_count);

  InfluenceResult result;
  result.influence_of.assign(n, 0.0);
  // alpha_received[i] accumulates Σ_j α_ij for the max_i in α.
  std::vector<double> alpha_received(n, 0.0);

  for (Vertex j = 0; j < v_count; ++j) {
    // Conditionals of every i under each single-site state X^{j→a}.
    // distributions[a][i] is π_i(· | X^{j→a}).
    std::vector<std::vector<std::vector<double>>> distributions(blocks);
    for (std::size_t a = 0; a < blocks; ++a) {
      Blockmodel modified = base;
      modified.move_vertex(graph, j, static_cast<BlockId>(a));
      distributions[a].resize(n);
      for (Vertex i = 0; i < v_count; ++i) {
        if (i == j) continue;
        distributions[a][static_cast<std::size_t>(i)] =
            conditional_distribution(graph, modified, i, beta);
      }
    }
    // α_ij = max over state pairs (a, b) of TV(π_i | a, π_i | b).
    for (Vertex i = 0; i < v_count; ++i) {
      if (i == j) continue;
      double alpha_ij = 0.0;
      for (std::size_t a = 0; a < blocks; ++a) {
        for (std::size_t b = a + 1; b < blocks; ++b) {
          alpha_ij = std::max(
              alpha_ij,
              total_variation(distributions[a][static_cast<std::size_t>(i)],
                              distributions[b][static_cast<std::size_t>(i)]));
        }
      }
      alpha_received[static_cast<std::size_t>(i)] += alpha_ij;
      result.influence_of[static_cast<std::size_t>(j)] += alpha_ij;
    }
  }

  result.alpha = alpha_received.empty()
                     ? 0.0
                     : *std::max_element(alpha_received.begin(),
                                         alpha_received.end());
  return result;
}

}  // namespace hsbp::sbp
