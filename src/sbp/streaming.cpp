#include "sbp/streaming.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/timer.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using graph::Graph;
using graph::Vertex;

std::vector<std::int32_t> extend_assignment(
    const Graph& graph, const std::vector<std::int32_t>& assignment,
    BlockId& num_blocks) {
  const auto v_count = static_cast<std::size_t>(graph.num_vertices());
  if (assignment.size() > v_count) {
    throw std::invalid_argument(
        "extend_assignment: snapshot has fewer vertices than the previous "
        "partition");
  }
  std::vector<std::int32_t> extended(v_count, -1);
  std::copy(assignment.begin(), assignment.end(), extended.begin());

  // New vertices in id order: adopt the most common labeled neighbor
  // block. Earlier-extended new vertices count as labeled, so chains of
  // new vertices attach to the existing structure where possible.
  for (std::size_t v = assignment.size(); v < v_count; ++v) {
    std::unordered_map<std::int32_t, int> votes;
    const auto vertex = static_cast<Vertex>(v);
    const auto tally = [&](Vertex u) {
      if (static_cast<std::size_t>(u) == v) return;
      const std::int32_t label = extended[static_cast<std::size_t>(u)];
      if (label >= 0) ++votes[label];
    };
    for (const Vertex u : graph.out_neighbors(vertex)) tally(u);
    for (const Vertex u : graph.in_neighbors(vertex)) tally(u);

    if (votes.empty()) {
      extended[v] = num_blocks++;
      continue;
    }
    std::int32_t best_label = -1;
    int best_votes = 0;
    for (const auto& [label, count] : votes) {
      if (count > best_votes ||
          (count == best_votes && label < best_label)) {
        best_label = label;
        best_votes = count;
      }
    }
    extended[v] = best_label;
  }
  return extended;
}

std::vector<std::int32_t> refine_assignment(
    std::span<const std::int32_t> assignment, BlockId& num_blocks,
    int factor, std::uint64_t seed) {
  if (factor < 1) {
    throw std::invalid_argument("refine_assignment: factor >= 1");
  }
  util::Rng rng(seed);
  std::vector<std::int32_t> refined(assignment.size());
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    const auto sub = static_cast<std::int32_t>(
        rng.uniform_int(static_cast<std::uint64_t>(factor)));
    refined[v] = assignment[v] * factor + sub;
  }
  // Compact to the occupied labels.
  std::unordered_map<std::int32_t, std::int32_t> remap;
  for (auto& label : refined) {
    const auto [it, inserted] =
        remap.try_emplace(label, static_cast<std::int32_t>(remap.size()));
    label = it->second;
  }
  num_blocks = static_cast<BlockId>(remap.size());
  return refined;
}

StreamingResult run_streaming(const std::vector<Graph>& snapshots,
                              const SbpConfig& config, int refine_factor) {
  if (snapshots.empty()) {
    throw std::invalid_argument("run_streaming: no snapshots");
  }
  if (refine_factor < 1) {
    throw std::invalid_argument("run_streaming: refine_factor >= 1");
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (snapshots[i].num_vertices() < snapshots[i - 1].num_vertices()) {
      throw std::invalid_argument(
          "run_streaming: snapshots must be cumulative (vertex count "
          "shrank)");
    }
  }

  util::Timer total;
  StreamingResult result;
  result.snapshots.reserve(snapshots.size());

  for (std::size_t part = 0; part < snapshots.size(); ++part) {
    const Graph& graph = snapshots[part];
    if (graph.num_edges() == 0) {
      // Degenerate early snapshot (no edges yet): the only defensible
      // partition is one structure-less block.
      SbpResult trivial;
      trivial.assignment.assign(
          static_cast<std::size_t>(graph.num_vertices()), 0);
      trivial.num_blocks = graph.num_vertices() > 0 ? 1 : 0;
      result.snapshots.push_back(std::move(trivial));
      continue;
    }
    // Merges only coarsen, so a warm start can refine downward from its
    // block count but never split upward. A near-trivial previous
    // partition (<= 2 blocks) therefore pins the search; re-run cold in
    // that case.
    if (part == 0 || result.snapshots.back().num_blocks <= 2) {
      result.snapshots.push_back(run(graph, config));
      continue;
    }
    const SbpResult& previous = result.snapshots.back();
    BlockId num_blocks = previous.num_blocks;
    const auto extended =
        extend_assignment(graph, previous.assignment, num_blocks);
    const auto warm = refine_assignment(extended, num_blocks, refine_factor,
                                        config.seed + part);
    result.snapshots.push_back(run_warm(graph, config, warm, num_blocks));
  }

  result.total_seconds = total.elapsed();
  return result;
}

}  // namespace hsbp::sbp
