/// \file sbp.hpp
/// \brief Public entry point: stochastic block partitioning and its two
/// parallel MCMC variants from the paper.
///
///   Variant::Metropolis  — baseline SBP (paper Alg. 2): serial
///                          Metropolis-Hastings MCMC phase.
///   Variant::AsyncGibbs  — A-SBP (paper Alg. 3): one parallel pass per
///                          iteration against a stale blockmodel,
///                          parallel rebuild at pass end.
///   Variant::Hybrid      — H-SBP (paper Alg. 4): high-degree vertices
///                          serial-first, the rest asynchronous.
///
/// Typical use:
/// \code
///   hsbp::sbp::SbpConfig config;
///   config.variant = hsbp::sbp::Variant::Hybrid;
///   config.seed = 42;
///   const auto result = hsbp::sbp::run(graph, config);
///   // result.assignment[v] is the community of vertex v
/// \endcode
#pragma once

#include <cstdint>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "ckpt/config.hpp"
#include "graph/graph.hpp"
#include "sbp/schedule.hpp"
#include "sbp/vertex_selection.hpp"

namespace hsbp::sbp {

enum class Variant {
  Metropolis,    ///< baseline SBP
  AsyncGibbs,    ///< A-SBP
  Hybrid,        ///< H-SBP
  BatchedGibbs,  ///< B-SBP — the batched A-SBP the paper's conclusion
                 ///< proposes: rebuild the blockmodel after every 1/K of
                 ///< a pass, bounding staleness without a serial pass
};

/// Human-readable name ("SBP", "A-SBP", "H-SBP", "B-SBP") as used in
/// the paper (B-SBP being the batched variant its conclusion proposes).
const char* variant_name(Variant variant) noexcept;

struct SbpConfig {
  Variant variant = Variant::Metropolis;

  /// Fraction of blocks removed per block-merge phase before the golden
  /// bracket is established (paper: communities halved → 0.5).
  double block_reduction_rate = 0.5;
  /// Merge proposals evaluated per block (Alg. 1's x).
  int merge_proposals_per_block = 10;

  /// Maximum MCMC passes per phase (Algs. 2–4's x).
  int max_mcmc_iterations = 100;
  /// Convergence thresholds t: the pass loop stops when the summed
  /// |ΔMDL| of the last 3 passes < t·|MDL|. The looser threshold applies
  /// before the golden-section bracket is established, the tighter one
  /// after (reference SBP behaviour).
  double mcmc_threshold_pre_bracket = 5e-4;
  double mcmc_threshold_post_bracket = 1e-4;

  /// Inverse temperature β in the acceptance min(1, e^{−βΔS}·H).
  double beta = 3.0;

  /// H-SBP: fraction of highest-degree vertices processed serially
  /// (paper uses 15 %).
  double hybrid_fraction = 0.15;

  /// H-SBP: how the serial vertex set is chosen (paper: Degree; the
  /// alternatives back the ablation of §3.2's influence assumptions).
  HybridSelection hybrid_selection = HybridSelection::Degree;

  /// B-SBP: batches per pass (1 degenerates to A-SBP). Each batch is
  /// one parallel sweep followed by a blockmodel rebuild, so proposals
  /// are at most 1/batch_count of a pass stale.
  int batch_count = 4;

  /// Work distribution of the asynchronous passes (schedule.hpp).
  /// Dynamic/Guided improve load balance on skewed degree distributions
  /// (the paper's §5.5 observation) at the cost of run-to-run
  /// reproducibility; DegreeSorted balances hubs across threads while
  /// staying deterministic at a fixed thread count.
  PassSchedule schedule = PassSchedule::Static;

  std::uint64_t seed = 0;

  /// OpenMP threads for the parallel regions; 0 keeps the runtime
  /// default (OMP_NUM_THREADS).
  int num_threads = 0;

  /// Safety cap on outer (merge + MCMC) iterations.
  int max_outer_iterations = 120;
};

/// Counters and timings gathered during a run; the source of every
/// speedup/iteration figure in the bench harness.
struct SbpStats {
  double block_merge_seconds = 0.0;  ///< all block-merge phases
  double mcmc_seconds = 0.0;         ///< all MCMC phases
  double total_seconds = 0.0;        ///< whole run
  std::int64_t outer_iterations = 0; ///< merge+MCMC rounds
  std::int64_t mcmc_iterations = 0;  ///< total MCMC passes over vertices
  std::int64_t proposals = 0;        ///< vertex proposals evaluated
  std::int64_t accepted_moves = 0;   ///< proposals accepted
  /// Vertex updates executed inside OpenMP-parallel loops vs. serially —
  /// the Amdahl accounting reported by EXPERIMENTS.md.
  std::int64_t parallel_updates = 0;
  std::int64_t serial_updates = 0;
};

struct SbpResult {
  std::vector<std::int32_t> assignment;  ///< community of each vertex
  blockmodel::BlockId num_blocks = 0;    ///< communities found
  double mdl = 0.0;                      ///< description length achieved
  SbpStats stats;
  /// True when a graceful shutdown (SIGINT/SIGTERM) cut the search
  /// short: `assignment`/`mdl` are the best-so-far partition and, if a
  /// checkpoint path was configured, a resumable snapshot was written.
  bool interrupted = false;
};

/// Runs the configured SBP variant to completion (golden-section search
/// over the number of communities until the bracket closes).
/// \throws std::invalid_argument on an empty graph or bad config values.
SbpResult run(const graph::Graph& graph, const SbpConfig& config);

/// Same, with durability: writes a versioned CRC-checksummed snapshot
/// of the full outer-loop state (golden bracket, RNG streams, counters)
/// to `checkpoint.save_path` every `checkpoint.every_phases` phases and
/// on graceful shutdown, and/or resumes from `checkpoint.resume_path`.
/// A resumed seeded run continues the exact chain: killed-and-resumed
/// equals uninterrupted, assignment and MDL alike (given the same
/// thread budget).
/// \throws util::IoError on checkpoint write/read failure and
/// util::DataError on a corrupt, truncated, version-mismatched, or
/// wrong-graph/wrong-config snapshot.
SbpResult run(const graph::Graph& graph, const SbpConfig& config,
              const ckpt::CheckpointConfig& checkpoint);

}  // namespace hsbp::sbp
