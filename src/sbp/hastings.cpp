#include "sbp/hastings.hpp"

#include <cassert>
#include <cstddef>

#include "util/simd.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::Count;
using blockmodel::FlatSlice;
using blockmodel::MoveDelta;
using blockmodel::MoveScratch;
using blockmodel::NeighborBlockCounts;

namespace {

/// Shared accumulation over the neighbor blocks; `post_value(r, c)` must
/// return the post-move value of cell (r, c). Accumulates in the
/// canonical strided-4 order (util/simd.hpp) so this path, the batched
/// scratch path, and the reference kernels are bit-identical given
/// equal inputs.
template <typename PostValue>
double correction(const Blockmodel& b, const NeighborBlockCounts& nb,
                  BlockId from, BlockId to, const PostValue& post_value) {
  assert(from != to);
  const double c = static_cast<double>(b.num_blocks());
  const Count mover_degree = nb.degree_total();

  double fwd_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  double bwd_lanes[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t idx = 0;

  const auto accumulate = [&](BlockId t, Count k) {
    const double kd = static_cast<double>(k);

    // Forward: pre-move matrix and degrees.
    const double fwd_num = static_cast<double>(b.matrix().get(t, to) +
                                               b.matrix().get(to, t)) +
                           1.0;
    const double fwd_den = static_cast<double>(b.degree_total(t)) + c;
    fwd_lanes[idx & 3] += kd * fwd_num / fwd_den;

    // Backward: post-move matrix and degrees (only from/to degrees move).
    const double bwd_num =
        static_cast<double>(post_value(t, from) + post_value(from, t)) + 1.0;
    Count d_t = b.degree_total(t);
    if (t == from) d_t -= mover_degree;
    if (t == to) d_t += mover_degree;
    const double bwd_den = static_cast<double>(d_t) + c;
    bwd_lanes[idx & 3] += kd * bwd_num / bwd_den;
    ++idx;
  };

  for (const auto& [t, k] : nb.out) accumulate(t, k);
  for (const auto& [t, k] : nb.in) accumulate(t, k);

  const double forward =
      (fwd_lanes[0] + fwd_lanes[1]) + (fwd_lanes[2] + fwd_lanes[3]);
  const double backward =
      (bwd_lanes[0] + bwd_lanes[1]) + (bwd_lanes[2] + bwd_lanes[3]);
  if (forward <= 0.0) return 1.0;  // isolated vertex: symmetric proposal
  return backward / forward;
}

}  // namespace

double hastings_correction(const Blockmodel& b, const NeighborBlockCounts& nb,
                           BlockId from, BlockId to, const MoveDelta& delta) {
  return correction(b, nb, from, to, [&](BlockId r, BlockId c) {
    return delta.new_value(b, r, c);
  });
}

double hastings_correction(const Blockmodel& b, BlockId from, BlockId to,
                           MoveScratch& scratch) {
  assert(from != to);
  const NeighborBlockCounts& nb = scratch.nb;
  const std::size_t n_out = nb.out.size();
  const std::size_t n = n_out + nb.in.size();
  if (n == 0) return 1.0;  // no neighbor terms: forward sum is 0

  // Stage the per-term operands, then reduce both ratio sums with the
  // vector kernel — the division chain is the expensive part of this
  // correction, and ratio_pair_sums turns it into packed divides.
  //
  // Operand staging leans on the move description the preceding
  // vertex_move_delta_into left in the scratch: a non-corner out term
  // t owns cells (from,t) and (to,t) at a deterministic position in
  // the cell list (two cells per preceding non-corner term, in list
  // order), so M(to,t) and post-move M(from,t) are the staged
  // old/new values there; post-move M(t,from) is one probe minus the
  // gather's in_count(t). Symmetrically for in terms. That leaves two
  // matrix probes per term instead of four. The rare corner terms
  // (t ∈ {from, to}) take the generic move_new_value path.
  MoveScratch::BatchBuffers& batch = scratch.batch;
  const blockmodel::DictTransposeMatrix& m = b.matrix();
  if (batch.kd.size() < n) {
    batch.kd.resize(n);
    batch.fwd_num.resize(n);
    batch.fwd_den.resize(n);
    batch.bwd_num.resize(n);
    batch.bwd_den.resize(n);
  }

  const double c = static_cast<double>(b.num_blocks());
  const Count mover_degree = nb.degree_total();

  const Count* const old_vals = batch.old_vals.data();
  const Count* const new_vals = batch.new_vals.data();
  // Hoist the four slices every per-term probe lands in, so the slice
  // headers stay hot instead of being re-fetched through m.get().
  const FlatSlice& row_from = m.row(from);
  const FlatSlice& row_to = m.row(to);
  const FlatSlice& col_from = m.col(from);
  const FlatSlice& col_to = m.col(to);

  // Corner terms (t ∈ {from, to}): all four post-move cells are corner
  // cells, whose deltas the preceding vertex_move_delta_into left in
  // the scratch — three hoisted-slice probes replace the generic
  // move_new_value branch ladder. Writing t as from/to explicitly also
  // collapses m.get(t,to)+m.get(to,t) to its symmetric form.
  const auto corner_prep = [&](BlockId t, Count k, std::size_t pos) {
    batch.kd[pos] = static_cast<double>(k);
    const Count d_t = b.degree_total(t);
    Count fwd_num, bwd_num;
    if (t == from) {
      // forward: M(from,to) + M(to,from); backward: 2·post M(from,from)
      fwd_num = row_from.get(to) + row_to.get(from);
      bwd_num = 2 * (row_from.get(from) + scratch.corner_ff());
      batch.bwd_den[pos] = static_cast<double>(d_t - mover_degree) + c;
    } else {
      // forward: 2·M(to,to); backward: post M(to,from) + post M(from,to)
      fwd_num = 2 * row_to.get(to);
      bwd_num = (row_to.get(from) + scratch.corner_tf()) +
                (row_from.get(to) + scratch.corner_ft());
      batch.bwd_den[pos] = static_cast<double>(d_t + mover_degree) + c;
    }
    assert(fwd_num == m.get(t, to) + m.get(to, t));
    assert(bwd_num == blockmodel::move_new_value(b, scratch, t, from) +
                          blockmodel::move_new_value(b, scratch, from, t));
    batch.fwd_num[pos] = static_cast<double>(fwd_num) + 1.0;
    batch.bwd_num[pos] = static_cast<double>(bwd_num) + 1.0;
    batch.fwd_den[pos] = static_cast<double>(d_t) + c;
  };
  std::size_t cell = 0;  // replay of the cell-list layout
  for (std::size_t i = 0; i < n_out; ++i) {
    const auto [t, k] = nb.out[i];
    if (t == from || t == to) {
      corner_prep(t, k, i);
      continue;
    }
    batch.kd[i] = static_cast<double>(k);
    // cells[cell] = (from,t), cells[cell+1] = (to,t)
    batch.fwd_num[i] =
        static_cast<double>(col_to.get(t) + old_vals[cell + 1]) + 1.0;
    const Count post_t_from = col_from.get(t) - scratch.in_count(t);
    const Count post_from_t = new_vals[cell];
    assert(post_t_from == blockmodel::move_new_value(b, scratch, t, from));
    assert(post_from_t == blockmodel::move_new_value(b, scratch, from, t));
    batch.bwd_num[i] = static_cast<double>(post_t_from + post_from_t) + 1.0;
    // t ∉ {from, to}: block t's degree is unchanged by the move, so the
    // backward denominator equals the forward one bit-for-bit.
    const double den = static_cast<double>(b.degree_total(t)) + c;
    batch.fwd_den[i] = den;
    batch.bwd_den[i] = den;
    cell += 2;
  }
  for (std::size_t j = 0; j < nb.in.size(); ++j) {
    const auto [t, k] = nb.in[j];
    const std::size_t pos = n_out + j;
    if (t == from || t == to) {
      corner_prep(t, k, pos);
      continue;
    }
    batch.kd[pos] = static_cast<double>(k);
    // cells[cell] = (t,from), cells[cell+1] = (t,to)
    batch.fwd_num[pos] =
        static_cast<double>(old_vals[cell + 1] + row_to.get(t)) + 1.0;
    const Count post_t_from = new_vals[cell];
    const Count post_from_t = row_from.get(t) - scratch.out_count(t);
    assert(post_t_from == blockmodel::move_new_value(b, scratch, t, from));
    assert(post_from_t == blockmodel::move_new_value(b, scratch, from, t));
    batch.bwd_num[pos] = static_cast<double>(post_t_from + post_from_t) + 1.0;
    const double den = static_cast<double>(b.degree_total(t)) + c;
    batch.fwd_den[pos] = den;
    batch.bwd_den[pos] = den;
    cell += 2;
  }

  double forward = 0.0;
  double backward = 0.0;
  util::simd::ratio_pair_sums(batch.kd.data(), batch.fwd_num.data(),
                              batch.fwd_den.data(), batch.bwd_num.data(),
                              batch.bwd_den.data(), n, &forward, &backward);
  if (forward <= 0.0) return 1.0;  // isolated vertex: symmetric proposal
  return backward / forward;
}

}  // namespace hsbp::sbp
