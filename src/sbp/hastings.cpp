#include "sbp/hastings.hpp"

#include <cassert>

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::Count;
using blockmodel::MoveDelta;
using blockmodel::MoveScratch;
using blockmodel::NeighborBlockCounts;

namespace {

/// Shared accumulation over the neighbor blocks; `post_value(r, c)` must
/// return the post-move value of cell (r, c). Both overloads run this
/// exact arithmetic, so they are bit-identical given equal inputs.
template <typename PostValue>
double correction(const Blockmodel& b, const NeighborBlockCounts& nb,
                  BlockId from, BlockId to, const PostValue& post_value) {
  assert(from != to);
  const double c = static_cast<double>(b.num_blocks());
  const Count mover_degree = nb.degree_total();

  double forward = 0.0;
  double backward = 0.0;

  const auto accumulate = [&](BlockId t, Count k) {
    const double kd = static_cast<double>(k);

    // Forward: pre-move matrix and degrees.
    const double fwd_num = static_cast<double>(b.matrix().get(t, to) +
                                               b.matrix().get(to, t)) +
                           1.0;
    const double fwd_den = static_cast<double>(b.degree_total(t)) + c;
    forward += kd * fwd_num / fwd_den;

    // Backward: post-move matrix and degrees (only from/to degrees move).
    const double bwd_num =
        static_cast<double>(post_value(t, from) + post_value(from, t)) + 1.0;
    Count d_t = b.degree_total(t);
    if (t == from) d_t -= mover_degree;
    if (t == to) d_t += mover_degree;
    const double bwd_den = static_cast<double>(d_t) + c;
    backward += kd * bwd_num / bwd_den;
  };

  for (const auto& [t, k] : nb.out) accumulate(t, k);
  for (const auto& [t, k] : nb.in) accumulate(t, k);

  if (forward <= 0.0) return 1.0;  // isolated vertex: symmetric proposal
  return backward / forward;
}

}  // namespace

double hastings_correction(const Blockmodel& b, const NeighborBlockCounts& nb,
                           BlockId from, BlockId to, const MoveDelta& delta) {
  return correction(b, nb, from, to, [&](BlockId r, BlockId c) {
    return delta.new_value(b, r, c);
  });
}

double hastings_correction(const Blockmodel& b, BlockId from, BlockId to,
                           const MoveScratch& scratch) {
  return correction(b, scratch.nb, from, to, [&](BlockId r, BlockId c) {
    return blockmodel::move_new_value(b, scratch, r, c);
  });
}

}  // namespace hsbp::sbp
