#include "sbp/hastings.hpp"

#include <cassert>

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using blockmodel::Count;
using blockmodel::MoveDelta;
using blockmodel::NeighborBlockCounts;

double hastings_correction(const Blockmodel& b, const NeighborBlockCounts& nb,
                           BlockId from, BlockId to, const MoveDelta& delta) {
  assert(from != to);
  const double c = static_cast<double>(b.num_blocks());
  const Count mover_degree = nb.degree_total();

  double forward = 0.0;
  double backward = 0.0;

  const auto accumulate = [&](BlockId t, Count k) {
    const double kd = static_cast<double>(k);

    // Forward: pre-move matrix and degrees.
    const double fwd_num = static_cast<double>(b.matrix().get(t, to) +
                                               b.matrix().get(to, t)) +
                           1.0;
    const double fwd_den = static_cast<double>(b.degree_total(t)) + c;
    forward += kd * fwd_num / fwd_den;

    // Backward: post-move matrix and degrees (only from/to degrees move).
    const double bwd_num =
        static_cast<double>(delta.new_value(b, t, from) +
                            delta.new_value(b, from, t)) +
        1.0;
    Count d_t = b.degree_total(t);
    if (t == from) d_t -= mover_degree;
    if (t == to) d_t += mover_degree;
    const double bwd_den = static_cast<double>(d_t) + c;
    backward += kd * bwd_num / bwd_den;
  };

  for (const auto& [t, k] : nb.out) accumulate(t, k);
  for (const auto& [t, k] : nb.in) accumulate(t, k);

  if (forward <= 0.0) return 1.0;  // isolated vertex: symmetric proposal
  return backward / forward;
}

}  // namespace hsbp::sbp
