/// \file mcmc_phases.hpp
/// \brief The three MCMC phases of the paper (Algs. 2–4). Each refines
/// the blockmodel in place and reports pass/acceptance counters.
#pragma once

#include "blockmodel/blockmodel.hpp"
#include "graph/degree.hpp"
#include "graph/view.hpp"
#include "sbp/mcmc_common.hpp"
#include "util/rng.hpp"

namespace hsbp::sbp {

/// Extended phase counters including the Amdahl accounting (how many
/// vertex updates ran inside a parallel region vs. serially).
struct PhaseOutcome {
  McmcPhaseStats stats;
  std::int64_t parallel_updates = 0;
  std::int64_t serial_updates = 0;
};

/// Paper Alg. 2 — serial Metropolis-Hastings. Every accepted move
/// updates the blockmodel in place; proposals always see fresh state.
PhaseOutcome metropolis_hastings_phase(const graph::GraphView& graph,
                                       blockmodel::Blockmodel& b,
                                       const McmcSettings& settings,
                                       util::RngPool& rngs);

/// Paper Alg. 3 — asynchronous Gibbs (A-SBP). One OpenMP-parallel pass
/// per iteration: proposals are evaluated against the stale blockmodel
/// and a shared membership vector updated with relaxed atomics (other
/// threads' in-pass moves may or may not be visible — the "asynchronous"
/// in the name); the blockmodel is rebuilt in parallel after each pass.
PhaseOutcome async_gibbs_phase(const graph::GraphView& graph,
                               blockmodel::Blockmodel& b,
                               const McmcSettings& settings,
                               util::RngPool& rngs);

/// Paper Alg. 4 — hybrid (H-SBP): `split.high` (the top-degree vertices)
/// is processed first, serially and in place; `split.low` then runs as
/// one asynchronous pass; the blockmodel is rebuilt at pass end.
PhaseOutcome hybrid_phase(const graph::GraphView& graph,
                          blockmodel::Blockmodel& b,
                          const McmcSettings& settings,
                          const graph::DegreeSplit& split,
                          util::RngPool& rngs);

/// B-SBP — the batched asynchronous Gibbs the paper's conclusion
/// proposes as future work: each pass is `batch_count` parallel sweeps
/// over random slices of the vertex set with a blockmodel rebuild
/// between slices, bounding staleness to 1/batch_count of a pass with
/// no serial section at all.
PhaseOutcome batched_gibbs_phase(const graph::GraphView& graph,
                                 blockmodel::Blockmodel& b,
                                 const McmcSettings& settings,
                                 int batch_count, util::RngPool& rngs);

}  // namespace hsbp::sbp
