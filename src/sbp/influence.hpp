/// \file influence.hpp
/// \brief Naive total-influence (α) computation of De Sa et al. [4],
/// specialized to community detection exactly as the paper describes
/// (§2.3): vertices are the variables, communities the states, and the
/// state space is explored around a known blockmodel state.
///
/// Asynchronous Gibbs mixes rapidly when α < 1. The paper's point is
/// that this computation is O(V²C³) and intractable at scale — which is
/// why H-SBP falls back to the degree heuristic. We implement the naive
/// algorithm anyway: it is tractable on small graphs, lets tests verify
/// the degree↔influence intuition, and powers the ablation bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "graph/view.hpp"

namespace hsbp::sbp {

struct InfluenceResult {
  double alpha = 0.0;  ///< max_i Σ_j α_ij (total influence)
  /// Per-vertex influence exerted: influence_of[j] = Σ_i α_ij, i.e. how
  /// much changing j's community can perturb everyone else's
  /// conditionals. This is the quantity H-SBP's degree heuristic proxies.
  std::vector<double> influence_of;
};

/// Computes α around the given state. The conditional of vertex i is
/// π_i(c) ∝ exp(−β·ΔMDL(i→c)); α_ij is the largest total-variation
/// distance between i's conditionals across any two single-site changes
/// of j's community.
///
/// \pre assignment labels lie in [0, num_blocks).
/// \throws std::invalid_argument if V > max_vertices (guard against the
/// O(V²C³) blow-up the paper warns about).
InfluenceResult total_influence(const graph::GraphView& graph,
                                std::span<const std::int32_t> assignment,
                                blockmodel::BlockId num_blocks, double beta,
                                graph::Vertex max_vertices = 512);

}  // namespace hsbp::sbp
