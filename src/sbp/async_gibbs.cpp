#include <numeric>

#include "blockmodel/mdl.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/mcmc_phases.hpp"

namespace hsbp::sbp {

using blockmodel::Blockmodel;
using graph::Graph;
using graph::Vertex;

PhaseOutcome async_gibbs_phase(const Graph& graph, Blockmodel& b,
                               const McmcSettings& settings,
                               util::RngPool& rngs) {
  PhaseOutcome outcome;
  McmcPhaseStats& stats = outcome.stats;
  stats.initial_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  double current_mdl = stats.initial_mdl;
  ConvergenceWindow window(settings.threshold);

  std::vector<Vertex> vertices(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(vertices.begin(), vertices.end(), 0);

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    // Alg. 3: copy the membership vector, run one parallel pass against
    // the (now stale) blockmodel, then rebuild.
    auto shared = detail::make_atomic_assignment(b.assignment());
    auto sizes = detail::make_atomic_sizes(b);
    const auto counters =
        detail::async_pass(graph, b, shared, sizes, vertices, settings.beta,
                           rngs, settings.dynamic_schedule);
    stats.proposals += counters.proposals;
    stats.accepted += counters.accepted;
    outcome.parallel_updates += graph.num_vertices();

    b.rebuild(graph, detail::snapshot_assignment(shared));
    const double new_mdl =
        blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
    const double pass_delta = new_mdl - current_mdl;
    current_mdl = new_mdl;
    ++stats.iterations;
    if (window.record(pass_delta, current_mdl)) break;
  }

  stats.final_mdl = current_mdl;
  return outcome;
}

}  // namespace hsbp::sbp
