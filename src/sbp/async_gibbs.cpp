#include <numeric>

#include "blockmodel/mdl.hpp"
#include "sbp/async_pass.hpp"
#include "sbp/mcmc_phases.hpp"

namespace hsbp::sbp {

using blockmodel::Blockmodel;
using graph::GraphView;
using graph::Vertex;

PhaseOutcome async_gibbs_phase(const GraphView& graph, Blockmodel& b,
                               const McmcSettings& settings,
                               util::RngPool& rngs) {
  PhaseOutcome outcome;
  McmcPhaseStats& stats = outcome.stats;
  stats.initial_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  double current_mdl = stats.initial_mdl;
  ConvergenceWindow window(settings.threshold);

  std::vector<Vertex> vertices(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(vertices.begin(), vertices.end(), 0);

  // One workspace for the whole phase: the shared memberships and sizes
  // stay equal to b between passes, so there is no per-pass copy-in.
  detail::PassWorkspace ws;
  ws.reset(b);

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    // Alg. 3: run one parallel pass against the (stale) blockmodel,
    // then apply the accepted-move log — O(moved degree), with an
    // adaptive fallback to a full rebuild on high-acceptance passes.
    const auto counters =
        detail::async_pass(graph, b, ws, vertices, settings.beta, rngs,
                           settings.schedule);
    stats.proposals += counters.proposals;
    stats.accepted += counters.accepted;
    outcome.parallel_updates += graph.num_vertices();

    detail::finish_pass(graph, b, ws, settings.rebuild_threshold);
    const double new_mdl =
        blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
    const double pass_delta = new_mdl - current_mdl;
    current_mdl = new_mdl;
    ++stats.iterations;
    if (window.record(pass_delta, current_mdl)) break;
  }

  stats.final_mdl = current_mdl;
  return outcome;
}

}  // namespace hsbp::sbp
