// mcmc_common is header-only (templates on the assignment view); this
// translation unit exists to give the header a home in the build and to
// anchor any future non-template helpers.
#include "sbp/mcmc_common.hpp"
