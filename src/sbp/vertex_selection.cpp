#include "sbp/vertex_selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace hsbp::sbp {

using graph::DegreeSplit;
using graph::GraphView;
using graph::Vertex;

const char* selection_name(HybridSelection selection) noexcept {
  switch (selection) {
    case HybridSelection::Degree: return "degree";
    case HybridSelection::EdgeInfo: return "edge-info";
    case HybridSelection::Random: return "random";
  }
  return "?";
}

namespace {

DegreeSplit split_order(std::vector<Vertex> order, double fraction) {
  const auto high_count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(order.size())));
  DegreeSplit split;
  split.high.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(high_count));
  split.low.assign(order.begin() + static_cast<std::ptrdiff_t>(high_count),
                   order.end());
  return split;
}

/// Vertex score under the edge-information-content reading of [10]:
/// Σ over incident edges (v,u) of log(1 + d_v·d_u). Self-loops count
/// once.
std::vector<double> edge_info_scores(const GraphView& graph) {
  std::vector<double> scores(static_cast<std::size_t>(graph.num_vertices()),
                             0.0);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const double dv = static_cast<double>(graph.degree(v));
    double score = 0.0;
    for (const Vertex u : graph.out_neighbors(v)) {
      score += std::log1p(dv * static_cast<double>(graph.degree(u)));
    }
    for (const Vertex u : graph.in_neighbors(v)) {
      if (u == v) continue;  // self-loop already counted in the out pass
      score += std::log1p(dv * static_cast<double>(graph.degree(u)));
    }
    scores[static_cast<std::size_t>(v)] = score;
  }
  return scores;
}

}  // namespace

DegreeSplit select_hybrid_vertices(const GraphView& graph, double fraction,
                                   HybridSelection selection,
                                   std::uint64_t seed) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  switch (selection) {
    case HybridSelection::Degree:
      return graph::split_by_degree(graph, fraction);

    case HybridSelection::EdgeInfo: {
      const auto scores = edge_info_scores(graph);
      std::vector<Vertex> order(
          static_cast<std::size_t>(graph.num_vertices()));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&scores](Vertex a, Vertex b) {
        const double sa = scores[static_cast<std::size_t>(a)];
        const double sb = scores[static_cast<std::size_t>(b)];
        return sa != sb ? sa > sb : a < b;
      });
      return split_order(std::move(order), fraction);
    }

    case HybridSelection::Random: {
      std::vector<Vertex> order(
          static_cast<std::size_t>(graph.num_vertices()));
      std::iota(order.begin(), order.end(), 0);
      util::Rng rng(seed);
      rng.shuffle(order);
      return split_order(std::move(order), fraction);
    }
  }
  return {};
}

}  // namespace hsbp::sbp
