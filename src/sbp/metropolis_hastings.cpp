#include "blockmodel/mdl.hpp"
#include "sbp/mcmc_phases.hpp"

namespace hsbp::sbp {

using blockmodel::Blockmodel;
using graph::GraphView;
using graph::Vertex;

PhaseOutcome metropolis_hastings_phase(const GraphView& graph, Blockmodel& b,
                                       const McmcSettings& settings,
                                       util::RngPool& rngs) {
  PhaseOutcome outcome;
  McmcPhaseStats& stats = outcome.stats;
  stats.initial_mdl = blockmodel::mdl(b, graph.num_vertices(),
                                      graph.num_edges());
  double current_mdl = stats.initial_mdl;
  ConvergenceWindow window(settings.threshold);
  util::Rng& rng = rngs.stream(0);  // serial chain: one deterministic stream
  blockmodel::MoveScratch& scratch = blockmodel::thread_move_scratch();

  // Flat view over the blockmodel's own assignment: move_vertex updates
  // labels in place (the vector never reallocates), so the base pointer
  // stays valid and reads are always fresh. The typed view lets the
  // gather batch its membership loads for high-degree vertices.
  const blockmodel::FlatMembershipView view{b.assignment().data()};

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    double pass_delta = 0.0;
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      const auto result =
          evaluate_vertex(graph, b, view, v, b.block_size(b.block_of(v)),
                          settings.beta, rng, scratch);
      ++stats.proposals;
      if (result.moved) {
        b.move_vertex(graph, v, result.to);
        pass_delta += result.delta_mdl;
        ++stats.accepted;
      }
    }
    ++stats.iterations;
    outcome.serial_updates += graph.num_vertices();
    current_mdl += pass_delta;
    if (window.record(pass_delta, current_mdl)) break;
  }

  // Report the exact value (the incremental sum is exact in theory but
  // accumulates floating-point error over thousands of moves).
  stats.final_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  return outcome;
}

}  // namespace hsbp::sbp
