#include "sbp/sbp.hpp"
#include "sbp/streaming.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

#include "blockmodel/mdl.hpp"
#include "graph/degree.hpp"
#include "sbp/block_merge.hpp"
#include "sbp/golden_search.hpp"
#include "sbp/mcmc_phases.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Graph;

const char* variant_name(Variant variant) noexcept {
  switch (variant) {
    case Variant::Metropolis: return "SBP";
    case Variant::AsyncGibbs: return "A-SBP";
    case Variant::Hybrid: return "H-SBP";
    case Variant::BatchedGibbs: return "B-SBP";
  }
  return "?";
}

namespace {

void validate(const Graph& graph, const SbpConfig& config) {
  if (graph.num_vertices() <= 0) {
    throw std::invalid_argument("sbp::run: empty graph");
  }
  if (graph.num_edges() <= 0) {
    throw std::invalid_argument("sbp::run: graph has no edges");
  }
  if (config.block_reduction_rate <= 0.0 ||
      config.block_reduction_rate >= 1.0) {
    throw std::invalid_argument("sbp::run: block_reduction_rate in (0,1)");
  }
  if (config.merge_proposals_per_block < 1) {
    throw std::invalid_argument("sbp::run: merge_proposals_per_block >= 1");
  }
  if (config.max_mcmc_iterations < 1) {
    throw std::invalid_argument("sbp::run: max_mcmc_iterations >= 1");
  }
  if (config.hybrid_fraction < 0.0 || config.hybrid_fraction > 1.0) {
    throw std::invalid_argument("sbp::run: hybrid_fraction in [0,1]");
  }
  if (config.beta <= 0.0) {
    throw std::invalid_argument("sbp::run: beta must be positive");
  }
  if (config.batch_count < 1) {
    throw std::invalid_argument("sbp::run: batch_count >= 1");
  }
}

PhaseOutcome run_mcmc_phase(const Graph& graph, Blockmodel& b,
                            const SbpConfig& config,
                            const McmcSettings& settings,
                            const graph::DegreeSplit& split,
                            util::RngPool& rngs) {
  switch (config.variant) {
    case Variant::Metropolis:
      return metropolis_hastings_phase(graph, b, settings, rngs);
    case Variant::AsyncGibbs:
      return async_gibbs_phase(graph, b, settings, rngs);
    case Variant::Hybrid:
      return hybrid_phase(graph, b, settings, split, rngs);
    case Variant::BatchedGibbs:
      return batched_gibbs_phase(graph, b, settings, config.batch_count,
                                 rngs);
  }
  throw std::logic_error("sbp::run: unknown variant");
}

/// The shared core of run()/run_warm(): golden-section search from an
/// arbitrary evaluated starting partition.
SbpResult run_impl(const Graph& graph, const SbpConfig& config,
                   Snapshot initial) {
  if (config.num_threads > 0) omp_set_num_threads(config.num_threads);

  util::Timer total_timer;
  util::RngPool rngs(config.seed,
                     static_cast<std::size_t>(
                         std::max(1, omp_get_max_threads())));

  graph::DegreeSplit split;
  if (config.variant == Variant::Hybrid) {
    split = select_hybrid_vertices(graph, config.hybrid_fraction,
                                   config.hybrid_selection, config.seed);
  }

  SbpResult result;
  SbpStats& stats = result.stats;

  GoldenSearch search(std::move(initial), config.block_reduction_rate);

  util::Stopwatch merge_watch;
  util::Stopwatch mcmc_watch;

  while (!search.done() &&
         stats.outer_iterations < config.max_outer_iterations) {
    const GoldenSearch::Probe probe = search.next_probe();

    Blockmodel b = Blockmodel::from_assignment(
        graph, probe.warm_start->assignment, probe.warm_start->num_blocks);

    merge_watch.start();
    MergeOutcome merged =
        block_merge_phase(graph, b, probe.target_blocks,
                          config.merge_proposals_per_block, rngs);
    b = Blockmodel::from_assignment(graph, merged.assignment,
                                    merged.num_blocks);
    merge_watch.stop();

    McmcSettings settings;
    settings.beta = config.beta;
    settings.max_iterations = config.max_mcmc_iterations;
    settings.dynamic_schedule = config.dynamic_schedule;
    settings.threshold = search.bracket_established()
                             ? config.mcmc_threshold_post_bracket
                             : config.mcmc_threshold_pre_bracket;

    mcmc_watch.start();
    const PhaseOutcome phase =
        run_mcmc_phase(graph, b, config, settings, split, rngs);
    mcmc_watch.stop();

    stats.mcmc_iterations += phase.stats.iterations;
    stats.proposals += phase.stats.proposals;
    stats.accepted_moves += phase.stats.accepted;
    stats.parallel_updates += phase.parallel_updates;
    stats.serial_updates += phase.serial_updates;
    ++stats.outer_iterations;

    HSBP_LOG_DEBUG("%s: outer %lld blocks %d mdl %.2f",
                   variant_name(config.variant),
                   static_cast<long long>(stats.outer_iterations),
                   b.num_blocks(), phase.stats.final_mdl);

    search.record(Snapshot{b.copy_assignment(), b.num_blocks(),
                           phase.stats.final_mdl});
  }

  const Snapshot& best = search.best();
  result.assignment = best.assignment;
  result.num_blocks = best.num_blocks;
  result.mdl = best.mdl;
  stats.block_merge_seconds = merge_watch.total();
  stats.mcmc_seconds = mcmc_watch.total();
  stats.total_seconds = total_timer.elapsed();
  return result;
}

}  // namespace

SbpResult run(const Graph& graph, const SbpConfig& config) {
  validate(graph, config);
  // Cold start: the identity partition.
  Blockmodel identity = Blockmodel::identity(graph);
  Snapshot initial{identity.copy_assignment(), identity.num_blocks(),
                   blockmodel::mdl(identity, graph.num_vertices(),
                                   graph.num_edges())};
  return run_impl(graph, config, std::move(initial));
}

SbpResult run_warm(const Graph& graph, const SbpConfig& config,
                   std::span<const std::int32_t> assignment,
                   blockmodel::BlockId num_blocks) {
  validate(graph, config);
  // from_assignment validates sizes/labels and evaluates the partition.
  Blockmodel warm = Blockmodel::from_assignment(graph, assignment,
                                                num_blocks);
  Snapshot initial{warm.copy_assignment(), warm.num_blocks(),
                   blockmodel::mdl(warm, graph.num_vertices(),
                                   graph.num_edges())};
  return run_impl(graph, config, std::move(initial));
}

}  // namespace hsbp::sbp
