#include "sbp/sbp.hpp"
#include "sbp/streaming.hpp"

#include <omp.h>

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "blockmodel/mdl.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "graph/degree.hpp"
#include "sbp/block_merge.hpp"
#include "sbp/golden_search.hpp"
#include "sbp/mcmc_phases.hpp"
#include "util/errors.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace hsbp::sbp {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Graph;

const char* variant_name(Variant variant) noexcept {
  switch (variant) {
    case Variant::Metropolis: return "SBP";
    case Variant::AsyncGibbs: return "A-SBP";
    case Variant::Hybrid: return "H-SBP";
    case Variant::BatchedGibbs: return "B-SBP";
  }
  return "?";
}

namespace {

void validate(const Graph& graph, const SbpConfig& config) {
  if (graph.num_vertices() <= 0) {
    throw std::invalid_argument("sbp::run: empty graph");
  }
  if (graph.num_edges() <= 0) {
    throw std::invalid_argument("sbp::run: graph has no edges");
  }
  if (config.block_reduction_rate <= 0.0 ||
      config.block_reduction_rate >= 1.0) {
    throw std::invalid_argument("sbp::run: block_reduction_rate in (0,1)");
  }
  if (config.merge_proposals_per_block < 1) {
    throw std::invalid_argument("sbp::run: merge_proposals_per_block >= 1");
  }
  if (config.max_mcmc_iterations < 1) {
    throw std::invalid_argument("sbp::run: max_mcmc_iterations >= 1");
  }
  if (config.hybrid_fraction < 0.0 || config.hybrid_fraction > 1.0) {
    throw std::invalid_argument("sbp::run: hybrid_fraction in [0,1]");
  }
  if (config.beta <= 0.0) {
    throw std::invalid_argument("sbp::run: beta must be positive");
  }
  if (config.batch_count < 1) {
    throw std::invalid_argument("sbp::run: batch_count >= 1");
  }
}

PhaseOutcome run_mcmc_phase(const Graph& graph, Blockmodel& b,
                            const SbpConfig& config,
                            const McmcSettings& settings,
                            const graph::DegreeSplit& split,
                            util::RngPool& rngs) {
  switch (config.variant) {
    case Variant::Metropolis:
      return metropolis_hastings_phase(graph, b, settings, rngs);
    case Variant::AsyncGibbs:
      return async_gibbs_phase(graph, b, settings, rngs);
    case Variant::Hybrid:
      return hybrid_phase(graph, b, settings, split, rngs);
    case Variant::BatchedGibbs:
      return batched_gibbs_phase(graph, b, settings, config.batch_count,
                                 rngs);
  }
  throw std::logic_error("sbp::run: unknown variant");
}

/// Evaluated cold-start partition: every vertex in its own block.
Snapshot cold_initial(const Graph& graph) {
  Blockmodel identity = Blockmodel::identity(graph);
  return Snapshot{identity.copy_assignment(), identity.num_blocks(),
                  blockmodel::mdl(identity, graph.num_vertices(),
                                  graph.num_edges())};
}

/// The shared core of run()/run_warm(): golden-section search from an
/// arbitrary search state (cold, warm, or checkpoint-resumed).
///
/// Checkpoint discipline: a snapshot is written only at phase
/// boundaries — after search.record(), before the next probe — so the
/// saved (bracket, RNG streams, counters) triple is exactly the state
/// the next phase would read. Resuming therefore replays the identical
/// chain: killed-and-resumed equals uninterrupted, bit for bit.
SbpResult run_impl(const Graph& graph, const SbpConfig& config,
                   GoldenSearch search, const SbpStats& resumed_stats,
                   std::span<const util::Rng::State> rng_states,
                   const ckpt::CheckpointConfig& ck) {
  if (config.num_threads > 0) omp_set_num_threads(config.num_threads);

  util::Timer total_timer;
  util::RngPool rngs(config.seed,
                     static_cast<std::size_t>(
                         std::max(1, omp_get_max_threads())));
  if (!rng_states.empty()) {
    if (rng_states.size() != rngs.size()) {
      throw util::DataError(
          "checkpoint holds " + std::to_string(rng_states.size()) +
          " RNG streams but this run has " + std::to_string(rngs.size()) +
          " — resume with the same thread budget (--threads) as the "
          "checkpointed run");
    }
    rngs.restore_states(rng_states);
  }

  graph::DegreeSplit split;
  if (config.variant == Variant::Hybrid) {
    split = select_hybrid_vertices(graph, config.hybrid_fraction,
                                   config.hybrid_selection, config.seed);
  }

  SbpResult result;
  SbpStats& stats = result.stats;
  stats = resumed_stats;
  const SbpStats base = resumed_stats;  // prior run's seconds offsets

  util::Stopwatch merge_watch;
  util::Stopwatch mcmc_watch;

  const auto accumulate_seconds = [&](SbpStats& into) {
    into.block_merge_seconds =
        base.block_merge_seconds + merge_watch.total();
    into.mcmc_seconds = base.mcmc_seconds + mcmc_watch.total();
    into.total_seconds = base.total_seconds + total_timer.elapsed();
  };

  const auto write_checkpoint = [&]() {
    ckpt::SbpCheckpoint snapshot;
    snapshot.graph = ckpt::fingerprint(graph);
    snapshot.variant = static_cast<std::uint32_t>(config.variant);
    snapshot.seed = config.seed;
    snapshot.stats = stats;
    accumulate_seconds(snapshot.stats);
    snapshot.rng_streams = rngs.export_states();
    snapshot.search = search.export_state();
    ckpt::save_sbp_checkpoint(ck.save_path, snapshot, ck.fault);
  };

  // Does save_path already hold the state after the latest record()?
  bool checkpoint_fresh = true;

  while (!search.done() &&
         stats.outer_iterations < config.max_outer_iterations) {
    const GoldenSearch::Probe probe = search.next_probe();

    Blockmodel b = Blockmodel::from_assignment(
        graph, probe.warm_start->assignment, probe.warm_start->num_blocks);

    merge_watch.start();
    MergeOutcome merged =
        block_merge_phase(graph, b, probe.target_blocks,
                          config.merge_proposals_per_block, rngs);
    b = Blockmodel::from_assignment(graph, merged.assignment,
                                    merged.num_blocks);
    merge_watch.stop();

    McmcSettings settings;
    settings.beta = config.beta;
    settings.max_iterations = config.max_mcmc_iterations;
    settings.schedule = config.schedule;
    settings.threshold = search.bracket_established()
                             ? config.mcmc_threshold_post_bracket
                             : config.mcmc_threshold_pre_bracket;

    mcmc_watch.start();
    const PhaseOutcome phase =
        run_mcmc_phase(graph, b, config, settings, split, rngs);
    mcmc_watch.stop();

    stats.mcmc_iterations += phase.stats.iterations;
    stats.proposals += phase.stats.proposals;
    stats.accepted_moves += phase.stats.accepted;
    stats.parallel_updates += phase.parallel_updates;
    stats.serial_updates += phase.serial_updates;
    ++stats.outer_iterations;

    HSBP_LOG_DEBUG("%s: outer %lld blocks %d mdl %.2f",
                   variant_name(config.variant),
                   static_cast<long long>(stats.outer_iterations),
                   b.num_blocks(), phase.stats.final_mdl);

    search.record(Snapshot{b.copy_assignment(), b.num_blocks(),
                           phase.stats.final_mdl});
    checkpoint_fresh = false;

    if (!ck.save_path.empty()) {
      const bool at_interval =
          ck.every_phases > 0 &&
          stats.outer_iterations % ck.every_phases == 0;
      if (at_interval || search.done()) {
        write_checkpoint();
        checkpoint_fresh = true;
      }
    }
    if (ck.fault != nullptr) ck.fault->on_phase_boundary();
    if (ckpt::shutdown_requested()) {
      // Graceful shutdown: the in-flight pass finished above; persist
      // the boundary state and hand back the best-so-far partition.
      if (!ck.save_path.empty() && !checkpoint_fresh) {
        write_checkpoint();
        checkpoint_fresh = true;
      }
      result.interrupted = true;
      break;
    }
  }

  // A run that stopped on the outer-iteration cap between intervals
  // still leaves a resumable snapshot behind.
  if (!ck.save_path.empty() && !checkpoint_fresh) write_checkpoint();

  const Snapshot& best = search.best();
  result.assignment = best.assignment;
  result.num_blocks = best.num_blocks;
  result.mdl = best.mdl;
  accumulate_seconds(stats);
  return result;
}

}  // namespace

SbpResult run(const Graph& graph, const SbpConfig& config) {
  return run(graph, config, ckpt::CheckpointConfig{});
}

SbpResult run(const Graph& graph, const SbpConfig& config,
              const ckpt::CheckpointConfig& checkpoint) {
  validate(graph, config);
  if (!checkpoint.resume_path.empty()) {
    ckpt::SbpCheckpoint loaded =
        ckpt::load_sbp_checkpoint(checkpoint.resume_path);
    ckpt::validate_fingerprint(loaded.graph, graph,
                               checkpoint.resume_path);
    if (loaded.variant != static_cast<std::uint32_t>(config.variant) ||
        loaded.seed != config.seed) {
      throw util::DataError(
          "checkpoint '" + checkpoint.resume_path +
          "' was written with variant=" + std::to_string(loaded.variant) +
          " seed=" + std::to_string(loaded.seed) +
          ", this run is configured with variant=" +
          std::to_string(static_cast<std::uint32_t>(config.variant)) +
          " (" + variant_name(config.variant) + ") seed=" +
          std::to_string(config.seed) +
          " — resuming a different chain would produce garbage");
    }
    GoldenSearch search(std::move(loaded.search),
                        config.block_reduction_rate);
    return run_impl(graph, config, std::move(search), loaded.stats,
                    loaded.rng_streams, checkpoint);
  }
  GoldenSearch search(cold_initial(graph), config.block_reduction_rate);
  return run_impl(graph, config, std::move(search), SbpStats{}, {},
                  checkpoint);
}

SbpResult run_warm(const Graph& graph, const SbpConfig& config,
                   std::span<const std::int32_t> assignment,
                   blockmodel::BlockId num_blocks) {
  validate(graph, config);
  // Enforce the documented precondition: labels dense in
  // [0, num_blocks). from_assignment catches out-of-range labels, but
  // an unused label would silently seed the search with an empty block
  // — the merge phase can never fold it away (no edges to score), so
  // fail loudly instead.
  {
    std::vector<bool> used(static_cast<std::size_t>(
                               std::max<blockmodel::BlockId>(num_blocks, 0)),
                           false);
    for (const std::int32_t label : assignment) {
      if (label >= 0 && label < num_blocks) {
        used[static_cast<std::size_t>(label)] = true;
      }
    }
    for (std::size_t b = 0; b < used.size(); ++b) {
      if (!used[b]) {
        throw std::invalid_argument(
            "run_warm: assignment labels are not dense in [0, " +
            std::to_string(num_blocks) + ") — block " + std::to_string(b) +
            " is empty");
      }
    }
  }
  // from_assignment validates sizes/labels and evaluates the partition.
  Blockmodel warm = Blockmodel::from_assignment(graph, assignment,
                                                num_blocks);
  Snapshot initial{warm.copy_assignment(), warm.num_blocks(),
                   blockmodel::mdl(warm, graph.num_vertices(),
                                   graph.num_edges())};
  GoldenSearch search(std::move(initial), config.block_reduction_rate);
  return run_impl(graph, config, std::move(search), SbpStats{}, {},
                  ckpt::CheckpointConfig{});
}

}  // namespace hsbp::sbp
