/// \file streaming.hpp
/// \brief Streaming stochastic block partitioning.
///
/// SBP originates from the IEEE HPEC *Streaming* Graph Challenge
/// (Kao et al. 2017 — the paper's ref [9]), where the graph arrives in
/// parts and the partition must be maintained as edges accumulate.
/// This module implements that workload on top of the paper's
/// algorithms: each cumulative snapshot is fitted by warm-starting from
/// the previous partition instead of from the identity partition, which
/// is where streaming saves its time.
///
/// Warm-start rule for vertices unseen in the previous snapshot: adopt
/// the most common block among already-labeled neighbors; vertices with
/// no labeled neighbor open a fresh singleton block (the subsequent
/// merge phase folds it wherever it belongs).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::sbp {

/// Extends a partition of a smaller vertex set to `graph`'s vertex set
/// using the neighbor-majority rule above. `assignment` may be empty
/// (every vertex gets its own block). Returns the extended assignment;
/// `num_blocks` is updated to include any fresh singleton blocks.
std::vector<std::int32_t> extend_assignment(
    const graph::Graph& graph, const std::vector<std::int32_t>& assignment,
    blockmodel::BlockId& num_blocks);

/// Runs the configured variant on `graph` starting from an arbitrary
/// evaluated partition instead of the identity partition (the warm-start
/// entry point streaming builds on; run() is the cold-start special
/// case). \pre assignment labels dense in [0, num_blocks).
SbpResult run_warm(const graph::Graph& graph, const SbpConfig& config,
                   std::span<const std::int32_t> assignment,
                   blockmodel::BlockId num_blocks);

/// Randomly splits every block into up to `factor` sub-blocks and
/// compacts the labels. Warm starts need this because the golden
/// search only merges downward: new edges may reveal that a previous
/// block must *split*, and the refined partition puts the optimum back
/// below the starting block count while keeping most of the learned
/// structure (coherent sub-blocks re-merge in one cheap merge phase).
/// Deterministic in `seed`. \pre factor >= 1.
std::vector<std::int32_t> refine_assignment(
    std::span<const std::int32_t> assignment, blockmodel::BlockId& num_blocks,
    int factor, std::uint64_t seed);

struct StreamingResult {
  /// Result after each cumulative snapshot (last = final answer).
  std::vector<SbpResult> snapshots;
  double total_seconds = 0.0;
};

/// Fits each cumulative snapshot in order, warm-starting from the
/// previous snapshot's partition (extended to new vertices, then
/// refined by `refine_factor` — see refine_assignment). Snapshots must
/// be cumulative: each graph contains at least the vertices of its
/// predecessor (typically produced by generator::streaming_snapshots).
/// \throws std::invalid_argument on an empty snapshot list, a shrinking
/// vertex count, or refine_factor < 1.
StreamingResult run_streaming(const std::vector<graph::Graph>& snapshots,
                              const SbpConfig& config,
                              int refine_factor = 3);

}  // namespace hsbp::sbp
