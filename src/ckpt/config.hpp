/// \file config.hpp
/// \brief CheckpointConfig — the durability knobs accepted by
/// sbp::run and sample::run. A leaf header (no dependencies on the
/// algorithm layers) so drivers can take it by value without pulling
/// the serialization code into their interface.
#pragma once

#include <string>

namespace hsbp::ckpt {

class FaultInjector;

struct CheckpointConfig {
  /// Where to write snapshots; empty disables checkpointing. The write
  /// is atomic (temp → fsync → rename), so `save_path` always holds
  /// either the previous or the new checkpoint, never a torn one.
  std::string save_path;

  /// Write a snapshot after every N outer phases (sbp) in addition to
  /// the unconditional snapshots at completion, shutdown, and pipeline
  /// stage boundaries. Values < 1 mean "only the unconditional ones".
  int every_phases = 1;

  /// Load state from this file before starting; empty means cold
  /// start. Resuming validates the snapshot's graph fingerprint and
  /// (variant, seed) against the live run and fails loudly on any
  /// mismatch — resuming against the wrong graph or config would
  /// silently produce garbage.
  std::string resume_path;

  /// Deterministic fault-injection hook; normally null. Owned by the
  /// caller (the test harness).
  FaultInjector* fault = nullptr;

  bool enabled() const noexcept {
    return !save_path.empty() || !resume_path.empty();
  }
};

}  // namespace hsbp::ckpt
