#include "ckpt/shutdown.hpp"

#include <csignal>

namespace hsbp::ckpt {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void handle_shutdown_signal(int signum) {
  g_shutdown = 1;
  // One signal asks nicely; the next one kills. Restoring the default
  // disposition here is async-signal-safe.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() noexcept {
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

bool shutdown_requested() noexcept { return g_shutdown != 0; }

void request_shutdown() noexcept { g_shutdown = 1; }

void clear_shutdown() noexcept { g_shutdown = 0; }

}  // namespace hsbp::ckpt
