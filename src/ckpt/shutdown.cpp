#include "ckpt/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace hsbp::ckpt {

namespace {

// std::atomic, not volatile sig_atomic_t: the flag is read from worker
// threads (sbp outer loop, serve session/refit threads), not just from
// the installing thread, so it needs thread-safety as well as
// async-signal-safety. Lock-free atomics give both.
std::atomic<int> g_shutdown{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void handle_shutdown_signal(int signum) {
  g_shutdown.store(1, std::memory_order_relaxed);
  // One signal asks nicely; the next one kills. Restoring the default
  // disposition here is async-signal-safe.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() noexcept {
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed) != 0;
}

void request_shutdown() noexcept {
  g_shutdown.store(1, std::memory_order_relaxed);
}

void clear_shutdown() noexcept {
  g_shutdown.store(0, std::memory_order_relaxed);
}

}  // namespace hsbp::ckpt
