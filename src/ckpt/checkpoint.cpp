#include "ckpt/checkpoint.hpp"

#include <array>
#include <cstring>

#include "ckpt/atomic_file.hpp"
#include "util/errors.hpp"

namespace hsbp::ckpt {

using util::DataError;

namespace {

constexpr char kMagic[8] = {'H', 'S', 'B', 'P', 'C', 'K', 'P', 'T'};
constexpr std::uint8_t kKindSbp = 1;
constexpr std::uint8_t kKindSample = 2;
constexpr std::uint8_t kKindServe = 3;

// ------------------------------------------------- little-endian codec

class ByteWriter {
 public:
  void u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
    }
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
    }
  }

  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

  void f64(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }

  void i32_vector(const std::vector<std::int32_t>& values) {
    u64(values.size());
    for (const std::int32_t v : values) i32(v);
  }

  const std::string& str() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader: any overrun means the payload lies about its
/// own structure, which the CRC should have caught — still reported as
/// a DataError rather than trusted.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint32_t u32() {
    const std::string_view b = take(4);
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
               << (8 * i);
    }
    return value;
  }

  std::uint64_t u64() {
    const std::string_view b = take(8);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
               << (8 * i);
    }
    return value;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::vector<std::int32_t> i32_vector() {
    const std::uint64_t count = u64();
    if (count > remaining() / 4) {
      throw DataError("checkpoint: assignment length exceeds payload");
    }
    std::vector<std::int32_t> values(static_cast<std::size_t>(count));
    for (auto& v : values) v = i32();
    return values;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw DataError("checkpoint: trailing bytes after payload");
    }
  }

 private:
  std::string_view take(std::size_t n) {
    if (remaining() < n) {
      throw DataError("checkpoint: payload ends mid-field (truncated)");
    }
    const std::string_view slice = data_.substr(pos_, n);
    pos_ += n;
    return slice;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------- envelope

std::string seal(std::uint8_t kind, const std::string& payload) {
  ByteWriter head;
  head.u32(kFormatVersion);
  head.u8(kind);
  head.u64(payload.size());
  std::string body = head.str() + payload;
  const std::uint32_t checksum = crc32(body);
  ByteWriter tail;
  tail.u32(checksum);
  return std::string(kMagic, sizeof(kMagic)) + body + tail.str();
}

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case kKindSbp: return "sbp-run";
    case kKindSample: return "sample-pipeline";
    default: return "serve-snapshot";
  }
}

/// Verifies the envelope and returns the payload bytes.
std::string open_envelope(const std::string& path, std::uint8_t want_kind) {
  const std::string file = read_file(path);
  constexpr std::size_t kHeader = sizeof(kMagic) + 4 + 1 + 8;
  constexpr std::size_t kTrailer = 4;
  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw DataError("'" + path + "' is not an hsbp checkpoint (bad magic)");
  }
  if (file.size() < kHeader + kTrailer) {
    throw DataError("checkpoint '" + path + "' is truncated (" +
                    std::to_string(file.size()) + " bytes)");
  }
  ByteReader head(std::string_view(file).substr(sizeof(kMagic)));
  const std::uint32_t version = head.u32();
  if (version != kFormatVersion) {
    throw DataError("checkpoint '" + path + "' has format version " +
                    std::to_string(version) + ", this build reads version " +
                    std::to_string(kFormatVersion));
  }
  const std::uint8_t kind = head.u8();
  if (kind != kKindSbp && kind != kKindSample && kind != kKindServe) {
    throw DataError("checkpoint '" + path + "' has unknown kind " +
                    std::to_string(kind));
  }
  if (kind != want_kind) {
    throw DataError("checkpoint '" + path + "' holds a " + kind_name(kind) +
                    " snapshot, expected " + kind_name(want_kind));
  }
  const std::uint64_t payload_size = head.u64();
  const std::uint64_t expected = kHeader + payload_size + kTrailer;
  if (file.size() < expected) {
    throw DataError("checkpoint '" + path + "' is truncated (" +
                    std::to_string(file.size()) + " of " +
                    std::to_string(expected) + " bytes)");
  }
  if (file.size() > expected) {
    throw DataError("checkpoint '" + path + "' has trailing garbage");
  }
  const std::string_view body =
      std::string_view(file).substr(sizeof(kMagic),
                                    kHeader - sizeof(kMagic) + payload_size);
  ByteReader tail(
      std::string_view(file).substr(kHeader + payload_size, kTrailer));
  if (crc32(body) != tail.u32()) {
    throw DataError("checkpoint '" + path +
                    "' failed its CRC-32 check (corrupt)");
  }
  return file.substr(kHeader, static_cast<std::size_t>(payload_size));
}

// ------------------------------------------------------ field codecs

void write_fingerprint(ByteWriter& w, const GraphFingerprint& fp) {
  w.i32(fp.num_vertices);
  w.i64(fp.num_edges);
  w.u64(fp.degree_hash);
}

GraphFingerprint read_fingerprint(ByteReader& r) {
  GraphFingerprint fp;
  fp.num_vertices = r.i32();
  fp.num_edges = r.i64();
  fp.degree_hash = r.u64();
  return fp;
}

void write_snapshot(ByteWriter& w, const sbp::Snapshot& snapshot) {
  w.i32(snapshot.num_blocks);
  w.f64(snapshot.mdl);
  w.i32_vector(snapshot.assignment);
}

sbp::Snapshot read_snapshot(ByteReader& r) {
  sbp::Snapshot snapshot;
  snapshot.num_blocks = r.i32();
  snapshot.mdl = r.f64();
  snapshot.assignment = r.i32_vector();
  return snapshot;
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t value) noexcept {
  // SplitMix64 finalizer over a running combine — order-sensitive, so
  // permuted degree sequences hash differently.
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

GraphFingerprint fingerprint(const graph::GraphView& graph) {
  GraphFingerprint fp;
  fp.num_vertices = graph.num_vertices();
  fp.num_edges = graph.num_edges();
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (graph::Vertex v = 0; v < graph.num_vertices(); ++v) {
    const auto word =
        (static_cast<std::uint64_t>(graph.out_degree(v)) << 32) |
        (static_cast<std::uint64_t>(graph.in_degree(v)) & 0xffffffffULL);
    h = mix64(h, word);
  }
  fp.degree_hash = h;
  return fp;
}

void validate_fingerprint(const GraphFingerprint& saved,
                          const graph::GraphView& graph,
                          const std::string& path) {
  const GraphFingerprint live = fingerprint(graph);
  if (saved == live) return;
  throw DataError(
      "checkpoint '" + path + "' belongs to a different graph: saved V=" +
      std::to_string(saved.num_vertices) + " E=" +
      std::to_string(saved.num_edges) + " degree-hash=" +
      std::to_string(saved.degree_hash) + ", live V=" +
      std::to_string(live.num_vertices) + " E=" +
      std::to_string(live.num_edges) + " degree-hash=" +
      std::to_string(live.degree_hash));
}

// ------------------------------------------------------------ sbp-run

void save_sbp_checkpoint(const std::string& path, const SbpCheckpoint& ckpt,
                         FaultInjector* fault) {
  ByteWriter w;
  write_fingerprint(w, ckpt.graph);
  w.u32(ckpt.variant);
  w.u64(ckpt.seed);

  const sbp::SbpStats& s = ckpt.stats;
  w.f64(s.block_merge_seconds);
  w.f64(s.mcmc_seconds);
  w.f64(s.total_seconds);
  w.i64(s.outer_iterations);
  w.i64(s.mcmc_iterations);
  w.i64(s.proposals);
  w.i64(s.accepted_moves);
  w.i64(s.parallel_updates);
  w.i64(s.serial_updates);

  w.u64(ckpt.rng_streams.size());
  for (const util::Rng::State& state : ckpt.rng_streams) {
    for (const std::uint64_t word : state) w.u64(word);
  }

  w.u8(ckpt.search.have_mid ? 1 : 0);
  w.u8(ckpt.search.have_lower ? 1 : 0);
  w.u8(ckpt.search.done ? 1 : 0);
  write_snapshot(w, ckpt.search.upper);
  write_snapshot(w, ckpt.search.mid);
  write_snapshot(w, ckpt.search.lower);

  atomic_write_file(path, seal(kKindSbp, w.str()), fault);
}

SbpCheckpoint load_sbp_checkpoint(const std::string& path) {
  // The payload must outlive the reader (ByteReader is a view).
  const std::string payload = open_envelope(path, kKindSbp);
  ByteReader r(payload);
  SbpCheckpoint ckpt;
  ckpt.graph = read_fingerprint(r);
  ckpt.variant = r.u32();
  ckpt.seed = r.u64();

  sbp::SbpStats& s = ckpt.stats;
  s.block_merge_seconds = r.f64();
  s.mcmc_seconds = r.f64();
  s.total_seconds = r.f64();
  s.outer_iterations = r.i64();
  s.mcmc_iterations = r.i64();
  s.proposals = r.i64();
  s.accepted_moves = r.i64();
  s.parallel_updates = r.i64();
  s.serial_updates = r.i64();

  const std::uint64_t streams = r.u64();
  if (streams > r.remaining() / 32) {
    throw DataError("checkpoint: RNG stream count exceeds payload");
  }
  ckpt.rng_streams.resize(static_cast<std::size_t>(streams));
  for (util::Rng::State& state : ckpt.rng_streams) {
    for (std::uint64_t& word : state) word = r.u64();
  }

  ckpt.search.have_mid = r.u8() != 0;
  ckpt.search.have_lower = r.u8() != 0;
  ckpt.search.done = r.u8() != 0;
  ckpt.search.upper = read_snapshot(r);
  ckpt.search.mid = read_snapshot(r);
  ckpt.search.lower = read_snapshot(r);
  r.expect_end();
  return ckpt;
}

// ----------------------------------------------------- sample-pipeline

void save_sample_checkpoint(const std::string& path,
                            const SampleCheckpoint& ckpt,
                            FaultInjector* fault) {
  ByteWriter w;
  write_fingerprint(w, ckpt.graph);
  w.u32(ckpt.variant);
  w.u64(ckpt.seed);
  w.u32(ckpt.sampler);
  w.f64(ckpt.fraction);
  w.u8(static_cast<std::uint8_t>(ckpt.stage));

  w.i32_vector(ckpt.sample_assignment);
  w.i32(ckpt.sample_num_blocks);
  w.f64(ckpt.sample_mdl);

  if (ckpt.stage >= SampleStage::ExtrapolateDone) {
    w.i32_vector(ckpt.full_assignment);
    w.i32(ckpt.full_num_blocks);
    w.f64(ckpt.full_mdl);
    w.i64(ckpt.frontier_assigned);
    w.i64(ckpt.isolated_assigned);
  }

  atomic_write_file(path, seal(kKindSample, w.str()), fault);
}

SampleCheckpoint load_sample_checkpoint(const std::string& path) {
  // The payload must outlive the reader (ByteReader is a view).
  const std::string payload = open_envelope(path, kKindSample);
  ByteReader r(payload);
  SampleCheckpoint ckpt;
  ckpt.graph = read_fingerprint(r);
  ckpt.variant = r.u32();
  ckpt.seed = r.u64();
  ckpt.sampler = r.u32();
  ckpt.fraction = r.f64();
  const std::uint8_t stage = r.u8();
  if (stage != static_cast<std::uint8_t>(SampleStage::PartitionDone) &&
      stage != static_cast<std::uint8_t>(SampleStage::ExtrapolateDone)) {
    throw DataError("checkpoint '" + path + "' has unknown pipeline stage " +
                    std::to_string(stage));
  }
  ckpt.stage = static_cast<SampleStage>(stage);

  ckpt.sample_assignment = r.i32_vector();
  ckpt.sample_num_blocks = r.i32();
  ckpt.sample_mdl = r.f64();

  if (ckpt.stage >= SampleStage::ExtrapolateDone) {
    ckpt.full_assignment = r.i32_vector();
    ckpt.full_num_blocks = r.i32();
    ckpt.full_mdl = r.f64();
    ckpt.frontier_assigned = r.i64();
    ckpt.isolated_assigned = r.i64();
  }
  r.expect_end();
  return ckpt;
}

// ------------------------------------------------------ serve-snapshot

void save_serve_checkpoint(const std::string& path,
                           const ServeCheckpoint& ckpt,
                           FaultInjector* fault) {
  ByteWriter w;
  write_fingerprint(w, ckpt.graph);
  w.u64(ckpt.epoch);
  w.i32(ckpt.num_vertices);
  w.u64(ckpt.edges.size());
  for (const auto& [u, v] : ckpt.edges) {
    w.i32(u);
    w.i32(v);
  }
  w.i32_vector(ckpt.assignment);
  w.i32(ckpt.num_blocks);
  w.f64(ckpt.mdl);
  atomic_write_file(path, seal(kKindServe, w.str()), fault);
}

ServeCheckpoint load_serve_checkpoint(const std::string& path) {
  // The payload must outlive the reader (ByteReader is a view).
  const std::string payload = open_envelope(path, kKindServe);
  ByteReader r(payload);
  ServeCheckpoint ckpt;
  ckpt.graph = read_fingerprint(r);
  ckpt.epoch = r.u64();
  ckpt.num_vertices = r.i32();
  const std::uint64_t edge_count = r.u64();
  if (edge_count > r.remaining() / 8) {
    throw DataError("checkpoint '" + path +
                    "': edge count exceeds payload");
  }
  ckpt.edges.reserve(static_cast<std::size_t>(edge_count));
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const std::int32_t u = r.i32();
    const std::int32_t v = r.i32();
    if (u < 0 || u >= ckpt.num_vertices || v < 0 ||
        v >= ckpt.num_vertices) {
      throw DataError("checkpoint '" + path + "': edge " +
                      std::to_string(e) + " endpoint outside [0, " +
                      std::to_string(ckpt.num_vertices) + ")");
    }
    ckpt.edges.emplace_back(u, v);
  }
  ckpt.assignment = r.i32_vector();
  ckpt.num_blocks = r.i32();
  ckpt.mdl = r.f64();
  r.expect_end();

  if (ckpt.assignment.size() !=
      static_cast<std::size_t>(ckpt.num_vertices)) {
    throw DataError("checkpoint '" + path + "': assignment covers " +
                    std::to_string(ckpt.assignment.size()) + " of " +
                    std::to_string(ckpt.num_vertices) + " vertices");
  }
  for (const std::int32_t label : ckpt.assignment) {
    if (label < 0 || label >= ckpt.num_blocks) {
      throw DataError("checkpoint '" + path +
                      "': assignment label outside [0, " +
                      std::to_string(ckpt.num_blocks) + ")");
    }
  }
  // The stored fingerprint must describe the stored edges: a mismatch
  // means the payload was assembled from two different snapshots.
  const graph::Graph rebuilt =
      graph::Graph::from_edges(ckpt.num_vertices, ckpt.edges);
  if (!(fingerprint(rebuilt) == ckpt.graph)) {
    throw DataError("checkpoint '" + path +
                    "': stored edges do not match the stored graph "
                    "fingerprint");
  }
  return ckpt;
}

// ------------------------------------------------------------- helpers

std::uint32_t crc32(std::string_view data) noexcept {
  // IEEE 802.3 reflected CRC-32, table built on first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace hsbp::ckpt
