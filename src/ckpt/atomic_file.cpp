#include "ckpt/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/fault_injector.hpp"
#include "util/errors.hpp"

namespace hsbp::ckpt {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw util::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Writes all of `data` to fd, retrying short writes/EINTR.
bool write_all(int fd, const char* data, std::size_t size) noexcept {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// entry itself is durable. Failures are ignored: some filesystems
/// refuse O_RDONLY on directories and the data fsync already happened.
void sync_parent_dir(const std::string& path) noexcept {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view payload,
                       FaultInjector* fault) {
  const std::string tmp = path + ".tmp";

  std::size_t budget = payload.size();
  auto action = FaultInjector::WriteFault::None;
  if (fault != nullptr) action = fault->on_write(&budget);

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(tmp, "cannot create");

  if (action == FaultInjector::WriteFault::Fail) {
    // Injected disk failure: nothing durable happened; clean up the
    // temp file and report — the previous `path` contents survive.
    ::close(fd);
    ::unlink(tmp.c_str());
    throw util::IoError("injected write failure for '" + path + "'");
  }

  const std::size_t to_write =
      action == FaultInjector::WriteFault::Truncate
          ? std::min(budget, payload.size())
          : payload.size();

  if (!write_all(fd, payload.data(), to_write)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(tmp, "short write to");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(tmp, "cannot fsync");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(tmp, "cannot close");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(path, "cannot rename into");
  }
  sync_parent_dir(path);
  // A Truncate fault models data loss *after* a durable rename (a torn
  // write): the call succeeds, leaving a corrupt file for readers to
  // reject — exactly what the format tests exercise.
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw util::IoError("read failure on '" + path + "'");
  }
  return std::move(buffer).str();
}

}  // namespace hsbp::ckpt
