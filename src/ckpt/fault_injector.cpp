#include "ckpt/fault_injector.hpp"

#include <string>

namespace hsbp::ckpt {

FaultInjector::WriteFault FaultInjector::on_write(
    std::size_t* truncate_bytes) noexcept {
  ++write_count_;
  if (write_count_ == fail_write_at_) return WriteFault::Fail;
  if (write_count_ == truncate_at_) {
    if (truncate_bytes != nullptr) *truncate_bytes = truncate_bytes_;
    return WriteFault::Truncate;
  }
  return WriteFault::None;
}

void FaultInjector::on_phase_boundary() {
  ++phase_count_;
  if (phase_count_ == kill_at_) {
    throw SimulatedKill("fault injector: simulated kill at phase boundary " +
                        std::to_string(phase_count_));
  }
}

FaultInjector::NetFault FaultInjector::on_net_read() noexcept {
  const int nth = net_read_count_.fetch_add(1) + 1;
  NetFault fault;
  if (nth == net_drop_read_at_) {
    fault.kind = NetFault::Kind::Drop;
  } else if (nth == net_delay_read_at_) {
    fault.kind = NetFault::Kind::Delay;
    fault.delay_ms = net_delay_ms_;
  }
  return fault;
}

FaultInjector::NetFault FaultInjector::on_net_write() noexcept {
  const int nth = net_write_count_.fetch_add(1) + 1;
  NetFault fault;
  if (nth == net_drop_write_at_) {
    fault.kind = NetFault::Kind::Drop;
  } else if (nth == net_tear_write_at_) {
    fault.kind = NetFault::Kind::Tear;
    fault.bytes = net_tear_bytes_;
  } else if (net_chunk_bytes_ > 0) {
    fault.kind = NetFault::Kind::Chunk;
    fault.bytes = net_chunk_bytes_;
  }
  return fault;
}

}  // namespace hsbp::ckpt
