#include "ckpt/fault_injector.hpp"

#include <string>

namespace hsbp::ckpt {

FaultInjector::WriteFault FaultInjector::on_write(
    std::size_t* truncate_bytes) noexcept {
  ++write_count_;
  if (write_count_ == fail_write_at_) return WriteFault::Fail;
  if (write_count_ == truncate_at_) {
    if (truncate_bytes != nullptr) *truncate_bytes = truncate_bytes_;
    return WriteFault::Truncate;
  }
  return WriteFault::None;
}

void FaultInjector::on_phase_boundary() {
  ++phase_count_;
  if (phase_count_ == kill_at_) {
    throw SimulatedKill("fault injector: simulated kill at phase boundary " +
                        std::to_string(phase_count_));
  }
}

}  // namespace hsbp::ckpt
