/// \file fault_injector.hpp
/// \brief Deterministic fault injection for the checkpoint subsystem.
///
/// The injector is a passive hook object threaded through
/// CheckpointConfig::fault (normally null). The durability tests arm it
/// to reproduce, deterministically, the three failures a long run meets
/// in practice:
///
///   fail_write(n)         — the nth atomic write dies before any byte
///                           reaches its destination (disk full, EIO);
///                           the previous checkpoint must survive.
///   truncate_write(n, k)  — the nth atomic write persists only its
///                           first k bytes yet still gets renamed into
///                           place (a torn write: rename was durable,
///                           data was not); the loader must reject it.
///   kill_at_phase(n)      — SimulatedKill is thrown from the nth
///                           phase/stage boundary, after that boundary's
///                           checkpoint was written — the moral
///                           equivalent of `kill -9` between phases.
///
/// Counters are 1-based and monotonically increasing across one run (or
/// across a pipeline and its nested sbp::run, which share the injector),
/// so "the nth write" is well-defined and reproducible.
///
/// The serving daemon (src/serve/) extends the same object with
/// *network* faults, injected at the frame-I/O seam (serve/protocol
/// read_frame/write_frame). These reproduce what a hostile or flaky
/// network does to a long-lived daemon:
///
///   net_delay_read(n, ms)   — the nth frame read stalls `ms` before a
///                             byte is delivered (a slow or stalled
///                             peer; drives the read-deadline paths).
///   net_tear_write(n, k)    — the nth frame write puts only its first
///                             k bytes on the wire, then hard-closes
///                             the connection (the peer sees a torn
///                             frame mid-payload).
///   net_drop_read(n) /      — the connection dies immediately before
///   net_drop_write(n)         the nth frame read/write (a mid-request
///                             disconnect; drives client retry).
///   net_chunk_writes(k)     — every frame write is split into k-byte
///                             send() calls (not a failure: a stressor
///                             for the short-write retry loop).
///
/// Frame-op counters are atomic — one injector is shared by every
/// session thread of a daemon, so "the nth frame write" counts wire
/// operations across the whole process, in order.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>

namespace hsbp::ckpt {

/// Thrown by FaultInjector::on_phase_boundary to simulate an abrupt
/// process death between phases. Library code never catches it; the
/// test harness does, then resumes from the checkpoint left behind.
struct SimulatedKill : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// Arm the nth (1-based) atomic write to fail cleanly.
  void fail_write(int nth) noexcept { fail_write_at_ = nth; }

  /// Arm the nth (1-based) atomic write to persist only `bytes` bytes.
  void truncate_write(int nth, std::size_t bytes) noexcept {
    truncate_at_ = nth;
    truncate_bytes_ = bytes;
  }

  /// Arm a SimulatedKill at the nth (1-based) phase boundary.
  void kill_at_phase(int nth) noexcept { kill_at_ = nth; }

  /// What the atomic writer must do for this write. Each call counts
  /// one write; when the result is Truncate, *truncate_bytes receives
  /// the byte budget.
  enum class WriteFault { None, Fail, Truncate };
  WriteFault on_write(std::size_t* truncate_bytes) noexcept;

  /// Called by the drivers after each outer phase (sbp) or pipeline
  /// stage (sample), after that boundary's checkpoint was written.
  /// \throws SimulatedKill when the armed boundary is reached.
  void on_phase_boundary();

  int writes_seen() const noexcept { return write_count_; }
  int phases_seen() const noexcept { return phase_count_; }

  // ----------------------------------------------------- network faults

  /// One injected behaviour for one frame-I/O operation.
  struct NetFault {
    enum class Kind {
      None,   ///< proceed normally
      Delay,  ///< sleep `delay_ms` before the operation
      Tear,   ///< write only the first `bytes` bytes, then hard-close
      Drop,   ///< hard-close the connection before the operation
      Chunk,  ///< split the write into `bytes`-sized send() calls
    };
    Kind kind = Kind::None;
    std::size_t bytes = 0;
    int delay_ms = 0;
  };

  /// Arm the nth (1-based, process-wide) frame read to stall `ms`.
  void net_delay_read(int nth, int ms) noexcept {
    net_delay_read_at_ = nth;
    net_delay_ms_ = ms;
  }

  /// Arm the nth (1-based) frame read to drop the connection first.
  void net_drop_read(int nth) noexcept { net_drop_read_at_ = nth; }

  /// Arm the nth (1-based) frame write to persist only `bytes` bytes of
  /// the frame (prefix included) before hard-closing the connection.
  void net_tear_write(int nth, std::size_t bytes) noexcept {
    net_tear_write_at_ = nth;
    net_tear_bytes_ = bytes;
  }

  /// Arm the nth (1-based) frame write to drop the connection first.
  void net_drop_write(int nth) noexcept { net_drop_write_at_ = nth; }

  /// Split EVERY frame write into `chunk`-byte send() calls (0 = off).
  void net_chunk_writes(std::size_t chunk) noexcept {
    net_chunk_bytes_ = chunk;
  }

  /// Consulted once per read_frame / write_frame call by the serve
  /// frame I/O when an injector is threaded through. Thread-safe.
  NetFault on_net_read() noexcept;
  NetFault on_net_write() noexcept;

  int net_reads_seen() const noexcept { return net_read_count_.load(); }
  int net_writes_seen() const noexcept { return net_write_count_.load(); }

 private:
  int write_count_ = 0;
  int phase_count_ = 0;
  int fail_write_at_ = 0;
  int truncate_at_ = 0;
  std::size_t truncate_bytes_ = 0;
  int kill_at_ = 0;

  std::atomic<int> net_read_count_{0};
  std::atomic<int> net_write_count_{0};
  int net_delay_read_at_ = 0;
  int net_delay_ms_ = 0;
  int net_drop_read_at_ = 0;
  int net_tear_write_at_ = 0;
  std::size_t net_tear_bytes_ = 0;
  int net_drop_write_at_ = 0;
  std::size_t net_chunk_bytes_ = 0;
};

}  // namespace hsbp::ckpt
