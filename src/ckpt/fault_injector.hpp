/// \file fault_injector.hpp
/// \brief Deterministic fault injection for the checkpoint subsystem.
///
/// The injector is a passive hook object threaded through
/// CheckpointConfig::fault (normally null). The durability tests arm it
/// to reproduce, deterministically, the three failures a long run meets
/// in practice:
///
///   fail_write(n)         — the nth atomic write dies before any byte
///                           reaches its destination (disk full, EIO);
///                           the previous checkpoint must survive.
///   truncate_write(n, k)  — the nth atomic write persists only its
///                           first k bytes yet still gets renamed into
///                           place (a torn write: rename was durable,
///                           data was not); the loader must reject it.
///   kill_at_phase(n)      — SimulatedKill is thrown from the nth
///                           phase/stage boundary, after that boundary's
///                           checkpoint was written — the moral
///                           equivalent of `kill -9` between phases.
///
/// Counters are 1-based and monotonically increasing across one run (or
/// across a pipeline and its nested sbp::run, which share the injector),
/// so "the nth write" is well-defined and reproducible.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace hsbp::ckpt {

/// Thrown by FaultInjector::on_phase_boundary to simulate an abrupt
/// process death between phases. Library code never catches it; the
/// test harness does, then resumes from the checkpoint left behind.
struct SimulatedKill : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// Arm the nth (1-based) atomic write to fail cleanly.
  void fail_write(int nth) noexcept { fail_write_at_ = nth; }

  /// Arm the nth (1-based) atomic write to persist only `bytes` bytes.
  void truncate_write(int nth, std::size_t bytes) noexcept {
    truncate_at_ = nth;
    truncate_bytes_ = bytes;
  }

  /// Arm a SimulatedKill at the nth (1-based) phase boundary.
  void kill_at_phase(int nth) noexcept { kill_at_ = nth; }

  /// What the atomic writer must do for this write. Each call counts
  /// one write; when the result is Truncate, *truncate_bytes receives
  /// the byte budget.
  enum class WriteFault { None, Fail, Truncate };
  WriteFault on_write(std::size_t* truncate_bytes) noexcept;

  /// Called by the drivers after each outer phase (sbp) or pipeline
  /// stage (sample), after that boundary's checkpoint was written.
  /// \throws SimulatedKill when the armed boundary is reached.
  void on_phase_boundary();

  int writes_seen() const noexcept { return write_count_; }
  int phases_seen() const noexcept { return phase_count_; }

 private:
  int write_count_ = 0;
  int phase_count_ = 0;
  int fail_write_at_ = 0;
  int truncate_at_ = 0;
  std::size_t truncate_bytes_ = 0;
  int kill_at_ = 0;
};

}  // namespace hsbp::ckpt
