/// \file atomic_file.hpp
/// \brief Crash-safe whole-file writes: temp file → flush/fsync →
/// rename, so a reader never observes a partially-written file under
/// the final name.
///
/// Every durable artifact of the system — checkpoints, assignment
/// files, CSV reports — goes through atomic_write_file. The protocol:
///
///   1. write the payload to `<path>.tmp`,
///   2. fsync the temp file (data must be on disk before the rename
///      makes it visible),
///   3. std::rename onto `<path>` (atomic within a POSIX filesystem),
///   4. best-effort fsync of the parent directory (so the rename itself
///      survives a power cut).
///
/// Any failure unlinks the temp file and throws util::IoError; the
/// previous contents of `path`, if any, are left untouched.
#pragma once

#include <string>
#include <string_view>

namespace hsbp::ckpt {

class FaultInjector;

/// Atomically replaces `path` with `payload`.
/// \param fault optional test hook (see fault_injector.hpp); a Truncate
/// fault deliberately persists a torn prefix to exercise readers.
/// \throws util::IoError on any OS-level failure (and on an injected
/// write failure).
void atomic_write_file(const std::string& path, std::string_view payload,
                       FaultInjector* fault = nullptr);

/// Reads a whole file into a string.
/// \throws util::IoError if the file cannot be opened or read.
std::string read_file(const std::string& path);

}  // namespace hsbp::ckpt
