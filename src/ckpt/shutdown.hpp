/// \file shutdown.hpp
/// \brief Graceful-shutdown flag for long runs.
///
/// install_shutdown_handlers() routes SIGINT/SIGTERM to a lock-free
/// atomic flag (async-signal-safe *and* safe to poll from worker
/// threads); the drivers poll shutdown_requested() at phase
/// and stage boundaries, finish the in-flight pass, write a final
/// checkpoint, and return the best-so-far partition with
/// `interrupted = true` instead of dying mid-write. A second signal
/// restores the default disposition, so an impatient ^C ^C still kills
/// the process.
///
/// request_shutdown()/clear_shutdown() drive the same flag without a
/// real signal — the deterministic path the tests use.
#pragma once

namespace hsbp::ckpt {

/// Installs SIGINT/SIGTERM handlers (idempotent).
void install_shutdown_handlers() noexcept;

/// True once a shutdown was requested by signal or request_shutdown().
bool shutdown_requested() noexcept;

/// Sets the flag as a signal would (tests, embedders).
void request_shutdown() noexcept;

/// Clears the flag (tests; call before reusing the process).
void clear_shutdown() noexcept;

}  // namespace hsbp::ckpt
