/// \file checkpoint.hpp
/// \brief Versioned, CRC-checksummed snapshot format for long runs.
///
/// One envelope, three payload kinds:
///
///   ┌──────────────────────────────────────────────────────────┐
///   │ magic "HSBPCKPT" (8)                                     │
///   │ u32 format version · u8 kind                             │
///   │   (1=sbp-run, 2=sample-pipe, 3=serve-snapshot)           │
///   │ u64 payload size · payload bytes                         │
///   │ u32 CRC-32 over everything between magic and this field  │
///   └──────────────────────────────────────────────────────────┘
///
/// All integers are little-endian; doubles are their IEEE-754 bit
/// patterns. Loaders check, in order: magic, version, kind, size,
/// CRC, then parse with a bounds-checked reader — a corrupt,
/// truncated, or version-mismatched file is always a util::DataError
/// with a message saying which check failed, never a crash or silent
/// garbage.
///
/// The sbp-run payload captures the complete outer-loop state: the
/// golden-ratio bracket's three partitions with their MDLs and block
/// counts, the accumulated counters/timings, every RNG stream's
/// xoshiro256** state, and a graph fingerprint (V, E, degree-sequence
/// hash) plus the (variant, seed) pair, so resuming against the wrong
/// graph or configuration fails loudly instead of continuing a
/// different chain.
///
/// The sample-pipeline payload records which SamBaS stage last
/// completed (partition or extrapolate) with that stage's outputs; the
/// cheap deterministic stages (sampling, fine-tune) are replayed on
/// resume rather than stored.
///
/// The serve-snapshot payload is a published snapshot of the serving
/// daemon (`hsbp serve`): the full edge list of the graph as served —
/// streamed INGEST batches included, which is why the edges are stored
/// rather than re-read from the original file — plus the partition,
/// MDL, and publish epoch. A resumed daemon rebuilds the CSR from the
/// edges and serves the exact snapshot it last published.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sbp/golden_search.hpp"
#include "sbp/sbp.hpp"
#include "util/rng.hpp"

namespace hsbp::ckpt {

class FaultInjector;

/// Bump when the payload layout changes; old files are rejected with a
/// version-mismatch diagnostic (no silent reinterpretation).
constexpr std::uint32_t kFormatVersion = 1;

/// Identifies the graph a checkpoint belongs to. The degree-sequence
/// hash catches same-size-different-structure swaps that (V, E) alone
/// would miss.
struct GraphFingerprint {
  std::int32_t num_vertices = 0;
  std::int64_t num_edges = 0;
  std::uint64_t degree_hash = 0;

  bool operator==(const GraphFingerprint&) const = default;
};

GraphFingerprint fingerprint(const graph::GraphView& graph);

/// \throws util::DataError if `saved` does not match the live graph.
void validate_fingerprint(const GraphFingerprint& saved,
                          const graph::GraphView& graph,
                          const std::string& path);

// ------------------------------------------------------------ sbp-run

/// Full outer-loop state of sbp::run at a phase boundary.
struct SbpCheckpoint {
  GraphFingerprint graph;
  std::uint32_t variant = 0;  ///< static_cast of sbp::Variant
  std::uint64_t seed = 0;
  sbp::SbpStats stats;        ///< counters + seconds accumulated so far
  std::vector<util::Rng::State> rng_streams;
  sbp::GoldenSearch::State search;
};

/// Atomically writes the checkpoint (temp → fsync → rename).
/// \throws util::IoError on write failure.
void save_sbp_checkpoint(const std::string& path, const SbpCheckpoint& ckpt,
                         FaultInjector* fault = nullptr);

/// \throws util::IoError if unreadable, util::DataError if invalid.
SbpCheckpoint load_sbp_checkpoint(const std::string& path);

// ----------------------------------------------------- sample-pipeline

/// Stage markers for SampleCheckpoint (numbered as in the SamBaS
/// pipeline; stages 1/sample and 4/fine-tune are replayed, not stored).
enum class SampleStage : std::uint8_t {
  PartitionDone = 2,    ///< subgraph fit finished
  ExtrapolateDone = 3,  ///< full-graph membership available
};

struct SampleCheckpoint {
  GraphFingerprint graph;
  std::uint32_t variant = 0;
  std::uint64_t seed = 0;
  std::uint32_t sampler = 0;  ///< static_cast of sample::SamplerKind
  double fraction = 0.0;
  SampleStage stage = SampleStage::PartitionDone;

  // Stage ≥ PartitionDone: the subgraph fit.
  std::vector<std::int32_t> sample_assignment;
  std::int32_t sample_num_blocks = 0;
  double sample_mdl = 0.0;

  // Stage ≥ ExtrapolateDone: the full-graph membership.
  std::vector<std::int32_t> full_assignment;
  std::int32_t full_num_blocks = 0;
  double full_mdl = 0.0;
  std::int64_t frontier_assigned = 0;
  std::int64_t isolated_assigned = 0;
};

void save_sample_checkpoint(const std::string& path,
                            const SampleCheckpoint& ckpt,
                            FaultInjector* fault = nullptr);

SampleCheckpoint load_sample_checkpoint(const std::string& path);

// ------------------------------------------------------ serve-snapshot

/// One published snapshot of the serving daemon: enough to rebuild the
/// graph as served (original file plus every ingested batch) and the
/// partition bit-exact. `graph` fingerprints the *stored* edge list so
/// a corrupted or hand-swapped file fails loudly on load.
struct ServeCheckpoint {
  GraphFingerprint graph;
  std::uint64_t epoch = 0;
  std::int32_t num_vertices = 0;
  std::vector<graph::Edge> edges;
  std::vector<std::int32_t> assignment;
  std::int32_t num_blocks = 0;
  double mdl = 0.0;
};

void save_serve_checkpoint(const std::string& path,
                           const ServeCheckpoint& ckpt,
                           FaultInjector* fault = nullptr);

/// \throws util::IoError if unreadable, util::DataError if invalid —
/// including when the stored edge list no longer matches the stored
/// fingerprint or the assignment does not cover the vertex set.
ServeCheckpoint load_serve_checkpoint(const std::string& path);

// ------------------------------------------------------------- helpers

/// CRC-32 (IEEE 802.3, reflected) — exposed for the format tests.
std::uint32_t crc32(std::string_view data) noexcept;

}  // namespace hsbp::ckpt
