/// \file sample_sbp.hpp
/// \brief The SamBaS pipeline (arXiv:2108.06651) on top of sbp::run:
///
///   sample ──▶ partition (any sbp::Variant) ──▶ extrapolate ──▶ fine-tune
///
/// The expensive agglomerative fit runs only on the induced sample
/// subgraph; memberships are extrapolated to the rest of the graph and
/// polished by a bounded number of full-graph MCMC passes (the same
/// phase kernels as the core algorithms). Because stage 2 takes a full
/// SbpConfig, the pipeline composes with every variant — H-SBP or B-SBP
/// on the sample is the paper-lineage configuration.
///
/// Typical use:
/// \code
///   hsbp::sample::SampleConfig config;
///   config.base.variant = hsbp::sbp::Variant::Hybrid;
///   config.fraction = 0.3;
///   const auto result = hsbp::sample::run(graph, config);
///   // result.assignment covers every vertex of `graph`
///   // result.timings has the per-stage breakdown
/// \endcode
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/config.hpp"
#include "sample/extrapolate.hpp"
#include "sample/samplers.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::sample {

struct SampleConfig {
  /// Variant, seed, threads, β, … used for the sample fit; the seed also
  /// drives the sampler, and β/threads the fine-tune passes.
  sbp::SbpConfig base;

  SamplerKind sampler = SamplerKind::DegreeWeighted;

  /// Fraction of vertices sampled, in (0, 1]. 1.0 degenerates to a plain
  /// full-graph fit (plus fine-tune, which can only keep or lower MDL).
  double fraction = 0.5;

  /// Upper bound on full-graph fine-tune MCMC passes (0 disables the
  /// stage; the convergence window can stop it earlier).
  int finetune_max_iterations = 20;
  /// Convergence threshold t for the fine-tune pass loop.
  double finetune_threshold = 1e-4;
};

/// Wall-clock seconds per pipeline stage (the sampling counterpart of
/// the paper's Fig. 2 phase breakdown).
struct StageTimings {
  double sample_seconds = 0.0;
  double partition_seconds = 0.0;
  double extrapolate_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;
};

struct SamplePipelineResult {
  /// Full-graph membership: every vertex in [0, num_blocks).
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
  double mdl = 0.0;  ///< full-graph MDL of `assignment`

  StageTimings timings;

  graph::Vertex sample_vertices = 0;    ///< induced subgraph size
  graph::EdgeCount sample_edges = 0;
  sbp::SbpResult sample_result;         ///< stage-2 fit of the subgraph
  std::int64_t frontier_assigned = 0;   ///< extrapolated via BFS plurality
  std::int64_t isolated_assigned = 0;   ///< extrapolated via fallback block
  sbp::McmcPhaseStats finetune;         ///< stage-4 counters
  /// True when a graceful shutdown cut the pipeline short; `assignment`
  /// is still a full-graph partition (extrapolated from the best
  /// sample fit so far) and the on-disk checkpoint is resumable.
  bool interrupted = false;
};

/// Runs the full pipeline. Deterministic in config.base.seed (sampler,
/// subgraph fit, and fine-tune all derive from it).
/// \throws std::invalid_argument on an empty graph, fraction outside
/// (0, 1], or negative finetune_max_iterations.
SamplePipelineResult run(const graph::Graph& graph,
                         const SampleConfig& config);

/// Same, with durability: the pipeline checkpoints between its stages —
/// the expensive subgraph fit checkpoints its own outer loop to
/// `save_path + ".stage2"`, and completed stages persist their outputs
/// to `save_path` — so a late-stage failure no longer throws away the
/// earlier stages. The cheap deterministic stages (sampling, fine-tune)
/// are replayed on resume rather than stored; a killed-and-resumed
/// seeded pipeline reproduces the uninterrupted result exactly.
/// \throws util::IoError / util::DataError as sbp::run's checkpointing
/// overload does.
SamplePipelineResult run(const graph::Graph& graph,
                         const SampleConfig& config,
                         const ckpt::CheckpointConfig& checkpoint);

}  // namespace hsbp::sample
