/// \file extrapolate.hpp
/// \brief Membership propagation from a partitioned sample to the full
/// graph — SamBaS's "extrapolate" stage (arXiv:2108.06651 §III-C).
///
/// Sampled vertices keep the block the subgraph fit gave them. The
/// unsampled remainder is labeled over a multi-source BFS frontier
/// rooted at the sampled core: when a vertex is first reached, it joins
/// the plurality block among its already-labeled neighbors (edge
/// multiplicity counts; ties break toward the smaller block id, so the
/// stage is deterministic). This is the greedy argmax of the ΔMDL a
/// single-vertex attachment can change — the likelihood term only moves
/// through the vertex's edge counts into each block. Unsampled vertices
/// in components with no sampled vertex have no signal at all and join
/// the globally best (largest) block; the fine-tune stage is what moves
/// them somewhere sensible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blockmodel/blockmodel.hpp"
#include "graph/view.hpp"
#include "sample/samplers.hpp"

namespace hsbp::sample {

struct ExtrapolationResult {
  /// Full-graph membership: every vertex in [0, num_blocks).
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
  /// Blockmodel rebuilt from `assignment` (the fine-tune start state).
  blockmodel::Blockmodel model;
  /// Unsampled vertices labeled via the BFS frontier…
  std::int64_t frontier_assigned = 0;
  /// …and via the isolated-vertex fallback (no path to the core).
  std::int64_t isolated_assigned = 0;
};

/// Propagates `sample_assignment` (a partition of `sampled.subgraph`
/// into [0, num_blocks)) onto every vertex of `graph`.
/// \throws std::invalid_argument if sizes or labels are inconsistent.
ExtrapolationResult extrapolate(const graph::GraphView& graph,
                                const SampledGraph& sampled,
                                std::span<const std::int32_t> sample_assignment,
                                blockmodel::BlockId num_blocks);

}  // namespace hsbp::sample
