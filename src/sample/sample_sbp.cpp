#include "sample/sample_sbp.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "blockmodel/mdl.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/fault_injector.hpp"
#include "ckpt/shutdown.hpp"
#include "graph/degree.hpp"
#include "sbp/mcmc_phases.hpp"
#include "sbp/vertex_selection.hpp"
#include "util/errors.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace hsbp::sample {

using blockmodel::Blockmodel;
using graph::Graph;
using graph::Vertex;

namespace {

/// Suffix of the nested sbp::run checkpoint the subgraph fit writes
/// while stage 2 is still in flight.
constexpr const char* kStage2Suffix = ".stage2";

void validate(const Graph& graph, const SampleConfig& config) {
  if (graph.num_vertices() <= 0) {
    throw std::invalid_argument("sample::run: empty graph");
  }
  if (graph.num_edges() <= 0) {
    throw std::invalid_argument("sample::run: graph has no edges");
  }
  if (!(config.fraction > 0.0) || config.fraction > 1.0) {
    throw std::invalid_argument("sample::run: fraction in (0, 1]");
  }
  if (config.finetune_max_iterations < 0) {
    throw std::invalid_argument(
        "sample::run: finetune_max_iterations >= 0");
  }
}

/// Stage 2: fit the induced subgraph. A too-aggressive sample can leave
/// no edges at all — then there is nothing to fit and every sampled
/// vertex keeps its own block (the merge work happens implicitly in the
/// fine-tune stage).
sbp::SbpResult partition_sample(const Graph& subgraph,
                                const sbp::SbpConfig& base,
                                const ckpt::CheckpointConfig& ck) {
  if (subgraph.num_edges() > 0) return sbp::run(subgraph, base, ck);
  sbp::SbpResult identity;
  identity.assignment.resize(
      static_cast<std::size_t>(subgraph.num_vertices()));
  std::iota(identity.assignment.begin(), identity.assignment.end(), 0);
  identity.num_blocks = subgraph.num_vertices();
  return identity;
}

/// Stage 4: bounded full-graph MCMC passes with the variant's own phase
/// kernel, converging on the same ΔMDL window rule as the core driver.
sbp::PhaseOutcome finetune(const Graph& graph, Blockmodel& model,
                           const SampleConfig& config) {
  sbp::McmcSettings settings;
  settings.beta = config.base.beta;
  settings.threshold = config.finetune_threshold;
  settings.max_iterations = config.finetune_max_iterations;
  settings.schedule = config.base.schedule;

  // An independent deterministic stream: the sampler consumed
  // Rng(seed), the subgraph fit consumed RngPool(seed).
  util::SplitMix64 mix(config.base.seed);
  mix.next();
  util::RngPool rngs(mix.next(),
                     static_cast<std::size_t>(
                         std::max(1, omp_get_max_threads())));

  switch (config.base.variant) {
    case sbp::Variant::Metropolis:
      return sbp::metropolis_hastings_phase(graph, model, settings, rngs);
    case sbp::Variant::AsyncGibbs:
      return sbp::async_gibbs_phase(graph, model, settings, rngs);
    case sbp::Variant::Hybrid: {
      const graph::DegreeSplit split = sbp::select_hybrid_vertices(
          graph, config.base.hybrid_fraction, config.base.hybrid_selection,
          config.base.seed);
      return sbp::hybrid_phase(graph, model, settings, split, rngs);
    }
    case sbp::Variant::BatchedGibbs:
      return sbp::batched_gibbs_phase(graph, model, settings,
                                      config.base.batch_count, rngs);
  }
  throw std::logic_error("sample::run: unknown variant");
}

ckpt::SampleCheckpoint pipeline_checkpoint(const Graph& graph,
                                           const SampleConfig& config,
                                           ckpt::SampleStage stage,
                                           const SamplePipelineResult& r) {
  ckpt::SampleCheckpoint snapshot;
  snapshot.graph = ckpt::fingerprint(graph);
  snapshot.variant = static_cast<std::uint32_t>(config.base.variant);
  snapshot.seed = config.base.seed;
  snapshot.sampler = static_cast<std::uint32_t>(config.sampler);
  snapshot.fraction = config.fraction;
  snapshot.stage = stage;
  snapshot.sample_assignment = r.sample_result.assignment;
  snapshot.sample_num_blocks = r.sample_result.num_blocks;
  snapshot.sample_mdl = r.sample_result.mdl;
  if (stage >= ckpt::SampleStage::ExtrapolateDone) {
    snapshot.full_assignment = r.assignment;
    snapshot.full_num_blocks = r.num_blocks;
    snapshot.full_mdl = r.mdl;
    snapshot.frontier_assigned = r.frontier_assigned;
    snapshot.isolated_assigned = r.isolated_assigned;
  }
  return snapshot;
}

}  // namespace

SamplePipelineResult run(const Graph& graph, const SampleConfig& config) {
  return run(graph, config, ckpt::CheckpointConfig{});
}

SamplePipelineResult run(const Graph& graph, const SampleConfig& config,
                         const ckpt::CheckpointConfig& ck) {
  validate(graph, config);
  if (config.base.num_threads > 0) {
    omp_set_num_threads(config.base.num_threads);
  }

  // Resolve what the resume path holds: a pipeline snapshot (a stage
  // boundary was reached), a partial stage-2 fit (killed mid-fit), or
  // nothing (fail loudly rather than silently restart).
  std::optional<ckpt::SampleCheckpoint> resumed;
  std::string inner_resume;
  if (!ck.resume_path.empty()) {
    const std::string stage2_path = ck.resume_path + kStage2Suffix;
    if (std::filesystem::exists(ck.resume_path)) {
      ckpt::SampleCheckpoint loaded =
          ckpt::load_sample_checkpoint(ck.resume_path);
      ckpt::validate_fingerprint(loaded.graph, graph, ck.resume_path);
      if (loaded.variant !=
              static_cast<std::uint32_t>(config.base.variant) ||
          loaded.seed != config.base.seed ||
          loaded.sampler != static_cast<std::uint32_t>(config.sampler) ||
          loaded.fraction != config.fraction) {
        throw util::DataError(
            "checkpoint '" + ck.resume_path +
            "' was written by a different pipeline configuration "
            "(variant/seed/sampler/fraction mismatch) — resuming it "
            "would splice two different chains");
      }
      resumed = std::move(loaded);
    } else if (std::filesystem::exists(stage2_path)) {
      inner_resume = stage2_path;
    } else {
      throw util::IoError("no checkpoint found at '" + ck.resume_path +
                          "' (nor a partial fit at '" + stage2_path + "')");
    }
  }

  util::Timer total;
  SamplePipelineResult result;

  // Stage 1 — sample. Deterministic in the seed and cheap, so it is
  // replayed on resume instead of stored (the id maps are needed for
  // extrapolation either way).
  util::Timer stage;
  const SampledGraph sampled = sample_graph(
      graph, config.sampler, config.fraction, config.base.seed);
  result.timings.sample_seconds = stage.elapsed();
  result.sample_vertices = sampled.subgraph.num_vertices();
  result.sample_edges = sampled.subgraph.num_edges();

  // Stage 2 — partition the induced subgraph with the configured
  // variant. The nested sbp::run checkpoints its own outer loop to
  // `save_path + ".stage2"` so even a mid-fit kill is resumable.
  stage.reset();
  if (resumed.has_value()) {
    if (resumed->sample_assignment.size() !=
        static_cast<std::size_t>(sampled.subgraph.num_vertices())) {
      throw util::DataError(
          "checkpoint '" + ck.resume_path + "' holds a fit of " +
          std::to_string(resumed->sample_assignment.size()) +
          " sampled vertices but the replayed sample has " +
          std::to_string(sampled.subgraph.num_vertices()));
    }
    result.sample_result.assignment = resumed->sample_assignment;
    result.sample_result.num_blocks = resumed->sample_num_blocks;
    result.sample_result.mdl = resumed->sample_mdl;
  } else {
    ckpt::CheckpointConfig inner;
    if (!ck.save_path.empty()) inner.save_path = ck.save_path + kStage2Suffix;
    inner.every_phases = ck.every_phases;
    inner.resume_path = inner_resume;
    inner.fault = ck.fault;
    result.sample_result =
        partition_sample(sampled.subgraph, config.base, inner);
    result.timings.partition_seconds = stage.elapsed();

    if (!result.sample_result.interrupted) {
      // Stage-2 boundary: persist the completed fit under the pipeline
      // path first, then retire the partial-fit file (ordering matters:
      // a crash between the two leaves both, and the pipeline snapshot
      // takes precedence on resume).
      if (!ck.save_path.empty()) {
        ckpt::save_sample_checkpoint(
            ck.save_path,
            pipeline_checkpoint(graph, config,
                                ckpt::SampleStage::PartitionDone, result),
            ck.fault);
        std::remove((ck.save_path + kStage2Suffix).c_str());
      }
      if (ck.fault != nullptr) ck.fault->on_phase_boundary();
    }
  }

  // Stage 3 — extrapolate memberships to the unsampled remainder.
  stage.reset();
  Blockmodel model;
  double extrapolated_mdl = 0.0;
  if (resumed.has_value() &&
      resumed->stage >= ckpt::SampleStage::ExtrapolateDone) {
    result.assignment = resumed->full_assignment;
    result.num_blocks = resumed->full_num_blocks;
    result.mdl = resumed->full_mdl;
    result.frontier_assigned = resumed->frontier_assigned;
    result.isolated_assigned = resumed->isolated_assigned;
    model = Blockmodel::from_assignment(graph, result.assignment,
                                        result.num_blocks);
    extrapolated_mdl = resumed->full_mdl;
  } else {
    ExtrapolationResult extrapolated =
        extrapolate(graph, sampled, result.sample_result.assignment,
                    result.sample_result.num_blocks);
    result.timings.extrapolate_seconds = stage.elapsed();
    result.frontier_assigned = extrapolated.frontier_assigned;
    result.isolated_assigned = extrapolated.isolated_assigned;

    model = std::move(extrapolated.model);
    extrapolated_mdl =
        blockmodel::mdl(model, graph.num_vertices(), graph.num_edges());
    result.assignment = std::move(extrapolated.assignment);
    result.num_blocks = extrapolated.num_blocks;
    result.mdl = extrapolated_mdl;

    if (result.sample_result.interrupted) {
      // Graceful shutdown mid-fit: the partial fit lives on in the
      // ".stage2" snapshot; hand back the extrapolated best-so-far.
      result.interrupted = true;
      result.timings.total_seconds = total.elapsed();
      return result;
    }
    if (!ck.save_path.empty()) {
      ckpt::save_sample_checkpoint(
          ck.save_path,
          pipeline_checkpoint(graph, config,
                              ckpt::SampleStage::ExtrapolateDone, result),
          ck.fault);
    }
    if (ck.fault != nullptr) ck.fault->on_phase_boundary();
  }

  // Stage 4 — fine-tune over the full graph; keep the better of the
  // pre/post partitions so the stage can never lose quality (an MH pass
  // may accept uphill moves and stop there). Bounded and deterministic
  // in the seed, so a resume replays it rather than restoring it.
  if (ckpt::shutdown_requested()) {
    result.interrupted = true;
  } else if (config.finetune_max_iterations > 0) {
    stage.reset();
    const sbp::PhaseOutcome outcome = finetune(graph, model, config);
    result.finetune = outcome.stats;
    if (outcome.stats.final_mdl <= extrapolated_mdl) {
      result.assignment = model.copy_assignment();
      result.mdl = outcome.stats.final_mdl;
    }
    result.timings.finetune_seconds = stage.elapsed();
  }

  result.timings.total_seconds = total.elapsed();
  HSBP_LOG_DEBUG("sample pipeline: %s frac %.2f sample V=%d E=%lld "
                 "blocks %d mdl %.2f",
                 sampler_name(config.sampler), config.fraction,
                 result.sample_vertices,
                 static_cast<long long>(result.sample_edges),
                 result.num_blocks, result.mdl);
  return result;
}

}  // namespace hsbp::sample
