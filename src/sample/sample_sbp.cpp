#include "sample/sample_sbp.hpp"

#include <omp.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "blockmodel/mdl.hpp"
#include "graph/degree.hpp"
#include "sbp/mcmc_phases.hpp"
#include "sbp/vertex_selection.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace hsbp::sample {

using blockmodel::Blockmodel;
using graph::Graph;
using graph::Vertex;

namespace {

void validate(const Graph& graph, const SampleConfig& config) {
  if (graph.num_vertices() <= 0) {
    throw std::invalid_argument("sample::run: empty graph");
  }
  if (graph.num_edges() <= 0) {
    throw std::invalid_argument("sample::run: graph has no edges");
  }
  if (!(config.fraction > 0.0) || config.fraction > 1.0) {
    throw std::invalid_argument("sample::run: fraction in (0, 1]");
  }
  if (config.finetune_max_iterations < 0) {
    throw std::invalid_argument(
        "sample::run: finetune_max_iterations >= 0");
  }
}

/// Stage 2: fit the induced subgraph. A too-aggressive sample can leave
/// no edges at all — then there is nothing to fit and every sampled
/// vertex keeps its own block (the merge work happens implicitly in the
/// fine-tune stage).
sbp::SbpResult partition_sample(const Graph& subgraph,
                                const sbp::SbpConfig& base) {
  if (subgraph.num_edges() > 0) return sbp::run(subgraph, base);
  sbp::SbpResult identity;
  identity.assignment.resize(
      static_cast<std::size_t>(subgraph.num_vertices()));
  std::iota(identity.assignment.begin(), identity.assignment.end(), 0);
  identity.num_blocks = subgraph.num_vertices();
  return identity;
}

/// Stage 4: bounded full-graph MCMC passes with the variant's own phase
/// kernel, converging on the same ΔMDL window rule as the core driver.
sbp::PhaseOutcome finetune(const Graph& graph, Blockmodel& model,
                           const SampleConfig& config) {
  sbp::McmcSettings settings;
  settings.beta = config.base.beta;
  settings.threshold = config.finetune_threshold;
  settings.max_iterations = config.finetune_max_iterations;
  settings.dynamic_schedule = config.base.dynamic_schedule;

  // An independent deterministic stream: the sampler consumed
  // Rng(seed), the subgraph fit consumed RngPool(seed).
  util::SplitMix64 mix(config.base.seed);
  mix.next();
  util::RngPool rngs(mix.next(),
                     static_cast<std::size_t>(
                         std::max(1, omp_get_max_threads())));

  switch (config.base.variant) {
    case sbp::Variant::Metropolis:
      return sbp::metropolis_hastings_phase(graph, model, settings, rngs);
    case sbp::Variant::AsyncGibbs:
      return sbp::async_gibbs_phase(graph, model, settings, rngs);
    case sbp::Variant::Hybrid: {
      const graph::DegreeSplit split = sbp::select_hybrid_vertices(
          graph, config.base.hybrid_fraction, config.base.hybrid_selection,
          config.base.seed);
      return sbp::hybrid_phase(graph, model, settings, split, rngs);
    }
    case sbp::Variant::BatchedGibbs:
      return sbp::batched_gibbs_phase(graph, model, settings,
                                      config.base.batch_count, rngs);
  }
  throw std::logic_error("sample::run: unknown variant");
}

}  // namespace

SamplePipelineResult run(const Graph& graph, const SampleConfig& config) {
  validate(graph, config);
  if (config.base.num_threads > 0) {
    omp_set_num_threads(config.base.num_threads);
  }

  util::Timer total;
  SamplePipelineResult result;

  // Stage 1 — sample.
  util::Timer stage;
  const SampledGraph sampled = sample_graph(
      graph, config.sampler, config.fraction, config.base.seed);
  result.timings.sample_seconds = stage.elapsed();
  result.sample_vertices = sampled.subgraph.num_vertices();
  result.sample_edges = sampled.subgraph.num_edges();

  // Stage 2 — partition the induced subgraph with the configured variant.
  stage.reset();
  result.sample_result = partition_sample(sampled.subgraph, config.base);
  result.timings.partition_seconds = stage.elapsed();

  // Stage 3 — extrapolate memberships to the unsampled remainder.
  stage.reset();
  ExtrapolationResult extrapolated =
      extrapolate(graph, sampled, result.sample_result.assignment,
                  result.sample_result.num_blocks);
  result.timings.extrapolate_seconds = stage.elapsed();
  result.frontier_assigned = extrapolated.frontier_assigned;
  result.isolated_assigned = extrapolated.isolated_assigned;

  Blockmodel model = std::move(extrapolated.model);
  const double extrapolated_mdl =
      blockmodel::mdl(model, graph.num_vertices(), graph.num_edges());
  result.assignment = std::move(extrapolated.assignment);
  result.num_blocks = extrapolated.num_blocks;
  result.mdl = extrapolated_mdl;

  // Stage 4 — fine-tune over the full graph; keep the better of the
  // pre/post partitions so the stage can never lose quality (an MH pass
  // may accept uphill moves and stop there).
  if (config.finetune_max_iterations > 0) {
    stage.reset();
    const sbp::PhaseOutcome outcome = finetune(graph, model, config);
    result.finetune = outcome.stats;
    if (outcome.stats.final_mdl <= extrapolated_mdl) {
      result.assignment = model.copy_assignment();
      result.mdl = outcome.stats.final_mdl;
    }
    result.timings.finetune_seconds = stage.elapsed();
  }

  result.timings.total_seconds = total.elapsed();
  HSBP_LOG_DEBUG("sample pipeline: %s frac %.2f sample V=%d E=%lld "
                 "blocks %d mdl %.2f",
                 sampler_name(config.sampler), config.fraction,
                 result.sample_vertices,
                 static_cast<long long>(result.sample_edges),
                 result.num_blocks, result.mdl);
  return result;
}

}  // namespace hsbp::sample
