#include "sample/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "graph/builder.hpp"
#include "graph/degree.hpp"

namespace hsbp::sample {

using graph::EdgeCount;
using graph::GraphView;
using graph::Vertex;

const char* sampler_name(SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::UniformRandom: return "uniform";
    case SamplerKind::DegreeWeighted: return "degree";
    case SamplerKind::RandomEdge: return "edge";
    case SamplerKind::ExpansionSnowball: return "snowball";
  }
  return "?";
}

SamplerKind parse_sampler(const std::string& name) {
  for (const SamplerKind kind : all_sampler_kinds()) {
    if (name == sampler_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown sampler '" + name +
                              "' (uniform|degree|edge|snowball)");
}

const std::vector<SamplerKind>& all_sampler_kinds() {
  static const std::vector<SamplerKind> kinds = {
      SamplerKind::UniformRandom, SamplerKind::DegreeWeighted,
      SamplerKind::RandomEdge, SamplerKind::ExpansionSnowball};
  return kinds;
}

Vertex sample_size(Vertex num_vertices, double fraction) {
  if (num_vertices <= 0) {
    throw std::invalid_argument("sample_size: empty graph");
  }
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("sample_size: fraction in (0, 1]");
  }
  const auto target = static_cast<Vertex>(
      std::ceil(fraction * static_cast<double>(num_vertices)));
  return std::clamp(target, Vertex{1}, num_vertices);
}

namespace {

/// Fills `out` up to `target` with uniformly random vertices not yet in
/// the sample — the shared fallback for strategies whose own rule can
/// run dry (edge sampling cannot reach isolated vertices, snowball can
/// exhaust every component). Deterministic: partial Fisher-Yates over
/// the not-yet-sampled ids in ascending order.
void fill_uniform_remainder(const GraphView& graph, Vertex target,
                            std::vector<char>& in_sample,
                            std::vector<Vertex>& out, util::Rng& rng) {
  if (static_cast<Vertex>(out.size()) >= target) return;
  std::vector<Vertex> pool;
  pool.reserve(static_cast<std::size_t>(graph.num_vertices()) - out.size());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (!in_sample[static_cast<std::size_t>(v)]) pool.push_back(v);
  }
  const auto need = static_cast<std::size_t>(target) - out.size();
  for (std::size_t i = 0; i < need; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_int(pool.size() - i));
    std::swap(pool[i], pool[j]);
    in_sample[static_cast<std::size_t>(pool[i])] = 1;
    out.push_back(pool[i]);
  }
}

class UniformRandomSampler final : public Sampler {
 public:
  SamplerKind kind() const noexcept override {
    return SamplerKind::UniformRandom;
  }

  std::vector<Vertex> select(const GraphView& graph, Vertex target,
                             util::Rng& rng) const override {
    std::vector<Vertex> ids(static_cast<std::size_t>(graph.num_vertices()));
    std::iota(ids.begin(), ids.end(), Vertex{0});
    for (std::size_t i = 0; i < static_cast<std::size_t>(target); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_int(ids.size() - i));
      std::swap(ids[i], ids[j]);
    }
    ids.resize(static_cast<std::size_t>(target));
    return ids;
  }
};

class DegreeWeightedSampler final : public Sampler {
 public:
  SamplerKind kind() const noexcept override {
    return SamplerKind::DegreeWeighted;
  }

  /// Weighted sampling without replacement via Efraimidis–Spirakis
  /// reservoir keys: each vertex draws key = u^(1/w) with
  /// w = degree(v)+1 (the +1 keeps isolated vertices reachable); the
  /// `target` largest keys win. One pass, no rejection loop, exactly
  /// `target` distinct vertices for any fraction.
  std::vector<Vertex> select(const GraphView& graph, Vertex target,
                             util::Rng& rng) const override {
    const Vertex n = graph.num_vertices();
    std::vector<std::pair<double, Vertex>> keys;
    keys.reserve(static_cast<std::size_t>(n));
    for (Vertex v = 0; v < n; ++v) {
      const double weight = static_cast<double>(graph.degree(v)) + 1.0;
      // log(u)/w is a monotone transform of u^(1/w); cheaper and immune
      // to double underflow on huge hub degrees.
      const double key =
          std::log(std::max(rng.uniform(), 1e-300)) / weight;
      keys.emplace_back(key, v);
    }
    std::nth_element(keys.begin(),
                     keys.begin() + static_cast<std::ptrdiff_t>(target) - 1,
                     keys.end(), [](const auto& a, const auto& b) {
                       return a.first > b.first ||
                              (a.first == b.first && a.second < b.second);
                     });
    std::vector<Vertex> out;
    out.reserve(static_cast<std::size_t>(target));
    for (std::size_t i = 0; i < static_cast<std::size_t>(target); ++i) {
      out.push_back(keys[i].second);
    }
    return out;
  }
};

class RandomEdgeSampler final : public Sampler {
 public:
  SamplerKind kind() const noexcept override {
    return SamplerKind::RandomEdge;
  }

  std::vector<Vertex> select(const GraphView& graph, Vertex target,
                             util::Rng& rng) const override {
    const auto edges = graph.edges();
    std::vector<char> in_sample(
        static_cast<std::size_t>(graph.num_vertices()), 0);
    std::vector<Vertex> out;
    out.reserve(static_cast<std::size_t>(target));
    const auto take = [&](Vertex v) {
      if (static_cast<Vertex>(out.size()) >= target) return;
      if (in_sample[static_cast<std::size_t>(v)]) return;
      in_sample[static_cast<std::size_t>(v)] = 1;
      out.push_back(v);
    };
    // Each draw adds at most 2 new vertices; cap the number of fruitless
    // draws so graphs whose edges never reach `target` distinct
    // endpoints (isolated vertices) terminate.
    const std::uint64_t max_draws =
        edges.empty() ? 0 : 16 * static_cast<std::uint64_t>(target) + 64;
    for (std::uint64_t draw = 0;
         draw < max_draws && static_cast<Vertex>(out.size()) < target;
         ++draw) {
      const auto& edge =
          edges[static_cast<std::size_t>(rng.uniform_int(edges.size()))];
      take(edge.first);
      take(edge.second);
    }
    fill_uniform_remainder(graph, target, in_sample, out, rng);
    return out;
  }
};

class ExpansionSnowballSampler final : public Sampler {
 public:
  SamplerKind kind() const noexcept override {
    return SamplerKind::ExpansionSnowball;
  }

  std::vector<Vertex> select(const GraphView& graph, Vertex target,
                             util::Rng& rng) const override {
    const Vertex n = graph.num_vertices();
    std::vector<char> in_sample(static_cast<std::size_t>(n), 0);
    std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
    std::vector<Vertex> frontier;
    std::vector<Vertex> out;
    out.reserve(static_cast<std::size_t>(target));

    // Seed order for reseeding after a component is exhausted: a random
    // permutation consumed left to right (deterministic, no rejection).
    std::vector<Vertex> seeds(static_cast<std::size_t>(n));
    std::iota(seeds.begin(), seeds.end(), Vertex{0});
    {
      std::vector<std::int32_t> tmp(seeds.begin(), seeds.end());
      rng.shuffle(tmp);
      std::copy(tmp.begin(), tmp.end(), seeds.begin());
    }
    std::size_t next_seed = 0;

    const auto absorb = [&](Vertex v) {
      in_sample[static_cast<std::size_t>(v)] = 1;
      out.push_back(v);
      const auto push = [&](Vertex u) {
        if (in_sample[static_cast<std::size_t>(u)] ||
            in_frontier[static_cast<std::size_t>(u)]) {
          return;
        }
        in_frontier[static_cast<std::size_t>(u)] = 1;
        frontier.push_back(u);
      };
      for (const Vertex u : graph.out_neighbors(v)) push(u);
      for (const Vertex u : graph.in_neighbors(v)) push(u);
    };

    while (static_cast<Vertex>(out.size()) < target) {
      if (frontier.empty()) {
        while (in_sample[static_cast<std::size_t>(seeds[next_seed])]) {
          ++next_seed;
        }
        absorb(seeds[next_seed]);
        continue;
      }
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(frontier.size()));
      const Vertex v = frontier[i];
      frontier[i] = frontier.back();
      frontier.pop_back();
      in_frontier[static_cast<std::size_t>(v)] = 0;
      absorb(v);
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Sampler> make_sampler(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::UniformRandom:
      return std::make_unique<UniformRandomSampler>();
    case SamplerKind::DegreeWeighted:
      return std::make_unique<DegreeWeightedSampler>();
    case SamplerKind::RandomEdge:
      return std::make_unique<RandomEdgeSampler>();
    case SamplerKind::ExpansionSnowball:
      return std::make_unique<ExpansionSnowballSampler>();
  }
  throw std::invalid_argument("make_sampler: unknown kind");
}

SampledGraph induced_subgraph(const GraphView& graph,
                              std::vector<Vertex> vertices) {
  std::sort(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i] < 0 || vertices[i] >= graph.num_vertices()) {
      throw std::invalid_argument("induced_subgraph: vertex out of range");
    }
    if (i > 0 && vertices[i] == vertices[i - 1]) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex id");
    }
  }

  SampledGraph sampled;
  sampled.to_full = std::move(vertices);
  sampled.to_sample.assign(static_cast<std::size_t>(graph.num_vertices()),
                           Vertex{-1});
  for (std::size_t s = 0; s < sampled.to_full.size(); ++s) {
    sampled.to_sample[static_cast<std::size_t>(sampled.to_full[s])] =
        static_cast<Vertex>(s);
  }

  graph::GraphBuilder builder(static_cast<Vertex>(sampled.to_full.size()));
  for (std::size_t s = 0; s < sampled.to_full.size(); ++s) {
    const Vertex v = sampled.to_full[s];
    for (const Vertex u : graph.out_neighbors(v)) {
      const Vertex t = sampled.to_sample[static_cast<std::size_t>(u)];
      if (t >= 0) builder.add_edge(static_cast<Vertex>(s), t);
    }
  }
  sampled.subgraph = builder.build();
  return sampled;
}

SampledGraph sample_graph(const GraphView& graph, SamplerKind kind,
                          double fraction, std::uint64_t seed) {
  const Vertex target = sample_size(graph.num_vertices(), fraction);
  util::Rng rng(seed);
  const auto sampler = make_sampler(kind);
  SampledGraph sampled =
      induced_subgraph(graph, sampler->select(graph, target, rng));
  sampled.kind = kind;
  return sampled;
}

}  // namespace hsbp::sample
