#include "sample/extrapolate.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace hsbp::sample {

using blockmodel::BlockId;
using graph::GraphView;
using graph::Vertex;

namespace {

/// Plurality block among v's already-labeled neighbors, counting edge
/// multiplicity in both directions; −1 if no neighbor is labeled yet.
BlockId plurality_block(const GraphView& graph,
                        const std::vector<std::int32_t>& assignment,
                        std::vector<std::int64_t>& votes,
                        std::vector<BlockId>& touched, Vertex v) {
  touched.clear();
  const auto tally = [&](Vertex u) {
    const std::int32_t block = assignment[static_cast<std::size_t>(u)];
    if (block < 0) return;
    if (votes[static_cast<std::size_t>(block)] == 0) touched.push_back(block);
    ++votes[static_cast<std::size_t>(block)];
  };
  for (const Vertex u : graph.out_neighbors(v)) tally(u);
  for (const Vertex u : graph.in_neighbors(v)) tally(u);

  BlockId best = -1;
  std::int64_t best_votes = 0;
  for (const BlockId block : touched) {
    const std::int64_t count = votes[static_cast<std::size_t>(block)];
    votes[static_cast<std::size_t>(block)] = 0;
    if (count > best_votes || (count == best_votes && block < best)) {
      best = block;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace

ExtrapolationResult extrapolate(
    const GraphView& graph, const SampledGraph& sampled,
    std::span<const std::int32_t> sample_assignment, BlockId num_blocks) {
  if (sample_assignment.size() != sampled.to_full.size()) {
    throw std::invalid_argument(
        "extrapolate: sample assignment size != sample size");
  }
  if (sampled.to_sample.size() !=
      static_cast<std::size_t>(graph.num_vertices())) {
    throw std::invalid_argument(
        "extrapolate: id map does not cover the full graph");
  }
  if (num_blocks <= 0) {
    throw std::invalid_argument("extrapolate: num_blocks must be positive");
  }

  ExtrapolationResult out;
  out.num_blocks = num_blocks;
  out.assignment.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  for (std::size_t s = 0; s < sampled.to_full.size(); ++s) {
    const std::int32_t block = sample_assignment[s];
    if (block < 0 || block >= num_blocks) {
      throw std::invalid_argument("extrapolate: label outside [0, C)");
    }
    out.assignment[static_cast<std::size_t>(sampled.to_full[s])] = block;
  }

  // Multi-source BFS from the sampled core (ascending id order keeps the
  // stage deterministic). A vertex is labeled the moment it is first
  // reached, so chains of unsampled vertices propagate memberships.
  std::deque<Vertex> queue(sampled.to_full.begin(), sampled.to_full.end());
  std::vector<std::int64_t> votes(static_cast<std::size_t>(num_blocks), 0);
  std::vector<BlockId> touched;
  const auto visit = [&](Vertex u) {
    if (out.assignment[static_cast<std::size_t>(u)] >= 0) return;
    const BlockId block =
        plurality_block(graph, out.assignment, votes, touched, u);
    if (block < 0) return;  // all neighbors still unlabeled; revisit later
    out.assignment[static_cast<std::size_t>(u)] = block;
    ++out.frontier_assigned;
    queue.push_back(u);
  };
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (const Vertex u : graph.out_neighbors(v)) visit(u);
    for (const Vertex u : graph.in_neighbors(v)) visit(u);
  }

  // Vertices with no path to the sampled core: the globally best block
  // is the one holding the most vertices so far (smallest id on ties).
  BlockId fallback = 0;
  {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_blocks), 0);
    for (const std::int32_t block : out.assignment) {
      if (block >= 0) ++sizes[static_cast<std::size_t>(block)];
    }
    fallback = static_cast<BlockId>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  }
  for (std::size_t v = 0; v < out.assignment.size(); ++v) {
    if (out.assignment[v] < 0) {
      out.assignment[v] = fallback;
      ++out.isolated_assigned;
    }
  }

  out.model =
      blockmodel::Blockmodel::from_assignment(graph, out.assignment,
                                              num_blocks);
  return out;
}

}  // namespace hsbp::sample
