/// \file samplers.hpp
/// \brief Vertex samplers for the SamBaS pipeline (Wanye et al.,
/// arXiv:2108.06651): each strategy selects a fixed-size vertex subset
/// and induces the subgraph SBP will actually partition.
///
/// All four strategies sit behind one Sampler interface and draw from
/// util::Rng, so a (kind, fraction, seed) triple is fully deterministic:
///
///   UniformRandom     — every vertex equally likely; unbiased but tends
///                       to shatter sparse graphs into fragments;
///   DegreeWeighted    — P(v) ∝ degree(v)+1; keeps hubs (the vertices
///                       H-SBP handles serially) and most of the edge
///                       mass at small fractions;
///   RandomEdge        — endpoints of uniformly random edges; the
///                       induced-subgraph reading of edge sampling,
///                       biased toward dense regions;
///   ExpansionSnowball — forest-fire flavour: grow from a random seed by
///                       repeatedly absorbing a random frontier vertex,
///                       reseeding when the frontier empties; maximizes
///                       sample connectivity.
///
/// Sampled ids are relabeled to [0, n) in ascending full-id order; the
/// SampledGraph carries both directions of the id map so extrapolation
/// can push memberships back onto the full graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/view.hpp"
#include "util/rng.hpp"

namespace hsbp::sample {

enum class SamplerKind {
  UniformRandom,
  DegreeWeighted,
  RandomEdge,
  ExpansionSnowball,
};

/// Short CLI-friendly name: "uniform", "degree", "edge", "snowball".
const char* sampler_name(SamplerKind kind) noexcept;

/// Inverse of sampler_name. \throws std::invalid_argument on an
/// unrecognised name.
SamplerKind parse_sampler(const std::string& name);

/// All kinds, in declaration order (bench/test sweeps).
const std::vector<SamplerKind>& all_sampler_kinds();

/// Number of vertices a fraction maps to: ceil(fraction·V) clamped to
/// [1, V]. \pre 0 < fraction <= 1, num_vertices > 0.
graph::Vertex sample_size(graph::Vertex num_vertices, double fraction);

/// An induced subgraph plus the sample↔full vertex id maps.
struct SampledGraph {
  graph::Graph subgraph;                 ///< induced on the sampled set
  std::vector<graph::Vertex> to_full;    ///< sample id → full id (ascending)
  std::vector<graph::Vertex> to_sample;  ///< full id → sample id, −1 if out
  SamplerKind kind = SamplerKind::UniformRandom;
};

/// Strategy interface: select exactly `target` distinct vertices of
/// `graph`. Implementations must be deterministic in the rng state.
class Sampler {
 public:
  virtual ~Sampler() = default;

  virtual SamplerKind kind() const noexcept = 0;
  const char* name() const noexcept { return sampler_name(kind()); }

  /// Returns `target` distinct vertex ids (unordered).
  /// \pre 1 <= target <= graph.num_vertices().
  virtual std::vector<graph::Vertex> select(const graph::GraphView& graph,
                                            graph::Vertex target,
                                            util::Rng& rng) const = 0;
};

std::unique_ptr<Sampler> make_sampler(SamplerKind kind);

/// Builds the induced subgraph over `vertices` (relabeled ascending;
/// duplicates rejected). Every full-graph edge whose endpoints are both
/// sampled appears with its multiplicity.
/// \throws std::invalid_argument on out-of-range or duplicate ids.
SampledGraph induced_subgraph(const graph::GraphView& graph,
                              std::vector<graph::Vertex> vertices);

/// Convenience driver: select ceil(fraction·V) vertices with the given
/// strategy and induce the subgraph. Deterministic in `seed`.
/// \throws std::invalid_argument if fraction outside (0, 1].
SampledGraph sample_graph(const graph::GraphView& graph, SamplerKind kind,
                          double fraction, std::uint64_t seed);

}  // namespace hsbp::sample
