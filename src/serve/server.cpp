#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "ckpt/shutdown.hpp"
#include "serve/protocol.hpp"
#include "util/logger.hpp"

namespace hsbp::serve {

namespace {

/// Poll timeout between stop-flag checks; bounds drain latency.
constexpr int kPollMs = 50;

std::string errno_text() { return std::strerror(errno); }

/// Formats a double with round-trippable precision (replies are text).
std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {
  scheduler_ =
      std::make_unique<RefitScheduler>(registry_, options_.refit);
}

Server::~Server() { stop(); }

void Server::add_graph(const std::string& name, graph::Graph graph) {
  if (started_.load()) {
    throw std::invalid_argument("serve: add_graph after start()");
  }
  if (graph.num_vertices() == 0 || graph.num_edges() == 0) {
    throw std::invalid_argument("serve: graph '" + name +
                                "' is empty — nothing to partition");
  }
  GraphStore& store = registry_.add(name);
  // Stash the unfitted graph in an epoch-0 snapshot; start() replaces
  // it with the real fit (or the resumed checkpoint). Queries cannot
  // arrive before start() binds the socket.
  auto shared = std::make_shared<const graph::Graph>(std::move(graph));
  auto placeholder = std::make_shared<Snapshot>();
  placeholder->graph = std::move(shared);
  store.publish(std::move(placeholder));
}

void Server::start() {
  if (started_.exchange(true)) return;
  try {
    start_impl();
  } catch (...) {
    // No threads are running yet on any throw path; release the
    // address (if taken) so a corrected retry can bind it.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (!options_.socket_path.empty()) {
        ::unlink(options_.socket_path.c_str());
      }
    }
    started_.store(false);
    throw;
  }
}

void Server::start_impl() {
  // Bind first: a daemon that cannot take its address should fail in
  // milliseconds (CLI exit 69), not after minutes of initial fitting.
  // Unix socket and TCP are mutually exclusive by construction (the
  // CLI enforces it; the API takes whichever is set, Unix first).
  if (!options_.socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw BindError("serve: socket(AF_UNIX): " + errno_text());
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw BindError("serve: socket path '" + options_.socket_path +
                      "' exceeds sun_path");
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string reason = errno_text();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw BindError("serve: cannot bind '" + options_.socket_path +
                      "': " + reason);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw BindError("serve: socket(AF_INET): " + errno_text());
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(std::max(options_.tcp_port, 0)));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string reason = errno_text();
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw BindError("serve: cannot bind 127.0.0.1:" +
                      std::to_string(options_.tcp_port) + ": " + reason);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = errno_text();
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw BindError("serve: listen: " + reason);
  }

  // Initial snapshots: resume where a checkpoint exists, else cold-fit;
  // persist so a daemon killed before its first refit still resumes.
  // Early connections queue in the listen backlog while this runs.
  for (GraphStore* store : registry_.stores()) {
    const std::shared_ptr<const Snapshot> placeholder = store->acquire();
    std::shared_ptr<const Snapshot> initial;
    const std::string path =
        options_.refit.checkpoint_dir.empty()
            ? std::string()
            : checkpoint_path(options_.refit.checkpoint_dir,
                              store->name());
    if (options_.resume && !path.empty() &&
        ::access(path.c_str(), F_OK) == 0) {
      initial = snapshot_from_checkpoint(ckpt::load_serve_checkpoint(path));
      HSBP_LOG_INFO("serve: '%s' resumed at epoch %llu (V=%d E=%lld)",
                    store->name().c_str(),
                    static_cast<unsigned long long>(initial->epoch),
                    initial->graph->num_vertices(),
                    static_cast<long long>(initial->graph->num_edges()));
    } else {
      initial = fit_initial(placeholder->graph, options_.refit.base);
      persist_snapshot(options_.refit.checkpoint_dir, store->name(),
                       *initial, options_.refit.fault);
    }
    store->publish(std::move(initial));
  }

  scheduler_->start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::run() {
  while (!stop_.load() && !ckpt::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  stop();
}

void Server::request_stop() noexcept { stop_.store(true); }

void Server::stop() {
  if (!started_.load()) return;
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (Session& session : session_threads_) {
      if (session.thread.joinable()) session.thread.join();
    }
    session_threads_.clear();
  }
  // Belt-and-braces reap: with the vector cleared above this is a
  // no-op, but keeping it here pins the contract that stop() leaves no
  // session thread behind even if the join loop ever changes shape.
  reap_finished_sessions();
  // The scheduler drains pending batches before exiting (publishing
  // and persisting each), so acknowledged INGESTs survive the drain.
  scheduler_->stop_and_join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.socket_path.empty()) {
      ::unlink(options_.socket_path.c_str());
    }
  }
  // Final checkpoints: every store's published snapshot is on disk.
  // stop() also runs from the destructor, so a failed write logs
  // instead of throwing (every published epoch was already persisted
  // before publish — this write is belt-and-braces, not correctness).
  for (GraphStore* store : registry_.stores()) {
    try {
      persist_snapshot(options_.refit.checkpoint_dir, store->name(),
                       *store->acquire(), options_.refit.fault);
    } catch (const std::exception& e) {
      HSBP_LOG_ERROR("serve: final checkpoint of '%s' failed: %s",
                     store->name().c_str(), e.what());
    }
  }
  started_.store(false);
}

ServerStats Server::stats() const {
  ServerStats out;
  out.queries = queries_.load();
  out.errors = errors_.load();
  out.ingests = ingests_.load();
  out.refits = scheduler_->refits_completed();
  out.sessions = sessions_.load();
  out.shed = shed_.load();
  out.timeouts = timeouts_.load();
  out.active_sessions = active_sessions_.load();
  out.queue_depth = queue_depth();
  return out;
}

std::uint64_t Server::queue_depth() const {
  std::uint64_t depth = 0;
  const Registry& registry = registry_;
  for (const GraphStore* store : registry.stores()) {
    depth += store->pending_batches();
  }
  return depth;
}

// ------------------------------------------------------------ threads

void Server::reap_finished_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (auto it = session_threads_.begin(); it != session_threads_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = session_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

/// Refuses one over-cap connection: one `ERR busy retry-after <ms>`
/// frame (under a short write deadline — a shed peer gets no chance to
/// park this thread either), then close.
void Server::shed_connection(int fd) {
  ++shed_;
  const std::string reply = err_reply(
      "busy retry-after " + std::to_string(options_.retry_after_ms) +
      " sessions at cap");
  const int deadline = options_.frame_timeout_ms >= 0 &&
                               options_.frame_timeout_ms < 250
                           ? options_.frame_timeout_ms
                           : 250;
  write_frame(fd, reply, deadline, &stop_, options_.net_fault);
  ::close(fd);
}

void Server::accept_loop() {
  while (!stop_.load() && !ckpt::shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    // Reap on EVERY tick, not only on new accepts: idle and
    // deadline-cut sessions must be collected even when no client ever
    // connects again (the thread-leak window ISSUE 8 closes).
    reap_finished_sessions();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++sessions_;
    if (options_.max_sessions > 0 &&
        active_sessions_.load() >=
            static_cast<std::uint64_t>(options_.max_sessions)) {
      shed_connection(fd);
      continue;
    }
    ++active_sessions_;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_threads_.push_back(Session{
        std::thread([this, fd, done] {
          session_loop(fd);
          done->store(true);
        }),
        done});
  }
}

void Server::session_loop(int fd) {
  std::string payload;
  const FrameDeadline deadline{options_.idle_timeout_ms,
                               options_.frame_timeout_ms};
  while (!stop_.load() && !ckpt::shutdown_requested()) {
    const IoStatus read_status = read_frame(fd, payload, deadline, &stop_,
                                            options_.net_fault);
    if (read_status == IoStatus::Timeout) {
      // A silent or mid-frame-stalled peer: cut it loose. Best-effort
      // courtesy reply — the peer may be long gone.
      ++timeouts_;
      write_frame(fd, err_reply("timeout"), /*deadline_ms=*/100, &stop_,
                  options_.net_fault);
      break;
    }
    if (read_status != IoStatus::Ok) break;  // EOF/torn/oversized/drain
    const std::string reply = handle(payload);
    ++queries_;
    if (!is_ok(reply)) ++errors_;
    const IoStatus write_status = write_frame(
        fd, reply, options_.frame_timeout_ms, &stop_, options_.net_fault);
    if (write_status == IoStatus::Timeout) {
      ++timeouts_;  // peer stopped draining its socket mid-reply
      break;
    }
    if (write_status != IoStatus::Ok) break;
    // SHUTDOWN acknowledges first, then stops (drain includes us). The
    // stop flag doubles as every frame write's cancel flag, so raising
    // it before the ack went out would cancel the ack itself.
    if (payload.substr(0, 8) == "SHUTDOWN" && is_ok(reply)) {
      request_stop();
      break;
    }
  }
  ::close(fd);
  --active_sessions_;
}

// ------------------------------------------------------------ requests

std::string Server::handle(const std::string& payload) {
  std::string error;
  const std::optional<Request> parsed = parse_request(payload, error);
  if (!parsed) return err_reply(error);
  const Request& request = *parsed;

  switch (request.verb) {
    case Verb::Ping:
      return ok_reply("pong");
    case Verb::List: {
      const auto names = registry_.names();
      std::string detail = std::to_string(names.size());
      for (const auto& name : names) {
        detail += ' ';
        detail += name;
      }
      return ok_reply(detail);
    }
    case Verb::Stats: {
      const ServerStats s = stats();
      return ok_reply("queries=" + std::to_string(s.queries) +
                      " errors=" + std::to_string(s.errors) +
                      " ingests=" + std::to_string(s.ingests) +
                      " refits=" + std::to_string(s.refits) +
                      " sessions=" + std::to_string(s.sessions) +
                      " shed=" + std::to_string(s.shed) +
                      " timeouts=" + std::to_string(s.timeouts) +
                      " active_sessions=" +
                      std::to_string(s.active_sessions) +
                      " queue_depth=" + std::to_string(s.queue_depth));
    }
    case Verb::Health: {
      // The overload gauges alone — what a load balancer polls.
      return ok_reply(
          "active_sessions=" + std::to_string(active_sessions_.load()) +
          " queue_depth=" + std::to_string(queue_depth()) +
          " shed=" + std::to_string(shed_.load()) +
          " timeouts=" + std::to_string(timeouts_.load()));
    }
    case Verb::Shutdown:
      // The session loop raises the stop flag AFTER this ack is on the
      // wire (the flag cancels in-flight frame writes, ack included).
      return ok_reply("draining");
    default:
      break;
  }

  GraphStore* store = registry_.find(request.graph);
  if (store == nullptr) {
    return err_reply("unknown graph '" + request.graph + "'");
  }

  if (request.verb == Verb::Ingest) {
    const auto pending = store->try_enqueue(
        std::vector<graph::Edge>(request.edges.begin(),
                                 request.edges.end()),
        options_.max_pending_batches);
    if (!pending.has_value()) {
      // Backpressure, not failure: the refit queue is at its bound, so
      // the batch is refused while the session (and every acknowledged
      // batch before it) stays intact.
      ++shed_;
      return err_reply(
          "busy retry-after " + std::to_string(options_.retry_after_ms) +
          " ingest queue full for '" + request.graph + "'");
    }
    ++ingests_;
    scheduler_->notify();
    const auto snapshot = store->acquire();
    return ok_reply("queued=" + std::to_string(request.edges.size()) +
                    " epoch=" + std::to_string(snapshot->epoch) +
                    " pending=" + std::to_string(*pending));
  }

  // Pure queries: everything below reads one acquired snapshot and
  // never touches shared state again — the isolation contract.
  const std::shared_ptr<const Snapshot> snapshot = store->acquire();
  store->count_query();
  switch (request.verb) {
    case Verb::Info:
      return ok_reply(
          "vertices=" + std::to_string(snapshot->graph->num_vertices()) +
          " edges=" + std::to_string(snapshot->graph->num_edges()) +
          " blocks=" + std::to_string(snapshot->num_blocks) +
          " epoch=" + std::to_string(snapshot->epoch) +
          " mdl=" + fmt(snapshot->mdl) +
          " modularity=" + fmt(snapshot->modularity) +
          " pending=" + std::to_string(store->pending_batches()));
    case Verb::Epoch:
      return ok_reply(std::to_string(snapshot->epoch));
    case Verb::Modularity:
      return ok_reply(fmt(snapshot->modularity));
    case Verb::Mdl:
      return ok_reply(fmt(snapshot->mdl) + " " +
                      std::to_string(snapshot->num_blocks));
    case Verb::Member: {
      if (request.argument >= snapshot->graph->num_vertices()) {
        return err_reply("vertex " + std::to_string(request.argument) +
                         " outside [0, " +
                         std::to_string(snapshot->graph->num_vertices()) +
                         ")");
      }
      return ok_reply(std::to_string(
          snapshot->assignment[static_cast<std::size_t>(
              request.argument)]));
    }
    case Verb::Community: {
      if (request.argument >= snapshot->num_blocks) {
        return err_reply("block " + std::to_string(request.argument) +
                         " outside [0, " +
                         std::to_string(snapshot->num_blocks) + ")");
      }
      std::string detail;
      std::size_t count = 0;
      for (std::size_t v = 0; v < snapshot->assignment.size(); ++v) {
        if (snapshot->assignment[v] ==
            static_cast<std::int32_t>(request.argument)) {
          detail += ' ';
          detail += std::to_string(v);
          ++count;
        }
      }
      return ok_reply(std::to_string(count) + detail);
    }
    default:
      return err_reply("unhandled verb");  // unreachable
  }
}

}  // namespace hsbp::serve
