/// \file refit.hpp
/// \brief Streaming re-fit scheduler of the serving daemon.
///
/// INGEST batches queue inside each GraphStore; one background thread
/// drains them, grows the graph, and re-fits *warm* — the streaming
/// machinery of src/sbp/streaming.*: extend_assignment labels the new
/// vertices by neighbor majority, refine_assignment splits blocks so
/// the merge-only golden search can move both ways, run_warm continues
/// from the learned structure instead of the identity partition. The
/// result is published as a fresh immutable Snapshot (queries never
/// wait on a refit) and, when a checkpoint directory is configured,
/// persisted through ckpt::save_serve_checkpoint before the epoch is
/// visible to EPOCH pollers — a crash after publish therefore resumes
/// at (or after) any epoch a client ever observed.
///
/// Graceful shutdown composes with the engine's own handling: a
/// SIGTERM mid-refit makes run_warm return its best-so-far partition
/// at the next phase boundary (ckpt::shutdown_requested), which the
/// scheduler still publishes and persists — the daemon never dies with
/// an unpublished fit or a torn checkpoint.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "sbp/sbp.hpp"
#include "serve/registry.hpp"

namespace hsbp::serve {

struct RefitConfig {
  sbp::SbpConfig base;       ///< variant/seed/threads for every fit
  int refine_factor = 3;     ///< see sbp::refine_assignment
  std::string checkpoint_dir;  ///< empty = snapshots are not persisted
  ckpt::FaultInjector* fault = nullptr;  ///< test hook (PR 3 harness)
};

// ------------------------------------------------- snapshot lifecycle

/// Cold-fits `graph` and wraps the result as epoch-1 snapshot.
std::shared_ptr<const Snapshot> fit_initial(
    std::shared_ptr<const graph::Graph> graph, const sbp::SbpConfig& config);

/// Rebuilds the served snapshot from a loaded checkpoint (the --resume
/// path). Bit-exact: graph CSR, assignment, MDL, and epoch are the
/// stored ones; only modularity is recomputed (it is derived state).
std::shared_ptr<const Snapshot> snapshot_from_checkpoint(
    const ckpt::ServeCheckpoint& loaded);

/// Serializes a snapshot for persistence.
ckpt::ServeCheckpoint to_checkpoint(const Snapshot& snapshot);

/// `<dir>/<name>.serve.ckpt` — one file per served graph.
std::string checkpoint_path(const std::string& dir, const std::string& name);

/// Persists `snapshot` atomically (no-op when `dir` is empty).
/// \throws util::IoError on write failure.
void persist_snapshot(const std::string& dir, const std::string& name,
                      const Snapshot& snapshot, ckpt::FaultInjector* fault);

// ------------------------------------------------------- the scheduler

class RefitScheduler {
 public:
  RefitScheduler(Registry& registry, RefitConfig config)
      : registry_(registry), config_(std::move(config)) {}
  ~RefitScheduler() { stop_and_join(); }

  RefitScheduler(const RefitScheduler&) = delete;
  RefitScheduler& operator=(const RefitScheduler&) = delete;

  /// Spawns the background thread (idempotent).
  void start();

  /// Wakes the thread (call after GraphStore::enqueue).
  void notify();

  /// Finishes the in-flight refit (early-exiting if a shutdown signal
  /// is pending), drains nothing further, joins. Idempotent.
  void stop_and_join();

  /// Refits completed since start (published epochs minus initial).
  std::uint64_t refits_completed() const;

  /// Synchronously drains one store's pending batches and publishes
  /// (the scheduler thread's unit of work, exposed for deterministic
  /// tests). Returns false when nothing was pending.
  bool refit_store(GraphStore& store);

 private:
  void thread_main();

  Registry& registry_;
  const RefitConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::uint64_t refits_ = 0;
  std::thread thread_;
};

}  // namespace hsbp::serve
