/// \file protocol.hpp
/// \brief Wire protocol of the partition-serving daemon (`hsbp serve`).
///
/// Framing: every message — request and reply alike — is one frame,
///
///   ┌───────────────────────────────────────────────┐
///   │ u32 little-endian payload length · payload    │
///   └───────────────────────────────────────────────┘
///
/// with the payload a UTF-8 text line of space-separated tokens (no
/// trailing newline required). Length-prefixing keeps reads exact —
/// a client never scans for a delimiter and an INGEST batch may be
/// arbitrarily token-dense — while the text payload stays greppable
/// and scriptable (`hsbp query` sends exactly what you type).
///
/// Requests (first token = verb, case-sensitive):
///
///   PING                          liveness probe
///   LIST                          names of the served graphs
///   INFO <graph>                  V/E/blocks/epoch/mdl of the snapshot
///   MEMBER <graph> <vertex>       community of one vertex
///   COMMUNITY <graph> <block>     member vertices of one community
///   MODULARITY <graph>            modularity of the served partition
///   MDL <graph>                   description length + block count
///   EPOCH <graph>                 snapshot epoch (bumps per refit)
///   INGEST <graph> <k> u1 v1 ...  append k edges, schedule a refit
///   STATS                         server-wide counters
///   SHUTDOWN                      graceful drain (same path as SIGTERM)
///
/// Replies start with `OK` (followed by verb-specific tokens) or `ERR`
/// (followed by a human-readable reason). A malformed request — unknown
/// verb, wrong arity, non-numeric argument, unknown graph, out-of-range
/// vertex — is always an `ERR` reply on the same connection, never a
/// dropped connection or a daemon exit. Only an unreadable frame
/// (oversized length prefix or a half-closed peer) ends the session.
///
/// This header is deliberately socket-free: parse/format round-trip in
/// unit tests without a daemon, and the fd-based frame I/O helpers are
/// the only POSIX-touching pieces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hsbp::serve {

/// Hard ceiling on one frame's payload (guards the reader against a
/// garbage length prefix; a 16 MiB INGEST batch is ~1M edges).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class Verb {
  Ping,
  List,
  Info,
  Member,
  Community,
  Modularity,
  Mdl,
  Epoch,
  Ingest,
  Stats,
  Shutdown,
};

/// A parsed request. Numeric arguments are validated during parsing;
/// graph-name existence is the server's job.
struct Request {
  Verb verb = Verb::Ping;
  std::string graph;               ///< verbs that target a graph
  std::int64_t argument = 0;       ///< MEMBER vertex / COMMUNITY block
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;  ///< INGEST
};

/// Parses one request payload. Returns the request, or an ERR reason
/// in `error` (and nullopt) when the payload is malformed — the caller
/// turns that into an `ERR` reply, keeping the session alive.
std::optional<Request> parse_request(std::string_view payload,
                                     std::string& error);

/// Formats an INGEST request payload (the client-side inverse of
/// parse_request; the bench builds its batches through this).
std::string format_ingest(
    std::string_view graph,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges);

/// `OK ...` / `ERR ...` helpers so every reply spells status the same.
std::string ok_reply(std::string_view detail);
std::string err_reply(std::string_view reason);

/// True when `reply` begins with "OK" (token-exact, not prefix-loose).
bool is_ok(std::string_view reply) noexcept;

// ---------------------------------------------------------- frame I/O

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes. Returns false on EOF/error (peer gone).
bool write_frame(int fd, std::string_view payload) noexcept;

/// Reads one frame from `fd` into `payload`. Returns false on a clean
/// EOF before any byte, a torn frame, or an oversized length prefix.
/// Blocks until a full frame arrives (callers poll() first when they
/// need cancellation).
bool read_frame(int fd, std::string& payload) noexcept;

}  // namespace hsbp::serve
