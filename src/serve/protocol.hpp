/// \file protocol.hpp
/// \brief Wire protocol of the partition-serving daemon (`hsbp serve`).
///
/// Framing: every message — request and reply alike — is one frame,
///
///   ┌───────────────────────────────────────────────┐
///   │ u32 little-endian payload length · payload    │
///   └───────────────────────────────────────────────┘
///
/// with the payload a UTF-8 text line of space-separated tokens (no
/// trailing newline required). Length-prefixing keeps reads exact —
/// a client never scans for a delimiter and an INGEST batch may be
/// arbitrarily token-dense — while the text payload stays greppable
/// and scriptable (`hsbp query` sends exactly what you type).
///
/// Requests (first token = verb, case-sensitive):
///
///   PING                          liveness probe
///   LIST                          names of the served graphs
///   INFO <graph>                  V/E/blocks/epoch/mdl of the snapshot
///   MEMBER <graph> <vertex>       community of one vertex
///   COMMUNITY <graph> <block>     member vertices of one community
///   MODULARITY <graph>            modularity of the served partition
///   MDL <graph>                   description length + block count
///   EPOCH <graph>                 snapshot epoch (bumps per refit)
///   INGEST <graph> <k> u1 v1 ...  append k edges, schedule a refit
///   STATS                         server-wide counters
///   HEALTH                        overload counters (see below)
///   SHUTDOWN                      graceful drain (same path as SIGTERM)
///
/// Replies start with `OK` (followed by verb-specific tokens) or `ERR`
/// (followed by a human-readable reason). A malformed request — unknown
/// verb, wrong arity, non-numeric argument, unknown graph, out-of-range
/// vertex — is always an `ERR` reply on the same connection, never a
/// dropped connection or a daemon exit. Only an unreadable frame
/// (oversized length prefix or a half-closed peer) or a blown deadline
/// (idle session, mid-frame stall) ends the session.
///
/// Load-shedding replies (overload — see ServeOptions in server.hpp):
///
///   ERR busy retry-after <ms> ...   the daemon refused this work on
///                                   purpose: the connection cap was
///                                   reached (sent once, then the
///                                   connection closes) or the graph's
///                                   ingest queue is full (the session
///                                   stays open; only the INGEST was
///                                   refused). <ms> is the server's
///                                   suggested backoff; Client's retry
///                                   helper honors it.
///
/// Counter reply tokens (k=v pairs, all monotonic since daemon start
/// unless noted):
///
///   STATS  → OK queries=N errors=N ingests=N refits=N sessions=N
///               shed=N timeouts=N active_sessions=N queue_depth=N
///   HEALTH → OK active_sessions=N queue_depth=N shed=N timeouts=N
///
///   queries   requests answered (OK and ERR alike)
///   errors    ERR replies among them (includes busy sheds)
///   ingests   INGEST batches *accepted* (refused ones count in shed)
///   refits    refit epochs published
///   sessions  connections accepted (shed ones included)
///   shed      work refused with `ERR busy`: connections over the cap
///             plus INGESTs against a full queue
///   timeouts  sessions closed for blowing a deadline (idle or
///             mid-frame)
///   active_sessions  currently live session threads (gauge, not
///             monotonic — returns to 0 when clients leave)
///   queue_depth      pending ingest batches across all graphs (gauge)
///
/// This header is deliberately socket-free: parse/format round-trip in
/// unit tests without a daemon, and the fd-based frame I/O helpers are
/// the only POSIX-touching pieces.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hsbp::ckpt {
class FaultInjector;
}

namespace hsbp::serve {

/// Hard ceiling on one frame's payload (guards the reader against a
/// garbage length prefix; a 16 MiB INGEST batch is ~1M edges).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class Verb {
  Ping,
  List,
  Info,
  Member,
  Community,
  Modularity,
  Mdl,
  Epoch,
  Ingest,
  Stats,
  Health,
  Shutdown,
};

/// A parsed request. Numeric arguments are validated during parsing;
/// graph-name existence is the server's job.
struct Request {
  Verb verb = Verb::Ping;
  std::string graph;               ///< verbs that target a graph
  std::int64_t argument = 0;       ///< MEMBER vertex / COMMUNITY block
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;  ///< INGEST
};

/// Parses one request payload. Returns the request, or an ERR reason
/// in `error` (and nullopt) when the payload is malformed — the caller
/// turns that into an `ERR` reply, keeping the session alive.
std::optional<Request> parse_request(std::string_view payload,
                                     std::string& error);

/// Formats an INGEST request payload (the client-side inverse of
/// parse_request; the bench builds its batches through this).
std::string format_ingest(
    std::string_view graph,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges);

/// `OK ...` / `ERR ...` helpers so every reply spells status the same.
std::string ok_reply(std::string_view detail);
std::string err_reply(std::string_view reason);

/// True when `reply` begins with "OK" (token-exact, not prefix-loose).
bool is_ok(std::string_view reply) noexcept;

// ---------------------------------------------------------- frame I/O

/// Outcome of one deadline-aware frame operation. Everything except Ok
/// ends the session; the caller decides what to count (the server
/// counts Timeout separately — it is the daemon shedding a stalled
/// peer, not the peer leaving).
enum class IoStatus {
  Ok,
  Eof,        ///< clean close before the first byte of a frame
  Torn,       ///< peer vanished mid-frame (prefix or payload)
  Oversized,  ///< length prefix above kMaxFrameBytes — protocol abuse
  Timeout,    ///< idle or per-frame deadline blown
  Cancelled,  ///< the cancel flag was raised (daemon drain)
  Error,      ///< read/write error (ECONNRESET, EPIPE, injected fault)
};

/// Per-frame read deadlines, both in milliseconds, -1 = unbounded:
/// `idle_ms` bounds the wait for a frame's FIRST byte (how long a
/// silent session may sit), `frame_ms` bounds the rest of the frame
/// once a byte arrived (how long a mid-frame stall may last).
struct FrameDeadline {
  int idle_ms = -1;
  int frame_ms = -1;
};

/// Reads one frame from `fd` into `payload` under deadlines, polling in
/// short slices so `cancel` (when given) aborts within ~50 ms. `fault`
/// (when given) is consulted once per call — the network fault seam the
/// serve tests inject through (ckpt::FaultInjector::on_net_read).
IoStatus read_frame(int fd, std::string& payload,
                    const FrameDeadline& deadline,
                    const std::atomic<bool>* cancel = nullptr,
                    ckpt::FaultInjector* fault = nullptr) noexcept;

/// Writes one frame (length prefix + payload) to `fd`, retrying short
/// writes, with `deadline_ms` bounding the whole frame (-1 =
/// unbounded). Timeout semantics match read_frame: a peer that stops
/// draining its socket cannot park the writer. `fault` injects at the
/// same seam (ckpt::FaultInjector::on_net_write).
IoStatus write_frame(int fd, std::string_view payload, int deadline_ms,
                     const std::atomic<bool>* cancel = nullptr,
                     ckpt::FaultInjector* fault = nullptr) noexcept;

/// Unbounded write (legacy shape). Returns false on EOF/error.
bool write_frame(int fd, std::string_view payload) noexcept;

/// Unbounded read (legacy shape). Returns false on a clean EOF before
/// any byte, a torn frame, or an oversized length prefix. Blocks until
/// a full frame arrives (callers poll() first when they need
/// cancellation).
bool read_frame(int fd, std::string& payload) noexcept;

}  // namespace hsbp::serve
