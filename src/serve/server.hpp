/// \file server.hpp
/// \brief `hsbpd` — the long-lived partition-serving daemon behind
/// `hsbp serve`.
///
/// Thread structure (all standard threads; OpenMP only inside fits):
///
///   accept loop ──► one session thread per connection ──► Registry
///                                                           ▲
///   RefitScheduler (one background thread) ─ publishes ─────┘
///
/// Sessions answer queries against the snapshot they acquire() per
/// request — reads are wait-free after the two-pointer-write critical
/// section in GraphStore — so queries keep flowing at full rate while
/// a refit runs. Every blocking point (accept, session read) is a
/// poll() with a short timeout that re-checks the stop flag, which is
/// how SIGTERM turns into a drain: stop accepting, let every session
/// finish its in-flight request, stop the refit scheduler (which
/// finishes and publishes its in-flight fit), write the final
/// checkpoints, return. The CLI then exits 0.
///
/// Overload model (DESIGN §14): the daemon assumes clients are hostile
/// until proven otherwise and fails *closed* per session, never open.
/// Every resource a client can consume is bounded — session threads by
/// max_sessions (excess accepts are shed with `ERR busy retry-after
/// <ms>` before close), frame waits by idle_timeout_ms /
/// frame_timeout_ms (a silent or mid-frame-stalled peer is cut and
/// counted in `timeouts`), and the per-graph refit queue by
/// max_pending_batches (a flooding INGEST gets `ERR busy`, its session
/// stays up). Finished and deadline-cut sessions are reaped on every
/// accept-loop tick — not just on new accepts — so `active_sessions`
/// returns to 0 even when no one ever connects again.
///
/// start() binds a Unix socket (options.socket_path) or a loopback TCP
/// port (options.tcp_port, 0 = ephemeral); a failure to bind throws
/// BindError, which the CLI maps to EX_UNAVAILABLE (69).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/refit.hpp"
#include "serve/registry.hpp"
#include "util/errors.hpp"

namespace hsbp::serve {

/// The daemon cannot take its address: socket path occupied or
/// unreachable, TCP port in use. CLI exit code 69 (EX_UNAVAILABLE).
struct BindError : util::IoError {
  using util::IoError::IoError;
};

struct ServeOptions {
  /// Unix-domain socket path; mutually exclusive with tcp_port >= 0.
  std::string socket_path;
  /// Loopback TCP port; 0 picks an ephemeral port (see Server::port()).
  int tcp_port = -1;
  RefitConfig refit;
  /// Load `<checkpoint_dir>/<name>.serve.ckpt` instead of cold-fitting
  /// when the file exists (graphs without one are still cold-fitted).
  bool resume = false;

  // ---- overload limits (every one of these sheds, none of them kill)

  /// Concurrent session cap. An accept past the cap is answered with
  /// one `ERR busy retry-after <retry_after_ms>` frame and closed.
  int max_sessions = 256;
  /// How long a session may sit without starting a frame (ms, -1 =
  /// forever). Blown → session closed, counted in `timeouts`.
  int idle_timeout_ms = 30000;
  /// Budget for the rest of a frame once its first byte arrived, and
  /// for writing one reply (ms, -1 = forever). A mid-frame staller or
  /// a peer that stops draining its socket is cut, not waited on.
  int frame_timeout_ms = 5000;
  /// Backoff hint carried in every `ERR busy retry-after <ms>` reply.
  int retry_after_ms = 100;
  /// Per-graph bound on queued INGEST batches. At the bound the batch
  /// is refused with `ERR busy` (the session survives). 0 refuses all
  /// ingest — a read-only / maintenance mode.
  std::size_t max_pending_batches = 64;
  /// Network fault seam (tests): threaded into every session's frame
  /// I/O as ckpt::FaultInjector::on_net_read/on_net_write.
  ckpt::FaultInjector* net_fault = nullptr;
};

struct ServerStats {
  std::uint64_t queries = 0;   ///< requests answered (OK and ERR alike)
  std::uint64_t errors = 0;    ///< ERR replies among them
  std::uint64_t ingests = 0;   ///< INGEST batches accepted
  std::uint64_t refits = 0;    ///< refit epochs published
  std::uint64_t sessions = 0;  ///< connections accepted
  std::uint64_t shed = 0;      ///< work refused with `ERR busy`
  std::uint64_t timeouts = 0;  ///< sessions cut for blowing a deadline
  std::uint64_t active_sessions = 0;  ///< live session threads (gauge)
  std::uint64_t queue_depth = 0;  ///< pending ingest batches (gauge)
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a graph to serve (before start()). The initial fit (or
  /// checkpoint resume) happens in start().
  /// \throws std::invalid_argument on a duplicate name or empty graph.
  void add_graph(const std::string& name, graph::Graph graph);

  /// Binds the socket (fail-fast), then fits (or resumes) every
  /// registered graph, persists the initial snapshots, and spawns the
  /// accept + refit threads. \throws BindError when the address cannot
  /// be taken.
  void start();

  /// Blocks until a stop is requested (request_stop(), the SHUTDOWN
  /// verb, or ckpt::shutdown_requested() — i.e. SIGINT/SIGTERM), then
  /// drains and returns. Equivalent to wait-then-stop().
  void run();

  /// Flags the daemon to stop; returns immediately.
  void request_stop() noexcept;

  /// Drains: stop accepting, join sessions after their in-flight
  /// request, stop the refit scheduler, write final checkpoints.
  /// Idempotent; safe to call without run().
  void stop();

  /// Bound TCP port (after start(); meaningful for tcp_port = 0).
  int port() const noexcept { return bound_port_; }

  ServerStats stats() const;

  /// The underlying stores — for in-process tests asserting snapshot
  /// identity without going through the wire format.
  Registry& registry() noexcept { return registry_; }

 private:
  void start_impl();
  void accept_loop();
  void session_loop(int fd);
  void shed_connection(int fd);
  std::string handle(const std::string& payload);
  void reap_finished_sessions();
  std::uint64_t queue_depth() const;

  const ServeOptions options_;
  Registry registry_;
  std::unique_ptr<RefitScheduler> scheduler_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> ingests_{0};
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> active_sessions_{0};

  struct Session {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex sessions_mutex_;
  std::vector<Session> session_threads_;
  std::thread accept_thread_;
};

}  // namespace hsbp::serve
