#include "serve/refit.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "ckpt/shutdown.hpp"
#include "sbp/streaming.hpp"
#include "util/logger.hpp"
#include "util/timer.hpp"

namespace hsbp::serve {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

std::shared_ptr<const Snapshot> fit_initial(
    std::shared_ptr<const Graph> graph, const sbp::SbpConfig& config) {
  const sbp::SbpResult fit = sbp::run(*graph, config);
  return make_snapshot(std::move(graph), fit.assignment, fit.num_blocks,
                       fit.mdl, /*epoch=*/1);
}

std::shared_ptr<const Snapshot> snapshot_from_checkpoint(
    const ckpt::ServeCheckpoint& loaded) {
  auto graph = std::make_shared<const Graph>(
      Graph::from_edges(loaded.num_vertices, loaded.edges));
  return make_snapshot(std::move(graph), loaded.assignment,
                       loaded.num_blocks, loaded.mdl, loaded.epoch);
}

ckpt::ServeCheckpoint to_checkpoint(const Snapshot& snapshot) {
  ckpt::ServeCheckpoint out;
  out.graph = ckpt::fingerprint(*snapshot.graph);
  out.epoch = snapshot.epoch;
  out.num_vertices = snapshot.graph->num_vertices();
  out.edges = snapshot.graph->edges();
  out.assignment = snapshot.assignment;
  out.num_blocks = snapshot.num_blocks;
  out.mdl = snapshot.mdl;
  return out;
}

std::string checkpoint_path(const std::string& dir,
                            const std::string& name) {
  return dir + "/" + name + ".serve.ckpt";
}

void persist_snapshot(const std::string& dir, const std::string& name,
                      const Snapshot& snapshot,
                      ckpt::FaultInjector* fault) {
  if (dir.empty()) return;
  ckpt::save_serve_checkpoint(checkpoint_path(dir, name),
                              to_checkpoint(snapshot), fault);
}

// -------------------------------------------------------- the scheduler

void RefitScheduler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void RefitScheduler::notify() { cv_.notify_all(); }

void RefitScheduler::stop_and_join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

std::uint64_t RefitScheduler::refits_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refits_;
}

bool RefitScheduler::refit_store(GraphStore& store) {
  const auto batches = store.drain();
  if (batches.empty()) return false;
  const std::shared_ptr<const Snapshot> previous = store.acquire();

  util::Timer timer;

  // Grow the vertex set to cover every ingested endpoint, then rebuild
  // the CSR once over old + new edges (Graph is immutable by design;
  // the rebuild is O(E) — the savings live in the warm re-fit, which
  // is where the paper's streaming workload spends its time).
  std::vector<Edge> edges = previous->graph->edges();
  Vertex num_vertices = previous->graph->num_vertices();
  for (const auto& batch : batches) {
    for (const auto& [u, v] : batch) {
      num_vertices = std::max(num_vertices, static_cast<Vertex>(
                                                std::max(u, v) + 1));
      edges.emplace_back(u, v);
    }
  }
  auto grown =
      std::make_shared<const Graph>(Graph::from_edges(num_vertices, edges));

  // Warm start from the served partition, exactly as run_streaming
  // does between snapshots; a near-trivial previous partition pins the
  // merge-only search, so re-fit cold in that case.
  sbp::SbpResult fit;
  if (previous->num_blocks <= 2) {
    fit = sbp::run(*grown, config_.base);
  } else {
    blockmodel::BlockId num_blocks = previous->num_blocks;
    const auto extended =
        sbp::extend_assignment(*grown, previous->assignment, num_blocks);
    const auto warm = sbp::refine_assignment(
        extended, num_blocks, config_.refine_factor,
        config_.base.seed + previous->epoch);
    fit = sbp::run_warm(*grown, config_.base, warm, num_blocks);
  }

  auto next = make_snapshot(std::move(grown), fit.assignment,
                            fit.num_blocks, fit.mdl, previous->epoch + 1);
  // Persist before publish: once a client can observe the epoch, a
  // crashed-and-resumed daemon must be able to serve it again.
  persist_snapshot(config_.checkpoint_dir, store.name(), *next,
                   config_.fault);
  store.publish(std::move(next));
  store.count_refit(timer.elapsed());

  HSBP_LOG_DEBUG("serve: refit '%s' epoch %llu blocks %d mdl %.2f%s",
                 store.name().c_str(),
                 static_cast<unsigned long long>(previous->epoch + 1),
                 fit.num_blocks, fit.mdl,
                 fit.interrupted ? " (interrupted)" : "");
  return true;
}

void RefitScheduler::thread_main() {
  const auto first_pending = [this]() -> GraphStore* {
    for (GraphStore* store : registry_.stores()) {
      if (store->pending_batches() > 0) return store;
    }
    return nullptr;
  };
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // The 50 ms timeout backstops a real SIGTERM, which cannot call
      // notify() from the signal handler.
      cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return stop_ || ckpt::shutdown_requested() ||
               first_pending() != nullptr;
      });
    }
    // Drain-before-exit: a stop request still fits batches that arrived
    // just before it (run_warm early-exits if a real signal is pending),
    // so a drained daemon never discards acknowledged INGESTs.
    GraphStore* pending = first_pending();
    if (pending != nullptr) {
      bool refitted = false;
      try {
        refitted = refit_store(*pending);
      } catch (const std::exception& e) {
        // A failed persist (disk full) must not take the daemon down:
        // the store keeps serving its current snapshot — which is still
        // the one on disk, preserving persist-before-publish — and the
        // drained batches of this refit are dropped with a loud log.
        HSBP_LOG_ERROR("serve: refit '%s' failed: %s",
                       pending->name().c_str(), e.what());
      }
      if (refitted) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++refits_;
        continue;  // look for more work before considering sleep/stop
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || ckpt::shutdown_requested()) return;
  }
}

}  // namespace hsbp::serve
