/// \file client.hpp
/// \brief Blocking client for the serve protocol, with optional
/// resilience: per-request deadlines, reconnect, and retry with
/// exponential backoff + deterministic jitter.
///
/// One connection, synchronous request/reply — exactly what the load
/// bench's client threads, the serve tests, and `hsbp query` need. Not
/// a connection pool; open one Client per thread.
///
/// The resilient path is request_retry(): it re-dials the remembered
/// endpoint after a hangup or timeout, backs off exponentially between
/// attempts (with jitter derived from RetryPolicy::jitter_seed, so two
/// retrying clients do not stampede in lockstep and tests replay the
/// exact schedule), and honors the server's `ERR busy retry-after <ms>`
/// load-shedding hint by sleeping the suggested amount instead of its
/// own backoff. Note the at-least-once caveat: a retried INGEST whose
/// ack was lost may be applied twice; retries are unconditionally safe
/// only for the read verbs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hsbp::serve {

/// Knobs of the resilient request path. The defaults mirror the
/// daemon's: a client that retries 3 times with 50 ms base backoff
/// rides out one refit-length stall or a shed connection.
struct RetryPolicy {
  int attempts = 1;          ///< total tries (1 = no retry)
  int timeout_ms = -1;       ///< per-attempt request deadline (-1 = none)
  int backoff_ms = 50;       ///< first backoff; doubles per retry
  int backoff_max_ms = 2000;  ///< exponential ceiling
  std::uint64_t jitter_seed = 1;  ///< deterministic jitter stream
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket. \throws util::IoError.
  static Client connect_unix(const std::string& path);

  /// Connects to 127.0.0.1:port. \throws util::IoError.
  static Client connect_tcp(int port);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Re-dials the endpoint this client was created with. Returns false
  /// (instead of throwing) when the daemon is unreachable — the retry
  /// loop treats that as one more failed attempt.
  bool reconnect() noexcept;

  /// Sends one request payload and reads one reply. nullopt when the
  /// server hung up (after SHUTDOWN, or a frame violation), or when
  /// `timeout_ms` >= 0 elapsed first (the connection is closed then —
  /// a late reply must not be read as the answer to the NEXT request).
  std::optional<std::string> request(std::string_view payload,
                                     int timeout_ms = -1);

  /// The resilient request: up to `policy.attempts` tries, re-dialing
  /// the endpoint between them, backing off exponentially with jitter
  /// — or exactly the server's advertised `retry-after` when the reply
  /// was an `ERR busy` shed. Returns the first non-busy reply, the
  /// last busy reply when every attempt was shed, or nullopt when
  /// every attempt failed outright. `attempts_used` (optional) reports
  /// how many tries ran.
  std::optional<std::string> request_retry(std::string_view payload,
                                           const RetryPolicy& policy,
                                           int* attempts_used = nullptr);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string unix_path_;  ///< remembered endpoint (Unix flavor)
  int tcp_port_ = -1;      ///< remembered endpoint (TCP flavor)
};

/// True when `reply` is a load-shedding `ERR busy ...` refusal; then
/// `retry_after_ms` receives the server's suggested backoff (when
/// present and parseable, else it is left untouched).
bool is_busy(std::string_view reply, int* retry_after_ms = nullptr) noexcept;

}  // namespace hsbp::serve
