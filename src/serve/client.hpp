/// \file client.hpp
/// \brief Minimal blocking client for the serve protocol.
///
/// One connection, synchronous request/reply — exactly what the load
/// bench's client threads, the serve tests, and `hsbp query` need. Not
/// a connection pool; open one Client per thread.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace hsbp::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket. \throws util::IoError.
  static Client connect_unix(const std::string& path);

  /// Connects to 127.0.0.1:port. \throws util::IoError.
  static Client connect_tcp(int port);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request payload and reads one reply. nullopt when the
  /// server hung up (after SHUTDOWN, or a frame violation).
  std::optional<std::string> request(std::string_view payload);

  void close() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace hsbp::serve
