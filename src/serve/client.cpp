#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.hpp"
#include "util/errors.hpp"

namespace hsbp::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw util::IoError(std::string("client: socket: ") +
                        std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw util::IoError("client: socket path '" + path +
                        "' exceeds sun_path");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw util::IoError("client: cannot connect to '" + path +
                        "': " + reason);
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw util::IoError(std::string("client: socket: ") +
                        std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw util::IoError("client: cannot connect to 127.0.0.1:" +
                        std::to_string(port) + ": " + reason);
  }
  Client client;
  client.fd_ = fd;
  return client;
}

std::optional<std::string> Client::request(std::string_view payload) {
  if (fd_ < 0) return std::nullopt;
  if (!write_frame(fd_, payload)) {
    close();
    return std::nullopt;
  }
  std::string reply;
  if (!read_frame(fd_, reply)) {
    close();
    return std::nullopt;
  }
  return reply;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hsbp::serve
