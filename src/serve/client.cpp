#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

#include "serve/protocol.hpp"
#include "util/errors.hpp"

namespace hsbp::serve {

namespace {

int dial_unix(const std::string& path, std::string& error) noexcept {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("client: socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    error = "client: socket path '" + path + "' exceeds sun_path";
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = "client: cannot connect to '" + path +
            "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int dial_tcp(int port, std::string& error) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("client: socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = "client: cannot connect to 127.0.0.1:" +
            std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// SplitMix64 step — the same deterministic stream everywhere a test
/// needs to replay a backoff schedule.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool is_busy(std::string_view reply, int* retry_after_ms) noexcept {
  constexpr std::string_view kBusy = "ERR busy";
  if (reply.substr(0, kBusy.size()) != kBusy) return false;
  if (retry_after_ms != nullptr) {
    constexpr std::string_view kHint = "retry-after ";
    const auto pos = reply.find(kHint);
    if (pos != std::string_view::npos) {
      const auto tail = reply.substr(pos + kHint.size());
      int ms = 0;
      const auto [ptr, ec] =
          std::from_chars(tail.data(), tail.data() + tail.size(), ms);
      if (ec == std::errc{} && ms >= 0) *retry_after_ms = ms;
      (void)ptr;
    }
  }
  return true;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      unix_path_(std::move(other.unix_path_)),
      tcp_port_(other.tcp_port_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    unix_path_ = std::move(other.unix_path_);
    tcp_port_ = other.tcp_port_;
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect_unix(const std::string& path) {
  std::string error;
  const int fd = dial_unix(path, error);
  if (fd < 0) throw util::IoError(error);
  Client client;
  client.fd_ = fd;
  client.unix_path_ = path;
  return client;
}

Client Client::connect_tcp(int port) {
  std::string error;
  const int fd = dial_tcp(port, error);
  if (fd < 0) throw util::IoError(error);
  Client client;
  client.fd_ = fd;
  client.tcp_port_ = port;
  return client;
}

bool Client::reconnect() noexcept {
  close();
  std::string error;
  if (!unix_path_.empty()) {
    fd_ = dial_unix(unix_path_, error);
  } else if (tcp_port_ >= 0) {
    fd_ = dial_tcp(tcp_port_, error);
  }
  return fd_ >= 0;
}

std::optional<std::string> Client::request(std::string_view payload,
                                           int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (write_frame(fd_, payload, timeout_ms) != IoStatus::Ok) {
    close();
    return std::nullopt;
  }
  std::string reply;
  // One deadline covers both waiting for the reply to start (idle) and
  // its remaining bytes (frame): a per-request budget, not per-phase.
  if (read_frame(fd_, reply, FrameDeadline{timeout_ms, timeout_ms}) !=
      IoStatus::Ok) {
    // A timed-out connection is unusable: a late reply arriving after
    // we moved on would be mistaken for the next request's answer.
    close();
    return std::nullopt;
  }
  return reply;
}

std::optional<std::string> Client::request_retry(std::string_view payload,
                                                 const RetryPolicy& policy,
                                                 int* attempts_used) {
  const int attempts = policy.attempts < 1 ? 1 : policy.attempts;
  std::optional<std::string> last_busy;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 || !connected()) {
      if (!reconnect()) {
        // Daemon unreachable: fall through to the backoff below and
        // try dialing again — reconnect-after-restart is exactly the
        // scenario retries exist for.
      }
    }
    if (connected()) {
      auto reply = request(payload, policy.timeout_ms);
      if (reply.has_value()) {
        int retry_after = -1;
        if (!is_busy(*reply, &retry_after)) {
          if (attempts_used != nullptr) *attempts_used = attempt + 1;
          return reply;
        }
        // Shed by the server: honor its hint over our own schedule.
        last_busy = std::move(reply);
        if (attempt + 1 < attempts) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              retry_after >= 0 ? retry_after : policy.backoff_ms));
        }
        continue;
      }
    }
    if (attempt + 1 < attempts) {
      // Exponential backoff with deterministic jitter in [0, base):
      // doubling is capped at backoff_max_ms, and the jitter stream is
      // a pure function of (seed, attempt) so a fixed seed replays the
      // exact schedule.
      std::int64_t base = policy.backoff_ms > 0 ? policy.backoff_ms : 1;
      for (int i = 0; i < attempt && base < policy.backoff_max_ms; ++i) {
        base *= 2;
      }
      if (base > policy.backoff_max_ms) base = policy.backoff_max_ms;
      const auto jitter = static_cast<std::int64_t>(
          mix(policy.jitter_seed + static_cast<std::uint64_t>(attempt)) %
          static_cast<std::uint64_t>(base));
      std::this_thread::sleep_for(std::chrono::milliseconds(base + jitter));
    }
  }
  if (attempts_used != nullptr) *attempts_used = attempts;
  return last_busy;  // nullopt unless the final state was "shed"
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hsbp::serve
