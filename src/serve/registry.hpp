/// \file registry.hpp
/// \brief Snapshot-isolated state of the serving daemon.
///
/// Every served graph is one GraphStore holding an immutable,
/// reference-counted Snapshot — the CSR graph, its partition, and the
/// derived figures queries ask for. Queries `acquire()` the current
/// snapshot (a shared_ptr copy under a mutex whose critical section is
/// two pointer writes) and then compute against it lock-free; the refit
/// scheduler builds the successor off to the side and `publish()`es it
/// with one pointer swap. A query therefore always observes one fully
/// constructed snapshot — never a half-updated partition, no matter how
/// long the refit ran — and the last reader of a superseded snapshot
/// frees it via shared_ptr.
///
/// Pending INGEST batches queue inside the store (cheap, mutex-guarded
/// appends); the refit scheduler drains the queue, fits, and publishes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "blockmodel/dict_transpose_matrix.hpp"
#include "graph/graph.hpp"

namespace hsbp::serve {

/// One immutable published state of a served graph. Construction
/// computes the derived figures once so queries are pure reads.
struct Snapshot {
  std::shared_ptr<const graph::Graph> graph;
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
  double mdl = 0.0;
  double modularity = 0.0;
  /// Publish counter: 1 for the initial fit, +1 per refit. A client
  /// that polls EPOCH sees exactly the publishes, in order.
  std::uint64_t epoch = 0;
};

/// Builds a snapshot from a fitted partition (computes modularity; the
/// caller supplies MDL from the fit).
std::shared_ptr<const Snapshot> make_snapshot(
    std::shared_ptr<const graph::Graph> graph,
    std::vector<std::int32_t> assignment, blockmodel::BlockId num_blocks,
    double mdl, std::uint64_t epoch);

/// One served graph: current snapshot + pending edge batches.
class GraphStore {
 public:
  explicit GraphStore(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Current snapshot (never null once the initial fit published).
  std::shared_ptr<const Snapshot> acquire() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
  }

  /// Swaps in a successor snapshot. Readers holding the old one keep
  /// it alive until they drop it.
  void publish(std::shared_ptr<const Snapshot> next) {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(next);
  }

  /// Queues an edge batch for the refit scheduler. Returns the number
  /// of batches now pending.
  std::size_t enqueue(std::vector<graph::Edge> batch) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(batch));
    return pending_.size();
  }

  /// Bounded enqueue: refuses the batch when `max_pending` batches are
  /// already queued (so 0 refuses everything — a read-only mode).
  /// Returns the pending count after the append, or nullopt when the
  /// batch was refused. The check-and-append is one critical section —
  /// two racing INGESTs cannot both slip past the bound.
  std::optional<std::size_t> try_enqueue(std::vector<graph::Edge> batch,
                                         std::size_t max_pending) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.size() >= max_pending) return std::nullopt;
    pending_.push_back(std::move(batch));
    return pending_.size();
  }

  /// Drains every pending batch (refit scheduler only).
  std::vector<std::vector<graph::Edge>> drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(pending_);
  }

  std::size_t pending_batches() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
  }

  // Monotonic counters (under the same mutex; incremented by the
  // server/scheduler, read by STATS).
  void count_query() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++queries_;
  }
  void count_refit(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++refits_;
    refit_seconds_ += seconds;
  }
  std::uint64_t queries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queries_;
  }
  std::uint64_t refits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return refits_;
  }
  double refit_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return refit_seconds_;
  }

 private:
  const std::string name_;
  mutable std::mutex mutex_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::vector<std::vector<graph::Edge>> pending_;
  std::uint64_t queries_ = 0;
  std::uint64_t refits_ = 0;
  double refit_seconds_ = 0.0;
};

/// The daemon's graph table. Stores are registered before the server
/// starts and never removed, so lookups after start are read-only.
class Registry {
 public:
  /// Registers a store. \throws std::invalid_argument on a duplicate
  /// name.
  GraphStore& add(std::string name);

  /// Store by name, or nullptr.
  GraphStore* find(std::string_view name) noexcept;

  /// Registration-ordered names (LIST).
  std::vector<std::string> names() const;

  std::vector<GraphStore*> stores() noexcept;
  std::vector<const GraphStore*> stores() const noexcept;

 private:
  std::vector<std::unique_ptr<GraphStore>> stores_;
};

}  // namespace hsbp::serve
