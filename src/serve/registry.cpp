#include "serve/registry.hpp"

#include <stdexcept>

#include "metrics/metrics.hpp"

namespace hsbp::serve {

std::shared_ptr<const Snapshot> make_snapshot(
    std::shared_ptr<const graph::Graph> graph,
    std::vector<std::int32_t> assignment, blockmodel::BlockId num_blocks,
    double mdl, std::uint64_t epoch) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->modularity = metrics::modularity(*graph, assignment);
  snapshot->graph = std::move(graph);
  snapshot->assignment = std::move(assignment);
  snapshot->num_blocks = num_blocks;
  snapshot->mdl = mdl;
  snapshot->epoch = epoch;
  return snapshot;
}

GraphStore& Registry::add(std::string name) {
  for (const auto& store : stores_) {
    if (store->name() == name) {
      throw std::invalid_argument("serve: duplicate graph name '" + name +
                                  "'");
    }
  }
  stores_.push_back(std::make_unique<GraphStore>(std::move(name)));
  return *stores_.back();
}

GraphStore* Registry::find(std::string_view name) noexcept {
  for (const auto& store : stores_) {
    if (store->name() == name) return store.get();
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(stores_.size());
  for (const auto& store : stores_) out.push_back(store->name());
  return out;
}

std::vector<GraphStore*> Registry::stores() noexcept {
  std::vector<GraphStore*> out;
  out.reserve(stores_.size());
  for (const auto& store : stores_) out.push_back(store.get());
  return out;
}

std::vector<const GraphStore*> Registry::stores() const noexcept {
  std::vector<const GraphStore*> out;
  out.reserve(stores_.size());
  for (const auto& store : stores_) out.push_back(store.get());
  return out;
}

}  // namespace hsbp::serve
