#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <sstream>

namespace hsbp::serve {

namespace {

/// Splits the payload into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view payload) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() &&
           (payload[i] == ' ' || payload[i] == '\t' || payload[i] == '\n' ||
            payload[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < payload.size() && payload[i] != ' ' && payload[i] != '\t' &&
           payload[i] != '\n' && payload[i] != '\r') {
      ++i;
    }
    if (i > start) tokens.push_back(payload.substr(start, i - start));
  }
  return tokens;
}

bool parse_int(std::string_view token, std::int64_t& out) {
  const auto* first = token.data();
  const auto* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_vertex(std::string_view token, std::int32_t& out) {
  std::int64_t wide = 0;
  if (!parse_int(token, wide) || wide < 0 || wide > INT32_MAX) return false;
  out = static_cast<std::int32_t>(wide);
  return true;
}

}  // namespace

std::optional<Request> parse_request(std::string_view payload,
                                     std::string& error) {
  const auto tokens = tokenize(payload);
  if (tokens.empty()) {
    error = "empty request";
    return std::nullopt;
  }
  const std::string_view verb = tokens.front();
  Request request;

  const auto need = [&](std::size_t arity, const char* usage) {
    if (tokens.size() == arity) return true;
    error = std::string(verb) + ": expected '" + usage + "'";
    return false;
  };

  if (verb == "PING") {
    if (!need(1, "PING")) return std::nullopt;
    request.verb = Verb::Ping;
    return request;
  }
  if (verb == "LIST") {
    if (!need(1, "LIST")) return std::nullopt;
    request.verb = Verb::List;
    return request;
  }
  if (verb == "STATS") {
    if (!need(1, "STATS")) return std::nullopt;
    request.verb = Verb::Stats;
    return request;
  }
  if (verb == "SHUTDOWN") {
    if (!need(1, "SHUTDOWN")) return std::nullopt;
    request.verb = Verb::Shutdown;
    return request;
  }
  if (verb == "INFO" || verb == "MODULARITY" || verb == "MDL" ||
      verb == "EPOCH") {
    if (tokens.size() != 2) {
      error = std::string(verb) + ": expected '" + std::string(verb) +
              " <graph>'";
      return std::nullopt;
    }
    request.verb = verb == "INFO"         ? Verb::Info
                   : verb == "MODULARITY" ? Verb::Modularity
                   : verb == "MDL"        ? Verb::Mdl
                                          : Verb::Epoch;
    request.graph = std::string(tokens[1]);
    return request;
  }
  if (verb == "MEMBER" || verb == "COMMUNITY") {
    if (tokens.size() != 3) {
      error = std::string(verb) + ": expected '" + std::string(verb) +
              " <graph> <id>'";
      return std::nullopt;
    }
    request.verb = verb == "MEMBER" ? Verb::Member : Verb::Community;
    request.graph = std::string(tokens[1]);
    if (!parse_int(tokens[2], request.argument) || request.argument < 0) {
      error = std::string(verb) + ": '" + std::string(tokens[2]) +
              "' is not a non-negative integer";
      return std::nullopt;
    }
    return request;
  }
  if (verb == "INGEST") {
    if (tokens.size() < 3) {
      error = "INGEST: expected 'INGEST <graph> <count> u1 v1 ...'";
      return std::nullopt;
    }
    request.verb = Verb::Ingest;
    request.graph = std::string(tokens[1]);
    std::int64_t count = 0;
    if (!parse_int(tokens[2], count) || count < 1) {
      error = "INGEST: edge count '" + std::string(tokens[2]) +
              "' is not a positive integer";
      return std::nullopt;
    }
    if (tokens.size() != 3 + 2 * static_cast<std::size_t>(count)) {
      error = "INGEST: announced " + std::to_string(count) +
              " edges but carries " +
              std::to_string((tokens.size() - 3) / 2) + " endpoint pairs";
      return std::nullopt;
    }
    request.edges.reserve(static_cast<std::size_t>(count));
    for (std::int64_t e = 0; e < count; ++e) {
      std::int32_t u = 0;
      std::int32_t v = 0;
      if (!parse_vertex(tokens[3 + 2 * static_cast<std::size_t>(e)], u) ||
          !parse_vertex(tokens[4 + 2 * static_cast<std::size_t>(e)], v)) {
        error = "INGEST: edge " + std::to_string(e) +
                " has a non-vertex endpoint";
        return std::nullopt;
      }
      request.edges.emplace_back(u, v);
    }
    return request;
  }
  error = "unknown verb '" + std::string(verb) + "'";
  return std::nullopt;
}

std::string format_ingest(
    std::string_view graph,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
  std::ostringstream out;
  out << "INGEST " << graph << ' ' << edges.size();
  for (const auto& [u, v] : edges) out << ' ' << u << ' ' << v;
  return out.str();
}

std::string ok_reply(std::string_view detail) {
  std::string reply = "OK";
  if (!detail.empty()) {
    reply += ' ';
    reply += detail;
  }
  return reply;
}

std::string err_reply(std::string_view reason) {
  std::string reply = "ERR";
  if (!reason.empty()) {
    reply += ' ';
    reply += reason;
  }
  return reply;
}

bool is_ok(std::string_view reply) noexcept {
  return reply == "OK" || reply.substr(0, 3) == "OK ";
}

// ----------------------------------------------------------- frame I/O

namespace {

bool write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply must surface as EPIPE
    // (frame failure → session close), not a process-killing SIGPIPE in
    // whichever thread happened to be writing.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `size` bytes; false on EOF/error. `saw_byte` reports
/// whether anything at all arrived (distinguishes clean EOF from torn).
bool read_all(int fd, char* data, std::size_t size, bool& saw_byte) noexcept {
  while (size > 0) {
    const ssize_t n = ::read(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    saw_byte = true;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) noexcept {
  const auto size = static_cast<std::uint32_t>(payload.size());
  if (payload.size() > kMaxFrameBytes) return false;
  char prefix[4];
  prefix[0] = static_cast<char>(size & 0xff);
  prefix[1] = static_cast<char>((size >> 8) & 0xff);
  prefix[2] = static_cast<char>((size >> 16) & 0xff);
  prefix[3] = static_cast<char>((size >> 24) & 0xff);
  return write_all(fd, prefix, 4) && write_all(fd, payload.data(), size);
}

bool read_frame(int fd, std::string& payload) noexcept {
  char prefix[4];
  bool saw_byte = false;
  if (!read_all(fd, prefix, 4, saw_byte)) return false;
  const std::uint32_t size =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (size > kMaxFrameBytes) return false;
  payload.resize(size);
  if (size == 0) return true;
  return read_all(fd, payload.data(), size, saw_byte);
}

}  // namespace hsbp::serve
