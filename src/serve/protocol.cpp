#include "serve/protocol.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "ckpt/fault_injector.hpp"

namespace hsbp::serve {

namespace {

/// Splits the payload into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view payload) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() &&
           (payload[i] == ' ' || payload[i] == '\t' || payload[i] == '\n' ||
            payload[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < payload.size() && payload[i] != ' ' && payload[i] != '\t' &&
           payload[i] != '\n' && payload[i] != '\r') {
      ++i;
    }
    if (i > start) tokens.push_back(payload.substr(start, i - start));
  }
  return tokens;
}

bool parse_int(std::string_view token, std::int64_t& out) {
  const auto* first = token.data();
  const auto* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_vertex(std::string_view token, std::int32_t& out) {
  std::int64_t wide = 0;
  if (!parse_int(token, wide) || wide < 0 || wide > INT32_MAX) return false;
  out = static_cast<std::int32_t>(wide);
  return true;
}

}  // namespace

std::optional<Request> parse_request(std::string_view payload,
                                     std::string& error) {
  const auto tokens = tokenize(payload);
  if (tokens.empty()) {
    error = "empty request";
    return std::nullopt;
  }
  const std::string_view verb = tokens.front();
  Request request;

  const auto need = [&](std::size_t arity, const char* usage) {
    if (tokens.size() == arity) return true;
    error = std::string(verb) + ": expected '" + usage + "'";
    return false;
  };

  if (verb == "PING") {
    if (!need(1, "PING")) return std::nullopt;
    request.verb = Verb::Ping;
    return request;
  }
  if (verb == "LIST") {
    if (!need(1, "LIST")) return std::nullopt;
    request.verb = Verb::List;
    return request;
  }
  if (verb == "STATS") {
    if (!need(1, "STATS")) return std::nullopt;
    request.verb = Verb::Stats;
    return request;
  }
  if (verb == "HEALTH") {
    if (!need(1, "HEALTH")) return std::nullopt;
    request.verb = Verb::Health;
    return request;
  }
  if (verb == "SHUTDOWN") {
    if (!need(1, "SHUTDOWN")) return std::nullopt;
    request.verb = Verb::Shutdown;
    return request;
  }
  if (verb == "INFO" || verb == "MODULARITY" || verb == "MDL" ||
      verb == "EPOCH") {
    if (tokens.size() != 2) {
      error = std::string(verb) + ": expected '" + std::string(verb) +
              " <graph>'";
      return std::nullopt;
    }
    request.verb = verb == "INFO"         ? Verb::Info
                   : verb == "MODULARITY" ? Verb::Modularity
                   : verb == "MDL"        ? Verb::Mdl
                                          : Verb::Epoch;
    request.graph = std::string(tokens[1]);
    return request;
  }
  if (verb == "MEMBER" || verb == "COMMUNITY") {
    if (tokens.size() != 3) {
      error = std::string(verb) + ": expected '" + std::string(verb) +
              " <graph> <id>'";
      return std::nullopt;
    }
    request.verb = verb == "MEMBER" ? Verb::Member : Verb::Community;
    request.graph = std::string(tokens[1]);
    if (!parse_int(tokens[2], request.argument) || request.argument < 0) {
      error = std::string(verb) + ": '" + std::string(tokens[2]) +
              "' is not a non-negative integer";
      return std::nullopt;
    }
    return request;
  }
  if (verb == "INGEST") {
    if (tokens.size() < 3) {
      error = "INGEST: expected 'INGEST <graph> <count> u1 v1 ...'";
      return std::nullopt;
    }
    request.verb = Verb::Ingest;
    request.graph = std::string(tokens[1]);
    std::int64_t count = 0;
    if (!parse_int(tokens[2], count) || count < 1) {
      error = "INGEST: edge count '" + std::string(tokens[2]) +
              "' is not a positive integer";
      return std::nullopt;
    }
    if (tokens.size() != 3 + 2 * static_cast<std::size_t>(count)) {
      error = "INGEST: announced " + std::to_string(count) +
              " edges but carries " +
              std::to_string((tokens.size() - 3) / 2) + " endpoint pairs";
      return std::nullopt;
    }
    request.edges.reserve(static_cast<std::size_t>(count));
    for (std::int64_t e = 0; e < count; ++e) {
      std::int32_t u = 0;
      std::int32_t v = 0;
      if (!parse_vertex(tokens[3 + 2 * static_cast<std::size_t>(e)], u) ||
          !parse_vertex(tokens[4 + 2 * static_cast<std::size_t>(e)], v)) {
        error = "INGEST: edge " + std::to_string(e) +
                " has a non-vertex endpoint";
        return std::nullopt;
      }
      request.edges.emplace_back(u, v);
    }
    return request;
  }
  error = "unknown verb '" + std::string(verb) + "'";
  return std::nullopt;
}

std::string format_ingest(
    std::string_view graph,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
  std::ostringstream out;
  out << "INGEST " << graph << ' ' << edges.size();
  for (const auto& [u, v] : edges) out << ' ' << u << ' ' << v;
  return out.str();
}

std::string ok_reply(std::string_view detail) {
  std::string reply = "OK";
  if (!detail.empty()) {
    reply += ' ';
    reply += detail;
  }
  return reply;
}

std::string err_reply(std::string_view reason) {
  std::string reply = "ERR";
  if (!reason.empty()) {
    reply += ' ';
    reply += reason;
  }
  return reply;
}

bool is_ok(std::string_view reply) noexcept {
  return reply == "OK" || reply.substr(0, 3) == "OK ";
}

// ----------------------------------------------------------- frame I/O

namespace {

using Clock = std::chrono::steady_clock;

/// Cancel-flag polling granularity: a drain request is observed within
/// this many milliseconds even while blocked on a dead-silent peer.
constexpr int kCancelSliceMs = 50;

/// Puts the fd into non-blocking mode for the duration of one frame
/// operation and restores the previous flags on the way out. The
/// deadline loops below rely on read/send returning EAGAIN instead of
/// parking the thread past its deadline.
class ScopedNonblock {
 public:
  explicit ScopedNonblock(int fd) noexcept : fd_(fd) {
    flags_ = ::fcntl(fd_, F_GETFL, 0);
    if (flags_ >= 0 && (flags_ & O_NONBLOCK) == 0) {
      restore_ = ::fcntl(fd_, F_SETFL, flags_ | O_NONBLOCK) == 0;
    }
  }
  ~ScopedNonblock() {
    if (restore_) ::fcntl(fd_, F_SETFL, flags_);
  }
  ScopedNonblock(const ScopedNonblock&) = delete;
  ScopedNonblock& operator=(const ScopedNonblock&) = delete;

 private:
  int fd_;
  int flags_ = -1;
  bool restore_ = false;
};

/// Shared state of one frame operation's retry loops.
struct IoContext {
  const std::atomic<bool>* cancel = nullptr;
  bool has_deadline = false;
  Clock::time_point deadline_at{};  ///< current absolute deadline

  void set_deadline(int ms) noexcept {
    has_deadline = ms >= 0;
    if (has_deadline) {
      deadline_at = Clock::now() + std::chrono::milliseconds(ms);
    }
  }

  /// Cancelled/Timeout when the operation must stop, Ok to keep going.
  IoStatus check() const noexcept {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return IoStatus::Cancelled;
    }
    if (has_deadline && Clock::now() >= deadline_at) {
      return IoStatus::Timeout;
    }
    return IoStatus::Ok;
  }

  /// Poll timeout for the next wait slice: short enough to notice the
  /// cancel flag, never past the deadline.
  int slice_ms() const noexcept {
    int slice = cancel != nullptr ? kCancelSliceMs : -1;
    if (has_deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline_at - Clock::now())
              .count();
      const int rem = static_cast<int>(
          remaining < 0 ? 0 : (remaining > 60000 ? 60000 : remaining));
      slice = slice < 0 ? rem : (rem < slice ? rem : slice);
    }
    return slice;
  }
};

/// Reads exactly `size` bytes under the context's deadline. `saw_byte`
/// distinguishes a clean EOF from a torn frame and reports when the
/// first byte of the frame landed (the caller re-arms the deadline).
IoStatus read_exact(int fd, char* data, std::size_t size, IoContext& ctx,
                    bool& saw_byte) noexcept {
  while (size > 0) {
    const IoStatus gate = ctx.check();
    if (gate != IoStatus::Ok) return gate;
    const ssize_t n = ::read(fd, data, size);
    if (n > 0) {
      saw_byte = true;
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return saw_byte ? IoStatus::Torn : IoStatus::Eof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, ctx.slice_ms());
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

/// Writes exactly `size` bytes under the context's deadline, retrying
/// short writes. `chunk` > 0 caps each send() (fault-injected stressor
/// for exactly this retry loop).
IoStatus write_exact(int fd, const char* data, std::size_t size,
                     IoContext& ctx, std::size_t chunk) noexcept {
  while (size > 0) {
    const IoStatus gate = ctx.check();
    if (gate != IoStatus::Ok) return gate;
    const std::size_t want = chunk > 0 && chunk < size ? chunk : size;
    // MSG_NOSIGNAL: a peer that hung up mid-reply must surface as EPIPE
    // (frame failure → session close), not a process-killing SIGPIPE in
    // whichever thread happened to be writing.
    const ssize_t n = ::send(fd, data, want, MSG_NOSIGNAL);
    if (n >= 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, ctx.slice_ms());
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

void encode_prefix(std::uint32_t size, char prefix[4]) noexcept {
  prefix[0] = static_cast<char>(size & 0xff);
  prefix[1] = static_cast<char>((size >> 8) & 0xff);
  prefix[2] = static_cast<char>((size >> 16) & 0xff);
  prefix[3] = static_cast<char>((size >> 24) & 0xff);
}

}  // namespace

IoStatus read_frame(int fd, std::string& payload,
                    const FrameDeadline& deadline,
                    const std::atomic<bool>* cancel,
                    ckpt::FaultInjector* fault) noexcept {
  ScopedNonblock nonblock(fd);
  IoContext ctx;
  ctx.cancel = cancel;
  ctx.set_deadline(deadline.idle_ms);
  if (fault != nullptr) {
    const auto injected = fault->on_net_read();
    switch (injected.kind) {
      case ckpt::FaultInjector::NetFault::Kind::Drop:
        ::shutdown(fd, SHUT_RDWR);
        return IoStatus::Error;
      case ckpt::FaultInjector::NetFault::Kind::Delay:
        // The deadline is already armed, so a stall past idle_ms
        // deterministically lands in the Timeout path below.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(injected.delay_ms));
        break;
      default:
        break;
    }
  }

  char prefix[4];
  bool saw_byte = false;
  std::size_t got = 0;
  // The prefix is read byte-wise against two deadlines: idle until the
  // first byte lands, then the per-frame budget for everything after.
  while (got < 4) {
    const IoStatus st =
        read_exact(fd, prefix + got, 1, ctx, saw_byte);
    if (st != IoStatus::Ok) return st;
    ++got;
    if (got == 1) ctx.set_deadline(deadline.frame_ms);
  }
  const std::uint32_t size =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (size > kMaxFrameBytes) return IoStatus::Oversized;
  payload.resize(size);
  if (size == 0) return IoStatus::Ok;
  return read_exact(fd, payload.data(), size, ctx, saw_byte);
}

IoStatus write_frame(int fd, std::string_view payload, int deadline_ms,
                     const std::atomic<bool>* cancel,
                     ckpt::FaultInjector* fault) noexcept {
  if (payload.size() > kMaxFrameBytes) return IoStatus::Oversized;
  const auto size = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  encode_prefix(size, prefix);

  std::size_t chunk = 0;
  if (fault != nullptr) {
    const auto injected = fault->on_net_write();
    switch (injected.kind) {
      case ckpt::FaultInjector::NetFault::Kind::Drop:
        ::shutdown(fd, SHUT_RDWR);
        return IoStatus::Error;
      case ckpt::FaultInjector::NetFault::Kind::Tear: {
        // Put exactly `bytes` bytes of the frame on the wire (prefix
        // first), then hard-close: the peer observes a torn frame at a
        // deterministic boundary.
        ScopedNonblock nonblock(fd);
        IoContext ctx;
        ctx.cancel = cancel;
        ctx.set_deadline(deadline_ms);
        const std::size_t from_prefix =
            injected.bytes < 4 ? injected.bytes : 4;
        write_exact(fd, prefix, from_prefix, ctx, 0);
        if (injected.bytes > 4) {
          std::size_t from_payload = injected.bytes - 4;
          if (from_payload > payload.size()) from_payload = payload.size();
          write_exact(fd, payload.data(), from_payload, ctx, 0);
        }
        ::shutdown(fd, SHUT_RDWR);
        return IoStatus::Error;
      }
      case ckpt::FaultInjector::NetFault::Kind::Chunk:
        chunk = injected.bytes;
        break;
      default:
        break;
    }
  }

  ScopedNonblock nonblock(fd);
  IoContext ctx;
  ctx.cancel = cancel;
  ctx.set_deadline(deadline_ms);
  const IoStatus st = write_exact(fd, prefix, 4, ctx, chunk);
  if (st != IoStatus::Ok) return st;
  return write_exact(fd, payload.data(), size, ctx, chunk);
}

bool write_frame(int fd, std::string_view payload) noexcept {
  return write_frame(fd, payload, /*deadline_ms=*/-1) == IoStatus::Ok;
}

bool read_frame(int fd, std::string& payload) noexcept {
  return read_frame(fd, payload, FrameDeadline{}) == IoStatus::Ok;
}

}  // namespace hsbp::serve
