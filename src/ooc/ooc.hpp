/// \file ooc.hpp
/// \brief Divide-and-conquer out-of-core fit: community detection on
/// graphs whose CSR does not fit in RAM.
///
/// The driver runs against a GraphView — in practice an MmapGraph over
/// a binary CSR file (mmap_graph.hpp) — and never materializes the full
/// graph on the heap. Four stages, each bounded by the memory budget:
///
///   1. skeleton   — SamBaS-sample a fraction of the vertices
///                   (samplers.hpp) and fit the induced subgraph with
///                   the configured sbp::Variant. Only the skeleton
///                   subgraph lives on the heap.
///   2. extrapolate— BFS-plurality propagation of the skeleton's blocks
///                   to every vertex (the rule of extrapolate.cpp),
///                   chunked: every `chunk_vertices` dequeues the
///                   release_cache hook drops the mapped CSR pages the
///                   frontier just crossed.
///   3. pieces     — partition the vertex set into K pieces
///                   (dist::partition_vertices; K from the budget vs.
///                   the in-memory CSR estimate), induce each piece's
///                   subgraph one at a time, and warm-refit it from the
///                   extrapolated labels (sbp::run_warm). Piece-local
///                   results are stitched back by plurality over the
///                   labels their vertices held before the refit, so
///                   the global label space survives.
///   4. fine-tune  — rebuild the global blockmodel with the chunked
///                   builder (Blockmodel::from_assignment_chunked) and
///                   polish with serial Metropolis-Hastings passes over
///                   the full view, releasing pages after every chunk.
///
/// Budget semantics: memory_budget_mb bounds the *designed* working set
/// — the largest piece subgraph plus O(V) bookkeeping (assignment,
/// degree cursors, blockmodel). The driver enforces it by choosing
/// K = ceil(csr_bytes / budget) pieces and by calling release_cache at
/// every chunk boundary; it does not police the allocator, so callers
/// measuring peak RSS should allow a small safety factor for the O(V)
/// state and the resident chunk.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/partition.hpp"
#include "graph/view.hpp"
#include "sample/samplers.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::ooc {

struct OocConfig {
  /// Variant, seed, threads, β used for the skeleton and piece fits;
  /// the seed also drives the sampler and the fine-tune chain.
  sbp::SbpConfig base;

  sample::SamplerKind sampler = sample::SamplerKind::DegreeWeighted;

  /// Fraction of vertices in the skeleton sample, in (0, 1].
  double skeleton_fraction = 0.1;

  /// Working-set bound in MiB; 0 disables the bound (single piece).
  std::int64_t memory_budget_mb = 0;

  /// Explicit piece count; 0 derives it from the budget.
  int pieces = 0;

  /// How vertices map to pieces. Range keeps each piece's CSR reads
  /// contiguous in the mapped file — the right default for mmap.
  dist::PartitionStrategy partition = dist::PartitionStrategy::Range;

  /// Full-view fine-tune passes (0 disables stage 4's MCMC polish).
  int finetune_max_iterations = 10;
  double finetune_threshold = 1e-4;

  /// Vertices scanned between release_cache calls in the chunked
  /// stages (extrapolate, model build, fine-tune).
  graph::Vertex chunk_vertices = 1 << 16;

  /// Called at every chunk boundary and between stages; wire it to
  /// MmapGraph::evict to cap the mapped CSR's residency. May be empty.
  std::function<void()> release_cache;
};

struct OocStageTimings {
  double skeleton_seconds = 0.0;
  double extrapolate_seconds = 0.0;
  double pieces_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;
};

struct OocResult {
  /// Full-graph membership: every vertex in [0, num_blocks).
  std::vector<std::int32_t> assignment;
  blockmodel::BlockId num_blocks = 0;
  double mdl = 0.0;  ///< full-graph MDL of `assignment`

  OocStageTimings timings;

  graph::Vertex skeleton_vertices = 0;  ///< induced skeleton size
  graph::EdgeCount skeleton_edges = 0;
  int pieces_planned = 0;               ///< K chosen for stage 3
  int pieces_refit = 0;                 ///< pieces large enough to refit
  std::int64_t frontier_assigned = 0;   ///< extrapolated via BFS plurality
  std::int64_t isolated_assigned = 0;   ///< fallback-labeled (no core path)
  std::int64_t finetune_moves = 0;      ///< stage-4 accepted moves
  std::int64_t estimated_csr_bytes = 0; ///< in-memory CSR footprint estimate
};

/// Bytes an in-memory CSR of (V, E) occupies: two offset arrays of
/// (V+1)×u64 and two edge arrays of E×i32.
std::int64_t estimated_csr_bytes(graph::Vertex num_vertices,
                                 graph::EdgeCount num_edges) noexcept;

/// Piece count for stage 3: `requested` when positive, else
/// ceil(csr_bytes / budget) clamped to [1, V]; 1 when no budget is set.
int plan_pieces(graph::Vertex num_vertices, graph::EdgeCount num_edges,
                std::int64_t memory_budget_mb, int requested) noexcept;

/// Process-wide peak resident set size in KiB (getrusage ru_maxrss).
/// A high-water mark: meaningful for a fit only when measured in a
/// process that never held the full graph (see bench/ext_outofcore).
std::int64_t peak_rss_kb() noexcept;

/// Runs the four-stage pipeline. Deterministic in config.base.seed.
/// \throws std::invalid_argument on an empty graph or bad config
/// values.
OocResult fit(const graph::GraphView& graph, const OocConfig& config);

}  // namespace hsbp::ooc
