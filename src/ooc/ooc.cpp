#include "ooc/ooc.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "blockmodel/mdl.hpp"
#include "sbp/mcmc_common.hpp"
#include "sbp/streaming.hpp"
#include "util/timer.hpp"

namespace hsbp::ooc {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::EdgeCount;
using graph::GraphView;
using graph::Vertex;

namespace {

void release(const OocConfig& config) {
  if (config.release_cache) config.release_cache();
}

/// Plurality block among v's already-labeled neighbors — the rule of
/// sample/extrapolate.cpp (multiplicity counts, ties toward the smaller
/// block id); −1 if no neighbor is labeled yet.
BlockId plurality_block(const GraphView& graph,
                        const std::vector<std::int32_t>& assignment,
                        std::vector<std::int64_t>& votes,
                        std::vector<BlockId>& touched, Vertex v) {
  touched.clear();
  const auto tally = [&](Vertex u) {
    const std::int32_t block = assignment[static_cast<std::size_t>(u)];
    if (block < 0) return;
    if (votes[static_cast<std::size_t>(block)] == 0) touched.push_back(block);
    ++votes[static_cast<std::size_t>(block)];
  };
  for (const Vertex u : graph.out_neighbors(v)) tally(u);
  for (const Vertex u : graph.in_neighbors(v)) tally(u);

  BlockId best = -1;
  std::int64_t best_votes = 0;
  for (const BlockId block : touched) {
    const std::int64_t count = votes[static_cast<std::size_t>(block)];
    votes[static_cast<std::size_t>(block)] = 0;
    if (count > best_votes || (count == best_votes && block < best)) {
      best = block;
      best_votes = count;
    }
  }
  return best;
}

/// Stage 2: the extrapolation of sample/extrapolate.cpp, minus the
/// full-graph model build (stage 4 does that chunked) and with the
/// release hook pulled every `chunk` dequeued vertices so the BFS's
/// walk over the mapped CSR never accumulates residency.
void chunked_extrapolate(const GraphView& graph, const OocConfig& config,
                         const sample::SampledGraph& skeleton,
                         const std::vector<std::int32_t>& sample_assignment,
                         BlockId num_blocks,
                         std::vector<std::int32_t>& assignment,
                         OocResult& out) {
  assignment.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  for (std::size_t s = 0; s < skeleton.to_full.size(); ++s) {
    assignment[static_cast<std::size_t>(skeleton.to_full[s])] =
        sample_assignment[s];
  }

  std::deque<Vertex> queue(skeleton.to_full.begin(), skeleton.to_full.end());
  std::vector<std::int64_t> votes(static_cast<std::size_t>(num_blocks), 0);
  std::vector<BlockId> touched;
  const auto visit = [&](Vertex u) {
    if (assignment[static_cast<std::size_t>(u)] >= 0) return;
    const BlockId block = plurality_block(graph, assignment, votes, touched, u);
    if (block < 0) return;  // all neighbors still unlabeled; revisit later
    assignment[static_cast<std::size_t>(u)] = block;
    ++out.frontier_assigned;
    queue.push_back(u);
  };
  std::int64_t dequeued = 0;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (const Vertex u : graph.out_neighbors(v)) visit(u);
    for (const Vertex u : graph.in_neighbors(v)) visit(u);
    if (++dequeued % config.chunk_vertices == 0) release(config);
  }

  // Vertices with no path to the skeleton: join the largest block so
  // far (smallest id on ties); the fine-tune moves them somewhere
  // sensible.
  BlockId fallback = 0;
  {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_blocks), 0);
    for (const std::int32_t block : assignment) {
      if (block >= 0) ++sizes[static_cast<std::size_t>(block)];
    }
    fallback = static_cast<BlockId>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  }
  for (auto& block : assignment) {
    if (block < 0) {
      block = fallback;
      ++out.isolated_assigned;
    }
  }
}

/// Stage 3, one piece: warm-refit the induced subgraph from its current
/// global labels and stitch the result back. The piece fit gets a
/// compacted label space (run_warm requires dense labels); each result
/// block then maps to the plurality of the global labels its vertices
/// held before the refit, so piece moves re-express themselves in the
/// skeleton's label space and cross-piece agreement survives.
void refit_piece(const OocConfig& config, const GraphView& graph,
                 const std::vector<Vertex>& members, int piece_index,
                 std::vector<std::int32_t>& assignment, BlockId num_blocks) {
  sample::SampledGraph piece = sample::induced_subgraph(graph, members);
  release(config);
  const auto piece_vertices = piece.subgraph.num_vertices();
  if (piece_vertices < 2 || piece.subgraph.num_edges() == 0) return;

  // Compact this piece's global labels to a dense local space.
  std::vector<BlockId> local_of_global(static_cast<std::size_t>(num_blocks),
                                       -1);
  std::vector<std::int32_t> local_labels(
      static_cast<std::size_t>(piece_vertices));
  BlockId local_blocks = 0;
  for (Vertex s = 0; s < piece_vertices; ++s) {
    const std::int32_t global = assignment[static_cast<std::size_t>(
        piece.to_full[static_cast<std::size_t>(s)])];
    auto& local = local_of_global[static_cast<std::size_t>(global)];
    if (local < 0) local = local_blocks++;
    local_labels[static_cast<std::size_t>(s)] = local;
  }

  sbp::SbpConfig piece_config = config.base;
  piece_config.seed =
      config.base.seed + static_cast<std::uint64_t>(piece_index) + 1;
  const sbp::SbpResult refit = sbp::run_warm(piece.subgraph, piece_config,
                                             local_labels, local_blocks);

  // Stitch: result block → plurality of pre-refit global labels.
  std::vector<std::vector<std::int64_t>> ballot(
      static_cast<std::size_t>(refit.num_blocks),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_blocks), 0));
  for (Vertex s = 0; s < piece_vertices; ++s) {
    const std::int32_t global = assignment[static_cast<std::size_t>(
        piece.to_full[static_cast<std::size_t>(s)])];
    ++ballot[static_cast<std::size_t>(
        refit.assignment[static_cast<std::size_t>(s)])]
            [static_cast<std::size_t>(global)];
  }
  std::vector<std::int32_t> global_of_result(
      static_cast<std::size_t>(refit.num_blocks));
  for (BlockId r = 0; r < refit.num_blocks; ++r) {
    const auto& row = ballot[static_cast<std::size_t>(r)];
    global_of_result[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  for (Vertex s = 0; s < piece_vertices; ++s) {
    assignment[static_cast<std::size_t>(
        piece.to_full[static_cast<std::size_t>(s)])] =
        global_of_result[static_cast<std::size_t>(
            refit.assignment[static_cast<std::size_t>(s)])];
  }
}

/// Compacts labels to a dense [0, C') space (pieces can abandon a
/// skeleton block entirely). Returns the new block count.
BlockId compact_labels(std::vector<std::int32_t>& assignment,
                       BlockId num_blocks) {
  std::vector<std::int32_t> dense(static_cast<std::size_t>(num_blocks), -1);
  BlockId next = 0;
  for (const std::int32_t block : assignment) {
    auto& d = dense[static_cast<std::size_t>(block)];
    if (d < 0) d = next++;
  }
  for (auto& block : assignment) {
    block = dense[static_cast<std::size_t>(block)];
  }
  return next;
}

}  // namespace

std::int64_t estimated_csr_bytes(Vertex num_vertices,
                                 EdgeCount num_edges) noexcept {
  return 16 * (static_cast<std::int64_t>(num_vertices) + 1) + 8 * num_edges;
}

int plan_pieces(Vertex num_vertices, EdgeCount num_edges,
                std::int64_t memory_budget_mb, int requested) noexcept {
  const auto cap = static_cast<std::int64_t>(std::max<Vertex>(num_vertices, 1));
  if (requested > 0) {
    return static_cast<int>(
        std::min<std::int64_t>(requested, cap));
  }
  if (memory_budget_mb <= 0) return 1;
  const std::int64_t budget = memory_budget_mb * 1024 * 1024;
  const std::int64_t bytes = estimated_csr_bytes(num_vertices, num_edges);
  const std::int64_t pieces = (bytes + budget - 1) / budget;
  return static_cast<int>(std::clamp<std::int64_t>(pieces, 1, cap));
}

std::int64_t peak_rss_kb() noexcept {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return static_cast<std::int64_t>(usage.ru_maxrss);
}

OocResult fit(const GraphView& graph, const OocConfig& config) {
  if (graph.num_vertices() <= 0) {
    throw std::invalid_argument("ooc::fit: graph has no vertices");
  }
  if (!(config.skeleton_fraction > 0.0) || config.skeleton_fraction > 1.0) {
    throw std::invalid_argument("ooc::fit: skeleton_fraction outside (0, 1]");
  }
  if (config.finetune_max_iterations < 0) {
    throw std::invalid_argument(
        "ooc::fit: finetune_max_iterations must be >= 0");
  }
  if (config.chunk_vertices <= 0) {
    throw std::invalid_argument("ooc::fit: chunk_vertices must be positive");
  }

  OocResult out;
  out.estimated_csr_bytes =
      estimated_csr_bytes(graph.num_vertices(), graph.num_edges());
  util::Timer total;
  util::Timer stage;

  // Stage 1: skeleton sample + fit. The sampler walks the full view
  // (degree reads / frontier growth), so drop pages before the heavy
  // subgraph fit starts.
  sample::SampledGraph skeleton = sample::sample_graph(
      graph, config.sampler, config.skeleton_fraction, config.base.seed);
  release(config);
  out.skeleton_vertices = skeleton.subgraph.num_vertices();
  out.skeleton_edges = skeleton.subgraph.num_edges();
  const sbp::SbpResult skeleton_fit = sbp::run(skeleton.subgraph, config.base);
  out.timings.skeleton_seconds = stage.elapsed();

  // Stage 2: chunked BFS-plurality extrapolation to the full view.
  stage.reset();
  std::vector<std::int32_t> assignment;
  chunked_extrapolate(graph, config, skeleton, skeleton_fit.assignment,
                      skeleton_fit.num_blocks, assignment, out);
  BlockId num_blocks = skeleton_fit.num_blocks;
  release(config);
  out.timings.extrapolate_seconds = stage.elapsed();

  // Stage 3: per-piece warm refits, one induced subgraph in memory at a
  // time.
  stage.reset();
  out.pieces_planned = plan_pieces(graph.num_vertices(), graph.num_edges(),
                                   config.memory_budget_mb, config.pieces);
  if (out.pieces_planned > 1) {
    const dist::VertexPartition partition = dist::partition_vertices(
        graph, out.pieces_planned, config.partition);
    release(config);
    for (int rank = 0; rank < partition.ranks; ++rank) {
      if (partition.members[static_cast<std::size_t>(rank)].empty()) continue;
      refit_piece(config, graph,
                  partition.members[static_cast<std::size_t>(rank)], rank,
                  assignment, num_blocks);
      ++out.pieces_refit;
      release(config);
    }
    num_blocks = compact_labels(assignment, num_blocks);
  }
  out.timings.pieces_seconds = stage.elapsed();

  // Stage 4: chunked global model build + serial fine-tune passes.
  stage.reset();
  Blockmodel model = Blockmodel::from_assignment_chunked(
      graph, assignment, num_blocks, config.chunk_vertices,
      [&config] { release(config); });
  double current_mdl =
      blockmodel::mdl(model, graph.num_vertices(), graph.num_edges());
  if (config.finetune_max_iterations > 0) {
    util::Rng rng(config.base.seed ^ 0x00c0ffee00c0ffeeULL);
    blockmodel::MoveScratch& scratch = blockmodel::thread_move_scratch();
    const blockmodel::FlatMembershipView view{model.assignment().data()};
    sbp::ConvergenceWindow window(config.finetune_threshold);
    for (int pass = 0; pass < config.finetune_max_iterations; ++pass) {
      double pass_delta = 0.0;
      for (Vertex v = 0; v < graph.num_vertices(); ++v) {
        const auto outcome = sbp::evaluate_vertex(
            graph, model, view, v, model.block_size(model.block_of(v)),
            config.base.beta, rng, scratch);
        if (outcome.moved) {
          model.move_vertex(graph, v, outcome.to);
          pass_delta += outcome.delta_mdl;
          ++out.finetune_moves;
        }
        if ((v + 1) % config.chunk_vertices == 0) release(config);
      }
      release(config);
      current_mdl += pass_delta;
      if (window.record(pass_delta, current_mdl)) break;
    }
  }
  out.assignment = model.copy_assignment();
  out.num_blocks = num_blocks;
  out.mdl = blockmodel::mdl(model, graph.num_vertices(), graph.num_edges());
  out.timings.finetune_seconds = stage.elapsed();
  out.timings.total_seconds = total.elapsed();
  return out;
}

}  // namespace hsbp::ooc
