/// \file partition.hpp
/// \brief Vertex partitioners for the simulated distributed runtime.
///
/// Distributing SBP (the paper's final future-work item) starts with
/// assigning vertices to ranks. Three strategies with different balance
/// properties:
///   Range         — contiguous id ranges (cheapest, locality-friendly,
///                   degree-imbalanced on sorted inputs);
///   RoundRobin    — v mod R (cheap, decorrelates ids);
///   DegreeBalanced— greedy longest-processing-time packing by vertex
///                   degree, the balance the paper's §5.5 load-balancing
///                   remark asks for.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/view.hpp"

namespace hsbp::dist {

enum class PartitionStrategy { Range, RoundRobin, DegreeBalanced };

const char* strategy_name(PartitionStrategy strategy) noexcept;

struct VertexPartition {
  int ranks = 0;
  std::vector<std::int32_t> rank_of;                ///< size V
  std::vector<std::vector<graph::Vertex>> members;  ///< per rank
  std::vector<graph::EdgeCount> degree_load;        ///< Σ degree per rank

  /// max load / mean load — 1.0 is perfect balance.
  double imbalance() const noexcept;
};

/// Partitions the graph's vertices over `ranks`. \pre ranks >= 1.
VertexPartition partition_vertices(const graph::GraphView& graph, int ranks,
                                   PartitionStrategy strategy);

}  // namespace hsbp::dist
