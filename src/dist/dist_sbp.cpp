#include "dist/dist_sbp.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "blockmodel/mdl.hpp"
#include "sbp/block_merge.hpp"
#include "sbp/golden_search.hpp"
#include "sbp/mcmc_common.hpp"
#include "util/rng.hpp"
#include "util/omp_region.hpp"
#include "util/timer.hpp"

namespace hsbp::dist {

using blockmodel::BlockId;
using blockmodel::Blockmodel;
using graph::Graph;
using graph::Vertex;

namespace {

/// One rank's accepted moves in a pass.
struct RankUpdates {
  std::vector<std::pair<Vertex, BlockId>> moves;
  std::int64_t proposals = 0;
};

/// One distributed A-SBP pass: every rank sweeps its own vertices
/// against `stale` (remote view) while seeing its own in-pass moves
/// through a rank-local override map.
std::vector<RankUpdates> distributed_pass(
    const Graph& graph, const Blockmodel& b,
    const std::vector<std::int32_t>& stale, const VertexPartition& partition,
    double beta, util::RngPool& rngs) {
  const int ranks = partition.ranks;
  std::vector<RankUpdates> updates(static_cast<std::size_t>(ranks));

  util::omp_region([&] {
#pragma omp for schedule(dynamic, 1)
    for (int rank = 0; rank < ranks; ++rank) {
      auto& local = updates[static_cast<std::size_t>(rank)];
      std::unordered_map<Vertex, BlockId> overrides;
      // Local view of block sizes: stale counts plus this rank's
      // deltas.
      std::vector<std::int32_t> sizes(
          static_cast<std::size_t>(b.num_blocks()));
      for (BlockId r = 0; r < b.num_blocks(); ++r) {
        sizes[static_cast<std::size_t>(r)] = b.block_size(r);
      }

      const auto view = [&](Vertex u) {
        const auto it = overrides.find(u);
        return it != overrides.end() ? it->second
                                     : stale[static_cast<std::size_t>(u)];
      };

      util::Rng& rng = rngs.stream(static_cast<std::size_t>(rank));
      for (const Vertex v :
           partition.members[static_cast<std::size_t>(rank)]) {
        const BlockId from = view(v);
        const auto outcome = sbp::evaluate_vertex(
            graph, b, view, v, sizes[static_cast<std::size_t>(from)], beta,
            rng);
        ++local.proposals;
        if (!outcome.moved) continue;
        overrides[v] = outcome.to;
        --sizes[static_cast<std::size_t>(from)];
        ++sizes[static_cast<std::size_t>(outcome.to)];
        local.moves.emplace_back(v, outcome.to);
      }
    }
  });
  return updates;
}

/// Compacts away empty blocks (possible when two ranks concurrently
/// drain the same block — the coordination real distribution also
/// lacks). Returns true if a compaction happened.
bool compact_empty_blocks(std::vector<std::int32_t>& assignment,
                          BlockId& num_blocks) {
  std::vector<std::int32_t> counts(static_cast<std::size_t>(num_blocks), 0);
  for (const std::int32_t label : assignment) {
    ++counts[static_cast<std::size_t>(label)];
  }
  std::vector<std::int32_t> remap(static_cast<std::size_t>(num_blocks), -1);
  BlockId next = 0;
  for (BlockId r = 0; r < num_blocks; ++r) {
    if (counts[static_cast<std::size_t>(r)] > 0) {
      remap[static_cast<std::size_t>(r)] = next++;
    }
  }
  if (next == num_blocks) return false;
  for (auto& label : assignment) {
    label = remap[static_cast<std::size_t>(label)];
  }
  num_blocks = next;
  return true;
}

/// The distributed MCMC phase: passes of distributed_pass + exchange +
/// rebuild until the convergence window closes.
struct DistPhaseOutcome {
  sbp::McmcPhaseStats stats;
};

DistPhaseOutcome distributed_mcmc_phase(const Graph& graph, Blockmodel& b,
                                        const sbp::McmcSettings& settings,
                                        const VertexPartition& partition,
                                        util::RngPool& rngs,
                                        CommLedger& ledger,
                                        std::vector<std::int64_t>& accepted) {
  DistPhaseOutcome outcome;
  auto& stats = outcome.stats;
  stats.initial_mdl =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  double current_mdl = stats.initial_mdl;
  sbp::ConvergenceWindow window(settings.threshold);

  for (int pass = 0; pass < settings.max_iterations; ++pass) {
    const std::vector<std::int32_t> stale = b.assignment();
    const auto updates = distributed_pass(graph, b, stale, partition,
                                          settings.beta, rngs);

    // Exchange: each rank's accepted moves go to every other rank.
    std::vector<std::int32_t> next = stale;
    std::int64_t moved = 0;
    for (std::size_t rank = 0; rank < updates.size(); ++rank) {
      stats.proposals += updates[rank].proposals;
      for (const auto& [v, to] : updates[rank].moves) {
        next[static_cast<std::size_t>(v)] = to;
      }
      moved += static_cast<std::int64_t>(updates[rank].moves.size());
      accepted[rank] += static_cast<std::int64_t>(updates[rank].moves.size());
    }
    stats.accepted += moved;
    ledger.record(CollectiveKind::AllGatherUpdates, moved * kUpdateBytes,
                  partition.ranks);

    BlockId num_blocks = b.num_blocks();
    compact_empty_blocks(next, num_blocks);
    b = Blockmodel::from_assignment(graph, next, num_blocks);
    ledger.record(
        CollectiveKind::RebuildAllReduce,
        static_cast<std::int64_t>(b.matrix().nonzeros()) * kCellBytes,
        partition.ranks);

    const double new_mdl =
        blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
    const double pass_delta = new_mdl - current_mdl;
    current_mdl = new_mdl;
    ++stats.iterations;
    if (window.record(pass_delta, current_mdl)) break;
  }
  stats.final_mdl = current_mdl;
  return outcome;
}

}  // namespace

DistributedResult run_distributed(const Graph& graph,
                                  const DistributedConfig& config) {
  if (config.ranks < 1) {
    throw std::invalid_argument("run_distributed: ranks >= 1");
  }
  if (graph.num_vertices() <= 0 || graph.num_edges() <= 0) {
    throw std::invalid_argument("run_distributed: empty graph");
  }
  const sbp::SbpConfig& base = config.base;
  if (base.block_reduction_rate <= 0.0 || base.block_reduction_rate >= 1.0) {
    throw std::invalid_argument(
        "run_distributed: block_reduction_rate in (0,1)");
  }

  util::Timer total_timer;
  const VertexPartition partition =
      partition_vertices(graph, config.ranks, config.strategy);
  util::RngPool rngs(base.seed,
                     static_cast<std::size_t>(std::max(
                         config.ranks, omp_get_max_threads())));

  DistributedResult out;
  out.partition_imbalance = partition.imbalance();
  out.rank_accepted.assign(static_cast<std::size_t>(config.ranks), 0);
  sbp::SbpStats& stats = out.result.stats;

  Blockmodel identity = Blockmodel::identity(graph);
  sbp::Snapshot initial{identity.copy_assignment(), identity.num_blocks(),
                        blockmodel::mdl(identity, graph.num_vertices(),
                                        graph.num_edges())};
  sbp::GoldenSearch search(std::move(initial), base.block_reduction_rate);

  util::Stopwatch merge_watch;
  util::Stopwatch mcmc_watch;

  while (!search.done() &&
         stats.outer_iterations < base.max_outer_iterations) {
    const auto probe = search.next_probe();
    Blockmodel b = Blockmodel::from_assignment(
        graph, probe.warm_start->assignment, probe.warm_start->num_blocks);

    // Centralized merge phase: gather + broadcast of the membership.
    merge_watch.start();
    out.comm.record(
        CollectiveKind::AssignmentBcast,
        static_cast<std::int64_t>(graph.num_vertices()) * kLabelBytes * 2,
        config.ranks);
    auto merged = sbp::block_merge_phase(
        graph, b, probe.target_blocks, base.merge_proposals_per_block, rngs);
    b = Blockmodel::from_assignment(graph, merged.assignment,
                                    merged.num_blocks);
    merge_watch.stop();

    sbp::McmcSettings settings;
    settings.beta = base.beta;
    settings.max_iterations = base.max_mcmc_iterations;
    settings.threshold = search.bracket_established()
                             ? base.mcmc_threshold_post_bracket
                             : base.mcmc_threshold_pre_bracket;

    mcmc_watch.start();
    const auto phase = distributed_mcmc_phase(
        graph, b, settings, partition, rngs, out.comm, out.rank_accepted);
    mcmc_watch.stop();

    stats.mcmc_iterations += phase.stats.iterations;
    stats.proposals += phase.stats.proposals;
    stats.accepted_moves += phase.stats.accepted;
    stats.parallel_updates +=
        phase.stats.iterations * graph.num_vertices();
    ++stats.outer_iterations;

    search.record(sbp::Snapshot{b.copy_assignment(), b.num_blocks(),
                                phase.stats.final_mdl});
  }

  const sbp::Snapshot& best = search.best();
  out.result.assignment = best.assignment;
  out.result.num_blocks = best.num_blocks;
  out.result.mdl = best.mdl;
  stats.block_merge_seconds = merge_watch.total();
  stats.mcmc_seconds = mcmc_watch.total();
  stats.total_seconds = total_timer.elapsed();
  return out;
}

}  // namespace hsbp::dist
