/// \file comm.hpp
/// \brief Communication accounting for the simulated distributed
/// runtime.
///
/// No MPI is available (or needed) here: ranks execute inside one
/// process and "communication" is staged through explicit buffers. What
/// the simulation preserves is the *protocol* — which collective runs
/// when, and how many bytes it would carry — which is exactly the
/// quantity a real distributed port would be sized by. The ledger
/// records every collective so benches can report volume per pass and
/// its scaling with rank count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsbp::dist {

enum class CollectiveKind {
  AllGatherUpdates,   ///< accepted membership moves, end of each pass
  RebuildAllReduce,   ///< blockmodel refresh after applying updates
  AssignmentBcast,    ///< full membership broadcast (merge phases)
};

const char* collective_name(CollectiveKind kind) noexcept;

struct CollectiveRecord {
  CollectiveKind kind;
  std::int64_t bytes = 0;   ///< payload carried across ranks
  int ranks = 0;
};

/// Append-only ledger of simulated collectives.
class CommLedger {
 public:
  void record(CollectiveKind kind, std::int64_t bytes, int ranks) {
    records_.push_back({kind, bytes, ranks});
    total_bytes_ += bytes;
  }

  std::int64_t total_bytes() const noexcept { return total_bytes_; }
  std::size_t collective_count() const noexcept { return records_.size(); }

  /// Total bytes of one collective kind.
  std::int64_t bytes_of(CollectiveKind kind) const noexcept;

  const std::vector<CollectiveRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<CollectiveRecord> records_;
  std::int64_t total_bytes_ = 0;
};

/// Payload-size model (bytes on the wire), kept in one place so the
/// accounting is auditable:
///   membership update: vertex id (4) + new block (4)
///   blockmodel cell:   row (4) + col (4) + count (8)
///   assignment entry:  block label (4)
constexpr std::int64_t kUpdateBytes = 8;
constexpr std::int64_t kCellBytes = 16;
constexpr std::int64_t kLabelBytes = 4;

}  // namespace hsbp::dist
