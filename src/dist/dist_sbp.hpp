/// \file dist_sbp.hpp
/// \brief Simulated distributed SBP (D-SBP) — the paper's closing
/// future-work item ("how best to distribute A-SBP and H-SBP ... enable
/// processing of graphs that are too large to fit in memory").
///
/// Execution model (one process, faithful protocol):
///   - vertices are partitioned over R ranks (dist/partition.hpp);
///   - each MCMC pass, every rank sweeps its own vertices with
///     asynchronous Gibbs against the stale global blockmodel; a rank
///     sees its *own* in-pass moves but only pass-start values for
///     remote vertices (strictly weaker visibility than shared-memory
///     A-SBP — the extra staleness real distribution would add);
///   - at pass end the accepted moves are exchanged (allgather), the
///     blockmodel is rebuilt, and the next pass begins;
///   - block-merge phases run centrally with a membership broadcast.
///
/// Every exchange is recorded in a CommLedger with a documented
/// bytes-on-the-wire model, so benches can report communication volume
/// and its scaling with rank count — the quantity a real MPI port would
/// be sized by.
#pragma once

#include "dist/comm.hpp"
#include "dist/partition.hpp"
#include "graph/graph.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::dist {

struct DistributedConfig {
  /// Base SBP knobs (thresholds, β, merge settings). The `variant`
  /// field is ignored: the distributed MCMC phase is A-SBP by
  /// construction.
  sbp::SbpConfig base;
  int ranks = 4;
  PartitionStrategy strategy = PartitionStrategy::DegreeBalanced;
};

struct DistributedResult {
  sbp::SbpResult result;
  CommLedger comm;
  /// Accepted moves per rank over the whole run — the load-balance view.
  std::vector<std::int64_t> rank_accepted;
  double partition_imbalance = 0.0;  ///< degree-load imbalance (1 = even)
};

/// Runs simulated distributed SBP to completion.
/// \throws std::invalid_argument on invalid config (ranks < 1, or any
/// sbp::run precondition).
DistributedResult run_distributed(const graph::Graph& graph,
                                  const DistributedConfig& config);

}  // namespace hsbp::dist
