#include "dist/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/degree.hpp"

namespace hsbp::dist {

using graph::EdgeCount;
using graph::GraphView;
using graph::Vertex;

const char* strategy_name(PartitionStrategy strategy) noexcept {
  switch (strategy) {
    case PartitionStrategy::Range: return "range";
    case PartitionStrategy::RoundRobin: return "round-robin";
    case PartitionStrategy::DegreeBalanced: return "degree-balanced";
  }
  return "?";
}

double VertexPartition::imbalance() const noexcept {
  if (ranks == 0) return 0.0;
  EdgeCount total = 0;
  EdgeCount max_load = 0;
  for (const EdgeCount load : degree_load) {
    total += load;
    max_load = std::max(max_load, load);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(ranks);
  return static_cast<double>(max_load) / mean;
}

VertexPartition partition_vertices(const GraphView& graph, int ranks,
                                   PartitionStrategy strategy) {
  if (ranks < 1) throw std::invalid_argument("partition: ranks >= 1");

  VertexPartition partition;
  partition.ranks = ranks;
  const auto v_count = static_cast<std::size_t>(graph.num_vertices());
  partition.rank_of.assign(v_count, 0);
  partition.members.resize(static_cast<std::size_t>(ranks));
  partition.degree_load.assign(static_cast<std::size_t>(ranks), 0);

  const auto assign = [&](Vertex v, int rank) {
    partition.rank_of[static_cast<std::size_t>(v)] = rank;
    partition.members[static_cast<std::size_t>(rank)].push_back(v);
    partition.degree_load[static_cast<std::size_t>(rank)] += graph.degree(v);
  };

  switch (strategy) {
    case PartitionStrategy::Range: {
      for (Vertex v = 0; v < graph.num_vertices(); ++v) {
        const auto rank = static_cast<int>(
            static_cast<std::size_t>(v) * static_cast<std::size_t>(ranks) /
            std::max<std::size_t>(v_count, 1));
        assign(v, std::min(rank, ranks - 1));
      }
      break;
    }
    case PartitionStrategy::RoundRobin: {
      for (Vertex v = 0; v < graph.num_vertices(); ++v) {
        assign(v, static_cast<int>(v % ranks));
      }
      break;
    }
    case PartitionStrategy::DegreeBalanced: {
      // Longest-processing-time: heaviest vertices first, each to the
      // currently lightest rank.
      const auto order = graph::vertices_by_degree_desc(graph);
      for (const Vertex v : order) {
        const auto lightest = static_cast<int>(
            std::min_element(partition.degree_load.begin(),
                             partition.degree_load.end()) -
            partition.degree_load.begin());
        assign(v, lightest);
      }
      break;
    }
  }
  return partition;
}

}  // namespace hsbp::dist
