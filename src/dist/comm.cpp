#include "dist/comm.hpp"

namespace hsbp::dist {

const char* collective_name(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::AllGatherUpdates: return "allgather-updates";
    case CollectiveKind::RebuildAllReduce: return "rebuild-allreduce";
    case CollectiveKind::AssignmentBcast: return "assignment-bcast";
  }
  return "?";
}

std::int64_t CommLedger::bytes_of(CollectiveKind kind) const noexcept {
  std::int64_t total = 0;
  for (const auto& record : records_) {
    if (record.kind == kind) total += record.bytes;
  }
  return total;
}

}  // namespace hsbp::dist
