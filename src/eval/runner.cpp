#include "eval/runner.hpp"

#include <stdexcept>
#include <utility>

namespace hsbp::eval {

BestOfResult best_of(const graph::Graph& graph, sbp::SbpConfig config,
                     int runs) {
  if (runs < 1) throw std::invalid_argument("best_of: runs >= 1");

  BestOfResult out;
  bool have_best = false;
  const std::uint64_t base_seed = config.seed;
  for (int run = 0; run < runs; ++run) {
    config.seed = base_seed + static_cast<std::uint64_t>(run);
    sbp::SbpResult result = sbp::run(graph, config);
    out.total_mcmc_seconds += result.stats.mcmc_seconds;
    out.total_merge_seconds += result.stats.block_merge_seconds;
    out.total_seconds += result.stats.total_seconds;
    out.total_mcmc_iterations += result.stats.mcmc_iterations;
    out.per_run_stats.push_back(result.stats);
    if (!have_best || result.mdl < out.best.mdl) {
      out.best = std::move(result);
      have_best = true;
    }
  }
  return out;
}

}  // namespace hsbp::eval
