/// \file experiment.hpp
/// \brief One row of a paper figure: run an algorithm on a (generated)
/// graph best-of-N and collect every quality/timing metric at once.
#pragma once

#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "generator/dcsbm.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::eval {

struct ExperimentRow {
  std::string graph_id;
  std::string algorithm;  ///< "SBP" / "A-SBP" / "H-SBP"
  graph::Vertex num_vertices = 0;
  graph::EdgeCount num_edges = 0;

  // Quality of the best (lowest-MDL) run.
  double mdl = 0.0;
  double mdl_norm = 0.0;
  double modularity = 0.0;
  double nmi = -1.0;  ///< vs. ground truth; −1 if no ground truth
  blockmodel::BlockId num_blocks = 0;

  // Timing/iteration totals over all runs (paper convention).
  double mcmc_seconds = 0.0;
  double merge_seconds = 0.0;
  double total_seconds = 0.0;
  std::int64_t mcmc_iterations = 0;

  // Amdahl accounting (see DESIGN.md §5): share of vertex updates that
  // executed inside OpenMP-parallel loops, over all runs.
  double parallel_update_fraction = 0.0;
};

/// Runs `variant` on the generated graph best-of-`runs` and fills a row.
/// NMI is computed against `generated.ground_truth` when non-empty.
ExperimentRow run_experiment(const generator::GeneratedGraph& generated,
                             sbp::Variant variant,
                             const sbp::SbpConfig& base_config, int runs);

}  // namespace hsbp::eval
