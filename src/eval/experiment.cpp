#include "eval/experiment.hpp"

#include "metrics/metrics.hpp"

namespace hsbp::eval {

ExperimentRow run_experiment(const generator::GeneratedGraph& generated,
                             sbp::Variant variant,
                             const sbp::SbpConfig& base_config, int runs) {
  sbp::SbpConfig config = base_config;
  config.variant = variant;

  const BestOfResult outcome = best_of(generated.graph, config, runs);

  ExperimentRow row;
  row.graph_id = generated.name;
  row.algorithm = sbp::variant_name(variant);
  row.num_vertices = generated.graph.num_vertices();
  row.num_edges = generated.graph.num_edges();

  row.mdl = outcome.best.mdl;
  row.mdl_norm = metrics::normalized_mdl(
      outcome.best.mdl, generated.graph.num_vertices(),
      generated.graph.num_edges());
  row.modularity =
      metrics::modularity(generated.graph, outcome.best.assignment);
  if (!generated.ground_truth.empty()) {
    row.nmi = metrics::nmi(generated.ground_truth, outcome.best.assignment);
  }
  row.num_blocks = outcome.best.num_blocks;

  row.mcmc_seconds = outcome.total_mcmc_seconds;
  row.merge_seconds = outcome.total_merge_seconds;
  row.total_seconds = outcome.total_seconds;
  row.mcmc_iterations = outcome.total_mcmc_iterations;

  std::int64_t parallel = 0;
  std::int64_t serial = 0;
  for (const auto& stats : outcome.per_run_stats) {
    parallel += stats.parallel_updates;
    serial += stats.serial_updates;
  }
  const std::int64_t updates = parallel + serial;
  row.parallel_update_fraction =
      updates > 0 ? static_cast<double>(parallel) /
                        static_cast<double>(updates)
                  : 0.0;
  return row;
}

}  // namespace hsbp::eval
