#include "eval/report.hpp"

#include <omp.h>

#include <map>
#include <ostream>
#include <sstream>

#include "ckpt/atomic_file.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace hsbp::eval {

namespace {

/// Baseline (first-seen algorithm, normally SBP) timings per graph.
struct Baseline {
  double mcmc_seconds = 0.0;
  double total_seconds = 0.0;
  bool set = false;
};

std::map<std::string, Baseline> collect_baselines(
    const std::vector<ExperimentRow>& rows) {
  std::map<std::string, Baseline> baselines;
  for (const auto& row : rows) {
    Baseline& b = baselines[row.graph_id];
    if (!b.set) {
      b.mcmc_seconds = row.mcmc_seconds;
      b.total_seconds = row.total_seconds;
      b.set = true;
    }
  }
  return baselines;
}

}  // namespace

void print_quality_table(const std::vector<ExperimentRow>& rows,
                         std::ostream& out) {
  util::Table table({"graph", "algorithm", "V", "E", "blocks", "NMI",
                     "MDL_norm", "modularity", "MDL"});
  for (const auto& row : rows) {
    table.row()
        .cell(row.graph_id)
        .cell(row.algorithm)
        .cell(static_cast<std::int64_t>(row.num_vertices))
        .cell(row.num_edges)
        .cell(static_cast<std::int64_t>(row.num_blocks))
        .cell(row.nmi < 0 ? std::string("n/a")
                          : util::format_double(row.nmi, 3))
        .cell(row.mdl_norm, 3)
        .cell(row.modularity, 3)
        .cell(row.mdl, 1);
  }
  table.print(out);
}

void print_speedup_table(const std::vector<ExperimentRow>& rows,
                         std::ostream& out) {
  const auto baselines = collect_baselines(rows);
  const int threads = omp_get_max_threads();
  util::Table table({"graph", "algorithm", "mcmc_s", "merge_s", "total_s",
                     "mcmc_speedup", "overall_speedup", "parallel_frac",
                     "proj@128t"});
  for (const auto& row : rows) {
    const Baseline& base = baselines.at(row.graph_id);
    const double mcmc_speedup =
        row.mcmc_seconds > 0 ? base.mcmc_seconds / row.mcmc_seconds : 0.0;
    const double overall_speedup =
        row.total_seconds > 0 ? base.total_seconds / row.total_seconds : 0.0;
    // Amdahl projection to the paper's 128 threads: first normalize the
    // measured MCMC time back to its 1-thread-equivalent cost, then
    // shrink the parallelizable share. This is the bridge between the
    // few-core measurement and the paper's testbed (DESIGN.md §5).
    const double pf = row.parallel_update_fraction;
    const double serial_equiv =
        row.mcmc_seconds / ((1.0 - pf) + pf / static_cast<double>(threads));
    const double projected_time = serial_equiv * ((1.0 - pf) + pf / 128.0);
    const double projected_speedup =
        projected_time > 0 ? base.mcmc_seconds / projected_time : 0.0;
    table.row()
        .cell(row.graph_id)
        .cell(row.algorithm)
        .cell(row.mcmc_seconds, 3)
        .cell(row.merge_seconds, 3)
        .cell(row.total_seconds, 3)
        .cell(mcmc_speedup, 2)
        .cell(overall_speedup, 2)
        .cell(pf, 3)
        .cell(projected_speedup, 2);
  }
  table.print(out);
}

void print_iteration_table(const std::vector<ExperimentRow>& rows,
                           std::ostream& out) {
  util::Table table({"graph", "algorithm", "mcmc_iterations"});
  for (const auto& row : rows) {
    table.row()
        .cell(row.graph_id)
        .cell(row.algorithm)
        .cell(row.mcmc_iterations);
  }
  table.print(out);
}

void print_banner(const std::string& title, double scale, int runs,
                  std::ostream& out) {
  out << "=== " << title << " ===\n"
      << "threads=" << omp_get_max_threads() << " scale=" << scale
      << " runs=" << runs << "\n";
}

void write_rows_csv(const std::vector<ExperimentRow>& rows,
                    std::ostream& out) {
  out << "graph,algorithm,vertices,edges,blocks,nmi,mdl_norm,modularity,"
         "mdl,mcmc_seconds,merge_seconds,total_seconds,mcmc_iterations,"
         "parallel_update_fraction\n";
  for (const auto& row : rows) {
    out << row.graph_id << ',' << row.algorithm << ',' << row.num_vertices
        << ',' << row.num_edges << ',' << row.num_blocks << ',' << row.nmi
        << ',' << row.mdl_norm << ',' << row.modularity << ',' << row.mdl
        << ',' << row.mcmc_seconds << ',' << row.merge_seconds << ','
        << row.total_seconds << ',' << row.mcmc_iterations << ','
        << row.parallel_update_fraction << '\n';
  }
  if (!out) {
    throw util::IoError("CSV write failed (stream error)");
  }
}

void write_rows_csv_file(const std::vector<ExperimentRow>& rows,
                         const std::string& path) {
  // Serialize in memory, then write atomically — a partial or empty
  // CSV can never be mistaken for a completed report.
  std::ostringstream buffer;
  write_rows_csv(rows, buffer);
  ckpt::atomic_write_file(path, buffer.str());
}

}  // namespace hsbp::eval
