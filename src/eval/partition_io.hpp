/// \file partition_io.hpp
/// \brief Saving/loading community assignments as TSV — the glue
/// between pipeline stages (detect → score later, stream → resume,
/// compare against an external tool's output).
///
/// Format: optional `#`-comment lines, then one `vertex<TAB>community`
/// pair per line. Vertices must be the dense range [0, V) (any order);
/// community labels must be non-negative. Ground-truth files written by
/// generate_graphs use the same format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace hsbp::eval {

/// Writes one `v\tlabel` line per vertex with a `# vertex\tcommunity`
/// header comment. \throws util::IoError if the stream fails.
void save_assignment(std::span<const std::int32_t> assignment,
                     std::ostream& out);
/// The file variant writes atomically (temp → fsync → rename, see
/// ckpt/atomic_file.hpp), so `path` never holds a torn result.
/// \throws util::IoError on any write failure.
void save_assignment_file(std::span<const std::int32_t> assignment,
                          const std::string& path);

/// Reads an assignment. Every vertex in [0, max-id] must appear exactly
/// once. \throws util::DataError (a std::runtime_error, with a line
/// number) on malformed, duplicate, missing, or negative entries;
/// util::IoError if the file cannot be opened.
std::vector<std::int32_t> load_assignment(std::istream& in);
std::vector<std::int32_t> load_assignment_file(const std::string& path);

}  // namespace hsbp::eval
