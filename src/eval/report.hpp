/// \file report.hpp
/// \brief Rendering helpers shared by the bench binaries so every
/// figure/table reproduction prints in the same format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiment.hpp"

namespace hsbp::eval {

/// Prints quality rows (NMI / MDL_norm / modularity / blocks).
void print_quality_table(const std::vector<ExperimentRow>& rows,
                         std::ostream& out);

/// Prints timing rows plus, per graph, the MCMC-phase and overall
/// speedup of every algorithm relative to the baseline algorithm
/// (first algorithm name encountered for that graph, normally "SBP").
void print_speedup_table(const std::vector<ExperimentRow>& rows,
                         std::ostream& out);

/// Prints MCMC iteration counts per graph × algorithm (paper Fig. 8).
void print_iteration_table(const std::vector<ExperimentRow>& rows,
                           std::ostream& out);

/// Standard bench banner with the environment facts a reader needs to
/// interpret timings (thread count, scale, runs).
void print_banner(const std::string& title, double scale, int runs,
                  std::ostream& out);

/// Writes every field of every row as CSV (header + one line per row) —
/// the machine-readable companion to the ASCII tables, for plotting the
/// figures outside this harness.
void write_rows_csv(const std::vector<ExperimentRow>& rows,
                    std::ostream& out);
void write_rows_csv_file(const std::vector<ExperimentRow>& rows,
                         const std::string& path);

}  // namespace hsbp::eval
