#include "eval/partition_io.hpp"

#include <fstream>
#include <sstream>

#include "ckpt/atomic_file.hpp"
#include "util/errors.hpp"

namespace hsbp::eval {

using util::DataError;
using util::IoError;

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw DataError("assignment file, line " + std::to_string(line_number) +
                  ": " + what);
}

}  // namespace

void save_assignment(std::span<const std::int32_t> assignment,
                     std::ostream& out) {
  out << "# vertex\tcommunity\n";
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    out << v << '\t' << assignment[v] << '\n';
  }
  if (!out) {
    throw IoError("assignment write failed (stream error)");
  }
}

void save_assignment_file(std::span<const std::int32_t> assignment,
                          const std::string& path) {
  // Serialize in memory, then write atomically: a crash or full disk
  // can never leave a partial assignment file masquerading as a result.
  std::ostringstream buffer;
  save_assignment(assignment, buffer);
  ckpt::atomic_write_file(path, buffer.str());
}

std::vector<std::int32_t> load_assignment(std::istream& in) {
  std::vector<std::pair<long long, long long>> entries;
  std::string line;
  std::size_t line_number = 0;
  long long max_vertex = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    long long vertex = 0, label = 0;
    if (!(fields >> vertex >> label)) {
      fail(line_number, "expected 'vertex<TAB>community', got '" + line + "'");
    }
    if (vertex < 0) fail(line_number, "negative vertex id");
    if (label < 0) fail(line_number, "negative community label");
    constexpr long long kMaxVertex = 2'000'000'000LL;
    if (vertex > kMaxVertex || label > kMaxVertex) {
      fail(line_number, "value exceeds 32-bit range");
    }
    entries.emplace_back(vertex, label);
    max_vertex = std::max(max_vertex, vertex);
  }
  if (entries.empty()) {
    throw DataError("assignment file: no entries");
  }

  std::vector<std::int32_t> assignment(
      static_cast<std::size_t>(max_vertex + 1), -1);
  for (const auto& [vertex, label] : entries) {
    auto& slot = assignment[static_cast<std::size_t>(vertex)];
    if (slot >= 0) {
      throw DataError("assignment file: duplicate vertex " +
                      std::to_string(vertex));
    }
    slot = static_cast<std::int32_t>(label);
  }
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    if (assignment[v] < 0) {
      throw DataError("assignment file: vertex " + std::to_string(v) +
                      " missing");
    }
  }
  return assignment;
}

std::vector<std::int32_t> load_assignment_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open '" + path + "' for reading");
  }
  return load_assignment(in);
}

}  // namespace hsbp::eval
