/// \file runner.hpp
/// \brief Best-of-N experiment runner: the paper runs every algorithm 5
/// times per graph and keeps the lowest-MDL result, while *timing*
/// totals accumulate over all runs (§4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sbp/sbp.hpp"

namespace hsbp::eval {

struct BestOfResult {
  sbp::SbpResult best;                       ///< lowest-MDL run
  std::vector<sbp::SbpStats> per_run_stats;  ///< stats of every run
  double total_mcmc_seconds = 0.0;           ///< summed over all runs
  double total_merge_seconds = 0.0;
  double total_seconds = 0.0;
  std::int64_t total_mcmc_iterations = 0;
};

/// Runs `config` `runs` times with seeds config.seed, config.seed+1, …
/// and keeps the lowest-MDL result. \pre runs >= 1.
BestOfResult best_of(const graph::Graph& graph, sbp::SbpConfig config,
                     int runs);

}  // namespace hsbp::eval
