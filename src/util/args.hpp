/// \file args.hpp
/// \brief Tiny command-line parser shared by examples and the bench
/// harness. Supports `--name value`, `--name=value`, and boolean
/// `--flag` forms; unknown arguments are collected as positionals.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hsbp::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if `--name` appeared (with or without a value).
  bool has(const std::string& name) const noexcept;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Boolean flag: present without value, or with value in
  /// {1,true,yes,on} / {0,false,no,off}.
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  const std::string& program() const noexcept { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::unordered_map<std::string, std::string> named_;
  std::vector<std::string> positionals_;
};

}  // namespace hsbp::util
