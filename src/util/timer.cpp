#include "util/timer.hpp"

#include <algorithm>

namespace hsbp::util {

std::vector<std::pair<std::string, double>> PhaseTimers::totals() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(timers_.size());
  for (const auto& [name, watch] : timers_) {
    out.emplace_back(name, watch.total());
  }
  std::sort(out.begin(), out.end());
  return out;
}

double PhaseTimers::grand_total() const noexcept {
  double sum = 0.0;
  for (const auto& [name, watch] : timers_) sum += watch.total();
  return sum;
}

}  // namespace hsbp::util
