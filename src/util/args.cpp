#include "util/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace hsbp::util {

namespace {

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(token));
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    named_[name] = std::move(value);
  }
}

bool Args::has(const std::string& name) const noexcept {
  return named_.contains(name);
}

std::optional<std::string> Args::raw(const std::string& name) const {
  if (const auto it = named_.find(name); it != named_.end()) return it->second;
  return std::nullopt;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto value = raw(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                *value + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                *value + "'");
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (value->empty()) return true;  // bare --flag
  const std::string lowered = to_lower(*value);
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on")
    return true;
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off")
    return false;
  throw std::invalid_argument("--" + name + " expects a boolean, got '" +
                              *value + "'");
}

}  // namespace hsbp::util
