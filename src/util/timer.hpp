/// \file timer.hpp
/// \brief Wall-clock timing utilities used by the evaluation harness to
/// attribute runtime to the block-merge vs. MCMC phases (paper Fig. 2).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hsbp::util {

/// Simple steady-clock timer: construct (or reset()) to start, elapsed()
/// to read without stopping.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction/reset.
  double elapsed() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating stopwatch: repeatedly start()/stop(); total() is the sum
/// of all completed intervals. Not thread-safe (one per measuring site).
class Stopwatch {
 public:
  void start() noexcept {
    running_ = true;
    timer_.reset();
  }

  /// Stops and returns the length of the just-finished interval.
  double stop() noexcept {
    if (!running_) return 0.0;
    running_ = false;
    const double interval = timer_.elapsed();
    total_ += interval;
    ++laps_;
    return interval;
  }

  double total() const noexcept { return total_; }
  std::uint64_t laps() const noexcept { return laps_; }

  void clear() noexcept {
    total_ = 0.0;
    laps_ = 0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_ = 0.0;
  std::uint64_t laps_ = 0;
  bool running_ = false;
};

/// Named collection of stopwatches, used by eval::Runner to report the
/// per-phase execution-time breakdown.
class PhaseTimers {
 public:
  Stopwatch& operator[](const std::string& name) { return timers_[name]; }

  /// (name, total seconds) pairs sorted by name for stable reporting.
  std::vector<std::pair<std::string, double>> totals() const;

  /// Sum of all phase totals.
  double grand_total() const noexcept;

  void clear() noexcept { timers_.clear(); }

 private:
  std::unordered_map<std::string, Stopwatch> timers_;
};

/// RAII interval: starts `watch` on construction, stops on destruction.
class ScopedInterval {
 public:
  explicit ScopedInterval(Stopwatch& watch) noexcept : watch_(watch) {
    watch_.start();
  }
  ~ScopedInterval() { watch_.stop(); }
  ScopedInterval(const ScopedInterval&) = delete;
  ScopedInterval& operator=(const ScopedInterval&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace hsbp::util
