/// \file omp_region.hpp
/// \brief Zero-capture OpenMP parallel regions with a fork/join edge
/// ThreadSanitizer can see.
///
/// A plain `#pragma omp parallel` hands its shared state to the team
/// through a compiler-generated capture struct on the forking thread's
/// stack. Pooled libgomp workers read that struct at region entry,
/// ordered only by futex barriers TSan has no interceptors for — so
/// under -fsanitize=thread every region entry is reported as a race
/// between the serial capture writes and the workers' first reads, and
/// there is no point inside the region early enough to bridge it.
///
/// omp_region() removes the capture struct instead of annotating it:
/// the serial caller stores the closure's address in a namespace-scope
/// slot, bumps the shared atomic gate (release), and opens a
/// `default(none)` region that lexically references no locals at all.
/// Each team thread's first action is another gate bump (acquire) —
/// the RMW chain on the gate hands TSan the happens-before edge the
/// real fork barrier already enforces — after which it calls the
/// closure through the slot. The join edge is bridged the same way in
/// reverse (per-thread release at region end, serial acquire after).
///
/// Worksharing constructs inside the closure bind to the region as
/// orphaned constructs; use `nowait` plus omp_region_barrier() between
/// phases that hand data across threads so the handoff is bridged too.
///
/// Not reentrant: one region at a time, entered from serial code only
/// (asserted). All no-ops-but-the-pragmas outside -fsanitize=thread.
#pragma once

#include <omp.h>

#include <cassert>

#include "util/tsan_sync.hpp"

namespace hsbp::util {

/// Closure handoff slot: written serially before the region, read by
/// every team thread after the entry acquire.
inline const void* omp_region_body = nullptr;

template <class F>
inline void omp_region(const F& body) {
  assert(!omp_in_parallel());
  omp_region_body = &body;
  tsan_omp_sync();  // release the closure and everything before it
#pragma omp parallel default(none) shared(omp_region_body)
  {
    tsan_omp_sync();  // acquire the fork edge
    (*static_cast<const F*>(omp_region_body))();
    tsan_omp_sync();  // release this thread's region writes
  }
  tsan_omp_sync();  // acquire the join edge
}

/// Phase boundary inside an omp_region() closure: releases the calling
/// thread's writes, waits on a real barrier, then acquires every other
/// thread's pre-barrier release. Pair with `nowait` on the preceding
/// worksharing construct to avoid a redundant implicit barrier.
inline void omp_region_barrier() noexcept {
  tsan_omp_sync();  // release this thread's phase writes
#pragma omp barrier
  tsan_omp_sync();  // acquire every thread's phase writes
}

}  // namespace hsbp::util
