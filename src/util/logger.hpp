/// \file logger.hpp
/// \brief Minimal leveled logger writing to stderr.
///
/// The library itself is quiet by default (Warn); the bench harness and
/// examples raise the level to Info/Debug. The logger is a process-wide
/// singleton guarded for concurrent use from OpenMP regions. Messages
/// use printf-style formatting (checked by the compiler).
#pragma once

#include <string_view>

namespace hsbp::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets/gets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one formatted line ("[level] message\n") to stderr under a lock.
void log_line(LogLevel level, std::string_view message);

/// printf-style logging at each level; drops the message cheaply when
/// below the global threshold.
[[gnu::format(printf, 2, 3)]]
void logf(LogLevel level, const char* fmt, ...);

#define HSBP_LOG_AT(level_, ...)                         \
  do {                                                   \
    if (::hsbp::util::log_level() <= (level_)) {         \
      ::hsbp::util::logf((level_), __VA_ARGS__);         \
    }                                                    \
  } while (false)

#define HSBP_LOG_DEBUG(...) HSBP_LOG_AT(::hsbp::util::LogLevel::Debug, __VA_ARGS__)
#define HSBP_LOG_INFO(...) HSBP_LOG_AT(::hsbp::util::LogLevel::Info, __VA_ARGS__)
#define HSBP_LOG_WARN(...) HSBP_LOG_AT(::hsbp::util::LogLevel::Warn, __VA_ARGS__)
#define HSBP_LOG_ERROR(...) HSBP_LOG_AT(::hsbp::util::LogLevel::Error, __VA_ARGS__)

}  // namespace hsbp::util
