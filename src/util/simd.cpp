#include "util/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define HSBP_SIMD_X86 1
#include <immintrin.h>
#else
#define HSBP_SIMD_X86 0
#endif

namespace hsbp::util::simd {
namespace {

// -1 = unresolved; otherwise the Level value. Relaxed is enough: the
// value is write-once-ish configuration, not a synchronization point.
std::atomic<int> g_level{-1};

Level detect_max_level() noexcept {
#if HSBP_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level clamp_to_host(Level requested) noexcept {
  const Level max = max_supported_level();
  if (static_cast<int>(requested) <= static_cast<int>(max)) return requested;
  std::fprintf(stderr,
               "hsbp: HSBP_SIMD=%s not supported on this CPU, using %s\n",
               level_name(requested), level_name(max));
  return max;
}

Level resolve_initial_level() noexcept {
  if (const char* env = std::getenv("HSBP_SIMD")) {
    if (const auto parsed = parse_level(env)) return clamp_to_host(*parsed);
  }
  return max_supported_level();
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

std::optional<Level> parse_level(std::string_view name) noexcept {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level max_supported_level() noexcept {
  static const Level max = detect_max_level();
  return max;
}

Level active_level() noexcept {
  int raw = g_level.load(std::memory_order_relaxed);
  if (raw < 0) {
    raw = static_cast<int>(resolve_initial_level());
    int expected = -1;
    // Lost race → another thread resolved the same value anyway.
    g_level.compare_exchange_strong(expected, raw, std::memory_order_relaxed);
  }
  return static_cast<Level>(raw);
}

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(clamp_to_host(level)),
                std::memory_order_relaxed);
}

bool audit_enabled() noexcept {
  static const bool enabled = std::getenv("HSBP_SIMD_AUDIT") != nullptr;
  return enabled;
}

// ---------------------------------------------------------------------------
// gather_i32
// ---------------------------------------------------------------------------

namespace {

void gather_i32_scalar(const std::int32_t* base, const std::int32_t* idx,
                       std::size_t n, std::int32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = base[idx[i]];
  }
}

#if HSBP_SIMD_X86

__attribute__((target("avx2"))) void gather_i32_avx2(
    const std::int32_t* base, const std::int32_t* idx, std::size_t n,
    std::int32_t* out) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g = _mm256_i32gather_epi32(base, v, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), g);
  }
  for (; i < n; ++i) out[i] = base[idx[i]];
}

#endif  // HSBP_SIMD_X86

}  // namespace

void gather_i32(const std::int32_t* base, const std::int32_t* idx,
                std::size_t n, std::int32_t* out) noexcept {
#if HSBP_SIMD_X86
  if (active_level() == Level::kAvx2) {
    gather_i32_avx2(base, idx, n, out);
    if (audit_enabled()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != base[idx[i]]) {
          std::fprintf(stderr,
                       "hsbp: HSBP_SIMD_AUDIT gather_i32 diverged: "
                       "n=%zu i=%zu got=%d scalar=%d\n",
                       n, i, out[i], base[idx[i]]);
          std::abort();
        }
      }
    }
    return;
  }
#endif
  gather_i32_scalar(base, idx, n, out);
}

// ---------------------------------------------------------------------------
// strided_sum
// ---------------------------------------------------------------------------

namespace {

double strided_sum_scalar(const double* terms, std::size_t n) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += terms[i];
    l1 += terms[i + 1];
    l2 += terms[i + 2];
    l3 += terms[i + 3];
  }
  if (i < n) l0 += terms[i];
  if (i + 1 < n) l1 += terms[i + 1];
  if (i + 2 < n) l2 += terms[i + 2];
  return (l0 + l1) + (l2 + l3);
}

#if HSBP_SIMD_X86

double strided_sum_sse2(const double* terms, std::size_t n) noexcept {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(terms + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(terms + i + 2));
  }
  alignas(16) double lanes[4];
  _mm_store_pd(lanes, acc01);
  _mm_store_pd(lanes + 2, acc23);
  for (; i < n; ++i) lanes[i & 3] += terms[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) double strided_sum_avx2(
    const double* terms, std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(terms + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += terms[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

#endif  // HSBP_SIMD_X86

}  // namespace

double strided_sum(const double* terms, std::size_t n) noexcept {
#if HSBP_SIMD_X86
  double got;
  switch (active_level()) {
    case Level::kAvx2:
      got = strided_sum_avx2(terms, n);
      break;
    case Level::kSse2:
      got = strided_sum_sse2(terms, n);
      break;
    default:
      return strided_sum_scalar(terms, n);
  }
  if (audit_enabled()) {
    const double ref = strided_sum_scalar(terms, n);
    if (std::memcmp(&ref, &got, sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "hsbp: HSBP_SIMD_AUDIT strided_sum diverged: n=%zu "
                   "got=%.17g scalar=%.17g\n",
                   n, got, ref);
      std::abort();
    }
  }
  return got;
#else
  return strided_sum_scalar(terms, n);
#endif
}

// ---------------------------------------------------------------------------
// ratio_pair_sums
// ---------------------------------------------------------------------------

namespace {

void ratio_pair_sums_scalar(const double* kd, const double* fnum,
                            const double* fden, const double* bnum,
                            const double* bden, std::size_t n,
                            double* forward, double* backward) noexcept {
  double fl[4] = {0.0, 0.0, 0.0, 0.0};
  double bl[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    fl[i & 3] += kd[i] * fnum[i] / fden[i];
    bl[i & 3] += kd[i] * bnum[i] / bden[i];
  }
  *forward = (fl[0] + fl[1]) + (fl[2] + fl[3]);
  *backward = (bl[0] + bl[1]) + (bl[2] + bl[3]);
}

#if HSBP_SIMD_X86

void ratio_pair_sums_sse2(const double* kd, const double* fnum,
                          const double* fden, const double* bnum,
                          const double* bden, std::size_t n, double* forward,
                          double* backward) noexcept {
  __m128d f01 = _mm_setzero_pd(), f23 = _mm_setzero_pd();
  __m128d b01 = _mm_setzero_pd(), b23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d k01 = _mm_loadu_pd(kd + i);
    const __m128d k23 = _mm_loadu_pd(kd + i + 2);
    f01 = _mm_add_pd(f01, _mm_div_pd(_mm_mul_pd(k01, _mm_loadu_pd(fnum + i)),
                                     _mm_loadu_pd(fden + i)));
    f23 = _mm_add_pd(f23,
                     _mm_div_pd(_mm_mul_pd(k23, _mm_loadu_pd(fnum + i + 2)),
                                _mm_loadu_pd(fden + i + 2)));
    b01 = _mm_add_pd(b01, _mm_div_pd(_mm_mul_pd(k01, _mm_loadu_pd(bnum + i)),
                                     _mm_loadu_pd(bden + i)));
    b23 = _mm_add_pd(b23,
                     _mm_div_pd(_mm_mul_pd(k23, _mm_loadu_pd(bnum + i + 2)),
                                _mm_loadu_pd(bden + i + 2)));
  }
  alignas(16) double fl[4], bl[4];
  _mm_store_pd(fl, f01);
  _mm_store_pd(fl + 2, f23);
  _mm_store_pd(bl, b01);
  _mm_store_pd(bl + 2, b23);
  for (; i < n; ++i) {
    fl[i & 3] += kd[i] * fnum[i] / fden[i];
    bl[i & 3] += kd[i] * bnum[i] / bden[i];
  }
  *forward = (fl[0] + fl[1]) + (fl[2] + fl[3]);
  *backward = (bl[0] + bl[1]) + (bl[2] + bl[3]);
}

__attribute__((target("avx2"))) void ratio_pair_sums_avx2(
    const double* kd, const double* fnum, const double* fden,
    const double* bnum, const double* bden, std::size_t n, double* forward,
    double* backward) noexcept {
  __m256d facc = _mm256_setzero_pd();
  __m256d bacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d k = _mm256_loadu_pd(kd + i);
    facc = _mm256_add_pd(
        facc, _mm256_div_pd(_mm256_mul_pd(k, _mm256_loadu_pd(fnum + i)),
                            _mm256_loadu_pd(fden + i)));
    bacc = _mm256_add_pd(
        bacc, _mm256_div_pd(_mm256_mul_pd(k, _mm256_loadu_pd(bnum + i)),
                            _mm256_loadu_pd(bden + i)));
  }
  alignas(32) double fl[4], bl[4];
  _mm256_store_pd(fl, facc);
  _mm256_store_pd(bl, bacc);
  for (; i < n; ++i) {
    fl[i & 3] += kd[i] * fnum[i] / fden[i];
    bl[i & 3] += kd[i] * bnum[i] / bden[i];
  }
  *forward = (fl[0] + fl[1]) + (fl[2] + fl[3]);
  *backward = (bl[0] + bl[1]) + (bl[2] + bl[3]);
}

#endif  // HSBP_SIMD_X86

}  // namespace

void ratio_pair_sums(const double* kd, const double* fnum, const double* fden,
                     const double* bnum, const double* bden, std::size_t n,
                     double* forward, double* backward) noexcept {
#if HSBP_SIMD_X86
  switch (active_level()) {
    case Level::kAvx2:
      ratio_pair_sums_avx2(kd, fnum, fden, bnum, bden, n, forward, backward);
      break;
    case Level::kSse2:
      ratio_pair_sums_sse2(kd, fnum, fden, bnum, bden, n, forward, backward);
      break;
    case Level::kScalar:
      ratio_pair_sums_scalar(kd, fnum, fden, bnum, bden, n, forward, backward);
      return;
  }
  if (audit_enabled()) {
    double rf = 0.0, rb = 0.0;
    ratio_pair_sums_scalar(kd, fnum, fden, bnum, bden, n, &rf, &rb);
    if (std::memcmp(&rf, forward, sizeof(double)) != 0 ||
        std::memcmp(&rb, backward, sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "hsbp: HSBP_SIMD_AUDIT ratio_pair_sums diverged: n=%zu "
                   "fwd=%.17g scalar=%.17g bwd=%.17g scalar=%.17g\n",
                   n, *forward, rf, *backward, rb);
      std::abort();
    }
  }
#else
  ratio_pair_sums_scalar(kd, fnum, fden, bnum, bden, n, forward, backward);
#endif
}

}  // namespace hsbp::util::simd
