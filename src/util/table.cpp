#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace hsbp::util {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string text) {
  cells_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

void Table::print(std::ostream& out) const { out << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      out << text << std::string(widths[c] - text.size(), ' ');
      out << (c + 1 < widths.size() ? " | " : "\n");
    }
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c], '-') << (c + 1 < widths.size() ? "-+-" : "\n");
  }
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

}  // namespace hsbp::util
