/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// The MCMC phases of SBP draw millions of proposals; std::mt19937 is both
/// slow and awkward to split across OpenMP threads. We use xoshiro256**
/// (Blackman & Vigna) seeded through SplitMix64, which gives:
///   - bit-reproducible single-threaded runs for a fixed seed,
///   - cheaply derivable independent per-thread streams (RngPool), and
///   - fast unbiased bounded integers via Lemire's multiply-shift trick.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hsbp::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state and
/// to derive independent stream seeds. Passes BigCrush as a generator in
/// its own right; its main role here is seed whitening.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// The full generator state (four 64-bit words) — exported into
  /// checkpoints so a resumed run continues the exact same stream.
  using State = std::array<std::uint64_t, 4>;

  /// Seeds the four state words through SplitMix64 so that any 64-bit
  /// seed (including 0) produces a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  State state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const State& state) noexcept {
    for (std::size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
  }

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of mantissa entropy.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method;
  /// unbiased. \pre bound > 0.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. \pre lo <= hi.
  std::int64_t uniform_between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Index drawn from the discrete distribution proportional to `weights`.
  /// Linear scan; intended for short weight vectors (proposal mixtures).
  /// \pre at least one weight is positive.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::int32_t>& values) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// A pool of independent RNG streams, one per OpenMP thread. Stream i is
/// seeded as SplitMix64(seed).next() applied i+1 times, so the pool is
/// deterministic in (seed, stream index) and independent of thread count.
class RngPool {
 public:
  /// \param streams number of independent streams (>= requested threads).
  RngPool(std::uint64_t seed, std::size_t streams);

  /// Stream for the calling OpenMP thread (omp_get_thread_num()).
  Rng& local() noexcept;

  /// Stream by explicit index. \pre index < size().
  Rng& stream(std::size_t index) noexcept { return streams_[index]; }

  std::size_t size() const noexcept { return streams_.size(); }

  /// All stream states, in index order (checkpoint export).
  std::vector<Rng::State> export_states() const;

  /// Restores a previously exported set of stream states.
  /// \pre states.size() == size() — a resumed run must be configured
  /// with the same number of streams (i.e. the same thread budget).
  void restore_states(std::span<const Rng::State> states);

 private:
  std::vector<Rng> streams_;
};

}  // namespace hsbp::util
