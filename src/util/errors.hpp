/// \file errors.hpp
/// \brief Error taxonomy shared by the I/O layers and the CLI.
///
/// Both types derive from std::runtime_error so existing call sites that
/// catch the base class keep working; the CLI maps them onto the BSD
/// sysexits codes it documents (DataError → 65 EX_DATAERR, IoError → 74
/// EX_IOERR). The split is by *blame*: DataError means the bytes we read
/// are malformed (a parse error, a failed checksum, a fingerprint
/// mismatch); IoError means the operating system failed us (open, write,
/// fsync, rename).
#pragma once

#include <stdexcept>
#include <string>

namespace hsbp::util {

/// Malformed input data: parse errors, corrupt/truncated/mismatched
/// checkpoint or assignment files. The message says what and where.
struct DataError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Operating-system-level I/O failure: cannot open, short write, failed
/// flush/fsync/rename. The message includes the path involved.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace hsbp::util
