/// \file stats.hpp
/// \brief Small statistics toolkit for the evaluation harness: summary
/// statistics and the Pearson correlation (r², p-value) used to
/// reproduce the paper's Fig. 3 metric-correlation analysis.
#pragma once

#include <cstddef>
#include <span>

namespace hsbp::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Summary statistics of a sample; count==0 yields all-zero summary.
Summary summarize(std::span<const double> values) noexcept;

struct Correlation {
  double r = 0.0;         ///< Pearson correlation coefficient
  double r_squared = 0.0; ///< coefficient of determination
  double p_value = 1.0;   ///< two-sided p under t(n-2); 1.0 if n < 3
  double slope = 0.0;     ///< least-squares slope of y on x
  double intercept = 0.0; ///< least-squares intercept
};

/// Pearson correlation of paired samples with a least-squares fit and a
/// two-sided p-value from the exact t distribution (via the regularized
/// incomplete beta function). \pre x.size() == y.size().
Correlation pearson(std::span<const double> x, std::span<const double> y);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz); exposed for tests. \pre a,b > 0 and 0 <= x <= 1.
double regularized_incomplete_beta(double a, double b, double x);

}  // namespace hsbp::util
