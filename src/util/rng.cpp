#include "util/rng.hpp"

#include <omp.h>

#include <cassert>

namespace hsbp::util {

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire 2019: multiply-shift with rejection only in the biased sliver.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::size_t Rng::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: total rounded down
}

void Rng::shuffle(std::vector<std::int32_t>& values) noexcept {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(values[i - 1], values[j]);
  }
}

RngPool::RngPool(std::uint64_t seed, std::size_t streams) {
  streams_.reserve(streams);
  SplitMix64 sm(seed);
  for (std::size_t i = 0; i < streams; ++i) {
    streams_.emplace_back(sm.next());
  }
}

std::vector<Rng::State> RngPool::export_states() const {
  std::vector<Rng::State> states;
  states.reserve(streams_.size());
  for (const Rng& rng : streams_) states.push_back(rng.state());
  return states;
}

void RngPool::restore_states(std::span<const Rng::State> states) {
  assert(states.size() == streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    streams_[i].set_state(states[i]);
  }
}

Rng& RngPool::local() noexcept {
  const auto tid = static_cast<std::size_t>(omp_get_thread_num());
  assert(tid < streams_.size());
  return streams_[tid];
}

}  // namespace hsbp::util
