/// \file table.hpp
/// \brief ASCII table rendering for the bench harness: each paper
/// table/figure bench prints its rows through this so the output is
/// uniform and machine-greppable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hsbp::util {

/// Column-aligned ASCII table with a header row. Cells are strings;
/// helpers format numbers consistently (fixed precision, thousands-free).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  /// Fixed-point with `precision` digits after the decimal point.
  Table& cell(double value, int precision = 3);

  std::size_t rows() const noexcept { return cells_.size(); }

  /// Renders with a separator under the header:
  ///   name   | V    | E
  ///   -------+------+------
  ///   s1     | 1000 | 8000
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double the way the tables do (helper exposed for tests).
std::string format_double(double value, int precision);

}  // namespace hsbp::util
