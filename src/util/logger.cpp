#include "util/logger.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace hsbp::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void logf(LogLevel level, const char* fmt, ...) {
  if (log_level() > level) return;
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  log_line(level, buffer);
}

}  // namespace hsbp::util
