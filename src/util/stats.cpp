#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace hsbp::util {

Summary summarize(std::span<const double> values) noexcept {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

namespace {

/// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = m;
    double aa = dm * (b - dm) * x / ((qam + 2.0 * dm) * (a + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + 2.0 * dm) * (qap + 2.0 * dm));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
  // fraction in its fast-converging regime.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

Correlation pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  Correlation result;
  const std::size_t n = x.size();
  if (n < 2) return result;

  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return result;  // degenerate: constant input

  result.r = sxy / std::sqrt(sxx * syy);
  result.r = std::clamp(result.r, -1.0, 1.0);
  result.r_squared = result.r * result.r;
  result.slope = sxy / sxx;
  result.intercept = mean_y - result.slope * mean_x;

  if (n >= 3) {
    const double df = static_cast<double>(n - 2);
    const double denom = 1.0 - result.r_squared;
    if (denom <= std::numeric_limits<double>::epsilon()) {
      result.p_value = 0.0;
    } else {
      const double t = result.r * std::sqrt(df / denom);
      // Two-sided p for Student's t: I_{df/(df+t^2)}(df/2, 1/2).
      result.p_value =
          regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t));
    }
  }
  return result;
}

}  // namespace hsbp::util
