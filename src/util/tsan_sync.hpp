/// \file tsan_sync.hpp
/// \brief The happens-before bridge that makes OpenMP's barriers
/// visible to ThreadSanitizer.
///
/// GCC's libgomp synchronizes its fork/join and `#pragma omp for`
/// barriers with futexes TSan cannot see (worker threads are pooled,
/// so even the fork edge is a futex dock, not an intercepted
/// pthread_create). Without help every ordered handoff — serial writes
/// read inside a region, one phase's writes read by the next, region
/// results read after the join — is reported as a data race.
///
/// The bridge is a single shared atomic counter. Every sync point is a
/// fetch_add(acq_rel): the RMW both publishes the thread's writes so
/// far and acquires every earlier RMW in the counter's release
/// sequence. Because the real OpenMP barriers order the RMWs in time
/// (all pre-barrier bumps precede every post-barrier bump in the
/// counter's modification order), each later bump carries edges from
/// everything the barrier already ordered — TSan just gets to see it
/// through the atomic.
///
/// Use the structured entry points in util/omp_region.hpp
/// (zero-capture region trampoline + bridged phase barrier) rather
/// than calling tsan_omp_sync() directly; the raw bump lives here so
/// the no-op fallback is in one place. Everything compiles to nothing
/// outside -fsanitize=thread.
#pragma once

#if defined(__SANITIZE_THREAD__)
#include <atomic>
#endif

namespace hsbp::util {

#if defined(__SANITIZE_THREAD__)

inline std::atomic<unsigned>& tsan_omp_gate() noexcept {
  static std::atomic<unsigned> gate{0};
  return gate;
}

inline void tsan_omp_sync() noexcept {
  tsan_omp_gate().fetch_add(1, std::memory_order_acq_rel);
}

#else

inline void tsan_omp_sync() noexcept {}

#endif

}  // namespace hsbp::util
