/// \file simd.hpp
/// \brief Runtime-dispatched SIMD layer for the ΔMDL / Hastings hot
/// loops (DESIGN §13).
///
/// Three dispatch levels — kScalar, kSse2, kAvx2 — resolved once at
/// startup from CPUID, overridable with the HSBP_SIMD environment
/// variable (`scalar|sse2|avx2|auto`) or programmatically via
/// set_level() (the bit-identity tests force each level in turn).
/// Requests above what the host supports clamp down with a warning.
///
/// Bit-identity contract: every level of every kernel produces the
/// SAME bits. Per-element terms are single IEEE-754 operations (sub,
/// mul, div) that vector lanes and scalar registers evaluate
/// identically, and sums use one canonical *strided-4* accumulation
/// order, independent of the hardware vector width:
///
///     lane[j] += term[i]  for j = i mod 4;
///     result  = (lane[0] + lane[1]) + (lane[2] + lane[3])
///
/// A 4-lane AVX2 accumulator implements this directly; SSE2 uses two
/// 2-lane accumulators covering lanes {0,1} and {2,3}; the scalar path
/// keeps four named doubles. Each logical lane sees the same addends in
/// the same order at every level, so the sums agree bit-for-bit — which
/// is what lets the scalar path serve as the audited reference for the
/// vector paths (enforced by tests/test_blockmodel_simd.cpp with exact
/// ==, never EXPECT_NEAR).
///
/// This header holds the dispatch machinery and the generic
/// (table-free) kernels; the xlogx-table kernels live in
/// blockmodel/simd_kernels.hpp because util cannot depend on
/// blockmodel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace hsbp::util::simd {

/// Dispatch level, ordered: higher levels require all lower ones.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Name as accepted by HSBP_SIMD ("scalar", "sse2", "avx2").
const char* level_name(Level level) noexcept;

/// Parses a HSBP_SIMD value; "auto" and unknown strings map to nullopt
/// (= use the best supported level).
std::optional<Level> parse_level(std::string_view name) noexcept;

/// Best level this CPU supports (compile-time capped to kScalar on
/// non-x86 targets).
Level max_supported_level() noexcept;

/// The active level: HSBP_SIMD override if set (clamped to the host's
/// support), else max_supported_level(). Resolved once, then a relaxed
/// atomic read.
Level active_level() noexcept;

/// Forces the active level (clamped to the host's support) — the test
/// hook behind the forced-dispatch bit-identity suite. Not for use
/// while parallel regions are running kernels.
void set_level(Level level) noexcept;

/// True when HSBP_SIMD_AUDIT is set: every vector kernel call re-runs
/// its scalar reference and aborts (with the inputs on stderr) on the
/// first bitwise divergence. Debug-only — roughly doubles kernel cost —
/// but checks the bit-identity contract on REAL workload inputs, which
/// reach shapes the randomized tests may not (e.g. transiently negative
/// staged counts from async-phase staleness). Resolved once per process.
bool audit_enabled() noexcept;

/// out[i] = base[idx[i]] for 32-bit elements — the membership gather of
/// the neighbor-block scan (AVX2: vpgatherdd 8 lanes at a time).
void gather_i32(const std::int32_t* base, const std::int32_t* idx,
                std::size_t n, std::int32_t* out) noexcept;

/// Strided-4 sum of num[i] / den[i] — kept for completeness/tests of
/// the canonical order on plain arrays.
double strided_sum(const double* terms, std::size_t n) noexcept;

/// The Hastings pair: forward = Σ4 kd[i]*fnum[i]/fden[i] and
/// backward = Σ4 kd[i]*bnum[i]/bden[i], both in the canonical strided-4
/// order. Per-element term order is ((kd*num)/den), matching the scalar
/// reference expression `kd * num / den`.
void ratio_pair_sums(const double* kd, const double* fnum,
                     const double* fden, const double* bnum,
                     const double* bden, std::size_t n, double* forward,
                     double* backward) noexcept;

}  // namespace hsbp::util::simd
