#include "graph/components.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace hsbp::graph {

ComponentInfo weakly_connected_components(const GraphView& graph) {
  ComponentInfo info;
  const auto v_count = static_cast<std::size_t>(graph.num_vertices());
  info.component_of.assign(v_count, -1);

  std::deque<Vertex> frontier;
  for (Vertex start = 0; start < graph.num_vertices(); ++start) {
    if (info.component_of[static_cast<std::size_t>(start)] >= 0) continue;
    const std::int32_t id = info.count++;
    info.sizes.push_back(0);
    frontier.push_back(start);
    info.component_of[static_cast<std::size_t>(start)] = id;
    while (!frontier.empty()) {
      const Vertex v = frontier.front();
      frontier.pop_front();
      ++info.sizes[static_cast<std::size_t>(id)];
      const auto visit = [&](Vertex u) {
        auto& mark = info.component_of[static_cast<std::size_t>(u)];
        if (mark < 0) {
          mark = id;
          frontier.push_back(u);
        }
      };
      for (const Vertex u : graph.out_neighbors(v)) visit(u);
      for (const Vertex u : graph.in_neighbors(v)) visit(u);
    }
  }

  if (info.count > 0) {
    info.largest = static_cast<std::int32_t>(
        std::max_element(info.sizes.begin(), info.sizes.end()) -
        info.sizes.begin());
  }
  return info;
}

Subgraph extract_component(const GraphView& graph, const ComponentInfo& info,
                           std::int32_t component) {
  assert(component >= 0 && component < info.count);
  Subgraph out;
  std::vector<Vertex> new_id(static_cast<std::size_t>(graph.num_vertices()),
                             -1);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (info.component_of[static_cast<std::size_t>(v)] == component) {
      new_id[static_cast<std::size_t>(v)] =
          static_cast<Vertex>(out.original_ids.size());
      out.original_ids.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (const Vertex v : out.original_ids) {
    for (const Vertex u : graph.out_neighbors(v)) {
      edges.emplace_back(new_id[static_cast<std::size_t>(v)],
                         new_id[static_cast<std::size_t>(u)]);
    }
  }
  out.graph = Graph::from_edges(
      static_cast<Vertex>(out.original_ids.size()), edges);
  return out;
}

}  // namespace hsbp::graph
