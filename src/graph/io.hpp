/// \file io.hpp
/// \brief Graph readers/writers.
///
/// Two formats cover the paper's data sources:
///   - SNAP-style edge lists (whitespace-separated `src dst` lines,
///     `#`/`%` comments) — the format most SNAP datasets ship in,
///   - Matrix Market coordinate format — the SuiteSparse Matrix
///     Collection format used for the paper's 14 real-world graphs.
///
/// All readers throw util::DataError (a std::runtime_error) with a line
/// number on malformed input; they never silently drop data. File
/// variants throw util::IoError when the file cannot be opened.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/view.hpp"

namespace hsbp::graph {

/// How to treat edge weights on input. The paper studies unweighted
/// graphs (weights ignored); its future-work section proposes weighted
/// ones, which the microcanonical DCSBM supports naturally by treating
/// an integer weight w as w parallel edges (Multiplicity).
enum class WeightHandling {
  Ignore,        ///< one edge per entry, values dropped (paper setting)
  Multiplicity,  ///< round(value) parallel edges; values must be >= 1
};

/// Reads a SNAP-style edge list (`src dst [weight]` per line). Vertex
/// ids must be non-negative integers; the graph has max-id+1 vertices.
/// Lines starting with '#' or '%' and blank lines are skipped. The
/// optional third column is used only under WeightHandling::Multiplicity.
Graph read_edge_list(std::istream& in,
                     WeightHandling weights = WeightHandling::Ignore);
Graph read_edge_list_file(const std::string& path,
                          WeightHandling weights = WeightHandling::Ignore);

/// Writes one `src\tdst` line per edge, with a `# V E` header comment.
void write_edge_list(const GraphView& graph, std::ostream& out);
void write_edge_list_file(const GraphView& graph, const std::string& path);

/// Reads a Matrix Market `matrix coordinate` file as a directed graph:
/// entry (i, j) becomes edge i-1 → j-1. `pattern`, `integer`, and `real`
/// fields are accepted; under WeightHandling::Ignore values are dropped
/// (the paper's unweighted setting), under Multiplicity they become
/// parallel-edge counts. `symmetric`/`skew-symmetric` storage emits both
/// directions for off-diagonal entries. Non-square matrices and
/// `complex`/`hermitian` fields are rejected.
Graph read_matrix_market(std::istream& in,
                         WeightHandling weights = WeightHandling::Ignore);
Graph read_matrix_market_file(
    const std::string& path,
    WeightHandling weights = WeightHandling::Ignore);

/// Writes the graph as `%%MatrixMarket matrix coordinate pattern general`.
void write_matrix_market(const GraphView& graph, std::ostream& out);
void write_matrix_market_file(const GraphView& graph, const std::string& path);

}  // namespace hsbp::graph
