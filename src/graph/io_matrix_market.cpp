#include <fstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/io_stream.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

Graph read_matrix_market(std::istream& in, WeightHandling weights) {
  GraphBuilder builder;
  const Vertex declared = scan_matrix_market(
      in, weights, [&builder](Vertex src, Vertex dst, std::int64_t mult) {
        for (std::int64_t m = 0; m < mult; ++m) {
          builder.add_edge(src, dst);
        }
      });
  builder.reserve_vertices(declared);
  return builder.build();
}

Graph read_matrix_market_file(const std::string& path,
                              WeightHandling weights) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open '" + path + "' for reading");
  return read_matrix_market(in, weights);
}

void write_matrix_market(const GraphView& graph, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by hsbp\n";
  out << graph.num_vertices() << ' ' << graph.num_vertices() << ' '
      << graph.num_edges() << '\n';
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex target : graph.out_neighbors(v)) {
      out << (v + 1) << ' ' << (target + 1) << '\n';
    }
  }
}

void write_matrix_market_file(const GraphView& graph,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open '" + path + "' for writing");
  write_matrix_market(graph, out);
}

}  // namespace hsbp::graph
