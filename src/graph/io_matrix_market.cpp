#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw util::DataError("Matrix Market, line " +
                        std::to_string(line_number) + ": " + what);
}

std::string to_lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

struct Header {
  std::string field;     // pattern | integer | real
  std::string symmetry;  // general | symmetric | skew-symmetric
};

Header parse_header(const std::string& line) {
  std::istringstream tokens(line);
  std::string banner, object, format, field, symmetry;
  tokens >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    fail(1, "missing %%MatrixMarket banner");
  }
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix") fail(1, "unsupported object '" + object + "'");
  if (format != "coordinate") {
    fail(1, "unsupported format '" + format + "' (only coordinate)");
  }
  if (field != "pattern" && field != "integer" && field != "real") {
    fail(1, "unsupported field '" + field + "'");
  }
  if (symmetry != "general" && symmetry != "symmetric" &&
      symmetry != "skew-symmetric") {
    fail(1, "unsupported symmetry '" + symmetry + "'");
  }
  return {field, symmetry};
}

}  // namespace

Graph read_matrix_market(std::istream& in, WeightHandling weights) {
  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(in, line)) fail(1, "empty input");
  const Header header = parse_header(line);
  if (weights == WeightHandling::Multiplicity && header.field == "pattern") {
    // Pattern matrices carry no values; multiplicity degrades to 1.
    weights = WeightHandling::Ignore;
  }

  // Skip comment lines to the size line.
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    fail(line_number, "expected 'rows cols nnz', got '" + line + "'");
  }
  if (rows != cols) {
    fail(line_number, "adjacency matrix must be square (" +
                          std::to_string(rows) + "x" + std::to_string(cols) +
                          ")");
  }
  if (rows <= 0 || nnz < 0) fail(line_number, "invalid dimensions");

  GraphBuilder builder(static_cast<Vertex>(rows));
  const bool mirror = header.symmetry != "general";
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long i = 0, j = 0;
    if (!(entry >> i >> j)) {
      fail(line_number, "expected 'i j [value]', got '" + line + "'");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      fail(line_number, "entry (" + std::to_string(i) + ", " +
                            std::to_string(j) + ") out of bounds");
    }
    long long multiplicity = 1;
    if (weights == WeightHandling::Multiplicity) {
      double value = 1.0;
      if (entry >> value) {
        multiplicity = std::llround(std::fabs(value));
        if (multiplicity < 1) {
          fail(line_number, "weight must round to >= 1 under Multiplicity");
        }
        constexpr long long kMaxMultiplicity = 1'000'000;
        if (multiplicity > kMaxMultiplicity) {
          fail(line_number, "weight too large");
        }
      }
    }
    const auto src = static_cast<Vertex>(i - 1);
    const auto dst = static_cast<Vertex>(j - 1);
    for (long long m = 0; m < multiplicity; ++m) {
      builder.add_edge(src, dst);
      if (mirror && src != dst) builder.add_edge(dst, src);
    }
    ++seen;
  }
  if (seen < nnz) {
    fail(line_number, "expected " + std::to_string(nnz) + " entries, found " +
                          std::to_string(seen));
  }
  return builder.build();
}

Graph read_matrix_market_file(const std::string& path,
                              WeightHandling weights) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open '" + path + "' for reading");
  return read_matrix_market(in, weights);
}

void write_matrix_market(const Graph& graph, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by hsbp\n";
  out << graph.num_vertices() << ' ' << graph.num_vertices() << ' '
      << graph.num_edges() << '\n';
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex target : graph.out_neighbors(v)) {
      out << (v + 1) << ' ' << (target + 1) << '\n';
    }
  }
}

void write_matrix_market_file(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open '" + path + "' for writing");
  write_matrix_market(graph, out);
}

}  // namespace hsbp::graph
