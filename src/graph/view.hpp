/// \file view.hpp
/// \brief GraphView — the non-owning CSR view every SBP kernel runs on.
///
/// A GraphView is four raw array pointers plus three counts. It exposes
/// the exact accessor surface of graph::Graph (num_vertices, num_edges,
/// out/in_neighbors, out/in_degree, degree, num_self_loops), so any
/// function taking `const GraphView&` accepts
///   - an in-memory graph::Graph (implicit conversion, zero cost),
///   - an MmapGraph over a binary CSR file (mmap_graph.hpp),
///   - any other CSR-shaped storage (a subrange, a test fixture).
///
/// There is no virtual dispatch: the accessors are the same inline
/// pointer arithmetic Graph itself uses, so routing the MCMC hot paths
/// through GraphView changes neither the instruction stream nor the
/// results — in-memory runs stay bit-identical.
///
/// Lifetime: a view never owns its arrays. The backing Graph (or file
/// mapping) must outlive every use of the view; the implicit conversion
/// from `const Graph&` is safe in call expressions (the temporary view
/// lives for the full call) but a stored GraphView must be backed by a
/// named object.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace hsbp::graph {

class GraphView {
 public:
  GraphView() = default;

  /// Implicit on purpose: every call site that passes a Graph to a
  /// GraphView parameter keeps compiling (and keeps its behaviour).
  GraphView(const Graph& g) noexcept  // NOLINT(google-explicit-constructor)
      : out_offsets_(g.out_offsets_.data()),
        out_targets_(g.out_targets_.data()),
        in_offsets_(g.in_offsets_.data()),
        in_sources_(g.in_sources_.data()),
        num_vertices_(g.num_vertices()),
        num_edges_(g.num_edges()),
        self_loops_(g.num_self_loops()) {}

  /// Raw-array constructor for mmap-backed and synthetic views.
  /// \pre out_offsets/in_offsets have num_vertices+1 entries with
  /// offsets[0] == 0 and offsets[V] == num_edges; target arrays have
  /// num_edges entries in [0, num_vertices).
  GraphView(const std::uint64_t* out_offsets, const Vertex* out_targets,
            const std::uint64_t* in_offsets, const Vertex* in_sources,
            Vertex num_vertices, EdgeCount num_edges,
            EdgeCount self_loops) noexcept
      : out_offsets_(out_offsets),
        out_targets_(out_targets),
        in_offsets_(in_offsets),
        in_sources_(in_sources),
        num_vertices_(num_vertices),
        num_edges_(num_edges),
        self_loops_(self_loops) {}

  Vertex num_vertices() const noexcept { return num_vertices_; }
  EdgeCount num_edges() const noexcept { return num_edges_; }

  /// Targets of edges leaving v, with multiplicity.
  std::span<const Vertex> out_neighbors(Vertex v) const noexcept {
    return {out_targets_ + out_offsets_[static_cast<std::size_t>(v)],
            out_targets_ + out_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  /// Sources of edges entering v, with multiplicity.
  std::span<const Vertex> in_neighbors(Vertex v) const noexcept {
    return {in_sources_ + in_offsets_[static_cast<std::size_t>(v)],
            in_sources_ + in_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  EdgeCount out_degree(Vertex v) const noexcept {
    return static_cast<EdgeCount>(
        out_offsets_[static_cast<std::size_t>(v) + 1] -
        out_offsets_[static_cast<std::size_t>(v)]);
  }
  EdgeCount in_degree(Vertex v) const noexcept {
    return static_cast<EdgeCount>(
        in_offsets_[static_cast<std::size_t>(v) + 1] -
        in_offsets_[static_cast<std::size_t>(v)]);
  }
  /// Total degree: out + in (self-loops count twice).
  EdgeCount degree(Vertex v) const noexcept {
    return out_degree(v) + in_degree(v);
  }

  /// Number of self-loop edge instances.
  EdgeCount num_self_loops() const noexcept { return self_loops_; }

  /// Reconstructs the edge list (source-major order). Mostly for I/O,
  /// tests, and the edge sampler; materializes O(E) memory.
  std::vector<Edge> edges() const {
    std::vector<Edge> result;
    result.reserve(static_cast<std::size_t>(num_edges_));
    for (Vertex v = 0; v < num_vertices_; ++v) {
      for (const Vertex target : out_neighbors(v)) {
        result.emplace_back(v, target);
      }
    }
    return result;
  }

  const std::uint64_t* out_offsets_data() const noexcept {
    return out_offsets_;
  }
  const Vertex* out_targets_data() const noexcept { return out_targets_; }
  const std::uint64_t* in_offsets_data() const noexcept { return in_offsets_; }
  const Vertex* in_sources_data() const noexcept { return in_sources_; }

 private:
  const std::uint64_t* out_offsets_ = nullptr;
  const Vertex* out_targets_ = nullptr;
  const std::uint64_t* in_offsets_ = nullptr;
  const Vertex* in_sources_ = nullptr;
  Vertex num_vertices_ = 0;
  EdgeCount num_edges_ = 0;
  EdgeCount self_loops_ = 0;
};

}  // namespace hsbp::graph
