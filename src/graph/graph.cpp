#include "graph/graph.hpp"

#include <stdexcept>
#include <string>

namespace hsbp::graph {

Graph Graph::from_edges(Vertex num_vertices, std::span<const Edge> edges) {
  if (num_vertices < 0) {
    throw std::invalid_argument("Graph: negative vertex count");
  }
  Graph g;
  const auto v_count = static_cast<std::size_t>(num_vertices);
  g.out_offsets_.assign(v_count + 1, 0);
  g.in_offsets_.assign(v_count + 1, 0);

  for (const auto& [src, dst] : edges) {
    if (src < 0 || src >= num_vertices || dst < 0 || dst >= num_vertices) {
      throw std::invalid_argument(
          "Graph: edge (" + std::to_string(src) + ", " + std::to_string(dst) +
          ") outside vertex range [0, " + std::to_string(num_vertices) + ")");
    }
    ++g.out_offsets_[static_cast<std::size_t>(src) + 1];
    ++g.in_offsets_[static_cast<std::size_t>(dst) + 1];
    if (src == dst) ++g.self_loops_;
  }
  for (std::size_t i = 1; i <= v_count; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }

  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());
  std::vector<std::uint64_t> out_cursor(g.out_offsets_.begin(),
                                        g.out_offsets_.end() - 1);
  std::vector<std::uint64_t> in_cursor(g.in_offsets_.begin(),
                                       g.in_offsets_.end() - 1);
  for (const auto& [src, dst] : edges) {
    g.out_targets_[out_cursor[static_cast<std::size_t>(src)]++] = dst;
    g.in_sources_[in_cursor[static_cast<std::size_t>(dst)]++] = src;
  }
  return g;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges()));
  for (Vertex v = 0; v < num_vertices(); ++v) {
    for (Vertex target : out_neighbors(v)) {
      out.emplace_back(v, target);
    }
  }
  return out;
}

}  // namespace hsbp::graph
