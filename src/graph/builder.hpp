/// \file builder.hpp
/// \brief Incremental construction of immutable Graphs.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hsbp::graph {

/// Accumulates edges and produces a Graph. The vertex count grows
/// automatically to max-endpoint+1 but can also be reserved up front
/// (isolated trailing vertices are preserved only if reserved).
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(Vertex num_vertices) : num_vertices_(num_vertices) {}

  /// Adds one directed edge; negative endpoints are rejected.
  /// \throws std::invalid_argument on negative endpoint.
  GraphBuilder& add_edge(Vertex source, Vertex target);

  /// Ensures at least `count` vertices exist in the built graph.
  GraphBuilder& reserve_vertices(Vertex count);

  Vertex num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Builds the CSR graph. The builder remains usable afterwards.
  Graph build() const;

 private:
  Vertex num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace hsbp::graph
