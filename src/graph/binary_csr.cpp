#include "graph/binary_csr.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <vector>

#include "ckpt/atomic_file.hpp"
#include "ckpt/checkpoint.hpp"
#include "graph/io_stream.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

namespace {

template <typename T>
void put(char* out, std::size_t offset, T value) noexcept {
  std::memcpy(out + offset, &value, sizeof(T));
}

template <typename T>
T get(const char* in, std::size_t offset) noexcept {
  T value;
  std::memcpy(&value, in + offset, sizeof(T));
  return value;
}

[[noreturn]] void fail_format(const std::string& path,
                              const std::string& what) {
  throw util::DataError("binary CSR '" + path + "': " + what);
}

bool has_mtx_suffix(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".mtx") == 0;
}

/// One streaming scan of a text graph file; returns the declared vertex
/// count for Matrix Market (0 for edge lists, whose vertex count is
/// implied by the ids seen).
template <typename EdgeFn>
Vertex scan_text_graph(const std::string& path, WeightHandling weights,
                       EdgeFn&& fn) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open '" + path + "' for reading");
  if (has_mtx_suffix(path)) {
    return scan_matrix_market(in, weights, std::forward<EdgeFn>(fn));
  }
  scan_edge_list(in, weights, std::forward<EdgeFn>(fn));
  return 0;
}

/// Writable file mapping for the convert output; cleans up (munmap,
/// close, unlink the temp file) unless disarmed after the rename.
class TempMapping {
 public:
  TempMapping(const std::string& temp_path, std::size_t bytes)
      : temp_path_(temp_path), bytes_(bytes) {
    fd_ = ::open(temp_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      throw util::IoError("cannot create '" + temp_path_ + "' for writing");
    }
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
      throw util::IoError("cannot size '" + temp_path_ + "' to " +
                          std::to_string(bytes_) + " bytes");
    }
    map_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                  0);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      throw util::IoError("cannot map '" + temp_path_ + "' for writing");
    }
  }

  ~TempMapping() {
    if (map_ != nullptr) ::munmap(map_, bytes_);
    if (fd_ >= 0) ::close(fd_);
    if (!committed_) std::remove(temp_path_.c_str());
  }

  TempMapping(const TempMapping&) = delete;
  TempMapping& operator=(const TempMapping&) = delete;

  char* data() noexcept { return static_cast<char*>(map_); }

  /// msync + fsync + rename onto `final_path`; disarms the unlink.
  void commit(const std::string& final_path) {
    if (::msync(map_, bytes_, MS_SYNC) != 0) {
      throw util::IoError("cannot flush '" + temp_path_ + "'");
    }
    ::munmap(map_, bytes_);
    map_ = nullptr;
    if (::fsync(fd_) != 0) {
      throw util::IoError("cannot fsync '" + temp_path_ + "'");
    }
    ::close(fd_);
    fd_ = -1;
    if (std::rename(temp_path_.c_str(), final_path.c_str()) != 0) {
      throw util::IoError("cannot rename '" + temp_path_ + "' to '" +
                          final_path + "'");
    }
    committed_ = true;
  }

 private:
  std::string temp_path_;
  std::size_t bytes_;
  int fd_ = -1;
  void* map_ = nullptr;
  bool committed_ = false;
};

}  // namespace

std::int64_t binary_csr_file_bytes(Vertex num_vertices,
                                   EdgeCount num_edges) noexcept {
  return static_cast<std::int64_t>(kBinaryCsrHeaderBytes) +
         16 * (static_cast<std::int64_t>(num_vertices) + 1) + 8 * num_edges;
}

void encode_binary_csr_header(const BinaryCsrHeader& header,
                              char out[kBinaryCsrHeaderBytes]) noexcept {
  std::memset(out, 0, kBinaryCsrHeaderBytes);
  std::memcpy(out, kBinaryCsrMagic, sizeof(kBinaryCsrMagic));
  put<std::uint32_t>(out, 8, kBinaryCsrVersion);
  put<std::uint32_t>(out, 12, kBinaryCsrByteOrder);
  put<std::int32_t>(out, 16, header.num_vertices);
  put<std::int64_t>(out, 20, header.num_edges);
  put<std::int64_t>(out, 28, header.self_loops);
  put<std::uint32_t>(out, 36, header.payload_crc);
  put<std::uint32_t>(out, 40, ckpt::crc32(std::string_view(out, 40)));
}

BinaryCsrHeader decode_binary_csr_header(const char* bytes,
                                         std::size_t available,
                                         std::int64_t file_bytes,
                                         const std::string& path) {
  if (available < kBinaryCsrHeaderBytes) {
    fail_format(path, "file too small to hold a header (" +
                          std::to_string(available) + " bytes)");
  }
  if (std::memcmp(bytes, kBinaryCsrMagic, sizeof(kBinaryCsrMagic)) != 0) {
    fail_format(path, "bad magic (not a binary CSR file)");
  }
  const auto version = get<std::uint32_t>(bytes, 8);
  if (version != kBinaryCsrVersion) {
    fail_format(path, "unsupported format version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kBinaryCsrVersion) + ")");
  }
  const auto byte_order = get<std::uint32_t>(bytes, 12);
  if (byte_order != kBinaryCsrByteOrder) {
    fail_format(path,
                "byte-order mismatch (written on a different-endian host)");
  }
  if (get<std::uint32_t>(bytes, 40) !=
      ckpt::crc32(std::string_view(bytes, 40))) {
    fail_format(path, "header CRC mismatch");
  }
  BinaryCsrHeader header;
  header.num_vertices = get<std::int32_t>(bytes, 16);
  header.num_edges = get<std::int64_t>(bytes, 20);
  header.self_loops = get<std::int64_t>(bytes, 28);
  header.payload_crc = get<std::uint32_t>(bytes, 36);
  if (header.num_vertices < 0 || header.num_edges < 0 ||
      header.self_loops < 0 || header.self_loops > header.num_edges) {
    fail_format(path, "invalid counts in header");
  }
  if (file_bytes >= 0) {
    const std::int64_t expected =
        binary_csr_file_bytes(header.num_vertices, header.num_edges);
    if (file_bytes != expected) {
      fail_format(path, "file size " + std::to_string(file_bytes) +
                            " != expected " + std::to_string(expected) +
                            " (truncated or corrupt)");
    }
  }
  return header;
}

void write_binary_csr(const GraphView& graph, const std::string& path,
                      ckpt::FaultInjector* fault) {
  const Vertex num_vertices = graph.num_vertices();
  const EdgeCount num_edges = graph.num_edges();
  const auto total =
      static_cast<std::size_t>(binary_csr_file_bytes(num_vertices, num_edges));
  std::string file(total, '\0');
  char* base = file.data();

  const std::size_t offsets_bytes =
      (static_cast<std::size_t>(num_vertices) + 1) * sizeof(std::uint64_t);
  const std::size_t targets_bytes =
      static_cast<std::size_t>(num_edges) * sizeof(Vertex);
  std::size_t cursor = kBinaryCsrHeaderBytes;
  std::memcpy(base + cursor, graph.out_offsets_data(), offsets_bytes);
  cursor += offsets_bytes;
  std::memcpy(base + cursor, graph.in_offsets_data(), offsets_bytes);
  cursor += offsets_bytes;
  if (targets_bytes > 0) {
    std::memcpy(base + cursor, graph.out_targets_data(), targets_bytes);
    cursor += targets_bytes;
    std::memcpy(base + cursor, graph.in_sources_data(), targets_bytes);
  }

  BinaryCsrHeader header;
  header.num_vertices = num_vertices;
  header.num_edges = num_edges;
  header.self_loops = graph.num_self_loops();
  header.payload_crc = ckpt::crc32(std::string_view(
      base + kBinaryCsrHeaderBytes, total - kBinaryCsrHeaderBytes));
  encode_binary_csr_header(header, base);
  ckpt::atomic_write_file(path, file, fault);
}

ConvertStats convert_text_to_csr(const std::string& input_path,
                                 const std::string& output_path,
                                 WeightHandling weights) {
  // Pass 1: count degrees. O(V) heap, edges stream through.
  std::vector<std::uint64_t> out_degree;
  std::vector<std::uint64_t> in_degree;
  EdgeCount num_edges = 0;
  EdgeCount self_loops = 0;
  const Vertex declared = scan_text_graph(
      input_path, weights,
      [&](Vertex src, Vertex dst, std::int64_t multiplicity) {
        const auto needed =
            static_cast<std::size_t>(std::max(src, dst)) + 1;
        if (out_degree.size() < needed) {
          out_degree.resize(needed, 0);
          in_degree.resize(needed, 0);
        }
        out_degree[static_cast<std::size_t>(src)] +=
            static_cast<std::uint64_t>(multiplicity);
        in_degree[static_cast<std::size_t>(dst)] +=
            static_cast<std::uint64_t>(multiplicity);
        num_edges += multiplicity;
        if (src == dst) self_loops += multiplicity;
      });
  // Vertex count: max id seen + 1, raised to the Matrix Market declared
  // dimension — the same rule GraphBuilder::reserve_vertices applies, so
  // convert-then-mmap equals load-then-view exactly.
  const Vertex num_vertices = std::max(
      declared, static_cast<Vertex>(out_degree.size()));
  out_degree.resize(static_cast<std::size_t>(num_vertices), 0);
  in_degree.resize(static_cast<std::size_t>(num_vertices), 0);

  const std::int64_t total_bytes =
      binary_csr_file_bytes(num_vertices, num_edges);
  TempMapping out(output_path + ".tmp",
                  static_cast<std::size_t>(total_bytes));
  char* base = out.data();

  // Lay the prefix sums straight into the mapped offset arrays; the
  // degree vectors become pass-2 write cursors.
  auto* out_offsets = reinterpret_cast<std::uint64_t*>(
      base + kBinaryCsrHeaderBytes);
  auto* in_offsets = out_offsets + (num_vertices + 1);
  auto* out_targets = reinterpret_cast<Vertex*>(in_offsets +
                                                (num_vertices + 1));
  auto* in_sources = out_targets + num_edges;
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (Vertex v = 0; v < num_vertices; ++v) {
    out_offsets[v] = out_sum;
    in_offsets[v] = in_sum;
    const std::uint64_t od = out_degree[static_cast<std::size_t>(v)];
    const std::uint64_t id = in_degree[static_cast<std::size_t>(v)];
    out_degree[static_cast<std::size_t>(v)] = out_sum;  // now a cursor
    in_degree[static_cast<std::size_t>(v)] = in_sum;
    out_sum += od;
    in_sum += id;
  }
  out_offsets[num_vertices] = out_sum;
  in_offsets[num_vertices] = in_sum;

  // Pass 2: scatter edges into the mapped target arrays. The input file
  // must be byte-identical to pass 1; any drift is caught below.
  EdgeCount seen = 0;
  scan_text_graph(
      input_path, weights,
      [&](Vertex src, Vertex dst, std::int64_t multiplicity) {
        if (src >= num_vertices || dst >= num_vertices ||
            seen + multiplicity > num_edges) {
          throw util::DataError("'" + input_path +
                                "' changed between convert passes");
        }
        auto& out_cursor = out_degree[static_cast<std::size_t>(src)];
        auto& in_cursor = in_degree[static_cast<std::size_t>(dst)];
        for (std::int64_t m = 0; m < multiplicity; ++m) {
          out_targets[out_cursor++] = dst;
          in_sources[in_cursor++] = src;
        }
        seen += multiplicity;
      });
  if (seen != num_edges) {
    throw util::DataError("'" + input_path +
                          "' changed between convert passes");
  }
  for (Vertex v = 0; v < num_vertices; ++v) {
    if (out_degree[static_cast<std::size_t>(v)] != out_offsets[v + 1] ||
        in_degree[static_cast<std::size_t>(v)] != in_offsets[v + 1]) {
      throw util::DataError("'" + input_path +
                            "' changed between convert passes");
    }
  }

  BinaryCsrHeader header;
  header.num_vertices = num_vertices;
  header.num_edges = num_edges;
  header.self_loops = self_loops;
  header.payload_crc = ckpt::crc32(std::string_view(
      base + kBinaryCsrHeaderBytes,
      static_cast<std::size_t>(total_bytes) - kBinaryCsrHeaderBytes));
  encode_binary_csr_header(header, base);
  out.commit(output_path);

  ConvertStats stats;
  stats.num_vertices = num_vertices;
  stats.num_edges = num_edges;
  stats.self_loops = self_loops;
  stats.file_bytes = total_bytes;
  return stats;
}

}  // namespace hsbp::graph
