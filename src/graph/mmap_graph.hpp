/// \file mmap_graph.hpp
/// \brief Read-only mmap view over a binary CSR file (binary_csr.hpp) —
/// the storage backend that lets MCMC run on graphs larger than RAM.
///
/// Opening validates the header (magic, version, byte order, CRC, exact
/// file size) and the offset-array sentinels, then maps the whole file
/// PROT_READ/MAP_PRIVATE and closes the descriptor. `view()` hands out
/// a GraphView aimed at the mapped arrays: every kernel that takes
/// `const GraphView&` runs on the file directly, with the page cache as
/// its working set. Resident memory is bounded by the OS, and the
/// out-of-core driver tightens the bound by calling `evict()`
/// (MADV_DONTNEED) between pipeline stages — clean read-only pages drop
/// instantly and fault back in on the next touch.
///
/// The payload CRC is deliberately not checked on open (that would
/// fault in the entire file); call verify_payload() when integrity
/// matters more than latency.
#pragma once

#include <cstdint>
#include <string>

#include "graph/binary_csr.hpp"
#include "graph/view.hpp"

namespace hsbp::graph {

class MmapGraph {
 public:
  MmapGraph() = default;

  /// Opens and maps `path`.
  /// \throws util::IoError if the file cannot be opened or mapped;
  /// util::DataError if it is not a valid binary CSR file.
  explicit MmapGraph(const std::string& path);

  ~MmapGraph();
  MmapGraph(MmapGraph&& other) noexcept;
  MmapGraph& operator=(MmapGraph&& other) noexcept;
  MmapGraph(const MmapGraph&) = delete;
  MmapGraph& operator=(const MmapGraph&) = delete;

  /// CSR view over the mapped arrays. Valid while this MmapGraph lives.
  GraphView view() const noexcept {
    return {out_offsets_, out_targets_, in_offsets_, in_sources_,
            header_.num_vertices, header_.num_edges, header_.self_loops};
  }

  Vertex num_vertices() const noexcept { return header_.num_vertices; }
  EdgeCount num_edges() const noexcept { return header_.num_edges; }
  EdgeCount num_self_loops() const noexcept { return header_.self_loops; }
  std::int64_t file_bytes() const noexcept {
    return static_cast<std::int64_t>(map_bytes_);
  }
  const std::string& path() const noexcept { return path_; }

  /// madvise hints for the upcoming access pattern (best-effort).
  void advise_sequential() const noexcept;  ///< streaming passes, CRC
  void advise_random() const noexcept;      ///< MCMC neighbor lookups

  /// Drops resident pages (MADV_DONTNEED). Safe at any time: pages
  /// fault back in from the file on the next access. The out-of-core
  /// driver calls this between stages to keep peak RSS under budget.
  void evict() const noexcept;

  /// Bytes this mapping contributes to the process RSS (the Rss field
  /// of its /proc/self/smaps entry — mincore would report page-cache
  /// residency, which evict() leaves intact); -1 if the query fails.
  /// Used by tests and the RSS bench.
  std::int64_t resident_bytes() const;

  /// Recomputes the payload CRC over the whole file.
  /// \throws util::DataError on mismatch (bit rot, torn write).
  void verify_payload() const;

 private:
  void reset() noexcept;

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  BinaryCsrHeader header_;
  const std::uint64_t* out_offsets_ = nullptr;
  const std::uint64_t* in_offsets_ = nullptr;
  const Vertex* out_targets_ = nullptr;
  const Vertex* in_sources_ = nullptr;
};

}  // namespace hsbp::graph
