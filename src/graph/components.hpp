/// \file components.hpp
/// \brief Weakly-connected components. SBP treats each component's
/// community structure independently; datasets with many tiny
/// components (common in SuiteSparse crawls) inflate the block count,
/// so the tooling reports component structure before fitting.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/view.hpp"

namespace hsbp::graph {

struct ComponentInfo {
  /// component id of each vertex, dense labels [0, count), ordered by
  /// first-seen vertex id.
  std::vector<std::int32_t> component_of;
  std::int32_t count = 0;                 ///< number of components
  std::vector<std::int32_t> sizes;        ///< vertex count per component
  std::int32_t largest = 0;               ///< id of the largest component
};

/// Weakly-connected components (edge direction ignored), iterative BFS.
ComponentInfo weakly_connected_components(const GraphView& graph);

/// Extracts the subgraph induced by one component. Returns the new
/// graph plus the mapping from new vertex ids to the original ids.
struct Subgraph {
  Graph graph;
  std::vector<Vertex> original_ids;  ///< new id → original id
};
Subgraph extract_component(const GraphView& graph, const ComponentInfo& info,
                           std::int32_t component);

}  // namespace hsbp::graph
