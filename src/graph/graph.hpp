/// \file graph.hpp
/// \brief Directed multigraph in CSR form — the substrate every SBP
/// variant runs on.
///
/// SBP needs, per vertex, fast iteration over both out- and in-edges
/// (proposals and ΔMDL look at both directions), so the graph stores two
/// CSR structures: out-neighbors indexed by source and in-neighbors
/// indexed by target. Graphs are immutable after construction; use
/// GraphBuilder or Graph::from_edges to create one.
///
/// Conventions (matching the paper's setting):
///   - directed, unweighted; parallel edges and self-loops are allowed
///     and counted with multiplicity,
///   - vertices are dense ids [0, V),
///   - degree(v) = out_degree(v) + in_degree(v), so a self-loop
///     contributes 2 to degree(v).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace hsbp::graph {

using Vertex = std::int32_t;
using EdgeCount = std::int64_t;
using Edge = std::pair<Vertex, Vertex>;  ///< (source, target)

class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph() = default;

  /// Builds CSR from an edge list. Edges may repeat (multiplicity kept).
  /// \throws std::invalid_argument if an endpoint is outside [0, V).
  static Graph from_edges(Vertex num_vertices, std::span<const Edge> edges);

  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(out_offsets_.empty() ? 0
                                                    : out_offsets_.size() - 1);
  }
  EdgeCount num_edges() const noexcept {
    return static_cast<EdgeCount>(out_targets_.size());
  }

  /// Targets of edges leaving v, with multiplicity.
  std::span<const Vertex> out_neighbors(Vertex v) const noexcept {
    return {out_targets_.data() + out_offsets_[static_cast<std::size_t>(v)],
            out_targets_.data() + out_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  /// Sources of edges entering v, with multiplicity.
  std::span<const Vertex> in_neighbors(Vertex v) const noexcept {
    return {in_sources_.data() + in_offsets_[static_cast<std::size_t>(v)],
            in_sources_.data() + in_offsets_[static_cast<std::size_t>(v) + 1]};
  }

  EdgeCount out_degree(Vertex v) const noexcept {
    return static_cast<EdgeCount>(
        out_offsets_[static_cast<std::size_t>(v) + 1] -
        out_offsets_[static_cast<std::size_t>(v)]);
  }
  EdgeCount in_degree(Vertex v) const noexcept {
    return static_cast<EdgeCount>(
        in_offsets_[static_cast<std::size_t>(v) + 1] -
        in_offsets_[static_cast<std::size_t>(v)]);
  }
  /// Total degree: out + in (self-loops count twice).
  EdgeCount degree(Vertex v) const noexcept {
    return out_degree(v) + in_degree(v);
  }

  /// Number of self-loop edge instances.
  EdgeCount num_self_loops() const noexcept { return self_loops_; }

  /// Reconstructs the edge list (source-major order). Mostly for I/O and
  /// tests.
  std::vector<Edge> edges() const;

 private:
  friend class GraphBuilder;
  friend class GraphView;  // view.hpp: non-owning CSR view over the arrays

  std::vector<std::uint64_t> out_offsets_{0};
  std::vector<Vertex> out_targets_;
  std::vector<std::uint64_t> in_offsets_{0};
  std::vector<Vertex> in_sources_;
  EdgeCount self_loops_ = 0;
};

}  // namespace hsbp::graph
