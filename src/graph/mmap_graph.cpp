#include "graph/mmap_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

namespace {

/// Closes the descriptor on every exit path out of the constructor.
class FdGuard {
 public:
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int get() const noexcept { return fd_; }

 private:
  int fd_;
};

}  // namespace

MmapGraph::MmapGraph(const std::string& path) : path_(path) {
  FdGuard fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    throw util::IoError("cannot open '" + path + "' for reading");
  }
  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) {
    throw util::IoError("cannot stat '" + path + "'");
  }
  const auto file_size = static_cast<std::int64_t>(st.st_size);

  char header_bytes[kBinaryCsrHeaderBytes];
  ssize_t got = 0;
  while (got < static_cast<ssize_t>(kBinaryCsrHeaderBytes)) {
    const ssize_t n =
        ::pread(fd.get(), header_bytes + got,
                kBinaryCsrHeaderBytes - static_cast<std::size_t>(got), got);
    if (n < 0) throw util::IoError("cannot read '" + path + "'");
    if (n == 0) break;  // short file; decode reports "too small"
    got += n;
  }
  header_ = decode_binary_csr_header(header_bytes,
                                     static_cast<std::size_t>(got),
                                     file_size, path);

  map_bytes_ = static_cast<std::size_t>(file_size);
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd.get(), 0);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw util::IoError("cannot map '" + path + "'");
  }

  const char* base = static_cast<const char*>(map_);
  const auto num_vertices = static_cast<std::size_t>(header_.num_vertices);
  out_offsets_ = reinterpret_cast<const std::uint64_t*>(
      base + kBinaryCsrHeaderBytes);
  in_offsets_ = out_offsets_ + (num_vertices + 1);
  out_targets_ = reinterpret_cast<const Vertex*>(in_offsets_ +
                                                 (num_vertices + 1));
  in_sources_ = out_targets_ + header_.num_edges;

  // Sentinel check: the offset arrays must start at 0 and end at E.
  // Catches payload corruption cheaply (4 loads) without the full CRC.
  const auto num_edges = static_cast<std::uint64_t>(header_.num_edges);
  if (out_offsets_[0] != 0 || out_offsets_[num_vertices] != num_edges ||
      in_offsets_[0] != 0 || in_offsets_[num_vertices] != num_edges) {
    const std::string message =
        "binary CSR '" + path + "': offset arrays inconsistent with header";
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    throw util::DataError(message);
  }
}

MmapGraph::~MmapGraph() { reset(); }

MmapGraph::MmapGraph(MmapGraph&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      map_bytes_(other.map_bytes_),
      header_(other.header_),
      out_offsets_(other.out_offsets_),
      in_offsets_(other.in_offsets_),
      out_targets_(other.out_targets_),
      in_sources_(other.in_sources_) {
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.out_offsets_ = other.in_offsets_ = nullptr;
  other.out_targets_ = other.in_sources_ = nullptr;
  other.header_ = BinaryCsrHeader{};
}

MmapGraph& MmapGraph::operator=(MmapGraph&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    header_ = std::exchange(other.header_, BinaryCsrHeader{});
    out_offsets_ = std::exchange(other.out_offsets_, nullptr);
    in_offsets_ = std::exchange(other.in_offsets_, nullptr);
    out_targets_ = std::exchange(other.out_targets_, nullptr);
    in_sources_ = std::exchange(other.in_sources_, nullptr);
  }
  return *this;
}

void MmapGraph::reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  map_bytes_ = 0;
}

void MmapGraph::advise_sequential() const noexcept {
  if (map_ != nullptr) ::madvise(map_, map_bytes_, MADV_SEQUENTIAL);
}

void MmapGraph::advise_random() const noexcept {
  if (map_ != nullptr) ::madvise(map_, map_bytes_, MADV_RANDOM);
}

void MmapGraph::evict() const noexcept {
  if (map_ != nullptr) ::madvise(map_, map_bytes_, MADV_DONTNEED);
}

std::int64_t MmapGraph::resident_bytes() const {
  if (map_ == nullptr) return 0;
  // mincore cannot answer this: for file mappings it reports page-cache
  // residency, which MADV_DONTNEED leaves intact. The mapping's actual
  // contribution to this process's RSS is the Rss field of its
  // /proc/self/smaps entry, found by its start address.
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%lx-",
                reinterpret_cast<unsigned long>(map_));
  std::ifstream smaps("/proc/self/smaps");
  if (!smaps) return -1;
  std::string line;
  bool in_entry = false;
  while (std::getline(smaps, line)) {
    if (!in_entry) {
      in_entry = line.rfind(prefix, 0) == 0;
      continue;
    }
    if (line.rfind("Rss:", 0) == 0) {
      return std::strtoll(line.c_str() + 4, nullptr, 10) * 1024;
    }
  }
  return -1;
}

void MmapGraph::verify_payload() const {
  if (map_ == nullptr) return;
  const char* base = static_cast<const char*>(map_);
  const std::uint32_t computed = ckpt::crc32(std::string_view(
      base + kBinaryCsrHeaderBytes, map_bytes_ - kBinaryCsrHeaderBytes));
  if (computed != header_.payload_crc) {
    throw util::DataError("binary CSR '" + path_ +
                          "': payload CRC mismatch (corrupt file)");
  }
}

}  // namespace hsbp::graph
