#include "graph/degree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hsbp::graph {

std::vector<EdgeCount> degree_sequence(const GraphView& graph) {
  std::vector<EdgeCount> degrees(static_cast<std::size_t>(graph.num_vertices()));
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    degrees[static_cast<std::size_t>(v)] = graph.degree(v);
  }
  return degrees;
}

std::vector<Vertex> vertices_by_degree_desc(const GraphView& graph) {
  std::vector<Vertex> order(static_cast<std::size_t>(graph.num_vertices()));
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    const EdgeCount da = graph.degree(a);
    const EdgeCount db = graph.degree(b);
    return da != db ? da > db : a < b;
  });
  return order;
}

DegreeSplit split_by_degree(const GraphView& graph, double fraction) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  const auto order = vertices_by_degree_desc(graph);
  const auto high_count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(order.size())));
  DegreeSplit split;
  split.high.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(high_count));
  split.low.assign(order.begin() + static_cast<std::ptrdiff_t>(high_count),
                   order.end());
  return split;
}

double powerlaw_exponent_mle(const std::vector<EdgeCount>& degrees,
                             EdgeCount d_min) {
  assert(d_min >= 1);
  double log_sum = 0.0;
  std::size_t n = 0;
  const double shifted_min = static_cast<double>(d_min) - 0.5;
  for (EdgeCount d : degrees) {
    if (d < d_min) continue;
    log_sum += std::log(static_cast<double>(d) / shifted_min);
    ++n;
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace hsbp::graph
