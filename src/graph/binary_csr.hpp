/// \file binary_csr.hpp
/// \brief The versioned binary CSR file format behind `hsbp convert`
/// and MmapGraph — the on-disk twin of graph::Graph.
///
/// Text edge lists are parse-bound and cannot be mapped; a one-time
/// compaction step rewrites them into the exact four arrays Graph holds
/// in memory, so an MmapGraph can serve a GraphView straight off the
/// page cache with zero parse work and bounded resident memory.
///
/// Layout (all fields little-endian, written on a little-endian host
/// and rejected elsewhere via the byte-order marker):
///
///   offset  size  field
///        0     8  magic "HSBPCSR1"
///        8     4  u32 format version (kBinaryCsrVersion)
///       12     4  u32 byte-order marker 0x01020304 (as written)
///       16     4  i32 num_vertices V
///       20     8  i64 num_edges E
///       28     8  i64 num_self_loops
///       36     4  u32 CRC-32 of the payload (ckpt::crc32)
///       40     4  u32 CRC-32 of header bytes [0, 40)
///       44    20  reserved, zero
///       64        payload:
///                   out_offsets  (V+1) × u64
///                   in_offsets   (V+1) × u64
///                   out_targets      E × i32
///                   in_sources       E × i32
///
/// The 8-byte offset arrays precede the 4-byte target arrays so every
/// array is naturally aligned at its file offset (the header is 64
/// bytes, a multiple of 8). The header CRC is verified eagerly on open
/// (it covers the counts the reader trusts for bounds); the payload CRC
/// is verified by `hsbp convert` after writing and on demand
/// (MmapGraph::verify_payload) — eagerly CRC-ing a multi-GB payload on
/// every open would defeat the point of mapping it. Truncation is
/// caught structurally: the file size must equal
/// binary_csr_file_bytes(V, E) exactly.
#pragma once

#include <cstdint>
#include <string>

#include "graph/io.hpp"
#include "graph/view.hpp"

namespace hsbp::ckpt {
class FaultInjector;
}

namespace hsbp::graph {

inline constexpr char kBinaryCsrMagic[8] = {'H', 'S', 'B', 'P',
                                            'C', 'S', 'R', '1'};
inline constexpr std::uint32_t kBinaryCsrVersion = 1;
inline constexpr std::uint32_t kBinaryCsrByteOrder = 0x01020304u;
inline constexpr std::size_t kBinaryCsrHeaderBytes = 64;

/// Decoded and validated header of a binary CSR file.
struct BinaryCsrHeader {
  Vertex num_vertices = 0;
  EdgeCount num_edges = 0;
  EdgeCount self_loops = 0;
  std::uint32_t payload_crc = 0;
};

/// Exact file size of a binary CSR holding (V, E).
std::int64_t binary_csr_file_bytes(Vertex num_vertices,
                                   EdgeCount num_edges) noexcept;

/// Serializes the 64-byte header (computes the header CRC).
void encode_binary_csr_header(const BinaryCsrHeader& header,
                              char out[kBinaryCsrHeaderBytes]) noexcept;

/// Parses and validates a header: magic, version, byte order, header
/// CRC, non-negative counts. `file_bytes` (when >= 0) must equal the
/// size the counts imply — the truncated/torn-write gate.
/// \throws util::DataError naming `path` on any mismatch.
BinaryCsrHeader decode_binary_csr_header(const char* bytes,
                                         std::size_t available,
                                         std::int64_t file_bytes,
                                         const std::string& path);

/// Writes `graph` as a binary CSR file through ckpt::atomic_write_file
/// (temp → fsync → rename; `fault` reproduces torn writes in tests).
/// Materializes the file contents in memory — intended for graphs that
/// already fit in RAM; the out-of-core path is convert_text_to_csr.
/// \throws util::IoError on write failure.
void write_binary_csr(const GraphView& graph, const std::string& path,
                      ckpt::FaultInjector* fault = nullptr);

struct ConvertStats {
  Vertex num_vertices = 0;
  EdgeCount num_edges = 0;
  EdgeCount self_loops = 0;
  std::int64_t file_bytes = 0;
};

/// Streaming two-pass compaction: scans the text file (Matrix Market
/// when `input_path` ends in ".mtx", SNAP edge list otherwise) once to
/// count degrees, then once more to scatter targets directly into the
/// mmap-ed output file. Peak heap is O(V) (degree counters + write
/// cursors); the edge arrays never materialize in memory. The output
/// appears atomically (written to `output_path + ".tmp"`, fsynced,
/// renamed) and its payload CRC is verified before the rename.
/// \throws util::DataError on malformed input or an input file that
/// changed between the passes; util::IoError on I/O failure.
ConvertStats convert_text_to_csr(const std::string& input_path,
                                 const std::string& output_path,
                                 WeightHandling weights);

}  // namespace hsbp::graph
