/// \file degree.hpp
/// \brief Degree-sequence utilities.
///
/// H-SBP's vertex partition (paper §3.2) is driven entirely by total
/// degree: the top fraction of vertices by degree is processed serially.
/// These helpers also back the generator tests (power-law exponent
/// estimation) and the bench harness's dataset summaries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/view.hpp"

namespace hsbp::graph {

/// Total degree (out + in) of every vertex.
std::vector<EdgeCount> degree_sequence(const GraphView& graph);

/// Vertex ids sorted by total degree, descending; ties broken by vertex
/// id ascending so the order is deterministic.
std::vector<Vertex> vertices_by_degree_desc(const GraphView& graph);

/// Splits vertices into (high, low) by the given high-degree fraction:
/// the first ceil(fraction * V) vertices of vertices_by_degree_desc.
/// \pre 0 <= fraction <= 1.
struct DegreeSplit {
  std::vector<Vertex> high;  ///< processed serially by H-SBP
  std::vector<Vertex> low;   ///< processed asynchronously
};
DegreeSplit split_by_degree(const GraphView& graph, double fraction);

/// Maximum-likelihood estimate of the power-law exponent of the degree
/// sequence (Clauset et al. 2009, discrete approximation):
///   alpha = 1 + n / sum_i ln(d_i / (d_min - 0.5))
/// over degrees >= d_min. Returns 0 if fewer than 2 qualifying degrees.
double powerlaw_exponent_mle(const std::vector<EdgeCount>& degrees,
                             EdgeCount d_min);

}  // namespace hsbp::graph
