#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hsbp::graph {

GraphBuilder& GraphBuilder::add_edge(Vertex source, Vertex target) {
  if (source < 0 || target < 0) {
    throw std::invalid_argument("GraphBuilder: negative vertex id in edge (" +
                                std::to_string(source) + ", " +
                                std::to_string(target) + ")");
  }
  edges_.emplace_back(source, target);
  num_vertices_ = std::max({num_vertices_, static_cast<Vertex>(source + 1),
                            static_cast<Vertex>(target + 1)});
  return *this;
}

GraphBuilder& GraphBuilder::reserve_vertices(Vertex count) {
  num_vertices_ = std::max(num_vertices_, count);
  return *this;
}

Graph GraphBuilder::build() const {
  return Graph::from_edges(num_vertices_, edges_);
}

}  // namespace hsbp::graph
