/// \file io_stream.hpp
/// \brief Single-pass streaming edge scanners behind the text readers
/// and the `hsbp convert` compaction step.
///
/// Both text formats (SNAP edge lists, Matrix Market coordinate) are
/// scanned line by line into one reused buffer; fields are parsed in
/// place with strtoll/strtod, so a scan allocates nothing per line and
/// never holds more than the longest single line in memory — graphs far
/// larger than RAM stream through untouched. The scanners emit
/// (source, target, multiplicity) callbacks instead of building a
/// Graph, which lets one parser serve three consumers:
///
///   - read_edge_list / read_matrix_market (io.hpp) append into a
///     GraphBuilder,
///   - `hsbp convert` pass 1 counts degrees,
///   - `hsbp convert` pass 2 fills the CSR target arrays.
///
/// Error behaviour is the io.hpp contract, unchanged: malformed input
/// throws util::DataError carrying the 1-based line number ("edge list,
/// line N: ..." / "Matrix Market, line N: ...").
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <istream>
#include <string>

#include "graph/io.hpp"
#include "util/errors.hpp"

namespace hsbp::graph::iostream_detail {

[[noreturn]] inline void fail_edge_list(std::size_t line_number,
                                        const std::string& what) {
  throw util::DataError("edge list, line " + std::to_string(line_number) +
                        ": " + what);
}

[[noreturn]] inline void fail_matrix_market(std::size_t line_number,
                                            const std::string& what) {
  throw util::DataError("Matrix Market, line " +
                        std::to_string(line_number) + ": " + what);
}

/// strtoll wrapper with istream-compatible failure semantics: returns
/// false when no digits were consumed or the value overflowed. `*rest`
/// receives the position one past the parsed number.
inline bool parse_ll(const char* text, long long* value, const char** rest) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || errno == ERANGE) return false;
  *value = parsed;
  *rest = end;
  return true;
}

/// Optional trailing weight column: absent or unparseable values keep
/// the historical istream behaviour (multiplicity 1, no error); parsed
/// values are validated by the caller.
inline bool parse_weight(const char* text, double* value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text, &end);
  if (end == text) return false;
  *value = parsed;
  return true;
}

/// Validates a parsed weight under WeightHandling::Multiplicity and
/// returns the parallel-edge count it denotes.
template <typename FailFn>
long long weight_to_multiplicity(double value, std::size_t line_number,
                                 FailFn&& fail) {
  const long long multiplicity = std::llround(value);
  if (multiplicity < 1) {
    fail(line_number, "weight must round to >= 1 under Multiplicity");
  }
  constexpr long long kMaxMultiplicity = 1'000'000;
  if (multiplicity > kMaxMultiplicity) fail(line_number, "weight too large");
  return multiplicity;
}

}  // namespace hsbp::graph::iostream_detail

namespace hsbp::graph {

/// Streams a SNAP-style edge list (`src dst [weight]` per line, `#`/`%`
/// comments), invoking `fn(Vertex source, Vertex target,
/// std::int64_t multiplicity)` once per input entry. The multiplicity
/// is 1 unless `weights` is Multiplicity and a weight column is
/// present. \throws util::DataError on malformed lines.
template <typename EdgeFn>
void scan_edge_list(std::istream& in, WeightHandling weights, EdgeFn&& fn) {
  namespace d = iostream_detail;
  std::string line;  // reuse buffer: grows to the longest line, once
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* cursor = line.c_str();
    long long src = 0, dst = 0;
    if (!d::parse_ll(cursor, &src, &cursor) ||
        !d::parse_ll(cursor, &dst, &cursor)) {
      d::fail_edge_list(line_number, "expected 'src dst', got '" + line + "'");
    }
    if (src < 0 || dst < 0) d::fail_edge_list(line_number, "negative vertex id");
    constexpr long long kMaxVertex = 2'000'000'000LL;
    if (src > kMaxVertex || dst > kMaxVertex) {
      d::fail_edge_list(line_number, "vertex id exceeds 32-bit range");
    }
    long long multiplicity = 1;
    if (weights == WeightHandling::Multiplicity) {
      double value = 1.0;
      if (d::parse_weight(cursor, &value)) {
        multiplicity = d::weight_to_multiplicity(
            value, line_number,
            [](std::size_t n, const char* what) {
              d::fail_edge_list(n, what);
            });
      }
    }
    fn(static_cast<Vertex>(src), static_cast<Vertex>(dst),
       static_cast<std::int64_t>(multiplicity));
  }
}

/// Streams a Matrix Market `matrix coordinate` file, invoking
/// `fn(Vertex source, Vertex target, std::int64_t multiplicity)` per
/// emitted directed edge — `symmetric`/`skew-symmetric` storage emits
/// the mirrored edge as a second callback. Returns the declared vertex
/// count (the graph may use fewer). \throws util::DataError on a
/// malformed header, size line, or entry.
template <typename EdgeFn>
Vertex scan_matrix_market(std::istream& in, WeightHandling weights,
                          EdgeFn&& fn) {
  namespace d = iostream_detail;
  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(in, line)) d::fail_matrix_market(1, "empty input");

  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>.
  // One line per file; tokenized in place (banner kept verbatim, the
  // four keyword tokens lower-cased).
  std::string words[5];
  {
    const char* p = line.c_str();
    bool first = true;
    for (auto& word : words) {
      while (*p == ' ' || *p == '\t') ++p;
      while (*p != '\0' && *p != ' ' && *p != '\t') {
        word.push_back(first ? *p
                             : static_cast<char>(std::tolower(
                                   static_cast<unsigned char>(*p))));
        ++p;
      }
      first = false;
    }
  }
  if (words[0] != "%%MatrixMarket") {
    d::fail_matrix_market(1, "missing %%MatrixMarket banner");
  }
  const std::string& object = words[1];
  const std::string& format = words[2];
  const std::string& field = words[3];
  const std::string& symmetry = words[4];
  if (object != "matrix") {
    d::fail_matrix_market(1, "unsupported object '" + object + "'");
  }
  if (format != "coordinate") {
    d::fail_matrix_market(1,
                          "unsupported format '" + format +
                              "' (only coordinate)");
  }
  if (field != "pattern" && field != "integer" && field != "real") {
    d::fail_matrix_market(1, "unsupported field '" + field + "'");
  }
  if (symmetry != "general" && symmetry != "symmetric" &&
      symmetry != "skew-symmetric") {
    d::fail_matrix_market(1, "unsupported symmetry '" + symmetry + "'");
  }
  if (weights == WeightHandling::Multiplicity && field == "pattern") {
    // Pattern matrices carry no values; multiplicity degrades to 1.
    weights = WeightHandling::Ignore;
  }

  // Skip comment lines to the size line.
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line[0] != '%') break;
  }
  const char* cursor = line.c_str();
  long long rows = 0, cols = 0, nnz = 0;
  if (!iostream_detail::parse_ll(cursor, &rows, &cursor) ||
      !iostream_detail::parse_ll(cursor, &cols, &cursor) ||
      !iostream_detail::parse_ll(cursor, &nnz, &cursor)) {
    d::fail_matrix_market(line_number,
                          "expected 'rows cols nnz', got '" + line + "'");
  }
  if (rows != cols) {
    d::fail_matrix_market(line_number,
                          "adjacency matrix must be square (" +
                              std::to_string(rows) + "x" +
                              std::to_string(cols) + ")");
  }
  if (rows <= 0 || nnz < 0) d::fail_matrix_market(line_number,
                                                  "invalid dimensions");

  const bool mirror = symmetry != "general";
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '%') continue;
    cursor = line.c_str();
    long long i = 0, j = 0;
    if (!d::parse_ll(cursor, &i, &cursor) ||
        !d::parse_ll(cursor, &j, &cursor)) {
      d::fail_matrix_market(line_number,
                            "expected 'i j [value]', got '" + line + "'");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      d::fail_matrix_market(line_number, "entry (" + std::to_string(i) +
                                             ", " + std::to_string(j) +
                                             ") out of bounds");
    }
    long long multiplicity = 1;
    if (weights == WeightHandling::Multiplicity) {
      double value = 1.0;
      if (d::parse_weight(cursor, &value)) {
        multiplicity = d::weight_to_multiplicity(
            std::fabs(value), line_number,
            [](std::size_t n, const char* what) {
              d::fail_matrix_market(n, what);
            });
      }
    }
    const auto src = static_cast<Vertex>(i - 1);
    const auto dst = static_cast<Vertex>(j - 1);
    fn(src, dst, static_cast<std::int64_t>(multiplicity));
    if (mirror && src != dst) {
      fn(dst, src, static_cast<std::int64_t>(multiplicity));
    }
    ++seen;
  }
  if (seen < nnz) {
    d::fail_matrix_market(line_number,
                          "expected " + std::to_string(nnz) +
                              " entries, found " + std::to_string(seen));
  }
  return static_cast<Vertex>(rows);
}

}  // namespace hsbp::graph
