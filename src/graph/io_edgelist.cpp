#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw util::DataError("edge list, line " + std::to_string(line_number) +
                        ": " + what);
}

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open '" + path + "' for reading");
  return in;
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, WeightHandling weights) {
  GraphBuilder builder;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    long long src = 0, dst = 0;
    if (!(fields >> src >> dst)) {
      fail(line_number, "expected 'src dst', got '" + line + "'");
    }
    if (src < 0 || dst < 0) fail(line_number, "negative vertex id");
    constexpr long long kMaxVertex = 2'000'000'000LL;
    if (src > kMaxVertex || dst > kMaxVertex) {
      fail(line_number, "vertex id exceeds 32-bit range");
    }
    long long multiplicity = 1;
    if (weights == WeightHandling::Multiplicity) {
      double value = 1.0;
      if (fields >> value) {
        multiplicity = std::llround(value);
        if (multiplicity < 1) {
          fail(line_number, "weight must round to >= 1 under Multiplicity");
        }
        constexpr long long kMaxMultiplicity = 1'000'000;
        if (multiplicity > kMaxMultiplicity) {
          fail(line_number, "weight too large");
        }
      }
    }
    for (long long m = 0; m < multiplicity; ++m) {
      builder.add_edge(static_cast<Vertex>(src), static_cast<Vertex>(dst));
    }
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path, WeightHandling weights) {
  auto in = open_for_read(path);
  return read_edge_list(in, weights);
}

void write_edge_list(const Graph& graph, std::ostream& out) {
  out << "# " << graph.num_vertices() << ' ' << graph.num_edges() << '\n';
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex target : graph.out_neighbors(v)) {
      out << v << '\t' << target << '\n';
    }
  }
}

void write_edge_list_file(const Graph& graph, const std::string& path) {
  auto out = open_for_write(path);
  write_edge_list(graph, out);
}

}  // namespace hsbp::graph
