#include <fstream>
#include <string>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/io_stream.hpp"
#include "util/errors.hpp"

namespace hsbp::graph {

namespace {

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open '" + path + "' for reading");
  return in;
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

Graph read_edge_list(std::istream& in, WeightHandling weights) {
  GraphBuilder builder;
  scan_edge_list(in, weights,
                 [&builder](Vertex src, Vertex dst, std::int64_t mult) {
                   for (std::int64_t m = 0; m < mult; ++m) {
                     builder.add_edge(src, dst);
                   }
                 });
  return builder.build();
}

Graph read_edge_list_file(const std::string& path, WeightHandling weights) {
  auto in = open_for_read(path);
  return read_edge_list(in, weights);
}

void write_edge_list(const GraphView& graph, std::ostream& out) {
  out << "# " << graph.num_vertices() << ' ' << graph.num_edges() << '\n';
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex target : graph.out_neighbors(v)) {
      out << v << '\t' << target << '\n';
    }
  }
}

void write_edge_list_file(const GraphView& graph, const std::string& path) {
  auto out = open_for_write(path);
  write_edge_list(graph, out);
}

}  // namespace hsbp::graph
