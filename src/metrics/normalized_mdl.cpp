#include <algorithm>
#include <stdexcept>

#include "blockmodel/blockmodel.hpp"
#include "blockmodel/mdl.hpp"
#include "metrics/metrics.hpp"

namespace hsbp::metrics {

double normalized_mdl(double mdl_value, graph::Vertex num_vertices,
                      graph::EdgeCount num_edges) {
  const double null_value = blockmodel::null_mdl(num_vertices, num_edges);
  if (null_value <= 0.0) {
    throw std::invalid_argument("normalized_mdl: degenerate null model");
  }
  return mdl_value / null_value;
}

double normalized_mdl(const graph::GraphView& graph,
                      std::span<const std::int32_t> membership) {
  std::int32_t num_blocks = 0;
  for (const std::int32_t label : membership) {
    num_blocks = std::max(num_blocks, label + 1);
  }
  const auto b = blockmodel::Blockmodel::from_assignment(graph, membership,
                                                         num_blocks);
  const double value =
      blockmodel::mdl(b, graph.num_vertices(), graph.num_edges());
  return normalized_mdl(value, graph.num_vertices(), graph.num_edges());
}

}  // namespace hsbp::metrics
