#include "metrics/contingency.hpp"

#include <cmath>
#include <stdexcept>

namespace hsbp::metrics {

namespace {

/// Compacts arbitrary non-negative labels to dense [0, k).
std::vector<std::int32_t> compact(std::span<const std::int32_t> labels,
                                  std::size_t& num_clusters) {
  std::unordered_map<std::int32_t, std::int32_t> remap;
  std::vector<std::int32_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      throw std::invalid_argument("ContingencyTable: negative label");
    }
    const auto [it, inserted] =
        remap.try_emplace(labels[i], static_cast<std::int32_t>(remap.size()));
    out[i] = it->second;
  }
  num_clusters = remap.size();
  return out;
}

double entropy(const std::vector<std::size_t>& counts, std::size_t total) {
  double h = 0.0;
  const double n = static_cast<double>(total);
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

ContingencyTable::ContingencyTable(std::span<const std::int32_t> x,
                                   std::span<const std::int32_t> y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument(
        "ContingencyTable: labelings must be non-empty and equal-sized");
  }
  total_ = x.size();

  std::size_t kx = 0, ky = 0;
  const auto cx = compact(x, kx);
  const auto cy = compact(y, ky);
  counts_x_.assign(kx, 0);
  counts_y_.assign(ky, 0);
  joint_.reserve(std::max(kx, ky) * 2);

  for (std::size_t i = 0; i < total_; ++i) {
    ++counts_x_[static_cast<std::size_t>(cx[i])];
    ++counts_y_[static_cast<std::size_t>(cy[i])];
    const auto key = (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(cx[i]))
                      << 32) |
                     static_cast<std::uint32_t>(cy[i]);
    ++joint_[key];
  }

  entropy_x_ = entropy(counts_x_, total_);
  entropy_y_ = entropy(counts_y_, total_);

  const double n = static_cast<double>(total_);
  double mi = 0.0;
  for (const auto& [key, count] : joint_) {
    const auto cxi = static_cast<std::size_t>(key >> 32);
    const auto cyi = static_cast<std::size_t>(key & 0xffffffffULL);
    const double p_joint = static_cast<double>(count) / n;
    const double p_x = static_cast<double>(counts_x_[cxi]) / n;
    const double p_y = static_cast<double>(counts_y_[cyi]) / n;
    mi += p_joint * std::log(p_joint / (p_x * p_y));
  }
  mutual_information_ = std::max(0.0, mi);
}

}  // namespace hsbp::metrics
