/// \file metrics.hpp
/// \brief The three result-quality metrics of the paper's evaluation:
/// NMI (synthetic graphs, §4.2), Newman modularity and normalized MDL
/// (real-world graphs, §4.2 / Fig. 5).
#pragma once

#include <cstdint>
#include <span>

#include "graph/view.hpp"

namespace hsbp::metrics {

/// Normalized mutual information NMI = I(X;Y) / sqrt(H(X)·H(Y)).
/// Degenerate conventions: both labelings constant → 1 (they agree
/// perfectly up to relabeling); exactly one constant → 0.
double nmi(std::span<const std::int32_t> x, std::span<const std::int32_t> y);

/// Newman's modularity for directed graphs:
///   Q = Σ_r [ M_rr / E − (d_out_r / E) · (d_in_r / E) ]
/// where M is the inter-community edge-count matrix under `membership`.
/// \pre membership.size() == V; labels non-negative.
double modularity(const graph::GraphView& graph,
                  std::span<const std::int32_t> membership);

/// MDL normalized by the structure-less null blockmodel (all vertices in
/// one community): MDL_norm = MDL / MDL_null. Values near (or above) 1
/// mean the fit found no more structure than "no communities at all".
double normalized_mdl(double mdl_value, graph::Vertex num_vertices,
                      graph::EdgeCount num_edges);

/// Convenience overload: computes the MDL of `membership` on `graph`
/// first. `num_blocks` = 1 + max label.
double normalized_mdl(const graph::GraphView& graph,
                      std::span<const std::int32_t> membership);

}  // namespace hsbp::metrics
