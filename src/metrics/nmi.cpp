#include <cmath>

#include "metrics/contingency.hpp"
#include "metrics/metrics.hpp"

namespace hsbp::metrics {

double nmi(std::span<const std::int32_t> x, std::span<const std::int32_t> y) {
  const ContingencyTable table(x, y);
  const double hx = table.entropy_x();
  const double hy = table.entropy_y();
  if (hx == 0.0 && hy == 0.0) return 1.0;  // both constant: identical
  if (hx == 0.0 || hy == 0.0) return 0.0;  // one constant, one not
  return table.mutual_information() / std::sqrt(hx * hy);
}

}  // namespace hsbp::metrics
