/// \file contingency.hpp
/// \brief Contingency (confusion) table between two community labelings
/// — the common substrate of the mutual-information metrics.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace hsbp::metrics {

/// Sparse joint distribution of two labelings over the same vertex set.
/// Labels may be arbitrary non-negative ints; they are compacted
/// internally.
class ContingencyTable {
 public:
  /// \pre x.size() == y.size() and both non-empty.
  /// \throws std::invalid_argument otherwise or on negative labels.
  ContingencyTable(std::span<const std::int32_t> x,
                   std::span<const std::int32_t> y);

  std::size_t total() const noexcept { return total_; }
  std::size_t num_clusters_x() const noexcept { return counts_x_.size(); }
  std::size_t num_clusters_y() const noexcept { return counts_y_.size(); }

  /// Shannon entropies (nats) of the marginals.
  double entropy_x() const noexcept { return entropy_x_; }
  double entropy_y() const noexcept { return entropy_y_; }

  /// Mutual information I(X;Y) in nats. Always >= 0 up to rounding.
  double mutual_information() const noexcept { return mutual_information_; }

  /// Marginal cluster sizes (compacted label order).
  const std::vector<std::size_t>& counts_x() const noexcept {
    return counts_x_;
  }
  const std::vector<std::size_t>& counts_y() const noexcept {
    return counts_y_;
  }

  /// Sparse joint counts keyed by (compact_x << 32 | compact_y).
  const std::unordered_map<std::uint64_t, std::size_t>& joint()
      const noexcept {
    return joint_;
  }

 private:
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_x_;
  std::vector<std::size_t> counts_y_;
  std::unordered_map<std::uint64_t, std::size_t> joint_;
  double entropy_x_ = 0.0;
  double entropy_y_ = 0.0;
  double mutual_information_ = 0.0;
};

}  // namespace hsbp::metrics
