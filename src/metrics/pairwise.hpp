/// \file pairwise.hpp
/// \brief Pair-counting community metrics: adjusted Rand index and the
/// pairwise precision/recall/F1 used by the IEEE HPEC Graph Challenge
/// evaluation (Kao et al. 2017) that SBP originates from.
///
/// All are computed from the contingency table in O(nnz) using the
/// "pairs" identities: for a cell n_ij, C(n_ij, 2) pairs agree in both
/// labelings, etc. No O(V²) pair enumeration.
#pragma once

#include <cstdint>
#include <span>

namespace hsbp::metrics {

/// Adjusted Rand index between two labelings (1 = identical up to
/// relabeling, ≈0 = independent, can be negative for adversarial
/// disagreement). \pre equal-sized, non-empty, non-negative labels.
double adjusted_rand_index(std::span<const std::int32_t> truth,
                           std::span<const std::int32_t> predicted);

struct PairwiseScores {
  double precision = 0.0;  ///< of predicted same-community pairs, how many are truly together
  double recall = 0.0;     ///< of truly-together pairs, how many predicted together
  double f1 = 0.0;         ///< harmonic mean
};

/// Graph Challenge pairwise precision/recall of `predicted` against
/// `truth`. Degenerate conventions: no positive pairs on either side
/// scores 1.0 for the corresponding component.
PairwiseScores pairwise_scores(std::span<const std::int32_t> truth,
                               std::span<const std::int32_t> predicted);

}  // namespace hsbp::metrics
