#include <algorithm>
#include <stdexcept>
#include <vector>

#include "metrics/metrics.hpp"

namespace hsbp::metrics {

double modularity(const graph::GraphView& graph,
                  std::span<const std::int32_t> membership) {
  if (membership.size() != static_cast<std::size_t>(graph.num_vertices())) {
    throw std::invalid_argument("modularity: membership size != V");
  }
  if (graph.num_edges() == 0) return 0.0;

  std::int32_t num_blocks = 0;
  for (const std::int32_t label : membership) {
    if (label < 0) throw std::invalid_argument("modularity: negative label");
    num_blocks = std::max(num_blocks, label + 1);
  }

  std::vector<double> within(static_cast<std::size_t>(num_blocks), 0.0);
  std::vector<double> d_out(static_cast<std::size_t>(num_blocks), 0.0);
  std::vector<double> d_in(static_cast<std::size_t>(num_blocks), 0.0);

  for (graph::Vertex v = 0; v < graph.num_vertices(); ++v) {
    const auto src = static_cast<std::size_t>(membership[static_cast<std::size_t>(v)]);
    for (const graph::Vertex u : graph.out_neighbors(v)) {
      const auto dst =
          static_cast<std::size_t>(membership[static_cast<std::size_t>(u)]);
      d_out[src] += 1.0;
      d_in[dst] += 1.0;
      if (src == dst) within[src] += 1.0;
    }
  }

  const double e = static_cast<double>(graph.num_edges());
  double q = 0.0;
  for (std::size_t r = 0; r < within.size(); ++r) {
    q += within[r] / e - (d_out[r] / e) * (d_in[r] / e);
  }
  return q;
}

}  // namespace hsbp::metrics
