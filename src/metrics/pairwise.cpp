#include "metrics/pairwise.hpp"

#include "metrics/contingency.hpp"

namespace hsbp::metrics {

namespace {

/// C(n, 2) as a double (inputs can be ~V so squares need headroom).
double pairs(double n) noexcept { return n * (n - 1.0) / 2.0; }

struct PairCounts {
  double joint = 0.0;      ///< pairs together in both labelings
  double truth = 0.0;      ///< pairs together in the first labeling
  double predicted = 0.0;  ///< pairs together in the second labeling
  double total = 0.0;      ///< all C(n, 2) pairs
};

PairCounts count_pairs(std::span<const std::int32_t> x,
                       std::span<const std::int32_t> y) {
  const ContingencyTable table(x, y);
  PairCounts counts;
  for (const auto& [key, value] : table.joint()) {
    (void)key;
    counts.joint += pairs(static_cast<double>(value));
  }
  for (const std::size_t c : table.counts_x()) {
    counts.truth += pairs(static_cast<double>(c));
  }
  for (const std::size_t c : table.counts_y()) {
    counts.predicted += pairs(static_cast<double>(c));
  }
  counts.total = pairs(static_cast<double>(table.total()));
  return counts;
}

}  // namespace

double adjusted_rand_index(std::span<const std::int32_t> truth,
                           std::span<const std::int32_t> predicted) {
  const PairCounts c = count_pairs(truth, predicted);
  if (c.total <= 0.0) return 1.0;  // a single element: trivially identical
  const double expected = c.truth * c.predicted / c.total;
  const double maximum = 0.5 * (c.truth + c.predicted);
  const double denominator = maximum - expected;
  if (denominator == 0.0) {
    // Both labelings are all-singletons or all-one-cluster: identical
    // partitions score 1, which is the only way to reach this branch.
    return 1.0;
  }
  return (c.joint - expected) / denominator;
}

PairwiseScores pairwise_scores(std::span<const std::int32_t> truth,
                               std::span<const std::int32_t> predicted) {
  const PairCounts c = count_pairs(truth, predicted);
  PairwiseScores scores;
  scores.precision = c.predicted > 0.0 ? c.joint / c.predicted : 1.0;
  scores.recall = c.truth > 0.0 ? c.joint / c.truth : 1.0;
  const double sum = scores.precision + scores.recall;
  scores.f1 = sum > 0.0 ? 2.0 * scores.precision * scores.recall / sum : 0.0;
  return scores;
}

}  // namespace hsbp::metrics
