#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "generator/dcsbm.hpp"
#include "util/rng.hpp"

namespace hsbp::generator {

namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

StreamingParts edge_sampling_parts(const GeneratedGraph& generated,
                                   int parts, util::Rng& rng) {
  std::vector<Edge> edges = generated.graph.edges();
  // Fisher–Yates over the edge order.
  for (std::size_t i = edges.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(edges[i - 1], edges[j]);
  }

  StreamingParts result;
  result.ground_truth = generated.ground_truth;
  const std::size_t e_count = edges.size();
  for (int part = 1; part <= parts; ++part) {
    const std::size_t upto = e_count * static_cast<std::size_t>(part) /
                             static_cast<std::size_t>(parts);
    const std::span<const Edge> slice(edges.data(), upto);
    result.snapshots.push_back(
        Graph::from_edges(generated.graph.num_vertices(), slice));
  }
  return result;
}

StreamingParts snowball_parts(const GeneratedGraph& generated, int parts,
                              util::Rng& rng) {
  const Graph& g = generated.graph;
  const auto v_count = static_cast<std::size_t>(g.num_vertices());

  // BFS arrival order over the undirected view, restarting from the
  // lowest-id unvisited vertex when a component is exhausted; the
  // first seed is random.
  std::vector<Vertex> arrival;
  arrival.reserve(v_count);
  std::vector<bool> visited(v_count, false);
  std::deque<Vertex> frontier;
  const auto push = [&](Vertex v) {
    if (!visited[static_cast<std::size_t>(v)]) {
      visited[static_cast<std::size_t>(v)] = true;
      frontier.push_back(v);
    }
  };
  push(static_cast<Vertex>(rng.uniform_int(v_count)));
  Vertex scan = 0;
  while (arrival.size() < v_count) {
    if (frontier.empty()) {
      while (visited[static_cast<std::size_t>(scan)]) ++scan;
      push(scan);
    }
    const Vertex v = frontier.front();
    frontier.pop_front();
    arrival.push_back(v);
    for (const Vertex u : g.out_neighbors(v)) push(u);
    for (const Vertex u : g.in_neighbors(v)) push(u);
  }

  // Relabel: new id = arrival position.
  std::vector<Vertex> new_id(v_count);
  for (std::size_t pos = 0; pos < v_count; ++pos) {
    new_id[static_cast<std::size_t>(arrival[pos])] =
        static_cast<Vertex>(pos);
  }

  std::vector<Edge> relabeled;
  relabeled.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const auto& [src, dst] : g.edges()) {
    relabeled.emplace_back(new_id[static_cast<std::size_t>(src)],
                           new_id[static_cast<std::size_t>(dst)]);
  }
  // Sort by the later endpoint so the prefix for n arrived vertices is
  // contiguous.
  std::sort(relabeled.begin(), relabeled.end(),
            [](const Edge& a, const Edge& b) {
              return std::max(a.first, a.second) <
                     std::max(b.first, b.second);
            });

  StreamingParts result;
  result.ground_truth.resize(v_count);
  for (std::size_t v = 0; v < v_count; ++v) {
    result.ground_truth[static_cast<std::size_t>(new_id[v])] =
        generated.ground_truth[v];
  }

  std::size_t edge_cursor = 0;
  for (int part = 1; part <= parts; ++part) {
    const auto arrived = static_cast<Vertex>(
        v_count * static_cast<std::size_t>(part) /
        static_cast<std::size_t>(parts));
    while (edge_cursor < relabeled.size() &&
           std::max(relabeled[edge_cursor].first,
                    relabeled[edge_cursor].second) < arrived) {
      ++edge_cursor;
    }
    const std::span<const Edge> slice(relabeled.data(), edge_cursor);
    result.snapshots.push_back(Graph::from_edges(arrived, slice));
  }
  return result;
}

}  // namespace

StreamingParts streaming_snapshots(const GeneratedGraph& generated,
                                   int parts, StreamingOrder order,
                                   std::uint64_t seed) {
  if (parts < 1) {
    throw std::invalid_argument("streaming_snapshots: parts >= 1");
  }
  if (generated.graph.num_vertices() == 0) {
    throw std::invalid_argument("streaming_snapshots: empty graph");
  }
  util::Rng rng(seed);
  return order == StreamingOrder::EdgeSampling
             ? edge_sampling_parts(generated, parts, rng)
             : snowball_parts(generated, parts, rng);
}

}  // namespace hsbp::generator
