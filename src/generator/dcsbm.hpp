/// \file dcsbm.hpp
/// \brief Degree-corrected stochastic blockmodel graph generator.
///
/// This is the repository's replacement for the graph-tool v2.29
/// generator the paper uses (§4.1): it plants a partition with a
/// controllable within:between edge ratio `r`, power-law degree
/// propensities and (optionally) heterogeneous community sizes, and
/// emits a directed multigraph plus the ground-truth membership.
///
/// Generative process:
///   1. community sizes: equal, or proportional to (c+1)^(-size_exponent)
///      (each community guaranteed non-empty);
///   2. vertex degree propensities θ_v ~ truncated power law
///      [min_degree, max_degree] with the given exponent;
///   3. block-pair weights W_ab ∝ Θ_a·Θ_b, multiplied by `r` when a == b
///      (Θ_a = Σ_{v∈a} θ_v), so the expected within:between edge-count
///      ratio is controlled by r exactly as in the paper's Table 1;
///   4. each of the E edges draws a block pair from W, then source ∝ θ
///      within block a and target ∝ θ within block b.
///
/// As with graph-tool, the realized graph only approximates the
/// requested parameters (the paper makes the same observation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hsbp::generator {

struct DcsbmParams {
  graph::Vertex num_vertices = 1000;
  std::int32_t num_communities = 8;
  graph::EdgeCount num_edges = 8000;
  /// Within:between total edge-weight ratio r (paper Table 1). r=1 means
  /// no community structure beyond degree correlation; larger is
  /// stronger structure.
  double ratio_within_between = 2.5;
  /// Power-law exponent of the degree propensity distribution.
  double degree_exponent = 2.5;
  graph::EdgeCount min_degree = 1;
  graph::EdgeCount max_degree = 100;
  /// 0 = equal community sizes; > 0 = sizes ∝ (c+1)^(-size_exponent).
  double community_size_exponent = 0.0;
  /// false (default): one propensity θ_v drives both directions —
  /// out- and in-degree of a vertex are strongly correlated (citation
  /// networks, co-purchase graphs). true: θ_out and θ_in are sampled
  /// independently, giving uncorrelated in/out degrees (web crawls,
  /// follower graphs). Off by default to keep seeded outputs stable.
  bool independent_in_out_degrees = false;
  std::uint64_t seed = 1;
};

struct GeneratedGraph {
  std::string name;                         ///< suite id, e.g. "S7"
  graph::Graph graph;                       ///< directed multigraph
  std::vector<std::int32_t> ground_truth;   ///< planted membership, size V
  DcsbmParams params;                       ///< parameters used
};

/// Generates one DCSBM graph. Deterministic in params.seed.
/// \throws std::invalid_argument on inconsistent parameters
/// (num_communities > num_vertices, non-positive counts, r <= 0, ...).
GeneratedGraph generate_dcsbm(const DcsbmParams& params);

/// Realized within:between edge ratio of a graph under a membership —
/// used by tests and by the suite tables to report the actual r.
double realized_within_ratio(const graph::Graph& graph,
                             const std::vector<std::int32_t>& membership);

/// How a generated graph is sliced into streaming parts, following the
/// two modes of the Streaming Graph Challenge (Kao et al. 2017).
enum class StreamingOrder {
  EdgeSampling,  ///< all vertices known; edges arrive in random order
  Snowball,      ///< vertices arrive in BFS order with their edges
};

/// Cumulative streaming snapshots plus the ground truth expressed in
/// the final snapshot's vertex ids (Snowball relabels vertices by
/// arrival order, so the original labels are re-indexed accordingly).
struct StreamingParts {
  std::vector<graph::Graph> snapshots;   ///< snapshots.back() = full graph
  std::vector<std::int32_t> ground_truth;
};

/// Splits a generated graph into `parts` cumulative snapshots. Under
/// EdgeSampling every snapshot spans all V vertices and part k holds
/// the first k/parts of a random edge permutation. Under Snowball,
/// vertices are relabeled by BFS arrival order from a random seed
/// (continuing from unvisited vertices across components) and snapshot
/// k contains the first k/parts of the vertices with their induced
/// edges. Deterministic in `seed`. \pre parts >= 1.
StreamingParts streaming_snapshots(const GeneratedGraph& generated,
                                   int parts, StreamingOrder order,
                                   std::uint64_t seed);

}  // namespace hsbp::generator
