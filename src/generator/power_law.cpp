#include "generator/power_law.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsbp::generator {

PowerLawSampler::PowerLawSampler(std::int64_t min_value,
                                 std::int64_t max_value, double exponent)
    : min_value_(min_value), max_value_(max_value) {
  if (min_value < 1 || max_value < min_value) {
    throw std::invalid_argument(
        "PowerLawSampler: require 1 <= min_value <= max_value");
  }
  const auto support = static_cast<std::size_t>(max_value - min_value + 1);
  cdf_.resize(support);
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < support; ++i) {
    const double d = static_cast<double>(min_value + static_cast<std::int64_t>(i));
    const double mass = std::pow(d, -exponent);
    total += mass;
    weighted += d * mass;
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
  mean_ = weighted / total;
}

std::int64_t PowerLawSampler::sample(util::Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto index = static_cast<std::int64_t>(it - cdf_.begin());
  return min_value_ + std::min<std::int64_t>(
                          index, max_value_ - min_value_);
}

}  // namespace hsbp::generator
